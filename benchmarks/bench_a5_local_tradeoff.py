"""A5 — footnote 6: the LOCAL model trivialises rounds but not traffic.

"In contrast, in the LOCAL model — where there is no bandwidth
constraint — all problems can be trivially solved in O(D) rounds by
collecting all the topological information at one node."  The
collect-all baseline must therefore beat every CONGEST algorithm on
*rounds* — and lose catastrophically on *per-round bits* and on the
fully-distributed memory restriction (its leader stores all m edges).
This is the paper's motivation for working in CONGEST at all.
"""

from repro.baselines import run_local_collect
from repro.core import run_dhc2
from repro.graphs import gnp_random_graph, paper_probability

from benchmarks.conftest import show

N = 96
DELTA = 0.5
C = 6.0
SEED = 3


def _run_both():
    p = paper_probability(N, DELTA, C)
    graph = gnp_random_graph(N, p, seed=SEED)
    local = run_local_collect(graph, seed=SEED)
    dhc2 = run_dhc2(graph, delta=DELTA, k=4, seed=SEED)
    return graph, local, dhc2


def test_a5_local_vs_congest(benchmark):
    graph, local, dhc2 = _run_both()
    assert local.success and dhc2.success

    def per_round_bits(res):
        return res.bits / max(1, res.rounds)

    rows = [
        ("local (collect-all)", local.rounds, local.bits,
         float(per_round_bits(local)),
         local.detail["leader_state_words"]),
        ("dhc2 (paper)", dhc2.rounds, dhc2.bits,
         float(per_round_bits(dhc2)),
         dhc2.detail.get("max_state_words", "o(n) by audit")),
    ]
    show(f"A5: LOCAL collect-all vs CONGEST DHC2 (n={N}, m={graph.m})",
         ["algorithm", "rounds", "total bits", "bits/round", "peak state"],
         rows)

    # Footnote 6's shape: LOCAL wins rounds outright...
    assert local.rounds < dhc2.rounds / 5
    # ...but needs far more bandwidth per round than CONGEST permits,
    # and centralises Theta(m) state at the leader.
    assert per_round_bits(local) > 10 * per_round_bits(dhc2)
    assert local.detail["leader_state_words"] >= 2 * graph.m

    benchmark.extra_info["local_rounds"] = local.rounds
    benchmark.extra_info["dhc2_rounds"] = dhc2.rounds
    benchmark.pedantic(_run_both, rounds=1, iterations=1)
