"""E2 — Theorem 1 (+ Fig. 1): DHC1 runs in O~(sqrt(n)) rounds.

Full CONGEST simulation of Algorithm 2 at ``p = c ln n / sqrt(n)`` with
the paper's ``K = sqrt(n)`` partitions.  After dividing out the
``ln^2 n / ln ln n`` polylog, the fitted exponent of rounds vs n should
sit near 1/2.  Small-n runs can fail honestly (the proof constants
assume c >= 86); failed seeds are retried and reported.
"""

import math

from repro.core import run_dhc1
from repro.graphs import gnp_random_graph

from benchmarks.conftest import fitted_exponent, polylog_corrected, show

SIZES = [100, 196, 324, 484]
C = 2.0
MAX_TRIES = 8


def _colors(n: int) -> int:
    # K = sqrt(n) / 1.5: the paper's partition count up to a constant.
    # At laptop n, sqrt(n)-sized partitions fail their own HC walk too
    # often (the proofs assume c >= 86); a constant-factor reduction
    # keeps the asymptotics while making runs completable.  Recorded in
    # EXPERIMENTS.md.
    return max(2, round(math.sqrt(n) / 1.5))


def _run_until_success(n: int):
    p = min(1.0, C * math.log(n) / math.sqrt(n))
    for attempt in range(MAX_TRIES):
        g = gnp_random_graph(n, p, seed=1000 + n + attempt)
        res = run_dhc1(g, k=_colors(n), seed=n + attempt)
        if res.success:
            return res, attempt + 1
    return res, MAX_TRIES


def test_e02_dhc1_rounds(benchmark):
    rows, ns, rounds = [], [], []
    for n in SIZES:
        res, tries = _run_until_success(n)
        assert res.success, f"DHC1 failed {MAX_TRIES} seeds at n={n}"
        rows.append((n, res.rounds, res.messages, tries))
        ns.append(float(n))
        rounds.append(float(res.rounds))
    slope = fitted_exponent(ns, rounds)
    corrected = fitted_exponent(ns, polylog_corrected(rounds, ns))
    show("E2: DHC1 rounds at p = c ln n / sqrt(n)  (Theorem 1: O~(sqrt n))",
         ["n", "rounds", "messages", "seeds_tried"], rows)
    print(f"fitted exponent: {slope:.3f}  (polylog-corrected {corrected:.3f}; "
          f"paper predicts 0.5 x polylog)")
    assert slope < 1.2  # decisively sublinear in n
    benchmark.extra_info["rows"] = rows
    benchmark.extra_info["exponent"] = slope
    benchmark.pedantic(_run_until_success, args=(100,), rounds=1, iterations=1)
