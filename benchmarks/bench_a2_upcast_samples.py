"""A2 — ablation: the Upcast sample size ``c' log n`` (Section III, step 3).

The paper requires "a sufficiently large constant c'".  Sweeping c'
shows the practical threshold: starved samples leave the root's graph
non-Hamiltonian and the algorithm fails; a few multiples of log n make
it reliable.  Rounds grow only mildly with c' (the pipeline deepens).
"""

import math

from repro.core import run_upcast
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

N = 128
TRIALS = 4


def _rate(c_prime: float):
    wins, rounds = 0, []
    for s in range(TRIALS):
        p = min(1.0, 1.5 * math.log(N) / math.sqrt(N))
        g = gnp_random_graph(N, p, seed=4500 + s)
        res = run_upcast(g, c_prime=c_prime, seed=4600 + s, solver_restarts=2)
        wins += res.success
        if res.success:
            rounds.append(res.rounds)
    return wins / TRIALS, (sum(rounds) / len(rounds) if rounds else float("nan"))


def test_a2_sample_size_ablation(benchmark):
    rows = []
    rates = {}
    for c_prime in (0.2, 0.5, 1.0, 2.0, 3.0):
        rate, mean_rounds = _rate(c_prime)
        samples = max(1, math.ceil(c_prime * math.log(N)))
        rows.append((c_prime, samples, rate, mean_rounds))
        rates[c_prime] = rate
    show(f"A2: Upcast success vs sample size c' log n (n={N}, {TRIALS} trials)",
         ["c_prime", "edges/node", "success_rate", "mean_rounds"], rows)
    assert rates[3.0] == 1.0
    assert rates[0.2] < rates[3.0]
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_rate, args=(3.0,), rounds=1, iterations=1)
