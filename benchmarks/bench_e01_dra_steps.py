"""E1 — Theorem 2: DRA completes within 7 n ln n steps whp.

Measures walk steps on the fast engine across a size sweep and checks
(i) every run stays under the theorem's budget, (ii) the normalised
ratio steps / (n ln n) stays bounded as n grows.
"""

import math

import repro
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

SIZES = [128, 256, 512, 1024, 2048]
C = 8.0


def _run(n: int, seed: int):
    p = min(1.0, C * math.log(n) / n)
    g = gnp_random_graph(n, p, seed=seed)
    return repro.run(g, "dra", engine="fast", seed=seed + 100)


def test_e01_dra_steps(benchmark):
    rows = []
    for n in SIZES:
        res = _run(n, seed=n)
        assert res.success, f"DRA failed at n={n}"
        norm = res.steps / (n * math.log(n))
        rows.append((n, res.steps, int(7 * n * math.log(n)), norm))
        assert res.steps <= 7 * n * math.log(n)
    show("E1: DRA steps vs Theorem 2 bound (7 n ln n)",
         ["n", "steps", "bound", "steps/(n ln n)"], rows)
    # Normalised steps must stay O(1): no super-n-log-n growth.
    norms = [r[3] for r in rows]
    assert max(norms) < 3.0
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(512, 1), rounds=1, iterations=1)
