"""E17 — native k-machine engine vs the Conversion-Theorem simulator.

The native ``engine="kmachine"`` exists to take the k-machine model
past the sizes the converted path can simulate (the conversion drives
the message-level CONGEST engine, paying per-message Python cost).
This benchmark records:

* **Shared sizes** — converted and native on the same graphs/seeds:
  the cycles must be identical (the parity contract), the native
  ``kmachine_rounds`` must track the converted oracle's, and the
  native throughput must clear the >= 3x acceptance bar at the largest
  shared size.
* **Native-only sizes** — the regime the converted path cannot reach
  (n = 1024+ is hours per trial for converted DRA): the Conversion
  Theorem's ``~1/k`` shape must survive in the native accounting —
  ``kmachine_rounds`` falls monotonically as machines are added while
  the cycle stays byte-identical across k.

Environment knobs (the CI perf-smoke step runs ``E17_SIZES=256``):

* ``E17_SIZES`` — comma-separated native-only node counts (default
  1024,4096);
* ``E17_SHARED`` — the shared converted-vs-native size (default 96);
* ``E17_OUT`` — also dump the run's payload to this path (smoke runs
  included), for ``benchmarks/check_bench.py``'s advisory regression
  comparison against the committed baseline.

With ``E17_SIZES`` overridden (a smoke run), timing gates are skipped
and ``BENCH_kmachine_native.json`` is *not* rewritten — shared-runner
timings must not clobber the committed full-sweep trajectory.
"""

import json
import math
import os
import time
from pathlib import Path

import repro
from repro.graphs import gnp_random_graph
from repro.kmachine import run_converted_hc

from benchmarks.conftest import show

FULL_SWEEP = "E17_SIZES" not in os.environ
NATIVE_SIZES = [int(s) for s in
                os.environ.get("E17_SIZES", "1024,4096").split(",")]
SHARED_N = int(os.environ.get("E17_SHARED", "96"))
KS = [2, 4, 8, 16]
C = 8.0
SEED = 3
OUT_PATH = Path(__file__).resolve().parent / "BENCH_kmachine_native.json"


def _graph(n: int, seed: int = SEED):
    return gnp_random_graph(n, min(1.0, C * math.log(n) / n), seed=seed)


def _native(graph, k: int, seed: int = SEED):
    return repro.run(graph, "dra", engine="kmachine", seed=seed, k_machines=k)


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    out = fn(*args, **kwargs)
    return out, time.perf_counter() - start


def test_e17_kmachine_native(benchmark):
    # -- shared sizes: parity + throughput vs the converted oracle -----------
    graph = _graph(SHARED_N)
    shared_rows = []
    shared = {}
    _native(_graph(64), 2)  # warm lazy imports outside the timed region
    for k in KS[:3]:
        native, t_native = _timed(_native, graph, k)
        (converted, km), t_conv = _timed(
            run_converted_hc, graph, algorithm="dra", k_machines=k, seed=SEED)
        assert native.success and converted.success
        assert native.cycle == converted.cycle, "native/converted cycle parity"
        assert native.rounds == converted.rounds
        ratio = t_conv / t_native
        shared[str(k)] = {
            "native_kmachine_rounds": native.detail["kmachine_rounds"],
            "converted_kmachine_rounds": km.kmachine_rounds,
            "native_trials_per_sec": round(1.0 / t_native, 3),
            "converted_trials_per_sec": round(1.0 / t_conv, 3),
            "native_speedup": round(ratio, 2),
        }
        shared_rows.append((k, native.detail["kmachine_rounds"],
                            km.kmachine_rounds, round(ratio, 1)))
    show(f"E17: native vs converted at shared n={SHARED_N}",
         ["k", "native_rounds", "converted_rounds", "wall_speedup"],
         shared_rows)

    # -- native-only sizes: the ~1/k shape where conversion cannot go --------
    native_series = {}
    native_rows = []
    for n in NATIVE_SIZES:
        graph = _graph(n)
        per_k = {}
        cycles = set()
        for k in KS:
            result, elapsed = _timed(_native, graph, k)
            assert result.success, f"native DRA failed at n={n}, k={k}"
            cycles.add(tuple(result.cycle))
            per_k[str(k)] = {
                "kmachine_rounds": result.detail["kmachine_rounds"],
                "congest_rounds": result.rounds,
                "cross_words": result.detail["kmachine"]["cross_words"],
                "trials_per_sec": round(1.0 / elapsed, 3),
            }
            native_rows.append(
                (n, k, result.detail["kmachine_rounds"], result.rounds,
                 round(1.0 / elapsed, 2)))
        assert len(cycles) == 1, "the machine count must not perturb the walk"
        rounds = [per_k[str(k)]["kmachine_rounds"] for k in KS]
        assert rounds == sorted(rounds, reverse=True), (
            f"~1/k scaling violated at n={n}: {rounds}")
        native_series[str(n)] = per_k
    show("E17: native-only regime (converted path cannot reach these sizes)",
         ["n", "k", "kmachine_rounds", "congest_rounds", "trials/sec"],
         native_rows)

    payload = {
        "experiment": "e17_kmachine_native",
        "shared_n": SHARED_N,
        "native_sizes": NATIVE_SIZES,
        "ks": KS,
        "c": C,
        "seed": SEED,
        "shared": shared,
        "native": native_series,
    }
    if FULL_SWEEP:
        largest = shared[str(KS[2])]
        assert largest["native_speedup"] >= 3.0, (
            f"native must be >= 3x converted at the largest shared size, "
            f"got {largest['native_speedup']}x")
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    else:
        print(f"sizes overridden; skipped timing gates and kept {OUT_PATH}")
    if os.environ.get("E17_OUT"):
        Path(os.environ["E17_OUT"]).write_text(
            json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["shared"] = shared
    benchmark.extra_info["native"] = native_series
    benchmark.pedantic(_native, args=(_graph(min(NATIVE_SIZES + [256])), 4),
                       rounds=1, iterations=1)
