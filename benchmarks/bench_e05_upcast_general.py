"""E5 — Theorem 19 / Corollary 20: Upcast runs in O(log n / p) rounds
for ``p = Theta(log n / n^(1-eps))``; rounds * p / log n stays bounded.
"""

import math

from repro.core import run_upcast
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

N = 256
EPS = [1 / 3, 1 / 2, 2 / 3]
C = 1.8


def _run(eps: float, seed: int):
    p = min(1.0, C * math.log(N) / N ** (1 - eps))
    g = gnp_random_graph(N, p, seed=seed)
    return p, run_upcast(g, seed=seed + 11)


def test_e05_upcast_inverse_p(benchmark):
    rows = []
    normalised = []
    for eps in EPS:
        p, res = _run(eps, seed=4000 + int(eps * 100))
        assert res.success, f"Upcast failed at eps={eps:.2f}"
        norm = res.rounds * p / math.log(N)
        rows.append((f"{eps:.2f}", f"{p:.4f}", res.rounds, norm))
        normalised.append(norm)
    show("E5: Upcast rounds at p = c log n / n^(1-eps)  (Thm 19: O(log n / p))",
         ["eps", "p", "rounds", "rounds*p/log n"], rows)
    # The paper's bound says the normalised quantity is O(1): it must not
    # blow up across a 10x density range, and denser -> fewer rounds.
    assert max(normalised) / min(normalised) < 8.0
    assert rows[0][2] >= rows[-1][2]  # sparser regime costs more rounds
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(0.5, 2), rounds=1, iterations=1)
