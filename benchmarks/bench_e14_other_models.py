"""E14 — Section IV's extension conjecture: G(n,M) and random regular.

"We also believe that the ideas of this paper can be extended to obtain
similarly fast and efficient fully-distributed algorithms for other
random graph models such as the G(n,M) model and random regular
graphs."  The algorithms only see adjacency, so the conjecture is
directly testable: run the unchanged DHC2 on G(n,M) and d-regular
graphs matched to the G(n,p) density and require (a) comparable success
and (b) round counts within a small factor of the G(n,p) reference.
"""

import repro
from repro.graphs import (
    gnm_random_graph,
    gnp_random_graph,
    paper_probability,
    random_regular_graph,
)

from benchmarks.conftest import show

N = 400
DELTA = 0.75
C = 4.0
TRIALS = 4
# The walks are Monte Carlo and c = 4 is far below the proof's c >= 86;
# single runs fail with constant probability at this scale (see E6).
# As in E3, each trial retries with fresh coins — what E14 compares is
# whether the *models* behave alike, not the raw one-shot rate.
ATTEMPTS = 6


def _matched_graphs(seed: int):
    p = paper_probability(N, DELTA, C)
    m = round(p * N * (N - 1) / 2)
    d = round(p * (N - 1))
    if (N * d) % 2:
        d += 1
    return {
        "gnp": gnp_random_graph(N, p, seed=seed),
        "gnm": gnm_random_graph(N, m, seed=seed),
        "regular": random_regular_graph(N, d, seed=seed),
    }


def _run_with_retries(graph, seed: int):
    for attempt in range(ATTEMPTS):
        res = repro.run(graph, "dhc2", engine="fast", delta=DELTA,
                        seed=1000 * attempt + seed)
        if res.success:
            return res
    return res


def _run_all():
    wins = {"gnp": 0, "gnm": 0, "regular": 0}
    rounds = {"gnp": [], "gnm": [], "regular": []}
    for seed in range(TRIALS):
        for name, graph in _matched_graphs(seed).items():
            res = _run_with_retries(graph, seed)
            if res.success:
                wins[name] += 1
                rounds[name].append(res.rounds)
    return wins, rounds


def test_e14_other_models(benchmark):
    wins, rounds = _run_all()
    rows = []
    for name in ("gnp", "gnm", "regular"):
        mean = (sum(rounds[name]) / len(rounds[name])) if rounds[name] else -1.0
        rows.append((name, wins[name], TRIALS, float(mean)))
    show(f"E14: DHC2 across matched random-graph models (n={N}, "
         f"delta={DELTA})", ["model", "successes", "trials", "mean rounds"],
         rows)

    assert wins["gnp"] == TRIALS
    # The conjecture: the other models keep working...
    assert wins["gnm"] == TRIALS
    assert wins["regular"] == TRIALS
    # ...at comparable cost (within 2x of the G(n,p) reference).
    ref = sum(rounds["gnp"]) / len(rounds["gnp"])
    for name in ("gnm", "regular"):
        mean = sum(rounds[name]) / len(rounds[name])
        assert 0.5 * ref < mean < 2.0 * ref, (
            f"{name} rounds diverged from the G(n,p) reference")

    benchmark.extra_info["wins"] = wins
    benchmark.pedantic(_matched_graphs, args=(0,), rounds=1, iterations=1)
