"""E4 — Theorem 17: Upcast solves HC in O(sqrt(n) log^2 n) rounds at
``p = Theta(log n / sqrt(n))``, where the graph has diameter 2 (Fact 2).
"""

import math

from repro.core import run_upcast
from repro.graphs import diameter, gnp_random_graph

from benchmarks.conftest import fitted_exponent, show

SIZES = [64, 128, 256, 400]
C = 1.5


def _run(n: int, seed: int):
    p = min(1.0, C * math.log(n) / math.sqrt(n))
    g = gnp_random_graph(n, p, seed=seed)
    return g, run_upcast(g, seed=seed + 7)


def test_e04_upcast_sqrt_regime(benchmark):
    rows, ns, rounds = [], [], []
    for n in SIZES:
        g, res = _run(n, seed=3000 + n)
        assert res.success, f"Upcast failed at n={n}"
        d = diameter(g)
        pred = math.sqrt(n) * math.log(n) ** 2
        rows.append((n, d, res.rounds, res.rounds / pred))
        ns.append(float(n))
        rounds.append(float(res.rounds))
    show("E4: Upcast rounds at p = c log n / sqrt(n)  (Thm 17: O(sqrt n log^2 n))",
         ["n", "diameter", "rounds", "rounds/pred"], rows)
    slope = fitted_exponent(ns, rounds)
    print(f"fitted exponent: {slope:.3f} (paper: 0.5 x polylog)")
    assert slope < 1.0
    # Fact 2: tiny diameter in this regime.
    assert all(r[1] <= 3 for r in rows)
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(64, 1), rounds=1, iterations=1)
