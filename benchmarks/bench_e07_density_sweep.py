"""E7 — "the denser the random graph, the smaller is the running time"
(abstract & Section IV): DHC2 rounds ~ O~(1/p) at fixed n.

Sweeps delta at fixed n = 1024 (so p spans an order of magnitude) and
checks that measured rounds decrease as the graph gets denser.
"""

import repro
from repro.graphs import gnp_random_graph, paper_probability

from benchmarks.conftest import show

N = 1024
DELTAS = [0.60, 0.70, 0.80, 0.90]  # all with unclamped p at n=1024
C = 8.0
MAX_TRIES = 4


def _run(delta: float):
    p = paper_probability(N, delta, C)
    for attempt in range(MAX_TRIES):
        g = gnp_random_graph(N, p, seed=7000 + attempt + int(delta * 100))
        res = repro.run(g, "dhc2", engine="fast", delta=delta, seed=7100 + attempt)
        if res.success:
            return p, res
    return p, res


def test_e07_denser_is_faster(benchmark):
    rows = []
    for delta in DELTAS:
        p, res = _run(delta)
        assert res.success, f"DHC2 failed at delta={delta}"
        rows.append((f"{delta:.2f}", f"{p:.4f}", res.detail["k"], res.rounds))
    show(f"E7: DHC2 rounds vs density at n={N}  (denser = faster)",
         ["delta", "p", "K", "rounds"], rows)
    rounds = [r[3] for r in rows]
    # p decreases along DELTAS, so rounds must (weakly) increase.
    assert rounds[0] < rounds[-1]
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(0.5,), rounds=1, iterations=1)
