"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index: it
prints the paper-style series (visible with ``pytest benchmarks/
--benchmark-only -s``), attaches the series to the pytest-benchmark
record via ``extra_info``, and asserts the *shape* the paper predicts
(fitted exponents, orderings, crossovers) — not absolute numbers.

Monte Carlo sweeps go through :func:`harness_sweep` — the same
scheduler/store/seed-tree layer (:mod:`repro.harness`) the CLI and
examples use — instead of hand-rolled seed loops, so benchmark trials
share the library's determinism guarantees and can be parallelised or
work-stolen without touching the experiment code.
"""

from __future__ import annotations

import math

from repro.analysis import fit_power_law
from repro.harness import MemoryStore, ParallelTrialRunner, TrialRunner


def harness_sweep(trial_fn, points, *, trials, master_seed, jobs=1,
                  schedule="ordered"):
    """Run a benchmark sweep through the harness orchestration layer.

    ``trial_fn(point, seed)`` follows the
    :class:`~repro.harness.TrialRunner` contract (return a
    ``RunResult`` or a mapping with ``success``).  Records land in a
    :class:`~repro.harness.MemoryStore` (benchmarks re-run from
    scratch by design); seeds derive from ``(master_seed, point #,
    trial #)`` whatever ``jobs``/``schedule`` says, so a benchmark's
    numbers are identical serial or parallel.
    """
    store = MemoryStore()
    if jobs and jobs > 1:
        runner = ParallelTrialRunner(trial_fn, master_seed=master_seed,
                                     store=store, jobs=jobs,
                                     schedule=schedule)
    else:
        runner = TrialRunner(trial_fn, master_seed=master_seed, store=store)
    return runner.run(points, trials=trials)


def show(title: str, header: list[str], rows: list[tuple]) -> None:
    """Print an experiment table."""
    print(f"\n=== {title} ===")
    widths = [max(len(h), 12) for h in header]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = [
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ]
        print("  ".join(c.ljust(w) for c, w in zip(cells, widths)))


def fitted_exponent(xs: list[float], ys: list[float]) -> float:
    """Least-squares power-law exponent of a measured series."""
    _a, b = fit_power_law(xs, ys)
    return b


def polylog_corrected(ys: list[float], ns: list[float]) -> list[float]:
    """Divide out the paper's ``ln^2 n / ln ln n`` polylog factor so the
    fitted exponent isolates the ``n**delta`` part of the bound."""
    out = []
    for y, n in zip(ys, ns):
        corr = math.log(n) ** 2 / max(1.0, math.log(math.log(n)))
        out.append(y / corr)
    return out
