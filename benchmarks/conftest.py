"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index: it
prints the paper-style series (visible with ``pytest benchmarks/
--benchmark-only -s``), attaches the series to the pytest-benchmark
record via ``extra_info``, and asserts the *shape* the paper predicts
(fitted exponents, orderings, crossovers) — not absolute numbers.
"""

from __future__ import annotations

import math

from repro.analysis import fit_power_law


def show(title: str, header: list[str], rows: list[tuple]) -> None:
    """Print an experiment table."""
    print(f"\n=== {title} ===")
    widths = [max(len(h), 12) for h in header]
    print("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        cells = [
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ]
        print("  ".join(c.ljust(w) for c, w in zip(cells, widths)))


def fitted_exponent(xs: list[float], ys: list[float]) -> float:
    """Least-squares power-law exponent of a measured series."""
    _a, b = fit_power_law(xs, ys)
    return b


def polylog_corrected(ys: list[float], ns: list[float]) -> list[float]:
    """Divide out the paper's ``ln^2 n / ln ln n`` polylog factor so the
    fitted exponent isolates the ``n**delta`` part of the bound."""
    out = []
    for y, n in zip(ys, ns):
        corr = math.log(n) ** 2 / max(1.0, math.log(math.log(n)))
        out.append(y / corr)
    return out
