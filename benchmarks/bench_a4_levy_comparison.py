"""A4 — the paper vs prior art: Levy–Louchard–Petit [18].

Section I-B positions the paper against the only prior distributed HC
algorithm: [18] runs in ``O(n^{3/4+eps})`` rounds and *requires*
``p = omega(sqrt(log n)/n^{1/4})``, whereas DHC1/DHC2 are faster and
work down to the Hamiltonicity threshold.  Two shape checks:

1. *Density floor.*  At the threshold regime (``delta = 1``) the
   reconstructed baseline collapses while DHC2 keeps succeeding —
   "works for all ranges of p" is the paper's headline advantage.
2. *Rounds in the shared regime.*  Where both succeed (dense graphs),
   the DHC1-style algorithm needs asymptotically fewer rounds; we check
   the measured ordering at the largest common size.
"""

import repro
from repro.baselines import run_levy
from repro.baselines.levy import levy_density_requirement
from repro.graphs import gnp_random_graph, paper_probability

from benchmarks.conftest import show

THRESHOLD_N = 1024
THRESHOLD_C = 6.0
TRIALS = 4

DENSE_NS = [256, 512, 1024]


def _density_floor_rows():
    p = paper_probability(THRESHOLD_N, 1.0, THRESHOLD_C)
    levy_wins = dhc2_wins = 0
    for seed in range(TRIALS):
        graph = gnp_random_graph(THRESHOLD_N, p, seed=seed)
        if run_levy(graph, seed=seed).success:
            levy_wins += 1
        if repro.run(graph, "dhc2", engine="fast", delta=1.0, seed=seed).success:
            dhc2_wins += 1
    return p, levy_wins, dhc2_wins


def _dense_regime_rows():
    rows = []
    for n in DENSE_NS:
        p = min(0.9, 4.0 * levy_density_requirement(n))
        graph = gnp_random_graph(n, p, seed=7)
        levy = run_levy(graph, seed=7)
        dhc = repro.run(graph, "dhc2", engine="fast", delta=0.5, seed=7)
        if not dhc.success:
            dhc = repro.run(graph, "dhc2", engine="fast", delta=0.5, seed=8)
        rows.append((n, f"{p:.3f}",
                     levy.rounds if levy.success else -1,
                     dhc.rounds if dhc.success else -1))
    return rows


def test_a4_levy_comparison(benchmark):
    p, levy_wins, dhc2_wins = _density_floor_rows()
    show("A4a: success at the Hamiltonicity threshold "
         f"(n={THRESHOLD_N}, p={p:.4f}, {TRIALS} trials)",
         ["algorithm", "successes", "trials"],
         [("levy [18]", levy_wins, TRIALS), ("dhc2 (paper)", dhc2_wins, TRIALS)])
    assert dhc2_wins > levy_wins, (
        "the paper's density advantage over [18] must show at threshold")
    assert dhc2_wins >= TRIALS - 1

    rows = _dense_regime_rows()
    show("A4b: rounds in [18]'s own dense regime (p = 4x its floor)",
         ["n", "p", "levy rounds", "dhc2 rounds"], rows)
    # Both should succeed in the dense regime at the largest size.
    n_, _p, levy_rounds, dhc_rounds = rows[-1]
    assert levy_rounds > 0, "baseline must succeed in its own regime"
    assert dhc_rounds > 0

    benchmark.extra_info["threshold"] = {
        "levy": levy_wins, "dhc2": dhc2_wins, "trials": TRIALS}
    benchmark.pedantic(_density_floor_rows, rounds=1, iterations=1)
