#!/usr/bin/env python
"""Advisory bench-regression check: a fresh run vs a committed baseline.

Usage::

    python benchmarks/check_bench.py FRESH.json BASELINE.json \
        [--tolerance 0.5] [--drift 0.25]

Walks both JSON payloads in parallel and compares every numeric leaf
present in *both* (paths only one side has — e.g. a smoke run's reduced
size grid — are skipped and counted).  A list whose elements are all
numbers (and at least two of them) is treated as *repeated samples of
one measurement* and collapsed to its median before comparison — so
benchmarks can record every repeat honestly while the advisory check
sees one noise-damped value per leaf instead of racing element 0 of a
fresh run against element 0 of the baseline.  Mixed or single-element
lists still flatten element-wise (``path.0``, ``path.1``, ...):

* **rate-like** leaves (key contains ``per_sec`` or ``speedup``):
  lower is worse; a regression is ``fresh < baseline * (1 - tolerance)``.
  The band is wide by default because smoke timings on shared CI
  runners are noisy — this is an advisory tripwire, not a perf gate.
* **cost-like** leaves (key contains ``seconds``, ``setup_fraction``,
  ``overhead_fraction``, ``latency``, or a ``_p90``/``_p99``
  percentile marker): higher is worse; a regression is
  ``fresh > baseline * (1 + tolerance)``.  The percentile markers let
  benchmarks gate on *distribution tails* from harness metrics
  payloads (``latency_p90_s``, ``latency_p99_s``, ...) instead of
  only scalar medians — a p99 blow-up with a healthy median is
  exactly the regression a median-only check misses.
* **count-like** leaves (rounds, words, sizes — everything else):
  deterministic given the seed tree, so any relative drift beyond
  ``--drift`` means the *behaviour* changed, which is exactly what a
  committed ``BENCH_*.json`` exists to catch.

Kernel threading makes timings incomparable across configurations, so
the check compares like-threaded columns only: when the two payloads
record different ``jit_threads`` values, every rate- and cost-like
leaf is skipped **except** those under ``thread_scaling.`` — that
section keys its columns by explicit thread count, so shared paths
there are like-threaded by construction.  Count-like leaves always
compare (threading never changes behaviour, only speed).

Exit status: 0 when everything in-band, 2 on any regression/drift,
1 on unusable inputs.  CI wires this into the perf-smoke steps with
``continue-on-error`` and a ``::warning::`` annotation — advisory, not
gating (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

RATE_MARKERS = ("per_sec", "speedup")

#: Inverse-rate leaves: wall-clock costs, setup/overhead shares, and
#: latency distribution fields (including p90/p99 percentile tails
#: from harness metrics payloads), where a *higher* fresh value is the
#: regression.  Rate markers take precedence (``trials_per_sec_p90``
#: would still be rate-like).
COST_MARKERS = ("seconds", "setup_fraction", "overhead_fraction",
                "latency", "_p90", "_p99")

#: Top-level payload keys that describe the run's *configuration*
#: (size grids, seeds, density constants).  A smoke run legitimately
#: overrides these, so they carry no regression signal.
CONFIG_KEYS = frozenset({
    "sizes", "native_sizes", "ks", "seed", "c", "delta", "trials",
    "shared_n", "congest_max", "dhc2_max", "batch_sizes",
    "jit_threads", "threads", "n", "drops", "churn",
})


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def numeric_leaves(payload, prefix=""):
    """Flatten to {dotted.path: float} over int/float leaves.

    All-numeric lists of two or more elements are repeated samples of
    one measurement: they collapse to their median at the list's own
    path (see the module docstring).
    """
    out = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            out.update(numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(payload, list):
        if len(payload) >= 2 and all(_is_number(v) for v in payload):
            out[prefix[:-1]] = float(statistics.median(payload))
        else:
            for index, value in enumerate(payload):
                out.update(numeric_leaves(value, f"{prefix}{index}."))
    elif _is_number(payload):
        out[prefix[:-1]] = float(payload)
    return out


def compare(fresh: dict, baseline: dict, tolerance: float,
            drift: float) -> tuple[list[str], int, int]:
    """(problems, compared, skipped) over the shared numeric leaves."""
    fresh_leaves = {p: v for p, v in numeric_leaves(fresh).items()
                    if p.split(".", 1)[0] not in CONFIG_KEYS}
    base_leaves = {p: v for p, v in numeric_leaves(baseline).items()
                   if p.split(".", 1)[0] not in CONFIG_KEYS}
    shared = sorted(set(fresh_leaves) & set(base_leaves))
    skipped = len(set(fresh_leaves) ^ set(base_leaves))
    like_threaded = (isinstance(fresh, dict) and isinstance(baseline, dict)
                     and fresh.get("jit_threads") == baseline.get("jit_threads"))
    problems = []
    compared = 0
    for path in shared:
        new, old = fresh_leaves[path], base_leaves[path]
        is_rate = any(marker in path for marker in RATE_MARKERS)
        is_cost = not is_rate and any(m in path for m in COST_MARKERS)
        if ((is_rate or is_cost) and not like_threaded
                and not path.startswith("thread_scaling.")):
            # Threaded vs serial timings carry no regression signal;
            # thread_scaling columns are keyed by thread count and
            # stay comparable.
            skipped += 1
            continue
        compared += 1
        if is_rate:
            floor = old * (1.0 - tolerance)
            if new < floor:
                problems.append(
                    f"rate regression at {path}: {new:g} < {floor:g} "
                    f"(baseline {old:g}, tolerance {tolerance:.0%})")
        elif is_cost:
            ceiling = old * (1.0 + tolerance)
            if new > ceiling:
                problems.append(
                    f"cost regression at {path}: {new:g} > {ceiling:g} "
                    f"(baseline {old:g}, tolerance {tolerance:.0%})")
        elif old != 0 and abs(new - old) / abs(old) > drift:
            problems.append(
                f"count drift at {path}: {new:g} vs baseline {old:g} "
                f"(> {drift:.0%})")
        elif old == 0 and new != 0:
            problems.append(f"count drift at {path}: {new:g} vs baseline 0")
    return problems, compared, skipped


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="JSON payload from the fresh run")
    parser.add_argument("baseline", help="committed BENCH_*.json baseline")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="allowed fractional slowdown on rate-like "
                             "leaves (default 0.5 = half the baseline rate)")
    parser.add_argument("--drift", type=float, default=0.25,
                        help="allowed relative drift on count-like leaves")
    args = parser.parse_args(argv)

    try:
        fresh = json.loads(Path(args.fresh).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_bench: unusable input: {exc}", file=sys.stderr)
        return 1

    problems, compared, skipped = compare(fresh, baseline, args.tolerance,
                                          args.drift)
    label = f"{Path(args.fresh).name} vs {Path(args.baseline).name}"
    if not compared:
        print(f"check_bench: {label}: no shared numeric leaves "
              f"({skipped} unmatched) — nothing to compare", file=sys.stderr)
        return 1
    for problem in problems:
        print(f"check_bench: {problem}", file=sys.stderr)
    print(f"check_bench: {label}: {compared} leaves compared, "
          f"{skipped} unmatched, {len(problems)} out of band")
    return 2 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
