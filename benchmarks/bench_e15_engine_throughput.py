"""E15 — engine throughput: fast-py vs fast (array kernel) vs congest.

Measures trials/sec for the step-level engines and the message-level
simulator across the sweep sizes, and writes the series to
``benchmarks/BENCH_engine_throughput.json`` so future PRs have a
performance trajectory to compare against.

``fast-py`` is no longer a registered engine (retired after its
deprecation release); its walkers remain importable as the parity
suite's oracles, and this benchmark times them via direct import so
the trajectory series keeps its historical key.

Checks (shape, not absolute numbers):

* the array kernel beats the pure-Python walker at every size;
* at n=1024 the rotation-walk engine (DRA) clears the >= 5x bar the
  array-native refactor was accepted on.

Environment knobs (the CI perf-smoke step runs ``E15_SIZES=256``):

* ``E15_SIZES`` — comma-separated node counts (default 256,1024,4096);
* ``E15_CONGEST_MAX`` — largest n the congest engine is timed at
  (default 256: it is ~3 orders of magnitude off the kernel's pace);
* ``E15_DHC2_MAX`` — largest n DHC2 is timed at (default 1024: the
  pure-Python oracle needs tens of seconds per trial above that);
* ``E15_BATCH_SIZES`` — trial counts per ``fast-batch`` engine pass
  (default 1,32,256), timed for DRA at every size in ``E15_SIZES``;
* ``E15_OUT`` — also write the run's payload to this path (used by the
  CI smoke step to feed the advisory ``check_bench`` comparison; the
  committed baseline is still only rewritten on a full sweep).

The batched lane is timed twice: once with the kernel dispatch forced
to pure numpy (the ``batch_trials_per_sec`` column — honest even when
this process runs under ``REPRO_JIT=1``), and once through the fused
compiled kernels (``batch_jit_trials_per_sec``).  On hosts without
numba the jitted column records ``null`` rather than timing the
uncompiled ``*_impl`` loops as if they were compiled — the committed
curve never claims a speedup the host could not measure.

Two further lanes profile the headline point (largest size, largest
batch):

* ``thread_scaling`` — the jitted pass re-run at 1/2/4 kernel threads
  via :func:`repro.engines._jit.configure_threads` (1 = the serial
  njit kernels, the honest one-thread execution), each with a *paired*
  ``fast`` reference measured adjacent to it.  Lanes the host cannot
  run (no numba, or the thread count exceeds numba's launched pool)
  record explicit ``null`` — never a guessed ratio.
* ``setup_profile`` — the generation+stacking share of one numpy-path
  batch pass (``setup_fraction``), measured for per-trial
  ``gnp_random_graph`` + serial stacking and for the pooled
  :func:`repro.graphs.batch_gnp` path that emits the stacked CSR and
  twin table directly.  Profiled at the mid-grid point (n=1024,
  batch=64); the pooled global sort goes memory-bound at the largest
  stacked point and the comparison inverts there (see the inline
  comment at the call site).

A ``metrics_lane`` section measures the observability layer itself
(:class:`repro.harness.metrics.MetricsCollector`): the same harness
sweep timed with and without a collector attached (median of
alternating repeats; ``overhead_fraction`` is the relative wall-clock
cost), a per-event microcost, and the metered run's aggregated KPI
tails (``latency_p50/p90/p99_s`` — the percentile fields
``check_bench`` compares as cost-like markers).  The full-sweep gate
asserts the collector costs < 2% of sweep wall-clock — observability
that distorts the sweep it observes would be worse than none.

Points skipped by those caps are reported in the table (no silent
truncation) and recorded as ``null`` in the JSON.

With ``E15_SIZES`` overridden (a smoke run) the speedup assertions are
skipped and the JSON is *not* rewritten: short timing windows on
shared runners are too noisy to gate on, and a reduced-size payload
must not clobber the committed full-sweep trajectory.
"""

import json
import math
import os
import time
from contextlib import contextmanager
from pathlib import Path

import repro
from repro.engines import _jit
from repro.engines.fast import _dra_fast_py
from repro.engines.fast_dhc2 import _dhc2_fast_py
from repro.engines.registry import REGISTRY
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

#: The unregistered pure-Python oracles, timed under their old label.
_ORACLES = {"dra": _dra_fast_py, "dhc2": _dhc2_fast_py}

FULL_SWEEP = "E15_SIZES" not in os.environ
SIZES = [int(s) for s in os.environ.get("E15_SIZES", "256,1024,4096").split(",")]
CONGEST_MAX = int(os.environ.get("E15_CONGEST_MAX", "256"))
DHC2_MAX = int(os.environ.get("E15_DHC2_MAX", "1024"))
BATCH_SIZES = [int(b) for b in
               os.environ.get("E15_BATCH_SIZES", "1,32,256").split(",")]
C = 8.0
OUT_PATH = Path(__file__).resolve().parent / "BENCH_engine_throughput.json"


def _graph(algorithm: str, n: int, seed: int):
    if algorithm == "dra":
        p = min(1.0, C * math.log(n) / n)
    else:  # dhc2: per-colour-class density at k ~ sqrt(n)
        s = max(3, n // max(1, round(n ** 0.5)))
        p = min(1.0, C * math.log(s) / s)
    return gnp_random_graph(n, p, seed=seed)


def _trials_for(engine: str, n: int) -> int:
    if engine == "congest":
        return 1
    if engine == "fast-py" and n >= 4096:
        return 1  # ~10 s/trial; one is enough for a rate
    return 3


def _dispatch(algorithm: str, engine: str, g, seed: int, **kwargs):
    if engine == "fast-py":
        return _ORACLES[algorithm](g, seed=seed, **kwargs)
    return repro.run(g, algorithm, engine=engine, seed=seed, **kwargs)


def _throughput(algorithm: str, engine: str, n: int) -> float:
    trials = _trials_for(engine, n)
    kwargs = {"delta": 0.5} if algorithm == "dhc2" else {}
    graphs = [_graph(algorithm, n, seed=s) for s in range(trials)]
    # Warm up lazy imports / numpy dispatch so the first timed point
    # does not carry one-time costs.
    _dispatch(algorithm, engine, _graph(algorithm, 64, seed=99), 99, **kwargs)
    start = time.perf_counter()
    for seed, g in enumerate(graphs):
        _dispatch(algorithm, engine, g, seed, **kwargs)
    return trials / (time.perf_counter() - start)


@contextmanager
def _noop():
    yield


@contextmanager
def _numpy_kernels():
    """Force the pure-numpy batch path for one timed lane."""
    saved = (_jit.walk_kernel, _jit.tree_kernel, _jit.reverse_blocks)
    _jit.walk_kernel = _jit.tree_kernel = _jit.reverse_blocks = None
    try:
        yield
    finally:
        _jit.walk_kernel, _jit.tree_kernel, _jit.reverse_blocks = saved


def _batch_throughput(n: int, batch: int, *, jit: bool = False) -> float:
    """Trials/sec of one ``fast-batch`` engine pass over ``batch`` graphs.

    Graph sampling stays outside the timed window (as in
    :func:`_throughput`); small (n, batch) points repeat the pass to
    widen the timing window.  ``jit=False`` pins the pure-numpy
    kernels regardless of ``REPRO_JIT``; ``jit=True`` times whatever
    :mod:`repro.engines._jit` compiled (callers must check
    ``_jit.ENABLED`` first — the warm-up pass also absorbs numba's
    first-call compilation).
    """
    spec = REGISTRY.resolve("dra", "fast-batch")
    rounds = 3 if n * batch <= 64 * 1024 else 1
    with (_noop() if jit else _numpy_kernels()):
        spec.call_batch([_graph("dra", 64, seed=99)], seeds=[99])  # warm up
        elapsed = 0.0
        for r in range(rounds):
            graphs = [_graph("dra", n, seed=1000 + r * batch + i)
                      for i in range(batch)]
            seeds = [r * batch + i for i in range(batch)]
            start = time.perf_counter()
            spec.call_batch(graphs, seeds=seeds)
            elapsed += time.perf_counter() - start
    return rounds * batch / elapsed


def _setup_profile(n: int, batch: int) -> dict:
    """Generation+stacking share of one numpy-path batch pass, both ways.

    ``setup`` is everything before the kernel proper can start: graph
    sampling plus the stacked CSR + twin-table build.  The per-trial
    column measures ``gnp_random_graph`` per seed plus the serial
    ``stack_graph_csrs``/``stacked_edge_twins`` pair; the batched
    column measures ``batch_gnp`` + ``GnpBatch.stacked()`` (one pooled
    build, cached for the subsequent engine pass).  Totals are honest
    end-to-end windows for each path, so the two ``setup_fraction``
    values are directly comparable.
    """
    from repro.engines.batchwalk import stack_graph_csrs, stacked_edge_twins
    from repro.graphs import batch_gnp

    p = min(1.0, C * math.log(n) / n)
    seeds = list(range(batch))
    spec = REGISTRY.resolve("dra", "fast-batch")
    profile: dict = {"point": f"n={n},batch={batch}"}
    with _numpy_kernels():
        spec.call_batch([_graph("dra", 64, seed=99)], seeds=[99])  # warm up
        batch_gnp(64, 0.2, [99]).stacked()  # absorb the one-time self-check
        start = time.perf_counter()
        graphs = [gnp_random_graph(n, p, seed=s) for s in seeds]
        gen_seconds = time.perf_counter() - start
        start = time.perf_counter()
        indptr, indices = stack_graph_csrs(graphs)
        stacked_edge_twins(indptr, indices, batch, n)
        stack_seconds = time.perf_counter() - start
        start = time.perf_counter()
        spec.call_batch(graphs, seeds=seeds)  # restacks internally
        run_seconds = time.perf_counter() - start
        setup = gen_seconds + stack_seconds
        total = gen_seconds + run_seconds
        profile["per_trial"] = {
            "setup_seconds": round(setup, 5),
            "total_seconds": round(total, 5),
            "setup_fraction": round(setup / total, 4),
        }
        start = time.perf_counter()
        gbatch = batch_gnp(n, p, seeds)
        gbatch.stacked()
        setup = time.perf_counter() - start
        start = time.perf_counter()
        spec.call_batch(gbatch, seeds=seeds)  # stacked() is cached
        run_seconds = time.perf_counter() - start
        total = setup + run_seconds
        profile["batched_gen"] = {
            "setup_seconds": round(setup, 5),
            "total_seconds": round(total, 5),
            "setup_fraction": round(setup / total, 4),
        }
    return profile


def _metrics_sweep_fn(point: dict, seed: int):
    """One harness trial for the metrics-overhead lane (dra on fast)."""
    n = point["n"]
    g = gnp_random_graph(n, min(1.0, C * math.log(n) / n), seed=seed)
    return repro.run(g, "dra", engine="fast", seed=seed)


def _metrics_overhead(trials_per_point: int) -> dict:
    """Collector cost: the same sweep with and without a MetricsCollector.

    Runs an identical serial harness sweep (two points, the same seed
    tree both ways) in alternating bare/metered repeats and compares
    the *medians* of each side's wall clocks — alternation plus the
    median keeps one load spike on the shared host from landing
    entirely on one side of the ratio.  ``overhead_fraction`` is the
    metered/bare ratio minus one, floored at 0 (the collector cannot
    speed a sweep up; a negative measurement is timing noise).  A
    per-event microcost (``record_trial`` on a canned trial) is
    recorded alongside as the noise-free lower bound.
    """
    import statistics

    from repro.harness import MetricsCollector, Trial, TrialRunner

    points = [{"n": 96}, {"n": 128}]
    repeats = 5
    bare_walls, metered_walls = [], []
    kpis: dict = {}
    TrialRunner(_metrics_sweep_fn, master_seed=7).run(points, trials=2)  # warm
    for _ in range(repeats):
        start = time.perf_counter()
        TrialRunner(_metrics_sweep_fn, master_seed=7).run(
            points, trials=trials_per_point)
        bare_walls.append(time.perf_counter() - start)
        collector = MetricsCollector()
        start = time.perf_counter()
        TrialRunner(_metrics_sweep_fn, master_seed=7,
                    metrics=collector).run(points, trials=trials_per_point)
        metered_walls.append(time.perf_counter() - start)
        payload = collector.payload()
        kpis = {
            "latency_p50_s": payload["timing"]["latency_p50_s"],
            "latency_p90_s": payload["timing"]["latency_p90_s"],
            "latency_p99_s": payload["timing"]["latency_p99_s"],
            "trials_per_sec": payload["timing"]["trials_per_sec"],
        }
    bare = statistics.median(bare_walls)
    metered = statistics.median(metered_walls)
    # Per-event microcost: the collector's hot path on a canned trial.
    probe = MetricsCollector()
    canned = Trial(point={"n": 128}, trial_index=0, seed=1, success=True,
                   metrics={"steps": 100.0}, elapsed_s=0.01)
    events = 10_000
    start = time.perf_counter()
    for _ in range(events):
        probe.record_trial(canned)
    per_event = (time.perf_counter() - start) / events
    return {
        "trials": len(points) * trials_per_point,
        "bare_seconds": round(bare, 5),
        "metered_seconds": round(metered, 5),
        "overhead_fraction": round(max(0.0, metered / bare - 1.0), 5),
        "record_event_seconds": round(per_event, 9),
        "kpis": kpis,
    }


def test_e15_engine_throughput(benchmark):
    series: dict[str, dict[str, dict[str, float | None]]] = {}
    rows = []
    for algorithm in ("dra", "dhc2"):
        series[algorithm] = {}
        for engine in ("fast", "fast-py", "congest"):
            series[algorithm][engine] = {}
            for n in SIZES:
                skipped = ((engine == "congest" and n > CONGEST_MAX)
                           or (algorithm == "dhc2" and n > DHC2_MAX))
                tps = None if skipped else _throughput(algorithm, engine, n)
                series[algorithm][engine][str(n)] = tps
                rows.append((algorithm, engine, n,
                             "skipped (cap)" if skipped else round(tps, 3)))
    show("E15: engine throughput (trials/sec)",
         ["algorithm", "engine", "n", "trials/sec"], rows)

    # Batched lane: DRA through one fast-batch kernel pass per group.
    # Minutes of sustained full-CPU sweep throttle this host measurably
    # between the engine series above and these rows, so each size's
    # speedup divides by a *paired* fast reference measured adjacent to
    # its batch rows — both sides of the ratio see the same CPU state.
    # The absolute engine series above is unchanged; the paired
    # denominators are recorded alongside the ratios.
    batch_series: dict[str, dict[str, float]] = {}
    batch_fast_ref: dict[str, float] = {}
    batch_rows = []
    for n in SIZES:
        batch_series[str(n)] = {}
        batch_fast_ref[str(n)] = serial = _throughput("dra", "fast", n)
        for batch in BATCH_SIZES:
            tps = _batch_throughput(n, batch)
            batch_series[str(n)][str(batch)] = tps
            batch_rows.append((n, batch, round(tps, 3),
                               round(tps / serial, 2)))
    show("E15: batched throughput (dra, fast-batch)",
         ["n", "batch", "trials/sec", "vs fast"], batch_rows)
    batch_speedups = {
        n: {b: round(tps / batch_fast_ref[n], 2)
            for b, tps in by_batch.items()}
        for n, by_batch in batch_series.items()
    }
    print(f"fast-batch vs fast speedups: {batch_speedups}")

    # Jitted lane: the same passes through the fused compiled kernels.
    # Without numba every point records null — the committed curve
    # never claims a compiled speedup the host could not measure.
    jit_series: dict[str, dict[str, float | None]] = {}
    jit_rows = []
    for n in SIZES:
        jit_series[str(n)] = {}
        for batch in BATCH_SIZES:
            tps = (_batch_throughput(n, batch, jit=True)
                   if _jit.ENABLED else None)
            jit_series[str(n)][str(batch)] = tps
            jit_rows.append((n, batch,
                             "skipped (no numba)" if tps is None
                             else round(tps, 3),
                             "-" if tps is None
                             else round(tps / batch_series[str(n)][str(batch)],
                                        2)))
    show("E15: jitted batched throughput (dra, fast-batch, REPRO_JIT)",
         ["n", "batch", "trials/sec", "vs numpy batch"], jit_rows)
    jit_speedups = {
        n: {b: (None if tps is None
                else round(tps / batch_series[n][b], 2))
            for b, tps in by_batch.items()}
        for n, by_batch in jit_series.items()
    }
    print(f"jit vs numpy fast-batch speedups: {jit_speedups}")

    # Thread-scaling lane: the headline jitted pass at 1/2/4 kernel
    # threads, each paired with a fast reference measured adjacent to
    # it (same CPU state on both sides of the ratio).  configure_threads
    # reports whether the host can actually run a lane; refusals record
    # explicit nulls.
    head_n, head_batch = max(SIZES), max(BATCH_SIZES)
    saved_threads = _jit.THREADS if _jit.THREADED else 0
    thread_scaling: dict[str, dict[str, float | None]] = {}
    thread_rows = []
    for t in (1, 2, 4):
        configured = _jit.ENABLED and _jit.configure_threads(
            0 if t == 1 else t)
        if configured:
            ref = _throughput("dra", "fast", head_n)
            tps = _batch_throughput(head_n, head_batch, jit=True)
            speedup = round(tps / ref, 2)
        else:
            ref = tps = speedup = None
        thread_scaling[str(t)] = {
            "batch_jit_trials_per_sec": tps,
            "fast_ref_trials_per_sec": ref,
            "speedup_vs_fast": speedup,
        }
        thread_rows.append((t,
                            "skipped (no threaded kernel)" if tps is None
                            else round(tps, 3),
                            "-" if ref is None else round(ref, 3),
                            "-" if speedup is None else speedup))
    if _jit.ENABLED:
        _jit.configure_threads(saved_threads)
    show(f"E15: thread scaling (dra, fast-batch, n={head_n}, "
         f"batch={head_batch})",
         ["threads", "trials/sec", "paired fast ref", "vs fast"],
         thread_rows)

    # Setup lane: how much of a numpy-path batch pass is generation +
    # stacking, per-trial vs pooled batched generation.  Profiled at
    # the mid-grid point (n=1024, batch=64 — the point the pooled-
    # generation claim was established at): batch_gnp's win is dispatch
    # amortisation of one global sort, and at the largest stacked point
    # (n=4096, batch=256, a ~70M-entry pooled lexsort) that sort goes
    # memory-bound on modest hosts and the profile inverts (observed
    # setup 214.7 s pooled vs 32.4 s per-trial).  The auto-batch edge
    # budget caps real sweeps well below that regime.
    setup_n = 1024 if 1024 in SIZES else SIZES[len(SIZES) // 2]
    setup_batch = min(64, head_batch)
    setup_profile = _setup_profile(setup_n, setup_batch)
    show(f"E15: setup share (dra, fast-batch numpy path, n={setup_n}, "
         f"batch={setup_batch})",
         ["generation", "setup s", "total s", "setup fraction"],
         [(mode,
           setup_profile[mode]["setup_seconds"],
           setup_profile[mode]["total_seconds"],
           setup_profile[mode]["setup_fraction"])
          for mode in ("per_trial", "batched_gen")])

    # Metrics lane: the observability layer's own cost.  A 200-trial
    # sweep in the full run (2 points x 100), reduced under smoke.
    metrics_lane = _metrics_overhead(100 if FULL_SWEEP else 15)
    show("E15: metrics collector overhead (dra, fast, serial harness)",
         ["trials", "bare s", "metered s", "overhead", "per event s"],
         [(metrics_lane["trials"], metrics_lane["bare_seconds"],
           metrics_lane["metered_seconds"],
           f"{metrics_lane['overhead_fraction']:.2%}",
           metrics_lane["record_event_seconds"])])

    speedups = {}
    for algorithm, by_engine in series.items():
        speedups[algorithm] = {}
        for n in SIZES:
            fast = by_engine["fast"][str(n)]
            slow = by_engine["fast-py"][str(n)]
            if fast is None or slow is None:
                continue
            speedups[algorithm][str(n)] = round(fast / slow, 2)
    print(f"fast vs fast-py speedups: {speedups}")
    if FULL_SWEEP:
        # Timing gates only on the full local sweep — smoke runs on
        # shared CI runners are completion checks, not perf gates.
        for algorithm, by_n in speedups.items():
            for n, ratio in by_n.items():
                # The kernel must never lose to the walker it replaced.
                assert ratio > 1.0, (algorithm, n, ratio)
        # The acceptance bar of the array-native refactor: the
        # rotation-walk engine at the headline sweep size.
        assert speedups["dra"]["1024"] >= 5.0, speedups
        # The batched kernel must clearly beat per-trial dispatch at
        # the largest size once the batch amortises fixed costs.  The
        # measured ceiling on this host is ~2.2x (see batch_note in
        # the payload), so the gate sits below it with variance room.
        best_batched = max(v for b, v in batch_speedups[str(max(SIZES))]
                           .items() if int(b) >= 32)
        assert best_batched >= 1.5, batch_speedups
        if _jit.ENABLED:
            # The fused kernel must not lose to the numpy passes it
            # replaces at the headline point (n=max, batch >= 32).
            best_jit = max(v for b, v in jit_speedups[str(max(SIZES))]
                           .items() if v is not None and int(b) >= 32)
            assert best_jit >= 1.0, jit_speedups
        # Batched generation must measurably cut the setup share of
        # the numpy batch path — the whole point of batch_gnp.
        assert (setup_profile["batched_gen"]["setup_fraction"]
                < setup_profile["per_trial"]["setup_fraction"]), setup_profile
        # The observability layer must be effectively free: under 2%
        # of sweep wall-clock with the collector attached.
        assert metrics_lane["overhead_fraction"] < 0.02, metrics_lane

    payload = {
        "experiment": "e15_engine_throughput",
        "sizes": SIZES,
        "c": C,
        "congest_max": CONGEST_MAX,
        "dhc2_max": DHC2_MAX,
        "batch_sizes": BATCH_SIZES,
        "trials_per_sec": series,
        "speedup_fast_vs_fast_py": speedups,
        "batch_trials_per_sec": batch_series,
        "batch_fast_ref_trials_per_sec": batch_fast_ref,
        "speedup_fast_batch_vs_fast": batch_speedups,
        "jit_enabled": _jit.ENABLED,
        "jit_threads": _jit.THREADS if _jit.THREADED else 0,
        "batch_jit_trials_per_sec": jit_series,
        "speedup_jit_vs_numpy_batch": jit_speedups,
        "thread_scaling": thread_scaling,
        "threads_note": (
            "thread_scaling columns re-run the headline jitted pass "
            "(largest size, largest batch) at 1/2/4 kernel threads via "
            "configure_threads; threads=1 is the serial njit kernel. "
            "null means the lane could not run on this host — no "
            "numba, or the thread count exceeds the pool numba "
            "launched with — never an extrapolated number. Each lane "
            "pairs with its own adjacent fast reference so sustained-"
            "load CPU throttling cancels out of the ratio. check_bench "
            "compares these columns thread-count-keyed, so fresh and "
            "baseline values are always like-threaded."),
        "metrics_lane": {
            f"trials_{metrics_lane['trials']}":
                {k: v for k, v in metrics_lane.items() if k != "trials"},
        },
        "metrics_note": (
            "metrics_lane times an identical serial harness sweep "
            "(dra/fast, 2 points, same seed tree) bare and with a "
            "MetricsCollector attached, alternating repeats, medians "
            "on both sides; overhead_fraction = metered/bare - 1 "
            "floored at 0. record_event_seconds is the per-trial hot-"
            "path microcost. kpis snapshots the metered run's "
            "aggregated latency tails — the percentile fields "
            "check_bench compares as cost-like markers. The section "
            "is keyed by the lane's trial count (like thread_scaling "
            "by thread count) so a reduced smoke lane never compares "
            "against the full baseline's distributions. The full-"
            "sweep gate asserts overhead_fraction < 0.02."),
        "setup_profile": setup_profile,
        "setup_note": (
            "setup_profile measures the generation+stacking share of "
            "one numpy-path fast-batch pass at the headline point. "
            "per_trial = gnp_random_graph per seed + serial "
            "stack_graph_csrs/stacked_edge_twins; batched_gen = "
            "batch_gnp + GnpBatch.stacked() (one pooled keyed-unique "
            "sample, one global lexsort, twins read off the sort "
            "permutation). The full-sweep gate asserts batched_gen's "
            "setup_fraction is strictly below per_trial's."),
        "jit_note": (
            "batch_jit_* columns time the fused numba kernels "
            "(REPRO_JIT=1); null means this host has no numba and the "
            "compiled path was not measured — the numpy columns above "
            "are the fallback every host gets. The CI jit lane runs "
            "the smoke grid compiled and feeds check_bench."),
        "batch_note": (
            "Measured on a single-core host where the serial fast "
            "engine is already fully vectorised per step; batching "
            "amortises Python/numpy dispatch across trials but adds "
            "no parallel hardware, so the realised gain tops out "
            "around 1.8-2.2x at n=4096/batch 256 across runs, with "
            "smaller sizes landing lower (~1.3-2.0; the issue's "
            "aspirational 3x assumed dispatch overhead dominated more "
            "than it does here). Speedups divide by the paired "
            "batch_fast_ref_trials_per_sec reference measured "
            "adjacent to the batch rows: minutes of sustained sweep "
            "throttle this host measurably, so same-CPU-state pairing "
            "is what keeps the ratio honest. Batch ~256 at n=4096 is "
            "the cache sweet spot; larger batches regress by "
            "overflowing LLC."),
    }
    if FULL_SWEEP:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    else:
        print(f"sizes overridden; skipped speedup gates and kept {OUT_PATH}")
    # A smoke run can still export its (reduced) payload for the CI's
    # advisory check_bench comparison against the committed baseline.
    fresh_out = os.environ.get("E15_OUT")
    if fresh_out:
        Path(fresh_out).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {fresh_out}")

    benchmark.extra_info["series"] = series
    benchmark.extra_info["speedups"] = speedups
    benchmark.pedantic(_throughput, args=("dra", "fast", min(SIZES)),
                       rounds=1, iterations=1)
