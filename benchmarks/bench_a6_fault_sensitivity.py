"""A6 — ablation: sensitivity of DRA to message loss.

Not a paper claim (the CONGEST model is fault-free) but an ablation of
this reproduction's safety contract: as the uniform message-drop rate
rises, success probability must fall monotonically-ish to zero while
*every* failure stays clean (no false successes — each success is
re-verified against the graph).  A benign fault plan must cost nothing:
identical rounds and cycle to the native run.
"""

from repro.congest import FaultPlan, NetworkModel
from repro.core import run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.verify import is_hamiltonian_cycle

from benchmarks.conftest import show

N = 48
C = 6.0
TRIALS = 5
DROP_RATES = [0.0, 0.005, 0.05, 0.5]


def _sweep():
    p = paper_probability(N, 0.5, C)
    rows = []
    for drop in DROP_RATES:
        wins = 0
        dropped = offered = 0
        for seed in range(TRIALS):
            graph = gnp_random_graph(N, p, seed=seed)
            model = NetworkModel(
                fault_plan=FaultPlan(drop_probability=drop, seed=seed))
            result = run_dra(graph, seed=seed, network=model)
            if result.success:
                assert is_hamiltonian_cycle(graph, result.cycle)
                wins += 1
            dropped += result.detail["faults"]["dropped"]
            offered += result.detail["faults"]["offered"]
        rows.append((f"{drop:.1%}", wins, TRIALS,
                     float(dropped / offered if offered else 0.0)))
    return rows


def test_a6_fault_sensitivity(benchmark):
    rows = _sweep()
    show(f"A6: DRA success under uniform message loss (n={N}, "
         f"{TRIALS} trials)", ["drop rate", "successes", "trials",
                               "measured drop"], rows)

    wins = [r[1] for r in rows]
    # Fault-free trials at this density succeed reliably.
    assert wins[0] >= TRIALS - 1
    # Loss can only hurt, and heavy loss is fatal.
    assert wins[0] >= wins[-1]
    assert wins[-1] == 0
    # The injector's measured drop rate tracks the configured one.
    for (label, _w, _t, measured), configured in zip(rows, DROP_RATES):
        assert abs(measured - configured) < 0.05, (label, measured)

    benchmark.extra_info["wins_by_drop"] = dict(zip(
        [r[0] for r in rows], wins))
    benchmark.pedantic(_sweep, rounds=1, iterations=1)
