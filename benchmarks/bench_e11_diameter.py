"""E11 — the diameter facts the paper's round analysis relies on:

* Chung–Lu [5]: D = Theta(ln n / ln ln n) at ``p = c ln n / n``;
* Bollobás [2] ("Fact 2"): D = 2 whp at ``p = Theta(log n / sqrt n)``;
* Klee–Larman [17] ("Fact 3"): D = ceil(1/eps) at
  ``p = c log n / n^(1-eps)``.
"""

import math

from repro.analysis import klee_larman_diameter
from repro.graphs import diameter, gnp_random_graph

from benchmarks.conftest import show


def test_e11_diameter_facts(benchmark):
    # Chung-Lu scale at the connectivity threshold.
    rows = []
    for n in (256, 512, 1024, 2048):
        g = gnp_random_graph(n, 3 * math.log(n) / n, seed=n)
        d = diameter(g)
        scale = math.log(n) / math.log(math.log(n))
        rows.append((n, d, scale, d / scale))
    show("E11a: diameter at p = 3 ln n / n  (Chung-Lu: Theta(ln n/ln ln n))",
         ["n", "diameter", "ln n/ln ln n", "ratio"], rows)
    ratios = [r[3] for r in rows]
    assert max(ratios) < 4.0 and min(ratios) > 0.3

    # Fact 2: diameter 2 in the sqrt regime.
    rows2 = []
    for n in (128, 256, 512):
        g = gnp_random_graph(n, 1.5 * math.log(n) / math.sqrt(n), seed=n + 1)
        rows2.append((n, diameter(g)))
    show("E11b: diameter at p = 1.5 log n / sqrt n  (Fact 2: D = 2)",
         ["n", "diameter"], rows2)
    assert all(r[1] == 2 for r in rows2)

    # Fact 3: D = ceil(1/eps).
    rows3 = []
    n = 1024
    for eps in (1 / 2, 1 / 3):
        p = min(1.0, 2.0 * math.log(n) / n ** (1 - eps))
        g = gnp_random_graph(n, p, seed=int(10 * eps))
        rows3.append((f"{eps:.2f}", klee_larman_diameter(eps), diameter(g)))
    show("E11c: diameter at p = c log n / n^(1-eps)  (Fact 3: ceil(1/eps))",
         ["eps", "predicted", "measured"], rows3)
    for _eps, pred, meas in rows3:
        assert abs(meas - pred) <= 1
    benchmark.extra_info["chung_lu"] = rows
    benchmark.pedantic(
        lambda: diameter(gnp_random_graph(256, 3 * math.log(256) / 256, seed=0)),
        rounds=1, iterations=1)
