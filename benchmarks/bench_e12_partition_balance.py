"""E12 — Lemmas 4 and 7: random-colour partition sizes concentrate in
``[1/2, 3/2] * n/K``.

This is the event "A" the whole Phase 1 analysis conditions on; we
measure how often it holds at practical sizes.
"""

import numpy as np

from repro.analysis import partition_size_bounds

from benchmarks.conftest import show


def _event_a_rate(n: int, k: int, trials: int = 50) -> float:
    lo, hi = partition_size_bounds(n, k)
    ok = 0
    for s in range(trials):
        rng = np.random.default_rng(9000 + s)
        sizes = np.bincount(rng.integers(k, size=n), minlength=k)
        ok += bool(np.all((sizes >= lo) & (sizes <= hi)))
    return ok / trials


def test_e12_partition_concentration(benchmark):
    rows = []
    for n, k in [(256, 16), (1024, 32), (4096, 64), (16384, 128)]:
        rate = _event_a_rate(n, k)
        lo, hi = partition_size_bounds(n, k)
        rows.append((n, k, n // k, f"[{lo:.0f},{hi:.0f}]", rate))
    show("E12: Pr[all partitions within [1/2,3/2] * n/K]  (Lemma 4/7 event A)",
         ["n", "K", "E[size]", "window", "rate"], rows)
    rates = [r[4] for r in rows]
    # Concentration strengthens with expected partition size.
    assert rates[-1] >= rates[0]
    assert rates[-1] >= 0.9
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_event_a_rate, args=(1024, 32, 10), rounds=1, iterations=1)
