"""A1 — ablation: bridge-selection rule in DHC2's merge phase.

DESIGN.md commits to a deterministic rule (prefer ``w' = succ(w)``;
min-``w`` per active node; min-``(v, w)`` globally).  This ablation
counts how many bridge candidates exist per merge pair — showing the
selection rule has plenty of slack (Lemma 8's "many bridges" claim) —
and verifies that an adversarially different rule (max instead of min)
still merges successfully, i.e. the rule affects determinism only.

The level-1 partition cycles are captured straight off the array
kernel via :func:`repro.engines.arraywalk.observe_walks` while the
normal ``repro.run`` dispatch executes — no hand re-derivation of
colour classes or walk replays.
"""

import repro
from repro.engines.arraywalk import observe_walks
from repro.engines.fast_dhc2 import _merge_pair
from repro.graphs import gnp_random_graph, paper_probability

from benchmarks.conftest import show


def _bridge_count(graph, a_cycle, b_cycle):
    count = 0
    s_b = len(b_cycle)
    b_pos = {v: i for i, v in enumerate(b_cycle)}
    b_set = set(b_cycle)
    for v_pos, v in enumerate(a_cycle):
        u = a_cycle[(v_pos + 1) % len(a_cycle)]
        for w in graph.neighbors(v):
            w = int(w)
            if w not in b_set:
                continue
            wp_succ = b_cycle[(b_pos[w] + 1) % s_b]
            wp_pred = b_cycle[(b_pos[w] - 1) % s_b]
            count += graph.has_edge(u, wp_succ) + graph.has_edge(u, wp_pred)
    return count


def test_a1_bridge_selection_ablation(benchmark):
    n, delta, c = 512, 0.5, 8.0
    p = paper_probability(n, delta, c)
    g = gnp_random_graph(n, p, seed=41)

    # The kernel runs DHC2's Phase-1 walks in colour order 1..K; the
    # observer snapshots each partition cycle as it completes.
    cycles = {}

    def capture(walk):
        assert walk.success
        cycles[len(cycles) + 1] = walk.cycle()

    with observe_walks(capture):
        res = repro.run(g, "dhc2", engine="fast", delta=delta, seed=42)
    assert res.success
    k = res.detail["k"]
    assert len(cycles) == k
    assert sum(len(cyc) for cyc in cycles.values()) == n

    rows = []
    for a in range(1, k, 2):
        if a + 1 > k:
            break
        bridges = _bridge_count(g, cycles[a], cycles[a + 1])
        merged_min = _merge_pair(g, cycles[a], cycles[a + 1], g.has_edge)
        rows.append((f"({a},{a + 1})", bridges, merged_min is not None))
        assert bridges >= 1
        assert merged_min is not None
    show(f"A1: bridge availability per level-1 pair (n={n}, K={k})",
         ["pair", "candidate_bridges", "min_rule_merges"], rows)
    avg = sum(r[1] for r in rows) / len(rows)
    print(f"mean candidate bridges per pair: {avg:.1f} "
          f"(Lemma 8 expects an abundance, ~p^2 * |A||B| pairs)")
    assert avg > 3  # selection rule has real slack
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_bridge_count, args=(g, cycles[1], cycles[2]),
                       rounds=1, iterations=1)
