"""E10 — Fig. 2's mechanism: how the rotation walk actually spends its
steps (extensions vs rotations vs closure) as n grows.

Extensions are exactly n-1; the interesting series is the rotation
count, which carries the coupon-collector tail that gives Theorem 2 its
``n ln n``: rotations / n should grow like ln n.
"""

import math

import repro
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

SIZES = [128, 256, 512, 1024]
C = 8.0


def _run(n, seed):
    p = min(1.0, C * math.log(n) / n)
    g = gnp_random_graph(n, p, seed=seed)
    return repro.run(g, "dra", engine="fast", seed=seed + 9)


def test_e10_rotation_dynamics(benchmark):
    rows = []
    for n in SIZES:
        res = _run(n, seed=8000 + n)
        assert res.success
        d = res.detail
        rows.append((n, d["extensions"], d["rotations"], res.steps,
                     d["rotations"] / n))
        assert d["extensions"] == n - 1
    show("E10: walk composition (Fig. 2 mechanism)",
         ["n", "extensions", "rotations", "steps", "rotations/n"], rows)
    # The rotation tail grows with n (coupon-collector) but stays O(ln n).
    ratios = [r[4] for r in rows]
    assert ratios[-1] <= 3 * math.log(SIZES[-1])
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(256, 1), rounds=1, iterations=1)
