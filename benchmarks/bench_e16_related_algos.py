"""E16 — related-work algorithms vs DRA: throughput and success probability.

The registry's first absorbed related-work entries — Turau's path
merging (arXiv:1805.06728) and the Alon–Krivelevich CRE solver
(arXiv:1903.03007) — measured against the paper's DRA on the *same*
G(n, p) grids, through the same harness layer every sweep uses:

* **success probability** over a density ladder ``p = c ln n / n`` at
  fixed ``n`` — the frontier where each algorithm's regime starts.
  The expected shape, asserted below: CRE (cycle extensions) works at
  densities where the rotation walk already fails, while this
  reproduction's Turau variant (endpoint-only merges, no rotation
  fallback — see ``repro.core.turau``) needs the densest end of the
  ladder.
* **throughput** (trials/sec, fast engines) across the sweep sizes,
  extending the perf trajectory of ``BENCH_engine_throughput.json``
  with the new entries.

Environment knobs (the CI perf-smoke step runs ``E16_SIZES=256``):

* ``E16_SIZES`` — comma-separated node counts (default 256,1024,4096);
* ``E16_TRIALS`` — trials per (algorithm, density) cell (default 24).

With ``E16_SIZES`` overridden (a smoke run) the shape assertions are
skipped and the committed JSON is not rewritten — short smoke windows
must not clobber the full-sweep record.
"""

import json
import math
import os
import time
from pathlib import Path

import repro
from repro.graphs import gnp_random_graph

from benchmarks.conftest import harness_sweep, show

FULL_SWEEP = "E16_SIZES" not in os.environ
SIZES = [int(s) for s in os.environ.get("E16_SIZES", "256,1024,4096").split(",")]
TRIALS = int(os.environ.get("E16_TRIALS", "24"))
ALGORITHMS = ("dra", "turau", "cre")
#: Density ladder factors for p = factor * ln n / n (capped at 1).
FACTORS = (1.5, 3.0, 8.0, 30.0, 120.0)
OUT_PATH = Path(__file__).resolve().parent / "BENCH_related_algos.json"

#: Filled by the success test, persisted by the throughput test (tests
#: run in file order; a partial selection just writes what it has).
_RECORDED: dict = {}


class _Trial:
    """One (algorithm, factor) success trial; picklable for --jobs."""

    def __init__(self, algorithm: str, factor: float):
        self.algorithm = algorithm
        self.factor = factor

    def __call__(self, point: dict, seed: int):
        n = point["n"]
        p = min(1.0, self.factor * math.log(n) / n)
        graph = gnp_random_graph(n, p, seed=seed)
        return repro.run(graph, self.algorithm, seed=seed)


def test_e16_success_probability(benchmark):
    n = min(SIZES)
    series: dict[str, dict[str, float]] = {}
    rows = []
    for algorithm in ALGORITHMS:
        series[algorithm] = {}
        for factor in FACTORS:
            trials = harness_sweep(
                _Trial(algorithm, factor), [{"n": n}],
                trials=TRIALS, master_seed=16)
            rate = sum(t.success for t in trials) / len(trials)
            series[algorithm][str(factor)] = rate
            p = min(1.0, factor * math.log(n) / n)
            rows.append((algorithm, factor, round(p, 4), rate))
    show(f"E16: success probability at n={n} over p = c ln n / n",
         ["algorithm", "c", "p", "success"], rows)

    if FULL_SWEEP:
        # CRE's cycle extension keeps it alive near the threshold where
        # the rotation walk is already dead.
        assert series["cre"]["3.0"] > series["dra"]["3.0"]
        # Every algorithm works at the dense end of the ladder (p = 1).
        for algorithm in ALGORITHMS:
            assert series[algorithm][str(FACTORS[-1])] >= 0.9, (
                algorithm, series[algorithm])
        # The simplified Turau variant is the density-hungriest of the
        # three — its documented limitation, kept visible here.
        assert series["turau"]["3.0"] <= series["cre"]["3.0"]

    _RECORDED["success"] = series
    benchmark.extra_info["success"] = series
    benchmark.pedantic(
        lambda: repro.run(gnp_random_graph(n, 1.0, seed=0), "turau", seed=0),
        rounds=1, iterations=1)


def _throughput(algorithm: str, n: int, factor: float) -> tuple[float, float]:
    trials = 3
    p = min(1.0, factor * math.log(n) / n)
    graphs = [gnp_random_graph(n, p, seed=s) for s in range(trials)]
    repro.run(gnp_random_graph(64, 1.0, seed=99), algorithm, seed=99)  # warm
    start = time.perf_counter()
    wins = sum(repro.run(g, algorithm, seed=seed).success
               for seed, g in enumerate(graphs))
    return trials / (time.perf_counter() - start), wins / trials


def test_e16_throughput():
    # One shared grid (the e15 density, p = 8 ln n / n) so the numbers
    # are comparable across algorithms; the success column says whether
    # a row times the algorithm's success or failure path (turau's
    # failure path costs the full phase budget — its honest ceiling at
    # densities below its regime).
    series: dict[str, dict[str, float]] = {}
    rows = []
    for algorithm in ALGORITHMS:
        series[algorithm] = {}
        for n in SIZES:
            tps, win_rate = _throughput(algorithm, n, 8.0)
            series[algorithm][str(n)] = tps
            rows.append((algorithm, n, round(tps, 3), win_rate))
    show("E16: fast-engine throughput on the shared p = 8 ln n / n grid",
         ["algorithm", "n", "trials/sec", "success"], rows)

    if FULL_SWEEP:
        payload = {
            "experiment": "e16_related_algos",
            "sizes": SIZES,
            "trials": TRIALS,
            "factors": list(FACTORS),
            "success_probability": _RECORDED.get("success"),
            "trials_per_sec": series,
        }
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    else:
        print(f"sizes overridden; kept {OUT_PATH}")
