"""E18 — synchronous algorithms on the asynchronous lossy substrate.

The paper's model is synchronous and fault-free; ``engine="async"``
asks how far its algorithms survive outside it.  This benchmark runs
all four congest front ends (DRA, DHC1, DHC2, Turau) on the
event-queue engine under uniform(0.5, 1.5) per-edge latency and
measures, per message-drop rate and under one mid-run churn crash:

* **success_rate** — verified Hamiltonian cycles only (the safety
  contract: reordering and loss may kill runs but never fake one);
* **termination_rate** — fraction of runs ending in quiescence or
  global halt rather than on the watchdog budget (``limited``);
* **stretch_vs_sync** — async virtual completion time over the same
  seed's synchronous round count: the price of the asynchronous
  schedule in round units;
* delivered / dropped / reordered message counts (deterministic given
  the seed tree, so they drift-gate behaviour changes).

A zero-drop unit-latency spot check re-asserts the parity pin from
``tests/test_async_engine.py`` inside the bench's own grid.

Environment knobs (the CI async-smoke step runs ``E18_DROPS=0,0.01
E18_CHURN=0``):

* ``E18_DROPS`` — comma-separated drop rates (default 0,0.01,0.05);
* ``E18_CHURN`` — ``0`` skips the churn-crash condition (default on);
* ``E18_OUT`` — also dump the payload to this path for
  ``benchmarks/check_bench.py``'s advisory comparison.

Trial counts never change with the knobs, so every leaf a smoke run
*does* produce is exactly comparable to the committed
``BENCH_async_model.json`` (unmatched paths are skipped).
"""

import json
import os
import statistics
from pathlib import Path

import repro
from repro.congest import FaultPlan, LatencySpec, NetworkModel
from repro.graphs import gnp_random_graph, paper_probability
from repro.verify import is_hamiltonian_cycle

from benchmarks.conftest import show

FULL_SWEEP = "E18_DROPS" not in os.environ and "E18_CHURN" not in os.environ
N = 40
C = 6.0
TRIALS = 6
DROPS = [float(d) for d in os.environ.get("E18_DROPS", "0,0.01,0.05").split(",")]
WITH_CHURN = os.environ.get("E18_CHURN", "1") != "0"
CHURN_AT = 10.0
LATENCY = LatencySpec(kind="uniform", low=0.5, high=1.5)
ALGOS = [("dra", {}), ("dhc1", {}), ("dhc2", {"delta": 0.5}), ("turau", {})]
OUT_PATH = Path(__file__).resolve().parent / "BENCH_async_model.json"


def _graph(seed: int):
    return gnp_random_graph(N, paper_probability(N, 0.5, C), seed=seed)


def _conditions():
    out = [(f"drop={drop:g}",
            NetworkModel(mode="async", latency=LATENCY,
                         fault_plan=(FaultPlan(drop_probability=drop, seed=1)
                                     if drop else None)))
           for drop in DROPS]
    if WITH_CHURN:
        out.append(("churn=crash@10",
                    NetworkModel(mode="async", latency=LATENCY,
                                 churn=[("crash", 1, CHURN_AT)])))
    return out


def _parity_spot_check():
    """Zero-drop unit latency: async == sync, seed for seed."""
    graph = _graph(0)
    for algorithm, kwargs in ALGOS:
        sync = repro.run(graph, algorithm, engine="congest", seed=0, **kwargs)
        against = repro.run(graph, algorithm, engine="async", seed=0,
                            network=NetworkModel(mode="async"), **kwargs)
        for field in ("success", "cycle", "rounds", "messages", "bits"):
            assert getattr(against, field) == getattr(sync, field), (
                f"{algorithm}: async/sync parity broke on {field}")


def _sweep():
    conditions = _conditions()
    series: dict[str, dict] = {}
    rows = []
    for algorithm, kwargs in ALGOS:
        sync_rounds = {}
        per_condition: dict[str, dict] = {}
        for label, model in conditions:
            wins = terminated = delivered = dropped = reordered = errors = 0
            stretches = []
            for trial in range(TRIALS):
                graph = _graph(trial)
                if trial not in sync_rounds:
                    sync = repro.run(graph, algorithm, engine="congest",
                                     seed=trial, **kwargs)
                    sync_rounds[trial] = max(1, sync.rounds)
                result = repro.run(graph, algorithm, engine="async",
                                   seed=trial, network=model, **kwargs)
                if result.success:
                    assert is_hamiltonian_cycle(graph, result.cycle)
                    wins += 1
                stats = result.detail["async"]
                terminated += 1 - stats["limited"]
                delivered += stats["delivered"]
                dropped += stats["dropped"]
                reordered += stats["reordered"]
                errors += stats["protocol_errors"]
                stretches.append(
                    round(stats["virtual_time"] / sync_rounds[trial], 4))
            per_condition[label] = {
                "success_rate": round(wins / TRIALS, 4),
                "termination_rate": round(terminated / TRIALS, 4),
                "stretch_vs_sync": stretches,
                "delivered": delivered,
                "dropped": dropped,
                "reordered": reordered,
                "protocol_errors": errors,
            }
            rows.append((algorithm, label, wins, TRIALS,
                         round(terminated / TRIALS, 2),
                         float(statistics.median(stretches))))
        series[algorithm] = per_condition
    return series, rows


def test_e18_async_model(benchmark):
    _parity_spot_check()
    series, rows = _sweep()
    show(f"E18: async substrate, uniform(0.5,1.5) latency "
         f"(n={N}, {TRIALS} trials)",
         ["algorithm", "condition", "wins", "trials", "term_rate",
          "stretch_med"], rows)

    for algorithm, per_condition in series.items():
        for label, stats in per_condition.items():
            # Loss/churn end in quiescence, never a simulator blow-up;
            # the watchdog only backstops genuinely unbounded runs.
            assert stats["termination_rate"] == 1.0, (algorithm, label)
            assert stats["delivered"] > 0, (algorithm, label)
        if WITH_CHURN:
            # A Hamiltonian cycle needs every node: the crash condition
            # can never be won.
            assert per_condition["churn=crash@10"]["success_rate"] == 0.0, \
                algorithm
        if 0.0 in DROPS and 0.05 in DROPS:
            # Heavy loss can only hurt.
            assert (per_condition["drop=0"]["success_rate"]
                    >= per_condition["drop=0.05"]["success_rate"]), algorithm

    payload = {
        "experiment": "e18_async_model",
        "n": N,
        "c": C,
        "trials": TRIALS,
        "latency": LATENCY.to_json(),
        "drops": DROPS,
        "churn": WITH_CHURN,
        "seed": 0,
        "series": series,
    }
    if FULL_SWEEP:
        OUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {OUT_PATH}")
    else:
        print(f"conditions overridden; kept {OUT_PATH}")
    if os.environ.get("E18_OUT"):
        Path(os.environ["E18_OUT"]).write_text(
            json.dumps(payload, indent=2) + "\n")

    benchmark.extra_info["series"] = series
    benchmark.pedantic(
        lambda: repro.run(_graph(0), "dra", engine="async", seed=0,
                          network=NetworkModel(mode="async", latency=LATENCY)),
        rounds=1, iterations=1)
