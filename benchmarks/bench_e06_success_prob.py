"""E6 — whp guarantees: success probability vs the density constant c
and vs n.

The paper's theorems hold for large constants (c >= 86 in Theorem 2!);
this experiment maps where success actually turns on, and that success
rates improve with n at fixed super-threshold c — the observable
content of "with high probability".
"""

import math

import repro
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

TRIALS = 20


def _rate(n: int, c: float, trials: int = TRIALS) -> float:
    wins = 0
    for s in range(trials):
        p = min(1.0, c * math.log(n) / n)
        g = gnp_random_graph(n, p, seed=5000 + 97 * s + n)
        wins += repro.run(g, "dra", engine="fast", seed=6000 + s).success
    return wins / trials


def test_e06_success_probability(benchmark):
    rows_c = [(c, _rate(256, c)) for c in (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)]
    show("E6a: DRA success rate vs density constant c (n=256, 20 trials)",
         ["c", "success_rate"], rows_c)
    rates = dict(rows_c)
    assert rates[1.0] < 0.9          # at the bare threshold, failures happen
    assert rates[8.0] >= 0.95        # comfortably dense: near-certain
    assert rates[8.0] >= rates[2.0]  # monotone trend

    rows_n = [(n, _rate(n, 6.0, trials=12)) for n in (64, 128, 256, 512)]
    show("E6b: DRA success rate vs n (c=6)", ["n", "success_rate"], rows_n)
    assert rows_n[-1][1] >= 0.9      # whp: large n is reliable
    benchmark.extra_info["vs_c"] = rows_c
    benchmark.extra_info["vs_n"] = rows_n
    benchmark.pedantic(_rate, args=(128, 6.0, 5), rounds=1, iterations=1)
