"""E6 — whp guarantees: success probability vs the density constant c
and vs n.

The paper's theorems hold for large constants (c >= 86 in Theorem 2!);
this experiment maps where success actually turns on, and that success
rates improve with n at fixed super-threshold c — the observable
content of "with high probability".

The Monte Carlo loop runs through the harness orchestration layer
(``benchmarks.conftest.harness_sweep``): seeds derive from the
deterministic (master seed, point #, trial #) tree, and each trial
samples its graph and runs DRA from that one seed.
"""

import math

import repro
from repro.graphs import gnp_random_graph
from repro.harness import group_by, success_rate

from benchmarks.conftest import harness_sweep, show

TRIALS = 20


def dra_trial(point, seed):
    """One seeded trial (module-level: usable by pool workers too)."""
    p = min(1.0, point["c"] * math.log(point["n"]) / point["n"])
    g = gnp_random_graph(point["n"], p, seed=seed)
    return repro.run(g, "dra", engine="fast", seed=seed)


def _rates(points, trials, key):
    trials_out = harness_sweep(dra_trial, points, trials=trials,
                               master_seed=560)
    return [(value, success_rate(bucket))
            for value, bucket in group_by(trials_out, key).items()]


def test_e06_success_probability(benchmark):
    rows_c = _rates([{"n": 256, "c": c}
                     for c in (1.0, 2.0, 3.0, 4.0, 6.0, 8.0)], TRIALS, "c")
    show("E6a: DRA success rate vs density constant c (n=256, 20 trials)",
         ["c", "success_rate"], rows_c)
    rates = dict(rows_c)
    assert rates[1.0] < 0.9          # at the bare threshold, failures happen
    assert rates[8.0] >= 0.95        # comfortably dense: near-certain
    assert rates[8.0] >= rates[2.0]  # monotone trend

    rows_n = _rates([{"n": n, "c": 6.0}
                     for n in (64, 128, 256, 512)], 12, "n")
    show("E6b: DRA success rate vs n (c=6)", ["n", "success_rate"], rows_n)
    assert rows_n[-1][1] >= 0.9      # whp: large n is reliable
    benchmark.extra_info["vs_c"] = rows_c
    benchmark.extra_info["vs_n"] = rows_n
    benchmark.pedantic(
        harness_sweep, args=(dra_trial, [{"n": 128, "c": 6.0}]),
        kwargs={"trials": 5, "master_seed": 561}, rounds=1, iterations=1)
