"""A3 — ablation: DHC1 vs DHC2 in the regime where both apply
(delta = 1/2, ``p = c ln n / sqrt(n)``).

DHC1 stitches once through a hypernode walk; DHC2 merges in log K
levels.  Both are O~(sqrt n); the comparison shows the constants and
that both produce verified cycles on the same inputs.
"""

import math

from repro.core import run_dhc1, run_dhc2
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

CASES = [(196, 5), (324, 8)]
C = 2.0
MAX_TRIES = 4


def _run(algorithm, n, k):
    p = min(1.0, C * math.log(n) / math.sqrt(n))
    for attempt in range(MAX_TRIES):
        g = gnp_random_graph(n, p, seed=4700 + n + attempt)
        res = algorithm(g, k=k, seed=4800 + attempt)
        if res.success:
            return res
    return res


def test_a3_dhc1_vs_dhc2(benchmark):
    rows = []
    for n, k in CASES:
        r1 = _run(run_dhc1, n, k)
        r2 = _run(run_dhc2, n, k)
        assert r1.success, f"dhc1 failed at n={n}"
        assert r2.success, f"dhc2 failed at n={n}"
        rows.append((n, k, r1.rounds, r2.rounds, r1.messages, r2.messages))
    show("A3: DHC1 vs DHC2 at delta=1/2 (same graphs, same K)",
         ["n", "K", "dhc1_rounds", "dhc2_rounds", "dhc1_msgs", "dhc2_msgs"], rows)
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(_run, args=(run_dhc2, 196, 5), rounds=1, iterations=1)
