"""E13 — Section IV: conversion to the k-machine model [16].

The paper claims its fully-distributed algorithms convert efficiently
to the k-machine model.  The Conversion Theorem of [16] predicts
``O~(M / k^2 + T * Delta / k)`` rounds; at fixed input both terms fall
with k, so the measured k-machine round count must decrease
monotonically in k while the underlying CONGEST execution (and its
output cycle) stays *identical*.  We also check the random vertex
partition spreads traffic: the busiest link carries an ever smaller
share as k grows.
"""

from repro.graphs import gnp_random_graph, paper_probability
from repro.kmachine import conversion_round_bound, run_converted_hc

from benchmarks.conftest import show

N = 96
DELTA = 0.5
C = 6.0
SEED = 3
KS = [2, 4, 8, 16]


def _run_all():
    p = paper_probability(N, DELTA, C)
    graph = gnp_random_graph(N, p, seed=SEED)
    max_degree = max(graph.degree(v) for v in range(N))
    out = []
    for k in KS:
        result, km = run_converted_hc(
            graph, algorithm="dhc2", k_machines=k, seed=SEED, delta=DELTA, k=4)
        bound = conversion_round_bound(
            result.messages, result.rounds, max_degree, k=k)
        out.append((k, result, km, bound))
    return out


def test_e13_kmachine_conversion(benchmark):
    data = _run_all()
    rows = []
    for k, result, km, bound in data:
        assert result.success, f"converted DHC2 failed at k={k}"
        rows.append((k, km.congest_rounds, km.kmachine_rounds,
                     km.cross_words, km.max_round_link_words,
                     float(km.link_imbalance()), float(bound)))
    show("E13: DHC2 under k-machine conversion (Conversion Theorem of [16])",
         ["k", "congest", "kmachine", "cross_words", "peak_link",
          "imbalance", "bound"], rows)

    congest_rounds = {r[1] for r in rows}
    assert len(congest_rounds) == 1, "conversion must not perturb the protocol"
    kmachine_rounds = [r[2] for r in rows]
    assert kmachine_rounds == sorted(kmachine_rounds, reverse=True), (
        "k-machine rounds must fall as machines are added")
    peak_links = [r[4] for r in rows]
    assert peak_links == sorted(peak_links, reverse=True), (
        "RVP must spread per-link load as k grows")
    # The theorem's ratio shape: measured rounds track the bound within a
    # constant factor across the k sweep (one-round-minimum floors the
    # small-k end, so compare at the extremes).
    measured_ratio = kmachine_rounds[0] / kmachine_rounds[-1]
    bound_ratio = rows[0][6] / rows[-1][6]
    assert measured_ratio > 1.5, "no speedup from machines at all"
    assert measured_ratio < 4 * bound_ratio

    benchmark.extra_info["series"] = [
        {"k": r[0], "kmachine_rounds": r[2]} for r in rows]
    benchmark.pedantic(_run_all, rounds=1, iterations=1)
