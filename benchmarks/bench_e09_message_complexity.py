"""E9 — CONGEST efficiency: rounds, messages, and bits across all four
algorithms on one graph, including the trivial O(m) baseline the paper
uses as the yardstick (Section I-A).
"""

import math

from repro.congest.message import word_bits
from repro.core import run_dhc1, run_dhc2, run_dra, run_trivial, run_upcast
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

N = 120


def _graph():
    p = min(1.0, 2.2 * math.log(N) / math.sqrt(N))
    return gnp_random_graph(N, p, seed=17)


def test_e09_message_complexity(benchmark):
    g = _graph()
    runs = {
        "dra": run_dra(g, seed=23),
        "dhc1": run_dhc1(g, k=4, seed=23),
        "dhc2": run_dhc2(g, k=4, seed=23),
        "upcast": run_upcast(g, seed=23),
        "trivial": run_trivial(g, seed=23),
    }
    rows = []
    for name, res in runs.items():
        assert res.success, f"{name} failed: {res.detail}"
        avg_bits = res.bits / max(1, res.messages)
        rows.append((name, res.rounds, res.messages, res.bits, f"{avg_bits:.1f}"))
    show(f"E9: communication totals, n={N}, m={g.m}",
         ["algorithm", "rounds", "messages", "bits", "bits/msg"], rows)
    # Every algorithm's messages are O(log n) bits.
    cap = 8 + 12 * word_bits(N)
    assert all(float(r[4]) <= cap for r in rows)
    # The trivial baseline pays the most rounds (its O(m) collection).
    by_name = {r[0]: r for r in rows}
    assert by_name["trivial"][1] >= by_name["upcast"][1]
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(lambda: run_dra(_graph(), seed=5), rounds=1, iterations=1)
