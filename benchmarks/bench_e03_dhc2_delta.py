"""E3 — Theorem 10 (+ Fig. 3): DHC2 runs in O~(n**delta) rounds.

The headline scaling experiment.  For each delta the fast engine (cycle
decisions identical to the CONGEST protocol; rounds from its event
schedule) sweeps n at ``p = c ln n / n**delta``; the fitted exponent of
rounds vs n should track delta — larger delta (sparser graphs) means
more rounds, and the ordering across deltas at fixed n must match.
"""

import repro
from repro.graphs import gnp_random_graph, paper_probability

from benchmarks.conftest import fitted_exponent, show

# Grid note (reproduction finding, recorded in EXPERIMENTS.md): small
# delta means partitions of size n**delta, and below ~20 nodes a
# partition's own Hamiltonian-cycle walk fails too often at any density
# (the paper's c >= 86 exists to suppress exactly this).  At laptop n
# the honestly-reachable regime is delta >= ~0.5.
GRID = {
    0.50: [256, 1024, 2916],
    0.65: [256, 1024, 2401],
    0.80: [243, 729, 2187],
}
C = 8.0
MAX_TRIES = 8


def _run(n: int, delta: float):
    p = paper_probability(n, delta, C)
    for attempt in range(MAX_TRIES):
        g = gnp_random_graph(n, p, seed=2000 + n + attempt)
        res = repro.run(g, "dhc2", engine="fast", delta=delta, seed=n + attempt)
        if res.success:
            return res
    return res


def test_e03_dhc2_delta_scaling(benchmark):
    rows = []
    slopes = {}
    by_delta_rounds = {}
    for delta, sizes in GRID.items():
        ns, rounds = [], []
        for n in sizes:
            res = _run(n, delta)
            assert res.success, f"DHC2 failed at n={n}, delta={delta:.2f}"
            rows.append((f"{delta:.2f}", n, res.detail["k"], res.rounds))
            ns.append(float(n))
            rounds.append(float(res.rounds))
        slopes[delta] = fitted_exponent(ns, rounds)
        by_delta_rounds[delta] = rounds[-1]
    show("E3: DHC2 rounds at p = c ln n / n^delta  (Theorem 10: O~(n^delta))",
         ["delta", "n", "K", "rounds"], rows)
    for delta, slope in sorted(slopes.items()):
        print(f"delta={delta:.2f}: fitted exponent {slope:.3f}")
    # Shape checks: exponents ordered with delta; all sublinear in n.
    assert slopes[0.50] < slopes[0.80]
    assert all(s < 1.15 for s in slopes.values())
    benchmark.extra_info["slopes"] = {f"{d:.2f}": s for d, s in slopes.items()}
    benchmark.pedantic(_run, args=(256, 0.5), rounds=1, iterations=1)
