"""E8 — the fully-distributed claim (Section II vs Section III).

Per-node peak memory (words) under the audit: the fully-distributed
algorithms (DRA, DHC2) keep every node near the degree scale and
*balanced*; the centralized Upcast and trivial algorithms have one node
(the BFS root) holding Omega(n)-to-Omega(m) words — exactly the
contrast the paper draws.
"""

import math

from repro.core import run_dhc2, run_dra, run_trivial, run_upcast
from repro.graphs import gnp_random_graph

from benchmarks.conftest import show

N = 128


def _graph(seed=1):
    p = min(1.0, 2.2 * math.log(N) / math.sqrt(N))
    return gnp_random_graph(N, p, seed=seed)


def _profile(res):
    words = sorted(res.detail["state_words"])
    mid = words[len(words) // 2]
    return words[-1], mid, words[-1] / max(1, mid)


def test_e08_memory_balance(benchmark):
    g = _graph()
    runs = {
        "dra": run_dra(g, seed=2, audit_memory=True),
        "dhc2": run_dhc2(g, k=4, seed=2, audit_memory=True),
        "upcast": run_upcast(g, seed=2, audit_memory=True),
        "trivial": run_trivial(g, seed=2, audit_memory=True),
    }
    rows = []
    stats = {}
    for name, res in runs.items():
        assert res.success, f"{name} failed"
        mx, med, ratio = _profile(res)
        rows.append((name, mx, med, f"{ratio:.1f}x"))
        stats[name] = (mx, med, ratio)
    show(f"E8: peak per-node memory (words), n={N}, m={g.m}",
         ["algorithm", "max_node", "median_node", "max/median"], rows)
    # The centralized algorithms concentrate state at the root.
    assert stats["upcast"][2] > 4 * stats["dhc2"][2]
    assert stats["trivial"][0] > stats["dhc2"][0]
    # The trivial root holds the whole topology: Omega(m) words.
    assert stats["trivial"][0] > g.m
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(lambda: run_dra(_graph(), seed=3, audit_memory=True),
                       rounds=1, iterations=1)
