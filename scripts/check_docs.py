#!/usr/bin/env python
"""Validate intra-repo markdown links.

Usage::

    python scripts/check_docs.py [ROOT]

Walks every tracked ``*.md`` file under ROOT (default: the repo root,
one directory above this script), extracts inline markdown links
``[text](target)``, and checks that every *relative* target resolves
to an existing file or directory, including a ``#fragment``'s heading
when the target is a markdown file.  External links (``http(s)://``,
``mailto:``) are skipped — this is a repo-consistency check, not a
link crawler, and CI must not flake on network weather.

Exit status: 0 when every relative link resolves, 1 otherwise (each
broken link reported as ``file:line: target``).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: ``[text](target)`` inline links; images share the syntax and are
#: checked too (a missing figure is just as broken).
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_SCHEMES = ("http://", "https://", "mailto:")
#: Directories that hold no docs of ours.
SKIP_PARTS = {".git", ".venv", "node_modules", "__pycache__",
              ".pytest_cache", "build", "dist"}


def heading_anchors(markdown: str) -> set[str]:
    """GitHub-style anchors for every heading in the document."""
    anchors = set()
    for line in markdown.splitlines():
        match = re.match(r"#{1,6}\s+(.*)", line)
        if match:
            text = re.sub(r"[`*_]", "", match.group(1)).strip().lower()
            anchors.add(re.sub(r"[^\w\- ]", "", text).replace(" ", "-"))
    return anchors


def iter_markdown_files(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not SKIP_PARTS.intersection(path.relative_to(root).parts):
            yield path


def check_file(path: Path, root: Path) -> list[str]:
    problems = []
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_SCHEMES):
                continue
            target, _, fragment = target.partition("#")
            if not target:      # same-document fragment
                resolved = path
            else:
                resolved = (path.parent / target).resolve()
                try:
                    resolved.relative_to(root)
                except ValueError:
                    problems.append(f"{path.relative_to(root)}:{lineno}: "
                                    f"{target} escapes the repo")
                    continue
                if not resolved.exists():
                    problems.append(f"{path.relative_to(root)}:{lineno}: "
                                    f"{target} does not exist")
                    continue
            if fragment and resolved.suffix == ".md" and resolved.is_file():
                if fragment.lower() not in heading_anchors(
                        resolved.read_text(encoding="utf-8")):
                    problems.append(f"{path.relative_to(root)}:{lineno}: "
                                    f"{target}#{fragment}: no such heading")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else \
        Path(__file__).resolve().parent.parent
    problems = []
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        problems.extend(check_file(path, root))
    for problem in problems:
        print(f"check_docs: {problem}", file=sys.stderr)
    print(f"check_docs: {checked} markdown files, "
          f"{len(problems)} broken links")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
