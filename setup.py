"""Legacy setup shim.

The canonical build configuration lives in ``pyproject.toml``.  This file
exists so that ``pip install -e . --no-build-isolation --no-use-pep517``
works in offline environments that lack the ``wheel`` package (the
PEP 660 editable path requires it; the legacy develop path does not).
"""

from setuptools import setup

setup()
