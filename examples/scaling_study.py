#!/usr/bin/env python
"""Mini scaling study: reproduce the shape of Theorem 10 interactively.

Sweeps n at two densities on the fast engine (decision-identical to
the CONGEST simulator; see DESIGN.md) and fits the round-complexity
exponent, printing the comparison against the paper's O~(n^delta).

The sweep runs through the harness orchestration layer — the same
grid/runner/seed-tree machinery as ``repro sweep`` — with the
work-stealing scheduler, so the small-n points don't queue behind the
n=2048 column, and the numbers reproduce bit for bit serial or
parallel.

Run:  python examples/scaling_study.py
"""

import repro
from repro.analysis import fit_power_law
from repro.graphs import gnp_random_graph, paper_probability
from repro.harness import ParallelTrialRunner, group_by

ATTEMPTS = 4  # graph re-samples per n (sparse corners can miss)


class Dhc2Trial:
    """One (n, attempt) trial at a fixed delta; picklable for workers."""

    def __init__(self, delta: float, c: float):
        self.delta = delta
        self.c = c

    def __call__(self, point: dict, seed: int):
        n = point["n"]
        p = paper_probability(n, self.delta, self.c)
        g = gnp_random_graph(n, p, seed=seed)
        return repro.run(g, "dhc2", engine="fast", delta=self.delta,
                         seed=seed + 1)


def sweep(delta: float, sizes: list[int], c: float = 8.0) -> None:
    print(f"\ndelta = {delta:.2f}  (p = {c} ln n / n^{delta:.2f})")
    runner = ParallelTrialRunner(Dhc2Trial(delta, c), master_seed=1729,
                                 schedule="work-stealing")
    trials = runner.run([{"n": n} for n in sizes], trials=ATTEMPTS)

    ns, rounds = [], []
    for n, bucket in group_by(trials, "n").items():
        # First successful attempt per n, like an interactive retry loop.
        hit = next((t for t in bucket if t.success), None)
        shown = hit if hit is not None else bucket[-1]
        print(f"  n={n:>5}  rounds={int(shown.metrics['rounds']):>7}  "
              f"{'ok' if shown.success else 'FAILED'}  "
              f"({sum(t.success for t in bucket)}/{len(bucket)} attempts ok)")
        if hit is not None:
            ns.append(float(n))
            rounds.append(float(hit.metrics["rounds"]))
    if len(ns) >= 2:
        _a, b = fit_power_law(ns, rounds)
        print(f"  fitted exponent: {b:.3f}   (paper: {delta:.2f} x polylog factors)")


def main() -> None:
    print("DHC2 round-complexity scaling (Theorem 10: O~(n^delta))")
    sweep(0.5, [256, 576, 1024, 2048])
    sweep(2 / 3, [216, 512, 1000])


if __name__ == "__main__":
    main()
