#!/usr/bin/env python
"""Mini scaling study: reproduce the shape of Theorem 10 interactively.

Sweeps n at two densities on the fast engine (decision-identical to the
CONGEST simulator; see DESIGN.md) and fits the round-complexity
exponent, printing the comparison against the paper's O~(n^delta).

Run:  python examples/scaling_study.py
"""

import repro
from repro.analysis import fit_power_law
from repro.graphs import gnp_random_graph, paper_probability


def sweep(delta: float, sizes: list[int], c: float = 8.0) -> None:
    ns, rounds = [], []
    print(f"\ndelta = {delta:.2f}  (p = {c} ln n / n^{delta:.2f})")
    for n in sizes:
        p = paper_probability(n, delta, c)
        for attempt in range(4):
            g = gnp_random_graph(n, p, seed=n + attempt)
            res = repro.run(g, "dhc2", engine="fast", delta=delta,
                            seed=n + attempt + 1)
            if res.success:
                break
        print(f"  n={n:>5}  K={res.detail['k']:>3}  rounds={res.rounds:>7}  "
              f"{'ok' if res.success else 'FAILED'}")
        if res.success:
            ns.append(float(n))
            rounds.append(float(res.rounds))
    if len(ns) >= 2:
        _a, b = fit_power_law(ns, rounds)
        print(f"  fitted exponent: {b:.3f}   (paper: {delta:.2f} x polylog factors)")


def main() -> None:
    print("DHC2 round-complexity scaling (Theorem 10: O~(n^delta))")
    sweep(0.5, [256, 576, 1024, 2048])
    sweep(2 / 3, [216, 512, 1000])


if __name__ == "__main__":
    main()
