#!/usr/bin/env python
"""Run the paper's algorithms in the k-machine (Big Data) model.

Section IV claims the fully-distributed algorithms "can be used to
obtain efficient algorithms in other distributed message-passing models
such as the k-machine model [16]".  This example makes the claim
concrete: the same DHC2 execution (bit-for-bit — conversion never
perturbs the protocol) is re-costed under k-machine accounting for a
sweep of machine counts, showing

* the cross-link traffic growing with k (a random edge crosses machines
  with probability 1 - 1/k), while
* the *per-link* congestion — and with it the k-machine round count —
  shrinking, because the random vertex partition spreads the traffic
  over k(k-1)/2 links.

Run:  python examples/kmachine_conversion.py
"""

from repro.graphs import gnp_random_graph, paper_probability
from repro.kmachine import conversion_round_bound, run_converted_hc
from repro.reporting import render_table


def main() -> None:
    n, delta, c = 96, 0.5, 6.0
    p = paper_probability(n, delta=delta, c=c)
    graph = gnp_random_graph(n, p, seed=3)
    max_degree = max(graph.degree(v) for v in range(n))
    print(f"input: G(n={n}, p={p:.4f}) with m={graph.m} edges, "
          f"max degree {max_degree}")
    print()

    rows = []
    for k in (2, 4, 8, 16):
        # k=4 partitions keeps the per-partition walks comfortably above
        # the small-subgraph regime at this n (the paper's guarantees
        # are asymptotic; tiny colour classes fail with constant prob).
        result, km = run_converted_hc(
            graph, algorithm="dhc2", k_machines=k, seed=3, delta=delta, k=4)
        bound = conversion_round_bound(
            result.messages, result.rounds, max_degree, k=k)
        rows.append([
            k,
            "yes" if result.success else "no",
            km.congest_rounds,
            km.kmachine_rounds,
            km.cross_words,
            km.max_round_link_words,
            f"{km.link_imbalance():.2f}",
            round(bound, 1),
        ])

    print(render_table(
        ["k", "HC found", "CONGEST rounds", "k-machine rounds",
         "cross words", "peak link load", "link imbalance",
         "theorem bound"],
        rows,
        title="DHC2 under k-machine conversion (same execution, "
              "different cost model)"))
    print()
    print("Reading: CONGEST rounds are identical per k (the protocol never")
    print("changes); k-machine rounds fall as k grows because each round's")
    print("traffic spreads over k(k-1)/2 links — the Conversion Theorem of")
    print("Klauck et al. [16] in action.")


if __name__ == "__main__":
    main()
