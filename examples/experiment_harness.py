#!/usr/bin/env python
"""Driving your own experiments with the harness subpackage.

The benchmark suite validates the paper; the harness is how you ask
*your own* questions.  This example reruns a miniature version of
experiment E6 — how does success probability respond to the density
constant c? — through the public API: a parameter grid, a seeded trial
runner with a resumable JSONL store, and aggregation into a table.
Algorithm dispatch goes through :func:`repro.run`, so switching
algorithm or engine is a string change.

It then reruns the same sweep on a :class:`ParallelTrialRunner`: the
seed derivation is shared, so the parallel run reproduces the serial
trials bit for bit (same seeds, same cycles, same metrics) while using
every core.

Run:  python examples/experiment_harness.py
"""

import tempfile
from pathlib import Path

import repro
from repro.graphs import gnp_random_graph, paper_probability
from repro.harness import (
    ParallelTrialRunner,
    ParameterGrid,
    TrialRunner,
    TrialStore,
    group_by,
    success_rate,
    summarize,
)
from repro.reporting import render_table


def trial(point: dict, seed: int):
    """One Monte Carlo trial: sample a graph, run DRA, return the result.

    Module-level (hence picklable) so the parallel runner's worker
    processes can execute it too.
    """
    p = paper_probability(point["n"], delta=1.0, c=point["c"])
    graph = gnp_random_graph(point["n"], p, seed=seed)
    return repro.run(graph, "dra", engine="fast", seed=seed)


def main() -> None:
    grid = ParameterGrid(n=[128], c=[1.5, 2.0, 3.0, 4.0, 6.0])
    store_path = Path(tempfile.mkdtemp()) / "e6_mini.jsonl"
    runner = TrialRunner(trial, master_seed=42, store=TrialStore(store_path))

    print(f"running {len(grid)} grid points x 10 trials "
          f"(store: {store_path}) ...")
    trials = runner.run(grid, trials=10)

    rows = []
    for c, bucket in group_by(trials, "c").items():
        stats = summarize(bucket, "rounds")
        rows.append([
            c,
            f"{success_rate(bucket):.0%}",
            round(stats.get("mean", float("nan")), 1),
            round(stats.get("std", float("nan")), 1),
        ])
    print(render_table(
        ["c", "success", "mean rounds", "std"],
        rows, title="mini-E6: DRA success vs density constant (n=128, "
                     "p = c ln n / n, 10 trials)"))
    print()
    print("Rerunning the same sweep is free — every trial is already in")
    print("the store, so the runner loads instead of recomputing:")
    again = runner.run(grid, trials=10)
    assert [t.seed for t in again] == [t.seed for t in trials]
    print(f"  {len(again)} trials loaded from {store_path.name}, 0 executed.")

    print()
    print("The same sweep on 4 worker processes (fresh store) derives the")
    print("same seed tree, so every trial reproduces bit for bit:")
    # chunksize auto-sizes from the sweep (amortising IPC for fast
    # vectorised trials); any explicit value gives identical records.
    parallel = ParallelTrialRunner(trial, master_seed=42, jobs=4)
    ptrials = parallel.run(grid, trials=10)
    assert [t.canonical_json() for t in ptrials] == \
        [t.canonical_json() for t in trials]
    print(f"  {len(ptrials)} parallel trials == serial trials "
          f"(seeds, success, metrics).")


if __name__ == "__main__":
    main()
