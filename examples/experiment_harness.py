#!/usr/bin/env python
"""Driving your own experiments with the harness subpackage.

The benchmark suite validates the paper; the harness is how you ask
*your own* questions.  This example reruns a miniature version of
experiment E6 — how does success probability respond to the density
constant c? — through the public API: a parameter grid, a seeded trial
runner with a resumable JSONL store, and aggregation into a table.
Algorithm dispatch goes through :func:`repro.run`, so switching
algorithm or engine is a string change.

It then walks the orchestration layer:

1. the same sweep on a :class:`ParallelTrialRunner` — shared seed
   derivation, so the parallel run reproduces the serial trials bit
   for bit while using every core;
2. the work-stealing scheduler on a skewed grid — completion order
   changes, canonical records don't;
3. a two-shard split with :class:`ShardedStore` backends — two
   "hosts" each run a disjoint slice off the same master seed tree,
   and :func:`merge_stores` fuses them back into the serial records.

Run:  python examples/experiment_harness.py
"""

import tempfile
from pathlib import Path

import repro
from repro.graphs import gnp_random_graph, paper_probability
from repro.harness import (
    ParallelTrialRunner,
    ParameterGrid,
    ShardedStore,
    TrialRunner,
    TrialStore,
    canonical_order,
    group_by,
    merge_stores,
    success_rate,
    summarize,
)
from repro.reporting import render_table


def trial(point: dict, seed: int):
    """One Monte Carlo trial: sample a graph, run DRA, return the result.

    Module-level (hence picklable) so the parallel runner's worker
    processes can execute it too.
    """
    p = paper_probability(point["n"], delta=1.0, c=point["c"])
    graph = gnp_random_graph(point["n"], p, seed=seed)
    return repro.run(graph, "dra", engine="fast", seed=seed)


def main() -> None:
    grid = ParameterGrid(n=[128], c=[1.5, 2.0, 3.0, 4.0, 6.0])
    workdir = Path(tempfile.mkdtemp())
    store_path = workdir / "e6_mini.jsonl"
    runner = TrialRunner(trial, master_seed=42, store=TrialStore(store_path))

    print(f"running {len(grid)} grid points x 10 trials "
          f"(store: {store_path}) ...")
    trials = runner.run(grid, trials=10)

    rows = []
    for c, bucket in group_by(trials, "c").items():
        stats = summarize(bucket, "rounds")
        rows.append([
            c,
            f"{success_rate(bucket):.0%}",
            round(stats.get("mean", float("nan")), 1),
            round(stats.get("std", float("nan")), 1),
        ])
    print(render_table(
        ["c", "success", "mean rounds", "std"],
        rows, title="mini-E6: DRA success vs density constant (n=128, "
                     "p = c ln n / n, 10 trials)"))
    print()
    print("Rerunning the same sweep is free — every trial is already in")
    print("the store, so the runner loads instead of recomputing:")
    again = runner.run(grid, trials=10)
    assert [t.seed for t in again] == [t.seed for t in trials]
    print(f"  {len(again)} trials loaded from {store_path.name}, 0 executed.")

    print()
    print("The same sweep on 4 worker processes (fresh store) derives the")
    print("same seed tree, so every trial reproduces bit for bit:")
    # chunksize auto-sizes from the sweep (amortising IPC for fast
    # vectorised trials); any explicit value gives identical records.
    parallel = ParallelTrialRunner(trial, master_seed=42, jobs=4)
    ptrials = parallel.run(grid, trials=10)
    assert [t.canonical_json() for t in ptrials] == \
        [t.canonical_json() for t in trials]
    print(f"  {len(ptrials)} parallel trials == serial trials "
          f"(seeds, success, metrics).")

    print()
    print("On a skewed grid (n=32 points beside n=256 points), the")
    print("work-stealing scheduler keeps idle workers pulling chunks")
    print("instead of waiting behind the expensive column — and still")
    print("produces the same canonical records:")
    skewed = ParameterGrid(n=[32, 256], c=[4.0, 6.0])
    serial_sk = TrialRunner(trial, master_seed=7).run(skewed, trials=6)
    stolen = ParallelTrialRunner(trial, master_seed=7, jobs=4,
                                 schedule="work-stealing").run(
        skewed, trials=6)
    assert [t.canonical_json() for t in stolen] == \
        [t.canonical_json() for t in serial_sk]
    print(f"  {len(stolen)} work-stolen trials == serial trials.")

    print()
    print("Sharding splits one sweep across hosts: each shard runs a")
    print("disjoint slice of the (point, trial) grid off the *same*")
    print("master seed tree, appending to its own lock-free shard file:")
    shard_dir = workdir / "e6_shards"
    for index in range(2):  # two "hosts"
        ParallelTrialRunner(
            trial, master_seed=7, jobs=2, schedule="work-stealing",
            shard=(index, 2),
            store=ShardedStore(shard_dir, shard=f"{index}of2"),
        ).run(skewed, trials=6)
    merged = merge_stores([ShardedStore(shard_dir)])
    assert [t.canonical_json() for t in merged] == \
        [t.canonical_json() for t in canonical_order(serial_sk)]
    print(f"  2 shards x work-stealing -> merge == serial sweep "
          f"({len(merged)} records).")


if __name__ == "__main__":
    main()
