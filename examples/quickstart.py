#!/usr/bin/env python
"""Quickstart: find a Hamiltonian cycle in a random graph, distributedly.

Generates a G(n, p) graph at the paper's density for delta = 1/2, runs
the paper's general algorithm (DHC2) in the CONGEST simulator, verifies
the result, and prints the cost metrics the paper reasons about.

Run:  python examples/quickstart.py
"""

from repro import gnp_random_graph, paper_probability, verify_cycle
from repro.core import run_dhc2


def main() -> None:
    n = 200
    delta = 0.5
    p = paper_probability(n, delta=delta, c=2.0)
    graph = gnp_random_graph(n, p, seed=7)
    print(f"input: G(n={n}, p={p:.4f}) with m={graph.m} edges")

    result = run_dhc2(graph, delta=delta, k=4, seed=8)
    print(result)

    if result.success:
        verify_cycle(graph, result.cycle)  # raises if anything is wrong
        head = " -> ".join(map(str, result.cycle[:10]))
        print(f"verified Hamiltonian cycle: {head} -> ... ({n} nodes)")
        print(f"CONGEST rounds: {result.rounds}")
        print(f"messages: {result.messages} ({result.bits} bits total)")
        print(f"rotation-walk steps (Theorem 2's unit): {result.steps}")
    else:
        print("the algorithm failed on this instance (it is Monte Carlo: "
              "retry with another seed or a denser graph)")


if __name__ == "__main__":
    main()
