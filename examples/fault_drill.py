#!/usr/bin/env python
"""Failure-injection drill: what the algorithms do when the network lies.

The paper's CONGEST model is synchronous and fault-free, so faults are
out of scope for the *theorems* — but not for a library that claims
production quality.  The safety contract here is:

    ``result.success`` is true only for a fully verified Hamiltonian
    cycle, no matter what the network drops or which nodes crash.

This drill runs DRA under increasing message-loss rates and under a
mid-run crash, and shows the failure modes staying *clean*: no
exceptions, no false positives, observable drop/crash counters.

Run:  python examples/fault_drill.py
"""

from repro.congest import FaultPlan, NetworkModel
from repro.core import run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.reporting import render_table


def main() -> None:
    n = 64
    p = paper_probability(n, delta=0.5, c=6.0)
    graph = gnp_random_graph(n, p, seed=11)
    print(f"input: G(n={n}, p={p:.4f}) with m={graph.m} edges")
    print()

    rows = []
    for drop in (0.0, 0.01, 0.05, 0.2, 1.0):
        model = NetworkModel(fault_plan=FaultPlan(drop_probability=drop, seed=1))
        result = run_dra(graph, seed=5, network=model)
        stats = result.detail["faults"]
        rows.append([
            f"{drop:.0%}",
            "cycle" if result.success else "clean failure",
            result.rounds,
            int(stats["offered"]),
            int(stats["dropped"]),
        ])
    print(render_table(
        ["drop rate", "outcome", "rounds", "offered msgs", "dropped"],
        rows, title="DRA under uniform message loss"))
    print()

    # Crash-stop drill: kill one node mid-run.  A Hamiltonian cycle
    # needs every node, so this *must* be a clean failure.
    model = NetworkModel(fault_plan=FaultPlan(crash_rounds={7: 25}))
    result = run_dra(graph, seed=5, network=model)
    print(f"crash-stop node 7 at round 25 -> success={result.success}, "
          f"crashed={int(result.detail['faults']['crashed_nodes'])} node(s)")
    assert not result.success, "a dead node cannot be on a Hamiltonian cycle"
    print("safety contract held: no false success, no exceptions.")


if __name__ == "__main__":
    main()
