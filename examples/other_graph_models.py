#!/usr/bin/env python
"""The Section IV extension: DHC2 beyond G(n, p).

The paper closes conjecturing that "the ideas of this paper can be
extended to obtain similarly fast and efficient fully-distributed
algorithms for other random graph models such as the G(n, M) model and
random regular graphs".  The algorithms in this library never peek at
the generator — they only see adjacency — so the extension is directly
testable: run the *unchanged* DHC2 on

* G(n, M) with M matching the G(n, p) expected edge count,
* a random d-regular graph with d matching the expected degree,
* a Chung–Lu graph with mildly heterogeneous expected degrees,

and compare success and round counts against the G(n, p) reference.

Run:  python examples/other_graph_models.py
"""

import numpy as np

import repro
from repro.graphs import (
    chung_lu_graph,
    gnm_random_graph,
    gnp_random_graph,
    paper_probability,
    random_regular_graph,
)
from repro.reporting import render_table


def main() -> None:
    # delta = 0.75 keeps the matched regular degree inside the pairing
    # model's practical range at this n (delta = 0.5 would demand a
    # near-complete regular graph).
    n, delta, c = 400, 0.75, 4.0
    p = paper_probability(n, delta=delta, c=c)
    expected_m = round(p * n * (n - 1) / 2)
    degree = round(p * (n - 1))
    if (n * degree) % 2:
        degree += 1

    graphs = {
        "G(n,p)": gnp_random_graph(n, p, seed=1),
        "G(n,M)": gnm_random_graph(n, expected_m, seed=1),
        f"{degree}-regular": random_regular_graph(n, degree, seed=1),
        "Chung-Lu": chung_lu_graph(
            _mild_heterogeneous_weights(n, degree), seed=1),
    }

    print(f"target density: p={p:.4f} (expected m={expected_m}, "
          f"expected degree ~{degree})")
    print()

    rows = []
    for name, graph in graphs.items():
        wins, rounds = 0, []
        for seed in range(5):
            result = repro.run(graph, "dhc2", engine="fast", delta=delta,
                               seed=seed)
            if result.success:
                wins += 1
                rounds.append(result.rounds)
        mean = round(sum(rounds) / len(rounds)) if rounds else "-"
        rows.append([name, graph.m, f"{wins}/5", mean])

    print(render_table(
        ["model", "m", "HC found", "mean rounds"],
        rows, title="DHC2 (unchanged) across random-graph models"))
    print()
    print("Reading: G(n,M) and random regular track G(n,p) closely — the")
    print("Section IV conjecture holds at this scale.  Chung–Lu degrades")
    print("gracefully when its weight spread pushes low-weight nodes near")
    print("the connectivity threshold.")


def _mild_heterogeneous_weights(n: int, degree: int) -> np.ndarray:
    """Expected degrees in [0.75 d, 1.5 d] — heterogeneous but safe."""
    rng = np.random.default_rng(0)
    return degree * (0.75 + 0.75 * rng.random(n))


if __name__ == "__main__":
    main()
