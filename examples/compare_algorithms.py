#!/usr/bin/env python
"""Compare all of the paper's algorithms on one graph.

Runs DRA, DHC1, DHC2, Upcast, and the trivial O(m) baseline on the same
G(n, p) instance and prints the comparison the paper argues
qualitatively: the fully-distributed algorithms balance memory across
nodes, the centralized ones concentrate it at the root, and the trivial
baseline pays the most rounds.

Run:  python examples/compare_algorithms.py
"""

import math

from repro import gnp_random_graph
from repro.core import find_hamiltonian_cycle


def main() -> None:
    n = 120
    p = min(1.0, 2.2 * math.log(n) / math.sqrt(n))
    graph = gnp_random_graph(n, p, seed=17)
    print(f"input: G(n={n}, p={p:.3f}), m={graph.m}\n")

    configs = [
        ("dra", {}),
        ("dhc1", {"k": 4}),
        ("dhc2", {"k": 4}),
        ("upcast", {}),
        ("trivial", {}),
    ]
    header = f"{'algorithm':<10} {'ok':<4} {'rounds':>8} {'messages':>10} " \
             f"{'max node mem':>13} {'median mem':>11}"
    print(header)
    print("-" * len(header))
    for name, kwargs in configs:
        res = find_hamiltonian_cycle(graph, algorithm=name, seed=23,
                                     audit_memory=True, **kwargs)
        words = sorted(res.detail.get("state_words", [0]))
        median = words[len(words) // 2]
        print(f"{name:<10} {str(res.success):<4} {res.rounds:>8} "
              f"{res.messages:>10} {words[-1]:>13} {median:>11}")

    print("\nReading the table:")
    print(" * dra/dhc1/dhc2 are fully distributed: max and median memory")
    print("   are within a small factor (balanced, degree-scaled).")
    print(" * upcast/trivial concentrate state at the BFS root: max >> median.")
    print(" * trivial pays O(m)-scale rounds for collecting the topology.")


if __name__ == "__main__":
    main()
