#!/usr/bin/env python
"""Scenario: build a token-passing ring overlay for a P2P network.

A classic use of Hamiltonian cycles in systems: given an unstructured
peer-to-peer network (modelled, as the paper's introduction motivates,
by a random graph), construct a ring overlay that visits every peer
exactly once using only existing links — e.g. for token circulation,
round-robin leader rotation, or gossip with full coverage.

The fully-distributed DHC2 does this without any peer ever holding the
global topology; we then *use* the ring: simulate a token doing one lap
and measure per-hop latency against the CONGEST round count.

Run:  python examples/p2p_ring_overlay.py
"""

import math

from repro import gnp_random_graph
from repro.core import run_dhc2
from repro.graphs import degree_statistics


def main() -> None:
    peers = 160
    # An overlay network where each peer knows ~0.2 of the swarm.
    s = peers // 4
    p = min(1.0, 8 * math.log(s) / s)
    net = gnp_random_graph(peers, p, seed=11)
    stats = degree_statistics(net)
    print(f"P2P swarm: {peers} peers, {net.m} links, "
          f"mean degree {stats['mean']:.1f}")

    result = run_dhc2(net, k=4, seed=12)
    if not result.success:
        print("ring construction failed; retry with another seed")
        return

    ring = result.cycle
    print(f"ring overlay built in {result.rounds} CONGEST rounds "
          f"({result.messages} messages)")

    # Use the ring: pass a token one full lap, checking every hop is a
    # real link (the overlay never invents connectivity).
    hops = 0
    for a, b in zip(ring, ring[1:] + ring[:1]):
        assert net.has_edge(a, b), "overlay used a non-existent link!"
        hops += 1
    print(f"token completed one lap: {hops} hops, every hop a real link")

    # A ring lap costs exactly n rounds; the construction cost amortises
    # after a few laps of any all-peers protocol.
    laps_to_amortise = result.rounds / peers
    print(f"construction amortises after ~{laps_to_amortise:.1f} token laps")


if __name__ == "__main__":
    main()
