#!/usr/bin/env python
"""Looking inside a distributed execution with the trace subsystem.

Metrics tell you *what* a run cost; traces tell you *why*.  This example
runs DRA with a trace recorder attached and prints three views:

1. the activity timeline — the protocol's phases (election burst,
   quiet BFS, rotation-walk plateau) as an ASCII histogram;
2. the per-kind traffic summary — which sub-machine sent what, when;
3. a node lens — one node's complete conversation.

Run:  python examples/trace_debugging.py
"""

from repro.congest import NetworkModel
from repro.core import run_dra
from repro.graphs import gnp_random_graph, paper_probability
from repro.trace import TraceRecorder, activity_timeline, kind_summary, node_lens


def main() -> None:
    n = 64
    p = paper_probability(n, delta=0.5, c=6.0)
    graph = gnp_random_graph(n, p, seed=11)

    recorder = TraceRecorder()
    result = run_dra(graph, seed=5,
                     network=NetworkModel(network_hook=recorder.attach))
    print(f"run: {result}")
    print()

    print("--- activity timeline "
          "(election burst, BFS, walk plateau, closing flood) ---")
    print(activity_timeline(recorder))
    print()

    print("--- traffic by message kind ---")
    print(kind_summary(recorder))
    print()

    print("--- node 0's conversation (first 15 events) ---")
    print(node_lens(recorder, 0, limit=15))
    print()

    # Traces also answer questions: how many rotation floods were there?
    rotations = recorder.where(lambda e: e.kind == "rw.r")
    rotation_rounds = sorted({e.round_index for e in rotations})
    print(f"rotation floods: {len(rotation_rounds)} distinct rounds "
          f"carried {len(rotations)} 'rw.r' messages")
    print("(each flood re-numbers the path over the BFS tree — Fig. 2's "
          "renumbering broadcast)")


if __name__ == "__main__":
    main()
