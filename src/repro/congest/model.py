"""The unified network-configuration object: :class:`NetworkModel`.

Before this module existed, network configuration was a handful of
ad-hoc keyword arguments scattered across the congest runners —
``network_hook``, ``fault_plan``, ``bandwidth_words``, ``audit_memory``
— and the asynchronous engine would have multiplied them (latency
distributions, churn schedules, adversary seeds).  A
:class:`NetworkModel` collects the whole description of the *substrate*
an algorithm runs on into one frozen, JSON-serialisable value:

* ``mode`` — ``"sync"`` (the round-driven :class:`~repro.congest.
  network.Network`) or ``"async"`` (the event-queue
  :class:`~repro.congest.async_engine.AsyncNetwork`);
* ``bandwidth_words`` — per-message word budget (``None`` = the
  runner's own default);
* ``fault_plan`` — a declarative :class:`~repro.congest.faults.
  FaultPlan` adversary;
* ``latency`` — a :class:`LatencySpec` giving each directed edge a
  seeded delay distribution (async mode only; ``"unit"`` reproduces
  synchronous rounds exactly);
* ``churn`` — ``(action, node, time)`` events: ``"crash"`` silences a
  node at a virtual time, ``"join"`` defers its start (async only);
* ``seed`` — the substrate's own randomness (latency draws), separate
  from both the protocol seed and the fault plan's adversary seed;
* ``network_hook`` — an imperative escape hatch (observer attachment);
  the only field excluded from JSON.

The congest runners accept ``network=`` (a model, a dict, or a JSON
string); the legacy ``fault_plan=`` / ``network_hook=`` keywords remain
as shims that emit :class:`DeprecationWarning` and route through
:func:`coerce_network_model`.  The canonical JSON string form
(:meth:`NetworkModel.canonical`) is hashable and byte-stable, so sweep
points carrying a model stay store-canonicalisable and resumable.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.congest.faults import FaultInjector, FaultPlan, compose_fault_hook
from repro.congest.network import DEFAULT_BANDWIDTH_WORDS, Network

__all__ = [
    "LatencySpec",
    "NetworkModel",
    "coerce_network_model",
    "build_network",
    "faults_summary_for",
]

_LATENCY_KINDS = ("unit", "fixed", "uniform", "exponential")
_CHURN_ACTIONS = ("crash", "join")

#: Floor on sampled delays: a zero delay would let causality chains of
#: unbounded length fit into one instant of virtual time.
_MIN_DELAY = 1e-9


@dataclass(frozen=True)
class LatencySpec:
    """A per-edge message-delay distribution for the async engine.

    ``kind``:

    * ``"unit"`` — every message takes exactly one time unit; the async
      engine then reproduces the synchronous engine's schedule (the
      zero-latency parity pin).
    * ``"fixed"`` — every message takes ``value`` (> 0) time units.
    * ``"uniform"`` — delays drawn uniformly from ``[low, high]``
      (``0 < low <= high``); messages reorder whenever draws cross.
    * ``"exponential"`` — delays drawn exponentially with mean
      ``value`` (heavy reordering tail).

    Draws come from a per-directed-edge stream seeded by
    ``(model.seed, src, dst)``, so a given edge's delay sequence does
    not depend on what the rest of the network is doing.
    """

    kind: str = "unit"
    value: float = 1.0
    low: float = 0.5
    high: float = 1.5

    def __post_init__(self):
        if self.kind not in _LATENCY_KINDS:
            raise ValueError(
                f"latency kind must be one of {_LATENCY_KINDS}, got {self.kind!r}")
        if self.kind in ("fixed", "exponential") and not self.value > 0:
            raise ValueError(
                f"latency value must be > 0, got {self.value}")
        if self.kind == "uniform" and not 0 < self.low <= self.high:
            raise ValueError(
                f"uniform latency needs 0 < low <= high, got "
                f"[{self.low}, {self.high}]")

    @property
    def is_unit(self) -> bool:
        return self.kind == "unit"

    def mean(self) -> float:
        """Expected delay (scales the async engine's time budget)."""
        if self.kind == "unit":
            return 1.0
        if self.kind == "uniform":
            return (self.low + self.high) / 2.0
        return self.value

    def sample(self, rng) -> float:
        """One delay draw (no draw is consumed for ``"unit"``)."""
        if self.kind == "unit":
            return 1.0
        if self.kind == "fixed":
            return self.value
        if self.kind == "uniform":
            return max(_MIN_DELAY, float(rng.uniform(self.low, self.high)))
        return max(_MIN_DELAY, float(rng.exponential(self.value)))

    def to_json(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "low": self.low, "high": self.high}

    @classmethod
    def from_json(cls, data: dict) -> "LatencySpec":
        unknown = sorted(set(data) - {"kind", "value", "low", "high"})
        if unknown:
            raise ValueError(f"unknown latency fields: {', '.join(unknown)}")
        return cls(**data)


def _normalize_churn(churn) -> tuple:
    events = []
    for item in churn:
        try:
            action, node, time = item
        except (TypeError, ValueError):
            raise ValueError(
                f"churn events are (action, node, time) triples, got {item!r}"
            ) from None
        if action not in _CHURN_ACTIONS:
            raise ValueError(
                f"churn action must be one of {_CHURN_ACTIONS}, got {action!r}")
        node, time = int(node), float(time)
        if node < 0:
            raise ValueError(f"churn node must be >= 0, got {node}")
        if time < 0:
            raise ValueError(f"churn time must be >= 0, got {time}")
        events.append((action, node, time))
    return tuple(sorted(events, key=lambda e: (e[2], e[0], e[1])))


@dataclass(frozen=True)
class NetworkModel:
    """One value describing the network substrate of a run.

    See the module docstring for field semantics.  Instances are
    frozen, comparable, and (``network_hook`` aside) JSON round-trips
    through :meth:`to_json` / :meth:`from_json`; :meth:`canonical` is
    the byte-stable string form used in sweep points and stores.
    """

    mode: str = "sync"
    bandwidth_words: int | None = None
    audit_memory: bool = False
    fault_plan: FaultPlan | None = None
    latency: LatencySpec = field(default_factory=LatencySpec)
    churn: tuple = ()
    seed: int = 0
    network_hook: Callable | None = None

    def __post_init__(self):
        if self.mode not in ("sync", "async"):
            raise ValueError(
                f"mode must be 'sync' or 'async', got {self.mode!r}")
        if self.bandwidth_words is not None and self.bandwidth_words < 1:
            raise ValueError(
                f"bandwidth_words must be >= 1, got {self.bandwidth_words}")
        if isinstance(self.latency, dict):
            object.__setattr__(self, "latency",
                               LatencySpec.from_json(self.latency))
        if isinstance(self.fault_plan, dict):
            object.__setattr__(self, "fault_plan",
                               FaultPlan.from_json(self.fault_plan))
        object.__setattr__(self, "churn", _normalize_churn(self.churn))
        if self.mode == "sync":
            if not self.latency.is_unit:
                raise ValueError(
                    "latency distributions need mode='async' (the "
                    "synchronous engine delivers in lockstep rounds)")
            if self.churn:
                raise ValueError("churn schedules need mode='async'")

    # -- queries ---------------------------------------------------------------

    def is_async(self) -> bool:
        return self.mode == "async"

    def as_async(self) -> "NetworkModel":
        """This model with ``mode="async"`` (the async engine's view)."""
        if self.mode == "async":
            return self
        return replace(self, mode="async")

    # -- serialisation ---------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-safe dict form; refuses models carrying a live hook."""
        if self.network_hook is not None:
            raise ValueError(
                "a NetworkModel with a network_hook callable cannot be "
                "serialised; attach hooks only on the Python side")
        return {
            "mode": self.mode,
            "bandwidth_words": self.bandwidth_words,
            "audit_memory": self.audit_memory,
            "fault_plan": (None if self.fault_plan is None
                           else self.fault_plan.to_json()),
            "latency": self.latency.to_json(),
            "churn": [list(event) for event in self.churn],
            "seed": self.seed,
        }

    def canonical(self) -> str:
        """Compact sorted-key JSON string — hashable and byte-stable."""
        return json.dumps(self.to_json(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, data: "dict | str") -> "NetworkModel":
        """Inverse of :meth:`to_json`; also accepts the JSON string."""
        if isinstance(data, str):
            data = json.loads(data)
        if not isinstance(data, dict):
            raise ValueError(
                f"a NetworkModel document must be a JSON object, got "
                f"{type(data).__name__}")
        known = {"mode", "bandwidth_words", "audit_memory", "fault_plan",
                 "latency", "churn", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown NetworkModel fields: {', '.join(unknown)}")
        kwargs = dict(data)
        if kwargs.get("latency") is None:
            kwargs.pop("latency", None)
        return cls(**kwargs)


def _warn_legacy(name: str, caller: str) -> None:
    warnings.warn(
        f"{caller}(..., {name}=...) is deprecated; pass "
        f"network=NetworkModel({name}=...) instead",
        DeprecationWarning, stacklevel=4)


def coerce_network_model(
    network: "NetworkModel | dict | str | None" = None,
    *,
    network_hook: Callable | None = None,
    fault_plan: FaultPlan | None = None,
    bandwidth_words: int | None = None,
    caller: str = "run",
) -> NetworkModel:
    """The effective :class:`NetworkModel` for a runner call.

    ``network`` may be a model, a JSON dict/string, or ``None`` (the
    default synchronous substrate).  Each legacy keyword emits a
    :class:`DeprecationWarning` and folds into the model; passing a
    legacy keyword *and* the same field on an explicit model is a
    conflict and raises, so a value can never be silently shadowed.
    """
    if network is None:
        model = NetworkModel()
    elif isinstance(network, NetworkModel):
        model = network
    elif isinstance(network, (dict, str)):
        model = NetworkModel.from_json(network)
    else:
        raise TypeError(
            f"network must be a NetworkModel, dict, or JSON string, got "
            f"{type(network).__name__}")
    for name, value, current in (
            ("fault_plan", fault_plan, model.fault_plan),
            ("network_hook", network_hook, model.network_hook),
            ("bandwidth_words", bandwidth_words, model.bandwidth_words)):
        if value is None:
            continue
        _warn_legacy(name, caller)
        if current is not None:
            raise ValueError(
                f"{name} given both as a legacy keyword and on the "
                f"NetworkModel; set it in one place")
        model = replace(model, **{name: value})
    return model


def build_network(
    graph,
    protocol_factory,
    *,
    seed: int = 0,
    model: NetworkModel,
    audit_memory: bool = False,
    default_bandwidth: int | None = None,
):
    """Construct (and hook up) the simulator ``model`` describes.

    Returns ``(network, injector)`` where ``network`` is a ready-to-run
    :class:`~repro.congest.network.Network` or
    :class:`~repro.congest.async_engine.AsyncNetwork` and ``injector``
    carries the fault adversary's counters (``.summary()``), or is
    ``None`` when the model has no fault plan.  ``audit_memory`` is the
    runner's own flag; it ORs with the model's.
    """
    words = model.bandwidth_words
    if words is None:
        words = (default_bandwidth if default_bandwidth is not None
                 else DEFAULT_BANDWIDTH_WORDS)
    audit = bool(audit_memory or model.audit_memory)
    if model.is_async():
        from repro.congest.async_engine import AsyncNetwork

        net = AsyncNetwork(graph, protocol_factory, seed=seed, model=model,
                           bandwidth_words=words, audit_memory=audit)
        if model.network_hook is not None:
            model.network_hook(net)
        return net, net.adversary
    hook = model.network_hook
    injector = None
    if model.fault_plan is not None:
        hook, injector = compose_fault_hook(model.fault_plan, hook)
    net = Network(graph, protocol_factory, seed=seed, bandwidth_words=words,
                  audit_memory=audit)
    if hook is not None:
        hook(net)
    return net, injector


def faults_summary_for(model: NetworkModel) -> dict | None:
    """A zero-count adversary summary for runs that never executed.

    Keeps ``detail["faults"]`` reporting uniform across runners even on
    early-return paths (e.g. graphs too small to run): present whenever
    the model carries a fault plan, absent otherwise.
    """
    if model.fault_plan is None:
        return None
    return FaultInjector(model.fault_plan).summary()
