"""Failure injection for CONGEST executions.

The paper's model is synchronous and fault-free, so faults are *not*
part of the reproduction target.  What failure injection validates is a
safety property every front end in this library promises: ``success``
is reported only for a verified Hamiltonian cycle.  Under message loss
or node crashes the algorithms may stall, hit their watchdog budgets,
or abort — but they must never claim success falsely, and the simulator
must wind down cleanly (quiescence, not exceptions).

Usage::

    plan = FaultPlan(drop_probability=0.05, seed=7)
    injector = FaultInjector(plan)
    result = run_dra(graph, seed=1, network_hook=injector.attach)
    assert injector.dropped >= 0          # observability
    # result.success is False unless a real HC was still produced

Fault kinds:

* *probabilistic message drops* — each in-flight message is discarded
  independently with ``drop_probability``, within an optional round
  ``window``;
* *link kills* — every message over the (undirected) links in
  ``dead_links`` is discarded from ``window`` start;
* *crash-stop nodes* — ``crash_rounds[v] = r`` silences node ``v`` from
  round ``r``: its queued messages are dropped and it never executes
  again (the engine skips halted nodes).

The adversary is deterministic per ``seed`` and independent of the
protocol's own randomness (separate generator), so adding or removing
a fault plan never perturbs node decisions — only which messages
survive delivery.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.network import Network

__all__ = ["FaultPlan", "FaultInjector", "compose_fault_hook"]


def compose_fault_hook(plan: "FaultPlan", network_hook=None):
    """A ``network_hook`` applying ``plan``, composed with an existing hook.

    This is how the congest runners honour their registry-declared
    ``fault_plan`` keyword: the returned hook attaches a fresh
    :class:`FaultInjector` (before any caller-supplied hook, so a
    conflicting second delivery filter fails loudly), and the injector
    is returned alongside so the runner can report
    ``injector.summary()`` in its result detail.
    """
    injector = FaultInjector(plan)

    def hook(network: "Network") -> None:
        injector.attach(network)
        if network_hook is not None:
            network_hook(network)

    return hook, injector


@dataclass(frozen=True)
class FaultPlan:
    """A declarative description of the failures to inject.

    Attributes
    ----------
    drop_probability:
        Per-message independent drop chance in ``[0, 1]``.
    dead_links:
        Undirected node pairs whose messages are always dropped (both
        directions), e.g. ``{(3, 7)}``.
    crash_rounds:
        ``node -> round``; the node is crash-stopped at the *start* of
        that round (it receives nothing and sends nothing from then on).
    window:
        ``(first_round, last_round)`` during which probabilistic and
        link drops apply; crashes fire regardless.  ``None`` = always.
    seed:
        Seed of the adversary's own RNG.
    """

    drop_probability: float = 0.0
    dead_links: frozenset = field(default_factory=frozenset)
    crash_rounds: dict = field(default_factory=dict)
    window: tuple | None = None
    seed: int = 0

    def __post_init__(self):
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {self.drop_probability}")
        normalized = frozenset(
            (min(a, b), max(a, b)) for a, b in self.dead_links)
        object.__setattr__(self, "dead_links", normalized)
        if self.window is not None:
            lo, hi = self.window
            if lo > hi:
                raise ValueError(f"empty fault window {self.window}")

    def is_benign(self) -> bool:
        """True when this plan injects nothing."""
        return (self.drop_probability == 0.0 and not self.dead_links
                and not self.crash_rounds)

    def to_json(self) -> dict:
        """JSON-safe dict form (see :meth:`from_json`)."""
        return {
            "drop_probability": self.drop_probability,
            "dead_links": sorted(list(pair) for pair in self.dead_links),
            "crash_rounds": {str(v): r for v, r in
                             sorted(self.crash_rounds.items())},
            "window": None if self.window is None else list(self.window),
            "seed": self.seed,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_json` (JSON objects string their keys)."""
        known = {"drop_probability", "dead_links", "crash_rounds",
                 "window", "seed"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {', '.join(unknown)}")
        kwargs = dict(data)
        if "dead_links" in kwargs:
            kwargs["dead_links"] = frozenset(
                tuple(pair) for pair in kwargs["dead_links"])
        if "crash_rounds" in kwargs:
            kwargs["crash_rounds"] = {int(v): r for v, r in
                                      kwargs["crash_rounds"].items()}
        if kwargs.get("window") is not None:
            kwargs["window"] = tuple(kwargs["window"])
        return cls(**kwargs)


class FaultInjector:
    """Applies a :class:`FaultPlan` to a network and counts what it broke.

    Attach via the front ends' ``network_hook`` (or set it as the
    network's ``delivery_filter`` directly).  After the run:

    * ``dropped`` — messages discarded (all causes combined);
    * ``crashed`` — nodes crash-stopped so far;
    * ``offered`` — messages the protocol attempted to deliver.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.dropped = 0
        self.offered = 0
        self.crashed: set[int] = set()
        self._rng = np.random.default_rng(np.random.SeedSequence(plan.seed))

    def attach(self, network: Network) -> None:
        """Install this injector as the network's delivery filter."""
        if network.delivery_filter is not None:
            raise RuntimeError("network already has a delivery filter")
        network.delivery_filter = self._filter

    # -- the adversary ----------------------------------------------------------

    def _filter(
        self, network: Network, outbox: list[tuple[int, int, tuple]],
    ) -> list[tuple[int, int, tuple]]:
        # The filter runs inside _step after round_index increments are
        # staged; messages in `outbox` are about to be delivered at the
        # start of round `round_index + 1`.
        delivery_round = network.round_index + 1
        self._apply_crashes(network, delivery_round)
        in_window = (self.plan.window is None
                     or self.plan.window[0] <= delivery_round <= self.plan.window[1])

        survivors: list[tuple[int, int, tuple]] = []
        for src, dst, payload in outbox:
            self.offered += 1
            if src in self.crashed or dst in self.crashed:
                self.dropped += 1
                continue
            if in_window and self._link_dead(src, dst):
                self.dropped += 1
                continue
            if (in_window and self.plan.drop_probability > 0.0
                    and self._rng.random() < self.plan.drop_probability):
                self.dropped += 1
                continue
            survivors.append((src, dst, payload))
        return survivors

    def _apply_crashes(self, network: Network, round_index: int) -> None:
        for node, crash_at in self.plan.crash_rounds.items():
            if node in self.crashed or crash_at > round_index:
                continue
            self.crashed.add(node)
            # Crash-stop: the engine never runs a halted node again.
            network.context(node).halted = True

    def _link_dead(self, src: int, dst: int) -> bool:
        if not self.plan.dead_links:
            return False
        key = (src, dst) if src < dst else (dst, src)
        return key in self.plan.dead_links

    def summary(self) -> dict[str, float]:
        """Injection counters for reports."""
        return {
            "offered": float(self.offered),
            "dropped": float(self.dropped),
            "drop_rate": self.dropped / self.offered if self.offered else 0.0,
            "crashed_nodes": float(len(self.crashed)),
        }
