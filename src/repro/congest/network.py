"""The synchronous CONGEST round engine.

Semantics (Section I-A of the paper):

* computation proceeds in synchronous rounds; all nodes share the round
  counter;
* per round, each node may send at most one ``B = O(log n)``-bit message
  over each incident edge (enforced at send time);
* messages sent in round ``r`` are delivered at the start of round
  ``r + 1``;
* local computation is free in the round measure, but protocols are
  written so their per-round local work is sublinear, and the optional
  memory audit checks per-node state stays o(n).

The engine is event-driven: a node runs in a round only if it received
messages or scheduled a wake-up, so simulation cost tracks message
activity rather than ``n * rounds``.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.congest.errors import (
    BandwidthExceededError,
    DuplicateSendError,
    NotANeighborError,
    RoundLimitExceeded,
)
from repro.congest.message import Message, payload_bits, word_bits
from repro.congest.metrics import Metrics
from repro.congest.node import Context, Protocol
from repro.graphs.adjacency import Graph

__all__ = ["Network", "DEFAULT_BANDWIDTH_WORDS"]

DEFAULT_BANDWIDTH_WORDS = 8


class Network:
    """A CONGEST network: a topology plus one protocol instance per node.

    Parameters
    ----------
    graph:
        The communication topology.
    protocol_factory:
        ``factory(node_id) -> Protocol`` building each node's code.
    seed:
        Master seed; each node receives an independent child generator,
        so executions are reproducible and node randomness is isolated.
    bandwidth_words:
        Per-message budget in integer words (total bits =
        ``TAG_BITS + bandwidth_words * ceil(log2(n+1))`` — a constant
        number of O(log n)-bit fields, as the model prescribes).
    audit_memory:
        If true, periodically record each node's protocol state size
        (words) to validate the o(n) fully-distributed restriction.
    """

    def __init__(
        self,
        graph: Graph,
        protocol_factory: Callable[[int], Protocol],
        *,
        seed: int = 0,
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        audit_memory: bool = False,
        audit_every: int = 64,
    ):
        self.graph = graph
        self.n = graph.n
        self.round_index = 0
        self._word_bits = word_bits(self.n)
        self._bandwidth_bits = 8 + bandwidth_words * self._word_bits
        self._audit_memory = audit_memory
        self._audit_every = max(1, audit_every)

        seeds = np.random.SeedSequence(seed).spawn(self.n)
        self.protocols: list[Protocol] = []
        self._contexts: list[Context] = []
        for v in range(self.n):
            proto = protocol_factory(v)
            ctx = Context(self, v, graph.neighbor_list(v), np.random.default_rng(seeds[v]))
            self.protocols.append(proto)
            self._contexts.append(ctx)

        self._outbox: list[tuple[int, int, tuple]] = []
        self._edges_used: set[tuple[int, int]] = set()
        self._wakes: dict[int, set[int]] = {}
        #: Optional observer called once per executed round with the list of
        #: ``(src, dst, payload)`` messages delivered at the start of that
        #: round.  Used by :mod:`repro.kmachine` to re-cost the execution
        #: under a different communication model without touching protocols.
        self.round_observer: Callable[["Network", list[tuple[int, int, tuple]]], None] | None = None
        #: Optional adversary: transforms each round's in-flight message
        #: list before delivery (drop/reorder; the observer above sees the
        #: traffic as *offered*, i.e. pre-filter).  Used by
        #: :mod:`repro.congest.faults` for failure-injection experiments.
        self.delivery_filter: Callable[
            ["Network", list[tuple[int, int, tuple]]],
            list[tuple[int, int, tuple]]] | None = None
        self.metrics = Metrics(
            sent_per_node=np.zeros(self.n, dtype=np.int64),
            peak_state_words=np.zeros(self.n, dtype=np.int64),
            memory_audited=audit_memory,
        )

    # -- internal API used by Context -----------------------------------------

    def _enqueue(self, src: int, dst: int, payload: tuple) -> None:
        ctx = self._contexts[src]
        if not ctx.is_neighbor(dst):
            raise NotANeighborError(f"node {src} is not adjacent to {dst}")
        key = (src, dst)
        if key in self._edges_used:
            raise DuplicateSendError(
                f"node {src} sent twice over edge ({src}, {dst}) in round "
                f"{self.round_index}; pack fields into one message"
            )
        bits = payload_bits(payload, self.n)
        if bits > self._bandwidth_bits:
            raise BandwidthExceededError(
                f"message {payload[0]!r} needs {bits} bits but the edge budget "
                f"is {self._bandwidth_bits} bits"
            )
        self._edges_used.add(key)
        self._outbox.append((src, dst, payload))
        self.metrics.messages += 1
        self.metrics.bits += bits
        self.metrics.sent_per_node[src] += 1

    def _edge_free(self, src: int, dst: int) -> bool:
        return (src, dst) not in self._edges_used

    def _schedule_wake(self, node: int, round_index: int) -> None:
        if round_index <= self.round_index:
            raise ValueError(
                f"wake-up for node {node} must be in the future "
                f"(requested {round_index} at round {self.round_index})"
            )
        self._wakes.setdefault(round_index, set()).add(node)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        *,
        max_rounds: int,
        until: Callable[["Network"], bool] | None = None,
        raise_on_limit: bool = True,
    ) -> Metrics:
        """Execute the protocol until global termination.

        Termination is: every node halted, or the optional ``until``
        predicate returns true, or no activity remains (no messages in
        flight and no wake-ups scheduled).  Hitting ``max_rounds`` first
        raises :class:`RoundLimitExceeded` (or returns, when
        ``raise_on_limit`` is false).
        """
        self.round_index = 0
        for v in range(self.n):
            self.protocols[v].on_start(self._contexts[v])
        self._maybe_audit(force=True)

        while True:
            if self._all_halted() or (until is not None and until(self)):
                break
            if not self._outbox and not self._wakes:
                break  # deadlock-free quiescence: nothing will ever happen again
            if self.round_index >= max_rounds:
                if raise_on_limit:
                    raise RoundLimitExceeded(
                        f"protocol did not terminate within {max_rounds} rounds"
                    )
                break
            self._step()

        self.metrics.rounds = self.round_index
        self._maybe_audit(force=True)
        return self.metrics

    def _step(self) -> None:
        if self.round_observer is not None:
            self.round_observer(self, self._outbox)
        if self.delivery_filter is not None:
            self._outbox = self.delivery_filter(self, self._outbox)
        inboxes: dict[int, list[Message]] = {}
        for src, dst, payload in self._outbox:
            inboxes.setdefault(dst, []).append(Message(src, payload))
        self._outbox = []
        self._edges_used.clear()

        self.round_index += 1
        active = self._wakes.pop(self.round_index, set())
        active.update(inboxes)
        for v in sorted(active):
            ctx = self._contexts[v]
            if ctx.halted:
                continue
            inbox = inboxes.get(v, [])
            inbox.sort(key=lambda msg: msg.sender)
            self.protocols[v].on_round(ctx, inbox)
        self._maybe_audit()

    # -- inspection -------------------------------------------------------------

    def context(self, v: int) -> Context:
        """The execution context of node ``v`` (for tests and result readout)."""
        return self._contexts[v]

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts)

    def _maybe_audit(self, *, force: bool = False) -> None:
        if not self._audit_memory:
            return
        if not force and self.round_index % self._audit_every != 0:
            return
        peaks = self.metrics.peak_state_words
        for v, proto in enumerate(self.protocols):
            words = proto.state_size()
            if words > peaks[v]:
                peaks[v] = words


def run_network(
    graph: Graph,
    protocol_factory: Callable[[int], Protocol],
    *,
    seed: int = 0,
    max_rounds: int,
    bandwidth_words: int | None = None,
    audit_memory: bool = False,
    until: Callable[[Network], bool] | None = None,
    network=None,
) -> Network:
    """Build a network, run it, and return it (metrics + protocols inside).

    ``network`` is a :class:`~repro.congest.model.NetworkModel` (or its
    JSON form) describing the substrate — including ``mode="async"``,
    in which case the returned object is an
    :class:`~repro.congest.async_engine.AsyncNetwork`.  The standalone
    ``bandwidth_words=`` keyword is a deprecated shim folding into it
    (the :class:`Network` constructor's own parameter is not deprecated;
    this wrapper is model-driven).
    """
    from repro.congest.model import build_network, coerce_network_model

    model = coerce_network_model(network, bandwidth_words=bandwidth_words,
                                 caller="run_network")
    net, _ = build_network(graph, protocol_factory, seed=seed, model=model,
                           audit_memory=audit_memory)
    net.run(max_rounds=max_rounds, until=until)
    return net
