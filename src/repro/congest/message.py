"""Messages and their bit-size accounting.

The CONGEST model allows one ``B = O(log n)``-bit message per edge per
round.  To make that budget *measurable* rather than aspirational, every
message payload is a flat tuple whose first element is a short string
tag (the message kind) followed by integer fields; the accounting model
charges

* a constant ``TAG_BITS`` for the kind (protocols use a constant number
  of kinds), and
* one *word* of ``ceil(log2(n+1))`` bits per integer field (every
  quantity our algorithms ship — node ids, path positions, cycle sizes,
  round numbers — is at most polynomial in n, so O(log n) bits each).

The simulator checks each message against the edge budget at send time.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Message", "TAG_BITS", "word_bits", "payload_words", "payload_bits"]

TAG_BITS = 8


def word_bits(n: int) -> int:
    """Bits per integer field in an ``n``-node network: ``ceil(log2(n+1))``."""
    if n <= 0:
        return 1
    return max(1, (n).bit_length())


def payload_words(payload: tuple) -> int:
    """Number of integer words in a payload (excluding the kind tag)."""
    return len(payload) - 1


def payload_bits(payload: tuple, n: int) -> int:
    """Total bit size of a payload in an ``n``-node network."""
    return TAG_BITS + payload_words(payload) * word_bits(n)


@dataclass(frozen=True, slots=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    sender:
        Node id of the sender (learned by the receiver from the port the
        message arrived on, so it is metadata, not charged bandwidth).
    payload:
        ``(kind, *int_fields)`` — see module docstring.
    """

    sender: int
    payload: tuple

    @property
    def kind(self) -> str:
        """The message kind tag (first payload element)."""
        return self.payload[0]

    def bits(self, n: int) -> int:
        """Bit size of this message in an ``n``-node network."""
        return payload_bits(self.payload, n)
