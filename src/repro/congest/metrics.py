"""Execution metrics for CONGEST simulations.

Rounds are the primary cost measure of the paper; we additionally track
message and bit totals (CONGEST "efficiency"), the per-node send load
(the "fully-distributed / balanced" claim), and — when enabled — a
periodic audit of per-node protocol state size backing the o(n) memory
restriction of Section II.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Metrics", "state_size_words"]


@dataclass
class Metrics:
    """Counters accumulated by :class:`repro.congest.network.Network`."""

    rounds: int = 0
    messages: int = 0
    bits: int = 0
    sent_per_node: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    peak_state_words: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int64))
    memory_audited: bool = False

    def max_sent(self) -> int:
        """Largest number of messages sent by any single node."""
        return int(self.sent_per_node.max()) if self.sent_per_node.size else 0

    def send_imbalance(self) -> float:
        """Max/mean ratio of per-node sends (1.0 = perfectly balanced)."""
        if self.sent_per_node.size == 0:
            return 1.0
        mean = float(self.sent_per_node.mean())
        return float(self.sent_per_node.max()) / mean if mean > 0 else 1.0

    def max_state_words(self) -> int:
        """Largest protocol state (in words) observed at any node."""
        return int(self.peak_state_words.max()) if self.peak_state_words.size else 0

    def summary(self) -> dict[str, float]:
        """A flat dict of the headline numbers, for tables and benches."""
        out = {
            "rounds": float(self.rounds),
            "messages": float(self.messages),
            "bits": float(self.bits),
            "max_sent_per_node": float(self.max_sent()),
            "send_imbalance": self.send_imbalance(),
        }
        if self.memory_audited:
            out["max_state_words"] = float(self.max_state_words())
        return out


def state_size_words(obj: object, *, _depth: int = 0, _seen: set | None = None) -> int:
    """Approximate the size of a protocol state value in machine words.

    The accounting is deliberately coarse — scalars cost one word,
    containers cost one word of overhead plus their contents — because
    the claim being audited is asymptotic (o(n) words per node), not
    byte-exact.  Recursion is depth-capped; anything unrecognisable
    costs one word.  Shared containers are counted once (protocols and
    their sub-machines hold back-references to each other; without
    cycle detection the audit would multiply a node's true state by the
    number of machines pointing at it).
    """
    if _depth > 6:
        return 1
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return 1
    if _seen is None:
        _seen = set()
    if id(obj) in _seen:
        return 1
    _seen.add(id(obj))
    if isinstance(obj, np.ndarray):
        return 1 + int(obj.size)
    if isinstance(obj, dict):
        return 1 + sum(
            state_size_words(k, _depth=_depth + 1, _seen=_seen)
            + state_size_words(v, _depth=_depth + 1, _seen=_seen)
            for k, v in obj.items()
        )
    if isinstance(obj, (list, tuple, set, frozenset)):
        return 1 + sum(
            state_size_words(v, _depth=_depth + 1, _seen=_seen) for v in obj)
    if hasattr(obj, "__dict__"):
        return 1 + state_size_words(vars(obj), _depth=_depth + 1, _seen=_seen)
    return 1
