"""Per-node protocol interface and execution context.

A distributed algorithm is written as a :class:`Protocol` subclass; the
simulator instantiates one per node.  Protocols are *event-driven*: a
node's :meth:`Protocol.on_round` runs only in rounds where it received a
message or had scheduled a wake-up, which keeps simulation cost
proportional to actual activity (idle nodes are free, exactly as the
paper's round accounting assumes).

All interaction with the world goes through the :class:`Context`:

* ``ctx.send(dest, kind, *fields)`` — one CONGEST message (delivered at
  the start of the next round);
* ``ctx.request_wake(round_index)`` — ask to be scheduled in a future
  round even without incoming messages (nodes know the global round
  number in the synchronous model, so this is legal);
* ``ctx.halt()`` — local termination: the node will never run again.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import HaltedNodeError
from repro.congest.message import Message
from repro.congest.metrics import state_size_words

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.congest.network import Network

__all__ = ["Protocol", "Context"]


class Protocol(ABC):
    """Base class for the code run at each node.

    Subclasses keep their entire node-local state as instance
    attributes; :meth:`state_size` audits that state for the o(n)
    fully-distributed memory restriction (Section II).
    """

    def on_start(self, ctx: "Context") -> None:
        """Called once before round 0.  Default: do nothing."""

    @abstractmethod
    def on_round(self, ctx: "Context", inbox: list[Message]) -> None:
        """Called in every round where this node has messages or a wake-up.

        ``inbox`` holds the messages that arrived at the end of the
        previous round, sorted by sender id for determinism.
        """

    def state_size(self) -> int:
        """Approximate node state in machine words (see the memory audit)."""
        return state_size_words(vars(self)) if hasattr(self, "__dict__") else 1


class Context:
    """The node's window onto the network during a simulation."""

    __slots__ = ("_network", "node_id", "neighbors", "_neighbor_set", "rng", "halted")

    def __init__(self, network: "Network", node_id: int,
                 neighbors: list[int], rng: np.random.Generator):
        self._network = network
        self.node_id = node_id
        self.neighbors = neighbors
        self._neighbor_set = frozenset(neighbors)
        self.rng = rng
        self.halted = False

    @property
    def n(self) -> int:
        """Network size (given as input to every node; Section I-A)."""
        return self._network.n

    @property
    def round_index(self) -> int:
        """The current synchronous round number."""
        return self._network.round_index

    def is_neighbor(self, v: int) -> bool:
        """Whether ``v`` is adjacent (constant-time)."""
        return v in self._neighbor_set

    def send(self, dest: int, kind: str, *fields: int) -> None:
        """Send one CONGEST message to the adjacent node ``dest``.

        The message is delivered at the start of the next round.  Raises
        if the node is halted, ``dest`` is not a neighbour, the edge was
        already used this round, or the payload exceeds the bit budget.
        """
        if self.halted:
            raise HaltedNodeError(f"halted node {self.node_id} tried to send")
        self._network._enqueue(self.node_id, dest, (kind, *fields))  # noqa: SLF001

    def edge_free(self, dest: int) -> bool:
        """Whether the edge to ``dest`` is still unused by us this round.

        Lets protocols with several concurrent sub-activities pace their
        sends instead of violating the one-message-per-edge rule.
        """
        return self._network._edge_free(self.node_id, dest)  # noqa: SLF001

    def request_wake(self, round_index: int) -> None:
        """Schedule this node to run in ``round_index`` (a future round)."""
        if self.halted:
            raise HaltedNodeError(f"halted node {self.node_id} requested a wake-up")
        self._network._schedule_wake(self.node_id, round_index)  # noqa: SLF001

    def halt(self) -> None:
        """Terminate this node permanently (local termination)."""
        self.halted = True
