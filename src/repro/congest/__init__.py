"""Synchronous CONGEST-model simulator (Section I-A of the paper).

Write a distributed algorithm as a :class:`~repro.congest.node.Protocol`
subclass, instantiate a :class:`~repro.congest.network.Network` over a
:class:`~repro.graphs.Graph`, and ``run()`` it.  The engine enforces the
model rules (one O(log n)-bit message per edge-direction per round) and
meters rounds, messages, bits, send balance, and per-node memory.
"""

from repro.congest.errors import (
    BandwidthExceededError,
    CongestError,
    DuplicateSendError,
    HaltedNodeError,
    NotANeighborError,
    RoundLimitExceeded,
)
from repro.congest.message import Message, payload_bits, word_bits
from repro.congest.metrics import Metrics, state_size_words
from repro.congest.network import DEFAULT_BANDWIDTH_WORDS, Network, run_network
from repro.congest.node import Context, Protocol

__all__ = [
    "Network",
    "run_network",
    "Protocol",
    "Context",
    "Message",
    "Metrics",
    "state_size_words",
    "payload_bits",
    "word_bits",
    "DEFAULT_BANDWIDTH_WORDS",
    "CongestError",
    "BandwidthExceededError",
    "DuplicateSendError",
    "NotANeighborError",
    "HaltedNodeError",
    "RoundLimitExceeded",
]
