"""CONGEST-model simulators (Section I-A of the paper, and beyond it).

Write a distributed algorithm as a :class:`~repro.congest.node.Protocol`
subclass, instantiate a :class:`~repro.congest.network.Network` over a
:class:`~repro.graphs.Graph`, and ``run()`` it.  The engine enforces the
model rules (one O(log n)-bit message per edge-direction per round) and
meters rounds, messages, bits, send balance, and per-node memory.

The substrate a protocol runs on is described by a
:class:`~repro.congest.model.NetworkModel`: the default is the paper's
synchronous fault-free rounds; ``mode="async"`` dispatches the same
protocols onto the event-queue :class:`~repro.congest.async_engine.
AsyncNetwork` (per-edge latency distributions, message loss and
reordering via a :class:`~repro.congest.faults.FaultPlan`, node churn).
"""

from repro.congest.async_engine import AsyncAdversary, AsyncNetwork
from repro.congest.errors import (
    BandwidthExceededError,
    CongestError,
    DuplicateSendError,
    HaltedNodeError,
    NotANeighborError,
    RoundLimitExceeded,
)
from repro.congest.faults import FaultInjector, FaultPlan
from repro.congest.message import Message, payload_bits, word_bits
from repro.congest.metrics import Metrics, state_size_words
from repro.congest.model import LatencySpec, NetworkModel
from repro.congest.network import DEFAULT_BANDWIDTH_WORDS, Network, run_network
from repro.congest.node import Context, Protocol

__all__ = [
    "Network",
    "AsyncNetwork",
    "AsyncAdversary",
    "NetworkModel",
    "LatencySpec",
    "FaultPlan",
    "FaultInjector",
    "run_network",
    "Protocol",
    "Context",
    "Message",
    "Metrics",
    "state_size_words",
    "payload_bits",
    "word_bits",
    "DEFAULT_BANDWIDTH_WORDS",
    "CongestError",
    "BandwidthExceededError",
    "DuplicateSendError",
    "NotANeighborError",
    "HaltedNodeError",
    "RoundLimitExceeded",
]
