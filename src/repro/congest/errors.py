"""Exceptions raised by the CONGEST simulator.

Every violation of the model's rules (Section I-A of the paper) is a
distinct exception so tests can assert on the *specific* rule an
algorithm would break.
"""

from __future__ import annotations

__all__ = [
    "CongestError",
    "BandwidthExceededError",
    "DuplicateSendError",
    "NotANeighborError",
    "HaltedNodeError",
    "RoundLimitExceeded",
]


class CongestError(Exception):
    """Base class for CONGEST-model violations and simulator failures."""


class BandwidthExceededError(CongestError):
    """A message exceeded the per-edge per-round bit budget B = O(log n)."""


class DuplicateSendError(CongestError):
    """A node sent two messages over the same edge in one round.

    The CONGEST model allows exactly one B-bit message per edge-direction
    per round; pack fields into one message instead.
    """


class NotANeighborError(CongestError):
    """A node addressed a message to a non-adjacent node.

    Nodes may only communicate through the edges of the graph.
    """


class HaltedNodeError(CongestError):
    """A halted node attempted to send a message or schedule a wake-up."""


class RoundLimitExceeded(CongestError):
    """The simulation hit ``max_rounds`` before the protocol terminated."""
