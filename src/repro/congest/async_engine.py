"""The asynchronous event-queue network engine (``engine="async"``).

The synchronous :class:`~repro.congest.network.Network` advances a
global round counter in lockstep; this engine replaces the round loop
with a discrete-event simulation on a virtual clock:

* a heap-ordered event queue holds message deliveries, wake-ups, and
  control events (crashes, joins), each stamped with a float time;
* each directed edge carries a seeded latency distribution
  (:class:`~repro.congest.model.LatencySpec`): a message sent at time
  ``t`` is delivered at ``t + delay``, so messages *reorder* whenever
  two delays cross;
* a :class:`~repro.congest.faults.FaultPlan` adversary can drop
  messages and crash-stop nodes, and a churn schedule can crash or
  late-join nodes at arbitrary virtual times.

The *same* :class:`~repro.congest.node.Protocol` objects run unchanged:
the engine duck-types the ``Network`` surface the
:class:`~repro.congest.node.Context` uses (``_enqueue`` /
``_edge_free`` / ``_schedule_wake`` / ``round_index``), activates a
node whenever messages or a wake-up arrive for it, and enforces the
CONGEST rules per activation (one message per directed edge, the bit
budget).  ``ctx.round_index`` reads as ``floor(virtual time)``, so the
round-indexed deadlines synchronous protocols compute stay meaningful.

**Synchronous parity.**  With unit latency, no faults, and no churn,
the event queue degenerates into rounds: all deliveries land on
integer times, simultaneous events are batched, inboxes are sorted by
sender and nodes activated in id order — exactly the synchronous
schedule, with identical per-node RNG streams.  ``tests/
test_async_engine.py`` pins seed-for-seed equality for all four
congest algorithms; the registry gate requires it of every
``async_capable`` engine entry.

**Quiescence, not exceptions.**  Message loss, reordering, and churn
can drive synchronous protocols into states they were never written
for.  A protocol raising during an activation is *crash-stopped*
(halted, counted in ``async_summary()["protocol_errors"]``) rather
than aborting the simulation — the distributed-systems reading of a
node hitting an unhandled state.  Runs wind down by quiescence (empty
queue), global halt, or the watchdog budget; the runners' verified
readout means ``success`` still requires a genuine Hamiltonian cycle.
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.congest.errors import (
    BandwidthExceededError,
    DuplicateSendError,
    NotANeighborError,
    RoundLimitExceeded,
)
from repro.congest.faults import FaultPlan
from repro.congest.message import Message, payload_bits, word_bits
from repro.congest.metrics import Metrics
from repro.congest.model import NetworkModel
from repro.congest.network import DEFAULT_BANDWIDTH_WORDS
from repro.congest.node import Context, Protocol
from repro.graphs.adjacency import Graph

__all__ = ["AsyncNetwork", "AsyncAdversary"]

#: Event priorities within one instant: control events (crashes,
#: joins) apply before any delivery or wake-up at the same time —
#: mirroring the synchronous engine, where the fault filter crashes
#: nodes before building the round's inboxes.
_PRIO_CONTROL = 0
_PRIO_EVENT = 1


class AsyncAdversary:
    """The fault-plan adversary in event time.

    The synchronous :class:`~repro.congest.faults.FaultInjector` filters
    whole rounds; here drop decisions happen per message at send time
    (same plan semantics: windows and crash rounds compare against the
    message's *delivery* round, ``floor`` of its delivery time).  The
    counters and :meth:`summary` schema match the injector's, so
    ``detail["faults"]`` reads identically across engines.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.offered = 0
        self.dropped = 0
        self.crashed: set[int] = set()
        self._rng = np.random.default_rng(np.random.SeedSequence(plan.seed))

    def offer(self, src: int, dst: int, deliver_time: float) -> bool:
        """Count one send; True if the adversary eats the message."""
        self.offered += 1
        if src in self.crashed or dst in self.crashed:
            self.dropped += 1
            return True
        delivery_round = int(deliver_time)
        in_window = (self.plan.window is None
                     or self.plan.window[0] <= delivery_round <= self.plan.window[1])
        if in_window and self._link_dead(src, dst):
            self.dropped += 1
            return True
        if (in_window and self.plan.drop_probability > 0.0
                and self._rng.random() < self.plan.drop_probability):
            self.dropped += 1
            return True
        return False

    def drop_in_flight(self) -> None:
        """Count a message lost between send and delivery (late crash)."""
        self.dropped += 1

    def _link_dead(self, src: int, dst: int) -> bool:
        if not self.plan.dead_links:
            return False
        key = (src, dst) if src < dst else (dst, src)
        return key in self.plan.dead_links

    def summary(self) -> dict[str, float]:
        """Injection counters, same schema as ``FaultInjector.summary``."""
        return {
            "offered": float(self.offered),
            "dropped": float(self.dropped),
            "drop_rate": self.dropped / self.offered if self.offered else 0.0,
            "crashed_nodes": float(len(self.crashed)),
        }


class AsyncNetwork:
    """A lossy asynchronous network running synchronous-style protocols.

    Parameters mirror :class:`~repro.congest.network.Network` plus a
    :class:`~repro.congest.model.NetworkModel` carrying the async
    substrate (latency distribution, fault plan, churn schedule, the
    substrate seed).  ``record_events=True`` keeps a full event trace
    in ``self.events`` for determinism tests and debugging.
    """

    def __init__(
        self,
        graph: Graph,
        protocol_factory: Callable[[int], Protocol],
        *,
        seed: int = 0,
        model: NetworkModel | None = None,
        bandwidth_words: int = DEFAULT_BANDWIDTH_WORDS,
        audit_memory: bool = False,
        audit_every: int = 64,
        record_events: bool = False,
    ):
        self.graph = graph
        self.n = graph.n
        self.model = (model if model is not None
                      else NetworkModel(mode="async"))
        if not self.model.is_async():
            raise ValueError("AsyncNetwork needs a NetworkModel with "
                             "mode='async'")
        self.round_index = 0
        self.virtual_time = 0.0
        self._word_bits = word_bits(self.n)
        self._bandwidth_bits = 8 + bandwidth_words * self._word_bits
        self._audit_memory = audit_memory
        self._audit_every = max(1, audit_every)
        self._last_audit = 0

        # Same per-node RNG tree as the synchronous engine — the parity
        # contract depends on node v drawing the identical stream.
        seeds = np.random.SeedSequence(seed).spawn(self.n)
        self.protocols: list[Protocol] = []
        self._contexts: list[Context] = []
        for v in range(self.n):
            proto = protocol_factory(v)
            ctx = Context(self, v, graph.neighbor_list(v),
                          np.random.default_rng(seeds[v]))
            self.protocols.append(proto)
            self._contexts.append(ctx)

        #: Sync-engine observer slots, present so hooks written against
        #: ``Network`` fail loudly instead of silently doing nothing:
        #: :meth:`run` refuses to start if either was set.
        self.round_observer = None
        self.delivery_filter = None

        self.metrics = Metrics(
            sent_per_node=np.zeros(self.n, dtype=np.int64),
            peak_state_words=np.zeros(self.n, dtype=np.int64),
            memory_audited=audit_memory,
        )
        self.adversary = (AsyncAdversary(self.model.fault_plan)
                          if self.model.fault_plan is not None else None)

        # Event machinery.
        self._queue: list[tuple] = []  # (time, prio, seq, kind, data)
        self._seq = 0
        self._send_seq = 0
        self._now = 0.0
        self._edges_used: set[tuple[int, int]] = set()  # current activation
        self._wake_scheduled: set[tuple[int, float]] = set()
        self._edge_rngs: dict[tuple[int, int], np.random.Generator] = {}
        self._edge_last_seq: dict[tuple[int, int], int] = {}

        # Churn schedule: earliest join per node defers its start.
        self._join_at: dict[int, float] = {}
        for action, node, time in self.model.churn:
            if node >= self.n:
                raise ValueError(
                    f"churn event names node {node} but the graph has "
                    f"{self.n} nodes")
            if action == "join":
                self._join_at.setdefault(node, time)
        self._started = [v not in self._join_at for v in range(self.n)]
        self._churn_crashed: set[int] = set()
        self._churn_joined = 0

        # Accounting.
        self._delivered = 0
        self._dropped = 0
        self._undeliverable = 0
        self._reordered = 0
        self._activations = 0
        self._depth = [0] * self.n  # Lamport depth: longest causal chain
        self._max_depth = 0
        self._protocol_errors: list[tuple[int, str]] = []
        self._limited = False
        self.events: list[tuple] | None = [] if record_events else None

    # -- internal API used by Context (duck-types Network) ---------------------

    def _enqueue(self, src: int, dst: int, payload: tuple) -> None:
        ctx = self._contexts[src]
        if not ctx.is_neighbor(dst):
            raise NotANeighborError(f"node {src} is not adjacent to {dst}")
        key = (src, dst)
        if key in self._edges_used:
            raise DuplicateSendError(
                f"node {src} sent twice over edge ({src}, {dst}) in round "
                f"{self.round_index}; pack fields into one message"
            )
        bits = payload_bits(payload, self.n)
        if bits > self._bandwidth_bits:
            raise BandwidthExceededError(
                f"message {payload[0]!r} needs {bits} bits but the edge budget "
                f"is {self._bandwidth_bits} bits"
            )
        self._edges_used.add(key)
        self.metrics.messages += 1
        self.metrics.bits += bits
        self.metrics.sent_per_node[src] += 1
        deliver_at = self._now + self._latency(src, dst)
        if self.adversary is not None and self.adversary.offer(src, dst,
                                                               deliver_at):
            self._dropped += 1
            if self.events is not None:
                self.events.append(("drop", self._now, src, dst, payload[0]))
            return
        depth = self._depth[src] + 1
        self._push(deliver_at, _PRIO_EVENT, "deliver",
                   (src, dst, payload, depth, self._send_seq))
        self._send_seq += 1

    def _edge_free(self, src: int, dst: int) -> bool:
        return (src, dst) not in self._edges_used

    def _schedule_wake(self, node: int, round_index: int) -> None:
        if round_index <= self.round_index:
            raise ValueError(
                f"wake-up for node {node} must be in the future "
                f"(requested {round_index} at round {self.round_index})"
            )
        when = float(round_index)
        if (node, when) in self._wake_scheduled:
            return  # the synchronous engine coalesces per-round wakes too
        self._wake_scheduled.add((node, when))
        self._push(when, _PRIO_EVENT, "wake", node)

    # -- event plumbing --------------------------------------------------------

    def _push(self, time: float, prio: int, kind: str, data) -> None:
        heapq.heappush(self._queue, (time, prio, self._seq, kind, data))
        self._seq += 1

    def _latency(self, src: int, dst: int) -> float:
        spec = self.model.latency
        if spec.is_unit:
            return 1.0
        rng = self._edge_rngs.get((src, dst))
        if rng is None:
            # Per-directed-edge streams keyed by (substrate seed, src,
            # dst): an edge's delay sequence is independent of global
            # send order, so traces stay deterministic per seed.
            rng = np.random.default_rng(
                np.random.SeedSequence((self.model.seed, src, dst)))
            self._edge_rngs[(src, dst)] = rng
        return spec.sample(rng)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        *,
        max_rounds: int,
        until: Callable[["AsyncNetwork"], bool] | None = None,
        raise_on_limit: bool = True,
    ) -> Metrics:
        """Drain the event queue until quiescence or a budget.

        ``max_rounds`` is the synchronous watchdog; the virtual-time
        budget scales it by the latency distribution's mean (so a
        mean-2 latency gets twice the virtual time), and an activation
        cap backstops pathological event storms.  Hitting either
        budget raises :class:`RoundLimitExceeded` (or returns, when
        ``raise_on_limit`` is false) — exactly the synchronous
        contract.
        """
        if self.round_observer is not None or self.delivery_filter is not None:
            raise ValueError(
                "round_observer/delivery_filter are synchronous-engine "
                "observers; the async engine takes faults from the "
                "NetworkModel and records an event trace instead")
        self.round_index = 0
        self._now = 0.0
        if self.model.fault_plan is not None:
            for node, crash_at in sorted(self.model.fault_plan.crash_rounds.items()):
                self._push(float(crash_at), _PRIO_CONTROL, "crash", node)
        for action, node, time in self.model.churn:
            if action == "crash":
                self._push(time, _PRIO_CONTROL, "churn-crash", node)
            elif time == self._join_at.get(node):
                self._push(time, _PRIO_CONTROL, "join", node)
        for v in range(self.n):
            if self._started[v]:
                self._activate_start(v)
        self._maybe_audit(force=True)

        time_limit = float(max_rounds) * max(1.0, self.model.latency.mean())
        activation_cap = 4 * (self.n + 4) * max(1, max_rounds)
        limited = False
        while self._queue:
            if self._all_halted() or (until is not None and until(self)):
                break
            when = self._queue[0][0]
            if when > time_limit or self._activations >= activation_cap:
                limited = True
                break
            self._now = when
            self.round_index = int(when)
            self.virtual_time = when
            self._process_batch(self._pop_batch(when))
            self._maybe_audit()

        self._limited = limited
        if limited and raise_on_limit:
            raise RoundLimitExceeded(
                f"protocol did not quiesce within the watchdog budget "
                f"(max_rounds={max_rounds}, virtual time limit "
                f"{time_limit:g})")
        self.metrics.rounds = self.round_index
        self._maybe_audit(force=True)
        return self.metrics

    def _pop_batch(self, when: float) -> list[tuple]:
        batch = []
        while self._queue and self._queue[0][0] == when:
            batch.append(heapq.heappop(self._queue))
        return batch

    def _process_batch(self, batch: list[tuple]) -> None:
        """Apply one instant: control events, then deliveries/wake-ups.

        Simultaneous events batch into one activation per node with the
        inbox sorted by sender — under unit latency this *is* the
        synchronous round schedule, which is what makes zero-latency
        parity exact rather than approximate.
        """
        inboxes: dict[int, list[Message]] = {}
        depths: dict[int, int] = {}
        wakes: set[int] = set()
        for when, _prio, _seq, kind, data in batch:
            if kind == "crash":
                self._crash(data, self.adversary.crashed)
            elif kind == "churn-crash":
                self._crash(data, self._churn_crashed)
            elif kind == "join":
                self._join(data)
            elif kind == "wake":
                self._wake_scheduled.discard((data, when))
                if self._started[data] and not self._contexts[data].halted:
                    wakes.add(data)
                    if self.events is not None:
                        self.events.append(("wake", when, data))
            elif kind == "deliver":
                self._deliver(when, data, inboxes, depths)
        active = set(inboxes)
        active.update(wakes)
        for v in sorted(active):
            ctx = self._contexts[v]
            if ctx.halted:
                continue  # crash-stopped by a control event this instant
            inbox = inboxes.get(v, [])
            inbox.sort(key=lambda msg: msg.sender)
            if v in depths:
                self._depth[v] = max(self._depth[v], depths[v])
            self._edges_used.clear()
            self._activations += 1
            self._run_protocol(v, self.protocols[v].on_round, ctx, inbox)

    def _deliver(self, when: float, data, inboxes, depths) -> None:
        src, dst, payload, depth, send_seq = data
        if self.adversary is not None and (src in self.adversary.crashed
                                           or dst in self.adversary.crashed):
            # Crashed between send and delivery: the in-flight message
            # is lost, counted against the adversary like the
            # synchronous filter does.
            self.adversary.drop_in_flight()
            self._dropped += 1
            return
        if (not self._started[dst] or self._contexts[dst].halted
                or src in self._churn_crashed):
            self._undeliverable += 1
            self._dropped += 1
            return
        last = self._edge_last_seq.get((src, dst), -1)
        if send_seq < last:
            self._reordered += 1
        else:
            self._edge_last_seq[(src, dst)] = send_seq
        self._delivered += 1
        if depth > self._max_depth:
            self._max_depth = depth
        inboxes.setdefault(dst, []).append(Message(src, payload))
        depths[dst] = max(depths.get(dst, 0), depth)
        if self.events is not None:
            self.events.append(("deliver", when, src, dst, payload[0],
                                send_seq))

    def _crash(self, node: int, registry: set[int]) -> None:
        ctx = self._contexts[node]
        if node in registry or ctx.halted:
            registry.add(node)
            return
        registry.add(node)
        ctx.halted = True
        if self.events is not None:
            self.events.append(("crash", self._now, node))

    def _join(self, node: int) -> None:
        if self._started[node] or self._contexts[node].halted:
            return
        self._started[node] = True
        self._churn_joined += 1
        if self.events is not None:
            self.events.append(("join", self._now, node))
        self._activate_start(node)

    def _activate_start(self, v: int) -> None:
        self._edges_used.clear()
        self._run_protocol(v, self.protocols[v].on_start, self._contexts[v])

    def _run_protocol(self, v: int, fn, *args) -> None:
        try:
            fn(*args)
        except Exception as exc:  # noqa: BLE001 — crash-stop the node, not the run
            # Loss, reordering, and churn can push synchronous
            # protocols into states they were never written for; the
            # honest asynchronous reading is a node failure, not a
            # simulator abort.  Verified readout keeps this safe:
            # success still requires a checked Hamiltonian cycle.
            self._protocol_errors.append((v, f"{type(exc).__name__}: {exc}"))
            self._contexts[v].halted = True
            if self.events is not None:
                self.events.append(("error", self._now, v,
                                    type(exc).__name__))

    # -- inspection ------------------------------------------------------------

    def context(self, v: int) -> Context:
        """The execution context of node ``v`` (tests / result readout)."""
        return self._contexts[v]

    def _all_halted(self) -> bool:
        return all(ctx.halted for ctx in self._contexts)

    def _maybe_audit(self, *, force: bool = False) -> None:
        if not self._audit_memory:
            return
        if not force and self.round_index - self._last_audit < self._audit_every:
            return
        self._last_audit = self.round_index
        peaks = self.metrics.peak_state_words
        for v, proto in enumerate(self.protocols):
            words = proto.state_size()
            if words > peaks[v]:
                peaks[v] = words

    def async_summary(self) -> dict:
        """Event-level counters for ``detail["async"]``.

        ``depth`` is the longest causal message chain (Lamport depth);
        ``stretch`` is virtual completion time over that depth — 1.0
        under unit latency for delivery-driven runs, growing with the
        latency distribution's tail.  ``dropped`` counts every message
        lost in flight (adversary drops plus undeliverable ones —
        recipients halted, crashed, or not yet joined).  ``limited``
        is 1 when the run ended on the watchdog budget rather than by
        quiescence or global halt (the bench's termination criterion).
        """
        depth = self._max_depth
        return {
            "virtual_time": round(self.virtual_time, 9),
            "limited": int(self._limited),
            "delivered": self._delivered,
            "dropped": self._dropped,
            "undeliverable": self._undeliverable,
            "reordered": self._reordered,
            "activations": self._activations,
            "depth": depth,
            "stretch": (round(self.virtual_time / depth, 9) if depth
                        else None),
            "protocol_errors": len(self._protocol_errors),
            "churn_crashed": len(self._churn_crashed),
            "churn_joined": self._churn_joined,
        }
