"""The Upcast algorithm (Section III) and the trivial O(m) baseline.

The "conceptually much simpler, centralized" approach: elect a leader,
build a BFS tree, have every node sample ``Theta(log n)`` incident
edges and pipeline them up the tree; the root solves locally with the
sequential rotation algorithm and routes each node's cycle neighbours
back down.  Theorems 17/19: ``O(log n / p)`` rounds whp, with the BFS
tree balanced enough (Lemma 18) that the pipeline bottleneck is the
root's busiest subtree.

Not fully distributed: the root stores the whole sampled multigraph —
``Theta(n log n)`` words, violating the o(n) memory restriction of
Section II.  Experiment E8 exhibits exactly this via the memory audit.

``sample_all=True`` turns the same protocol into the paper's *trivial*
baseline (Section I: "it is rather trivial to solve a problem in O(m)
rounds"): every edge is collected, nothing is sampled.

Message kinds: ``up(a, b)`` sampled edge, ``mem(v)`` membership record
(builds the downcast routing tables), ``updone`` end-of-subtree marker,
``set(v, pred, succ)`` routed assignment, ``ddone`` end-of-downcast
marker, ``fail`` local-solve failure broadcast.
"""

from __future__ import annotations

import math
from collections import deque

from repro.analysis.bounds import diameter_budget
from repro.congest.message import Message
from repro.congest.network import Network
from repro.congest.node import Context, Protocol
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.primitives.bfs import BfsTree
from repro.primitives.floodmin import FloodMin
from repro.primitives.submachine import SubMachineHost
from repro.sequential.posa import posa_cycle
from repro.verify.hamiltonicity import CycleViolation, cycle_from_successors, verify_cycle

__all__ = ["UpcastProtocol", "run_upcast", "run_trivial", "upcast_sample_size"]


def upcast_sample_size(n: int, c_prime: float = 3.0) -> int:
    """The paper's ``c' log n`` per-node edge sample (Section III step 3)."""
    if n < 2:
        return 1
    return max(1, math.ceil(c_prime * math.log(n)))


class UpcastProtocol(Protocol, SubMachineHost):
    """Per-node Upcast: elect -> BFS -> upcast samples -> solve -> downcast."""

    def __init__(self, node_id: int, n: int, *,
                 c_prime: float = 3.0, sample_all: bool = False, solver_restarts: int = 8):
        SubMachineHost.__init__(self)
        self.node_id = node_id
        self.n = n
        self.c_prime = c_prime
        self.sample_all = sample_all
        self.solver_restarts = solver_restarts

        self.election: FloodMin | None = None
        self.bfs: BfsTree | None = None
        self._stage = "elect"

        self._up_queue: deque[tuple] = deque()
        self._children_done: set[int] = set()
        self._route: dict[int, int] = {}  # member -> child owning it
        self._down_queues: dict[int, deque[tuple]] = {}
        self._down_done_pending: set[int] = set()
        self._got_assignment = False
        self._down_done = False
        self._pump_round = -1

        # Root-only state (this is what makes the algorithm centralized).
        self._edges: set[tuple[int, int]] = set()
        self._updone_count = 0

        self.succ = -1
        self.pred = -1
        self.outcome_success = False
        self.finished = False

    # -- protocol interface ------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.election = FloodMin("lm", ctx.neighbors, diameter_budget(self.n))
        self.activate(ctx, self.election)

    def on_round(self, ctx: Context, inbox: list[Message]) -> None:
        routed = [m for m in inbox if "." in m.payload[0]]
        direct = [m for m in inbox if "." not in m.payload[0]]
        self.dispatch(ctx, routed)
        for message in direct:
            self._on_direct(ctx, message)
        self._advance(ctx)
        self._pump(ctx)

    # -- stage machine -------------------------------------------------------------

    def _advance(self, ctx: Context) -> None:
        if self._stage == "elect" and self.election.done:
            self._stage = "bfs"
            deadline = ctx.round_index + 3 * diameter_budget(self.n) + 8
            self.bfs = BfsTree("bt", ctx.neighbors,
                               is_root=self.election.is_leader, deadline=deadline,
                               tie_break="random")
            self.activate(ctx, self.bfs)
        if self._stage == "bfs" and self.bfs is not None and self.bfs.done:
            if self.bfs.failed:
                self._stage = "done"
                self.finished = True
                ctx.halt()
                return
            self._stage = "upcast"
            self._begin_upcast(ctx)

    def _begin_upcast(self, ctx: Context) -> None:
        """Sample edges (step 3) and start the pipelined convergecast."""
        if self.sample_all:
            sampled = [v for v in ctx.neighbors if self.node_id < v]
        else:
            size = min(len(ctx.neighbors), upcast_sample_size(self.n, self.c_prime))
            picks = ctx.rng.choice(len(ctx.neighbors), size=size, replace=False)
            sampled = [ctx.neighbors[int(i)] for i in sorted(picks)]
        if self.bfs.is_root:
            self._edges.update(_norm(self.node_id, v) for v in sampled)
            self._route = {}
            self._maybe_solve(ctx)
            return
        self._up_queue.append(("mem", self.node_id))
        for v in sampled:
            self._up_queue.append(("up", self.node_id, v))
        if not self.bfs.children:
            self._up_queue.append(("updone",))

    # -- direct (non-submachine) message handling --------------------------------------

    def _on_direct(self, ctx: Context, message: Message) -> None:
        kind = message.payload[0]
        if kind == "up":
            a, b = message.payload[1], message.payload[2]
            if self.bfs.is_root:
                self._edges.add(_norm(a, b))
            else:
                self._up_queue.append(("up", a, b))
        elif kind == "mem":
            member = message.payload[1]
            self._route[member] = message.sender
            if not self.bfs.is_root:
                self._up_queue.append(("mem", member))
        elif kind == "updone":
            self._children_done.add(message.sender)
            if len(self._children_done) == len(self.bfs.children):
                if self.bfs.is_root:
                    self._updone_count = 1
                    self._maybe_solve(ctx)
                else:
                    self._up_queue.append(("updone",))
        elif kind == "set":
            target, pred, succ = message.payload[1:4]
            if target == self.node_id:
                self.pred, self.succ = pred, succ
                self._got_assignment = True
                self._maybe_finish(ctx)
            else:
                child = self._route.get(target, -1)
                if child >= 0:
                    self._down_queues.setdefault(child, deque()).append(
                        ("set", target, pred, succ))
        elif kind == "ddone":
            self._down_done_pending = set(self.bfs.children)
            self._down_done = True
            self._maybe_finish(ctx)
        elif kind == "fail":
            for child in self.bfs.children:
                ctx.send(child, "fail")
            self.finished = True
            ctx.halt()

    # -- root: local solve and downcast (step 4) -----------------------------------------

    def _maybe_solve(self, ctx: Context) -> None:
        if not self.bfs.is_root:
            return
        if len(self._children_done) < len(self.bfs.children):
            return
        adjacency: dict[int, list[int]] = {v: [] for v in range(self.n)}
        for a, b in sorted(self._edges):
            adjacency[a].append(b)
            adjacency[b].append(a)
        cycle = posa_cycle(self.n, adjacency, rng=ctx.rng,
                           restarts=self.solver_restarts)
        if cycle is None:
            for child in self.bfs.children:
                ctx.send(child, "fail")
            self.finished = True
            ctx.halt()
            return
        for i, v in enumerate(cycle):
            pred = cycle[(i - 1) % self.n]
            succ = cycle[(i + 1) % self.n]
            if v == self.node_id:
                self.pred, self.succ = pred, succ
                self._got_assignment = True
                continue
            child = self._route.get(v, -1)
            self._down_queues.setdefault(child, deque()).append(("set", v, pred, succ))
        self._down_done_pending = set(self.bfs.children)
        self._down_done = True
        self.outcome_success = True
        self._maybe_finish(ctx)

    # -- the two pipelines ------------------------------------------------------------------

    def _pump(self, ctx: Context) -> None:
        """Move one item per tree edge per round; reschedule while busy."""
        if self._stage != "upcast" or self._pump_round == ctx.round_index:
            return
        self._pump_round = ctx.round_index
        busy = False
        if self._up_queue and not self.bfs.is_root:
            item = self._up_queue.popleft()
            ctx.send(self.bfs.parent, *item)
            busy = busy or bool(self._up_queue)
        for child, queue in self._down_queues.items():
            if queue:
                ctx.send(child, *queue.popleft())
                busy = busy or bool(queue)
            elif child in self._down_done_pending and self._down_done:
                ctx.send(child, "ddone")
                self._down_done_pending.discard(child)
        if self._down_done and not self._down_done_pending and not any(
                q for q in self._down_queues.values()):
            self._maybe_finish(ctx)
        if busy or self._down_done_pending:
            ctx.request_wake(ctx.round_index + 1)

    def _maybe_finish(self, ctx: Context) -> None:
        if self.finished:
            return
        queues_empty = not any(q for q in self._down_queues.values())
        if self._got_assignment and self._down_done and queues_empty \
                and not self._down_done_pending and not self._up_queue:
            self.outcome_success = True
            self.finished = True
            ctx.halt()


def _norm(a: int, b: int) -> tuple[int, int]:
    return (a, b) if a < b else (b, a)


def _run_centralized(graph: Graph, algorithm: str, *, sample_all: bool,
                     c_prime: float, seed: int, max_rounds: int | None,
                     audit_memory: bool, solver_restarts: int) -> RunResult:
    n = graph.n
    if max_rounds is None:
        max_rounds = 20 * diameter_budget(n) + 4 * n * (2 + upcast_sample_size(n, c_prime)) + 512
        if sample_all:
            max_rounds += 4 * graph.m
    network = Network(
        graph,
        lambda v: UpcastProtocol(v, n, c_prime=c_prime, sample_all=sample_all,
                                 solver_restarts=solver_restarts),
        seed=seed,
        audit_memory=audit_memory,
    )
    metrics = network.run(max_rounds=max_rounds, raise_on_limit=False)
    protocols: list[UpcastProtocol] = network.protocols  # type: ignore[assignment]
    ok = bool(protocols) and all(p.finished for p in protocols) and all(
        p.succ >= 0 for p in protocols
    )
    cycle = None
    if ok:
        try:
            cycle = cycle_from_successors({p.node_id: p.succ for p in protocols})
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    detail = {"sample_size": 0 if sample_all else upcast_sample_size(n, c_prime)}
    if audit_memory:
        detail["max_state_words"] = metrics.max_state_words()
        detail["state_words"] = metrics.peak_state_words.tolist()
    return RunResult(
        algorithm=algorithm,
        success=ok,
        cycle=cycle,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
        engine="congest",
        detail=detail,
    )


def run_upcast(graph: Graph, *, c_prime: float = 3.0, seed: int = 0,
               max_rounds: int | None = None, audit_memory: bool = False,
               solver_restarts: int = 8) -> RunResult:
    """Run the Upcast algorithm (Section III-A) in the CONGEST simulator."""
    return _run_centralized(graph, "upcast", sample_all=False, c_prime=c_prime,
                            seed=seed, max_rounds=max_rounds,
                            audit_memory=audit_memory, solver_restarts=solver_restarts)


def run_trivial(graph: Graph, *, seed: int = 0, max_rounds: int | None = None,
                audit_memory: bool = False, solver_restarts: int = 8) -> RunResult:
    """The trivial O(m) baseline: collect every edge at the root, solve there."""
    return _run_centralized(graph, "trivial", sample_all=True, c_prime=0.0,
                            seed=seed, max_rounds=max_rounds,
                            audit_memory=audit_memory, solver_restarts=solver_restarts)
