"""Standalone distributed DRA: Algorithm 1 run on a whole graph.

This is Theorem 2's setting — one rotation walk over the entire network
(the building block that DHC1/DHC2 Phase 1 runs per partition).  The
protocol stacks the standard setup on top of the walk:

1. flood-min leader election (the "only one v becomes head" init of
   Algorithm 1, line 5);
2. BFS spanning tree from the leader — the broadcast backbone for
   rotation renumbering (DESIGN.md substitution 3);
3. the :class:`~repro.core.rotation.RotationWalk` itself.

``run_dra`` wraps the whole thing into one call returning a
:class:`~repro.engines.results.RunResult`.
"""

from __future__ import annotations

from repro.analysis.bounds import diameter_budget, dra_round_budget, dra_step_budget
from repro.congest.message import Message
from repro.congest.model import build_network, coerce_network_model
from repro.congest.node import Context, Protocol
from repro.core.rotation import RotationWalk, VirtualEdge
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.primitives.bfs import BfsTree
from repro.primitives.floodmin import FloodMin
from repro.primitives.submachine import SubMachineHost
from repro.verify.hamiltonicity import CycleViolation, cycle_from_successors, verify_cycle

__all__ = ["DraProtocol", "run_dra"]

_STAGE_ELECT = 0
_STAGE_BFS = 1
_STAGE_WALK = 2
_STAGE_DONE = 3


class DraProtocol(Protocol, SubMachineHost):
    """Per-node protocol: elect -> build tree -> rotation walk."""

    def __init__(self, node_id: int, n: int, *, step_budget: int | None = None):
        SubMachineHost.__init__(self)
        self.node_id = node_id
        self.n = n
        self.step_budget = step_budget if step_budget is not None else dra_step_budget(n)
        self.stage = _STAGE_ELECT
        self.election: FloodMin | None = None
        self.bfs: BfsTree | None = None
        self.walk: RotationWalk | None = None
        self.outcome_success = False
        self._walk_at = -1

    # -- protocol interface ------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        self.election = FloodMin("lm", ctx.neighbors, diameter_budget(self.n))
        self.activate(ctx, self.election)

    def on_round(self, ctx: Context, inbox: list[Message]) -> None:
        self.dispatch(ctx, inbox)
        self._advance(ctx)

    # -- stage machine -------------------------------------------------------------

    def _advance(self, ctx: Context) -> None:
        if self.stage == _STAGE_ELECT and self.election.done:
            self.stage = _STAGE_BFS
            deadline = ctx.round_index + 3 * diameter_budget(self.n) + 8
            self.bfs = BfsTree(
                "bt", ctx.neighbors, is_root=self.election.is_leader, deadline=deadline
            )
            self.activate(ctx, self.bfs)
        if self.stage == _STAGE_BFS and self.bfs is not None and self.bfs.done:
            if self.bfs.failed:
                self.stage = _STAGE_DONE
                ctx.halt()
                return
            # Start one round later: the root's BFS commit and the walk's
            # first progress message must not share an edge in one round.
            if self._walk_at < 0:
                self._walk_at = ctx.round_index + 1
                ctx.request_wake(self._walk_at)
                return
            if ctx.round_index < self._walk_at:
                return
            self.stage = _STAGE_WALK
            self.walk = RotationWalk(
                "rw",
                self.node_id,
                [VirtualEdge(peer) for peer in ctx.neighbors],
                tree_neighbors=self.bfs.tree_neighbors,
                tree_depth=max(1, self.bfs.tree_depth),
                size=self.bfs.size,
                is_initial_head=self.bfs.is_root,
                step_budget=self.step_budget,
                send=self._walk_send,
            )
            self.activate(ctx, self.walk)
        if self.stage == _STAGE_WALK and self.walk is not None and self.walk.done:
            self.stage = _STAGE_DONE
            self.outcome_success = self.walk.success
            ctx.halt()

    def _walk_send(self, ctx: Context, edge: VirtualEdge, suffix: str, *fields: int) -> None:
        ctx.send(edge.peer, f"rw.{suffix}", *fields, self.node_id)


def run_dra(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
    max_rounds: int | None = None,
    audit_memory: bool = False,
    network_hook=None,
    fault_plan=None,
    network=None,
) -> RunResult:
    """Run Algorithm 1 on ``graph`` in the CONGEST simulator.

    Returns a verified result: ``success`` is true only if every node
    terminated successfully *and* the assembled successor map is a
    genuine Hamiltonian cycle of ``graph``.

    ``network`` is a :class:`~repro.congest.model.NetworkModel` (or its
    JSON dict/string form) describing the substrate: sync vs async
    engine, bandwidth, fault plan, latency distribution, churn.  The
    legacy ``network_hook=`` / ``fault_plan=`` keywords are deprecated
    shims folding into it.  When the model has a fault plan the
    adversary's counters appear under ``detail["faults"]``; async runs
    additionally report ``detail["async"]`` (see
    ``AsyncNetwork.async_summary``).
    """
    n = graph.n
    model = coerce_network_model(network, network_hook=network_hook,
                                 fault_plan=fault_plan, caller="run_dra")
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    limit = max_rounds if max_rounds is not None else dra_round_budget(n, budget)
    network_, injector = build_network(
        graph,
        lambda v: DraProtocol(v, n, step_budget=budget),
        seed=seed,
        model=model,
        audit_memory=audit_memory,
    )
    metrics = network_.run(max_rounds=limit, raise_on_limit=False)

    protocols: list[DraProtocol] = network_.protocols  # type: ignore[assignment]
    walks = [p.walk for p in protocols]
    ok = all(w is not None and w.done and w.success for w in walks)
    steps = max((w.steps_seen for w in walks if w is not None), default=0)
    cycle = None
    if ok:
        successors = {v: walks[v].succ for v in range(n)}
        try:
            cycle = cycle_from_successors(successors)
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok = False
            cycle = None
    detail = {"fail_codes": sorted({w.fail_code for w in walks if w is not None and w.fail_code})}
    if injector is not None:
        detail["faults"] = injector.summary()
    if model.is_async():
        detail["async"] = network_.async_summary()
    if audit_memory or model.audit_memory:
        detail["max_state_words"] = metrics.max_state_words()
        detail["state_words"] = metrics.peak_state_words.tolist()
    return RunResult(
        algorithm="dra",
        success=ok,
        cycle=cycle,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
        steps=steps,
        engine="async" if model.is_async() else "congest",
        detail=detail,
    )
