"""DHC2 — Algorithm 3: the paper's general fully-distributed algorithm.

For ``p = c ln n / n**delta`` the graph is partitioned into
``K = n**(1-delta)`` random colour classes; each class builds its own
sub-Hamiltonian-cycle (Phase 1, shared with DHC1), and ``ceil(log2 K)``
levels of pairwise parallel merges stitch the class cycles into one
Hamiltonian cycle (Phase 2, Fig. 3).  Theorem 10: success whp in
``O(n**delta * ln^2 n / ln ln n)`` rounds.

Per-node flow (this host composes the sub-machines):

1. Phase 1 (:class:`~repro.core.phase1.PartitionedPhase1Protocol`):
   colour draw -> election -> BFS tree -> rotation walk.
2. For each level ``l = 1..ceil(log2 K)``:
   a. run a :class:`~repro.core.merge.MergeMachine` for this node's role
      (active / passive / idle, from its deterministic level colour);
   b. if the cycle merged, rebuild the class BFS tree (root = the new
      cycle position 1) — the broadcast backbone for the next level.
3. When one colour remains, the cycle state *is* the Hamiltonian cycle;
   ``run_dhc2`` assembles and verifies it.

Synchronisation is entirely event-driven: a node that reaches level
``l`` early simply has its messages buffered by laggards' hosts until
they activate the level-``l`` machine, so no global round schedule (and
no wasted watchdog rounds) appears in the measured round counts.
"""

from __future__ import annotations

import math

from repro.analysis.bounds import diameter_budget, dra_round_budget
from repro.congest.model import build_network, coerce_network_model
from repro.congest.node import Context
from repro.core.merge import MergeMachine
from repro.core.phase1 import (
    PartitionedPhase1Protocol,
    color_at_level,
    colors_at_level,
    merge_levels,
)
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.primitives.bfs import BfsTree
from repro.verify.hamiltonicity import CycleViolation, cycle_from_successors, verify_cycle

__all__ = ["Dhc2Protocol", "run_dhc2", "default_color_count"]


def default_color_count(n: int, delta: float) -> int:
    """The paper's ``n**(1-delta)`` partition count, at least 1."""
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    return max(1, round(n ** (1.0 - delta)))


class Dhc2Protocol(PartitionedPhase1Protocol):
    """Per-node DHC2: Phase 1 + ``ceil(log2 K)`` merge levels."""

    def __init__(self, node_id: int, n: int, k: int):
        super().__init__(node_id, n, k)
        self.level = 0
        self.total_levels = merge_levels(k)
        self.merge: MergeMachine | None = None
        self.rebuild: BfsTree | None = None

    # -- phase-1 handoff ------------------------------------------------------------

    def on_phase1_complete(self, ctx: Context) -> None:
        self.level = 1
        self._enter_level(ctx)

    # -- merge levels -------------------------------------------------------------------

    def _enter_level(self, ctx: Context) -> None:
        if self.level > self.total_levels:
            self.finished = True
            self.request_halt(ctx)
            return
        my_color = color_at_level(self.color, self.level)
        remaining = colors_at_level(self.k, self.level)
        if my_color % 2 == 1 and my_color + 1 <= remaining:
            role, partner = "active", my_color + 1
        elif my_color % 2 == 0:
            role, partner = "passive", my_color - 1
        else:
            role, partner = "idle", 0
        cross = sorted(
            v for v, c1 in self.neighbor_colors.items()
            if partner and color_at_level(c1, self.level) == partner
        )
        is_root = self.cycindex == 1
        children = len(self.tree_neighbors) - (0 if is_root else 1)
        self.merge = MergeMachine(
            f"m{self.level}",
            node_id=self.node_id,
            role=role,
            cycindex=self.cycindex,
            succ=self.succ,
            pred=self.pred,
            cycle_size=self.cycle_size,
            tree_neighbors=self.tree_neighbors,
            is_root=is_root,
            tree_children_count=max(0, children),
            cross_neighbors=cross,
            send=self._merge_send,
            is_graph_neighbor=ctx.is_neighbor,
        )
        self.activate(ctx, self.merge)
        self.advance_hook(ctx)

    def _merge_send(self, ctx: Context, dest: int, kind: str, *fields: int) -> None:
        self.queue_send(ctx, dest, kind, *fields)

    def advance_hook(self, ctx: Context) -> None:
        if self.aborted or self.finished:
            return
        if self.merge is not None and self.merge.done:
            merge, self.merge = self.merge, None
            self.deactivate(merge)
            if merge.failed:
                self._fail_local(ctx)
                return
            if merge.merged:
                self.cycindex = merge.new_cycindex
                self.succ = merge.new_succ
                self.pred = merge.new_pred
                self.cycle_size = merge.new_size
                if self.level < self.total_levels:
                    self._start_rebuild(ctx)
                    return
            self.level += 1
            self._enter_level(ctx)
            return
        if self.rebuild is not None and self.rebuild.done:
            rebuild, self.rebuild = self.rebuild, None
            self.deactivate(rebuild)
            if rebuild.failed or rebuild.size != self.cycle_size:
                self._fail_local(ctx)
                return
            self.tree_neighbors = rebuild.tree_neighbors
            self.tree_depth = max(1, rebuild.tree_depth)
            self.level += 1
            self._enter_level(ctx)

    def _start_rebuild(self, ctx: Context) -> None:
        next_color = color_at_level(self.color, self.level + 1)
        peers = sorted(
            v for v, c1 in self.neighbor_colors.items()
            if color_at_level(c1, self.level + 1) == next_color
        )
        deadline = ctx.round_index + 6 * diameter_budget(self.cycle_size) + 16
        self.rebuild = BfsTree(
            f"b{self.level}", peers, is_root=self.cycindex == 1, deadline=deadline,
            send=self._merge_send,
        )
        self.activate(ctx, self.rebuild)
        self.advance_hook(ctx)


def dhc2_round_budget(n: int, k: int) -> int:
    """Watchdog ``max_rounds`` for a DHC2 run (failure backstop only)."""
    part = max(3, (2 * n) // max(1, k))
    levels = merge_levels(k)
    per_level = 30 * diameter_budget(n) + 8 * int(math.log(n + 2)) + 300
    return dra_round_budget(part) + levels * per_level + 6 * diameter_budget(n) + 512


def run_dhc2(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
    audit_memory: bool = False,
    network_hook=None,
    fault_plan=None,
    network=None,
) -> RunResult:
    """Run Algorithm 3 on ``graph`` in the CONGEST simulator.

    ``delta`` chooses the paper's partition count ``K = n**(1-delta)``
    (override with ``k``).  Success requires every node to finish with a
    cycle of size ``n`` *and* the assembled successor map to verify as a
    Hamiltonian cycle of the input graph.

    ``network`` is a :class:`~repro.congest.model.NetworkModel` (or its
    JSON form) describing the substrate; the legacy ``network_hook=`` /
    ``fault_plan=`` keywords are deprecated shims folding into it.  A
    fault plan's counters appear under ``detail["faults"]``; async runs
    also report ``detail["async"]``.
    """
    n = graph.n
    model = coerce_network_model(network, network_hook=network_hook,
                                 fault_plan=fault_plan, caller="run_dhc2")
    colors = k if k is not None else default_color_count(n, delta)
    limit = max_rounds if max_rounds is not None else dhc2_round_budget(n, colors)
    network_, injector = build_network(
        graph,
        lambda v: Dhc2Protocol(v, n, colors),
        seed=seed,
        model=model,
        audit_memory=audit_memory,
        default_bandwidth=12,
    )
    metrics = network_.run(max_rounds=limit, raise_on_limit=False)

    protocols: list[Dhc2Protocol] = network_.protocols  # type: ignore[assignment]
    ok = bool(protocols) and all(
        p.finished and not p.aborted and p.cycle_size == n for p in protocols
    )
    cycle = None
    if ok:
        successors = {p.node_id: p.succ for p in protocols}
        try:
            cycle = cycle_from_successors(successors)
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    steps = max((p.walk.steps_seen for p in protocols if p.walk is not None), default=0)
    detail = {
        "k": colors,
        "levels": merge_levels(colors),
        "aborted": sum(p.aborted for p in protocols),
    }
    if injector is not None:
        detail["faults"] = injector.summary()
    if model.is_async():
        detail["async"] = network_.async_summary()
    if audit_memory or model.audit_memory:
        detail["max_state_words"] = metrics.max_state_words()
        detail["state_words"] = metrics.peak_state_words.tolist()
    return RunResult(
        algorithm="dhc2",
        success=ok,
        cycle=cycle,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
        steps=steps,
        engine="async" if model.is_async() else "congest",
        detail=detail,
    )
