"""CRE — cycles, rotations, extensions (Alon–Krivelevich, arXiv:1903.03007).

The CRE algorithm grows a Hamilton path with the three moves its name
lists, spending expected ``O(n / p)`` time on ``G(n, p)`` above the
Hamiltonicity threshold (linear in the input size):

* **extension** — the path head moves to an unvisited neighbour;
* **cycle extension** — when the head is stuck but closes a cycle with
  the tail, re-open that cycle at a node with an unvisited neighbour
  and extend from there (the move that escapes "trapped" components a
  plain rotation walk cannot leave);
* **rotation** — otherwise, a Pósa rotation at a random on-path
  neighbour of the head re-exposes a different endpoint.

This reproduction implements the randomized Monte Carlo core with a
step budget; the paper's deterministic exhaustive-search fallback
(which upgrades the algorithm to a Las Vegas decider) is out of scope
and recorded as a ROADMAP follow-up — a budget exhaustion is reported
as an honest failure, exactly like the source paper's algorithms.

The solver is sequential (the whole graph in one place, ``rounds =
0``), so it registers as the ``sequential`` reference engine for
algorithm ``"cre"``; :mod:`repro.engines.fast_cre` replays the same
decision sequence on CSR position arrays and must match cycle, steps,
and failure codes seed for seed (the registry ``parity`` declaration).

Decision contract shared by both engines (one RNG stream,
``numpy.random.default_rng(seed)``):

1. the start vertex is one ``integers(n)`` draw;
2. each step draws exactly one ``integers(k)`` per non-empty choice
   set, in this order: extension candidates (unvisited neighbours of
   the head, ascending id), else cycle-extension pivot (path nodes
   with an unvisited neighbour, *path order*) then its target
   (ascending id), else rotation target (on-path neighbours of the
   head minus the head's predecessor, ascending id).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import dra_step_budget
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = [
    "run_cre",
    "cre_step_budget",
    "CRE_FAIL_TOO_SMALL",
    "CRE_FAIL_BUDGET",
    "CRE_FAIL_STRANDED",
    "CRE_FAIL_CUT_OFF",
]

CRE_FAIL_TOO_SMALL = "too-small"
CRE_FAIL_BUDGET = "budget"
CRE_FAIL_STRANDED = "stranded"
CRE_FAIL_CUT_OFF = "cut-off"


def cre_step_budget(n: int) -> int:
    """Default step budget: the Theorem-2 scale ``O(n log n)`` with slack.

    The paper's expected move count is ``O(n)``; the extra log factor
    absorbs the rotation-heavy tail near the threshold without letting
    a hopeless instance run forever.
    """
    return dra_step_budget(n)


def run_cre(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
) -> RunResult:
    """Run the CRE solver on ``graph`` (scalar reference implementation).

    Returns the standard :class:`~repro.engines.results.RunResult`:
    ``steps`` counts executed moves, ``detail`` carries the per-move
    breakdown and the failure code, ``rounds`` is 0 (sequential).
    """
    n = graph.n
    detail = {"fail": None, "extensions": 0, "rotations": 0,
              "cycle_extensions": 0}
    if n < 3:
        detail["fail"] = CRE_FAIL_TOO_SMALL
        return RunResult("cre", False, None, 0, engine="sequential",
                         detail=detail)
    budget = step_budget if step_budget is not None else cre_step_budget(n)
    rng = np.random.default_rng(seed)
    neighbors = {v: graph.neighbor_list(v) for v in range(n)}
    neighbor_sets = {v: set(nbrs) for v, nbrs in neighbors.items()}
    # Unvisited-neighbour counts, maintained incrementally: the cycle-
    # extension pivot scan needs them for every path node.
    unvisited_degree = [len(neighbors[v]) for v in range(n)]

    start = int(rng.integers(n))
    path = [start]
    pos = {start: 0}
    for w in neighbors[start]:
        unvisited_degree[w] -= 1

    def visit(w: int) -> None:
        pos[w] = len(path)
        path.append(w)
        for u in neighbors[w]:
            unvisited_degree[u] -= 1

    steps = 0
    ok = False
    while True:
        head = path[-1]
        tail = path[0]
        # Closure is the termination condition, not a budgeted move —
        # checked before the budget gate so a run whose last allowed
        # move completes the Hamilton path is a success, not a
        # "budget" failure one comparison short.
        if len(path) == n and tail in neighbor_sets[head]:
            ok = True
            break
        if steps >= budget:
            detail["fail"] = CRE_FAIL_BUDGET
            break
        steps += 1
        fresh = [w for w in neighbors[head] if w not in pos]
        if fresh:
            visit(fresh[int(rng.integers(len(fresh)))])
            detail["extensions"] += 1
            continue
        if tail in neighbor_sets[head] and len(path) < n:
            # Cycle extension: the path closes a non-spanning cycle;
            # re-open it at a pivot that can reach an unvisited node.
            pivots = [v for v in path if unvisited_degree[v] > 0]
            if not pivots:
                detail["fail"] = CRE_FAIL_CUT_OFF
                break
            pivot = pivots[int(rng.integers(len(pivots)))]
            targets = [w for w in neighbors[pivot] if w not in pos]
            target = targets[int(rng.integers(len(targets)))]
            i = pos[pivot]
            path = path[i + 1:] + path[:i + 1]
            pos = {v: j for j, v in enumerate(path)}
            visit(target)
            detail["cycle_extensions"] += 1
            continue
        # Rotation: a random on-path neighbour of the head, excluding
        # the head's predecessor (that edge is already on the path).
        pred = path[-2] if len(path) >= 2 else -1
        pivots = [w for w in neighbors[head] if w in pos and w != pred]
        if not pivots:
            detail["fail"] = CRE_FAIL_STRANDED
            break
        pivot = pivots[int(rng.integers(len(pivots)))]
        j = pos[pivot]
        segment = path[j + 1:]
        segment.reverse()
        path[j + 1:] = segment
        for offset, v in enumerate(segment):
            pos[v] = j + 1 + offset
        detail["rotations"] += 1

    cycle = None
    if ok:
        cycle = list(path)
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
            detail["fail"] = CRE_FAIL_STRANDED
    return RunResult(
        algorithm="cre",
        success=ok,
        cycle=cycle,
        rounds=0,
        steps=steps,
        engine="sequential",
        detail=detail,
    )
