"""The paper's algorithms (DRA, DHC1, DHC2, Upcast, the trivial
baseline) plus the absorbed related-work solvers (Turau path merging,
Alon–Krivelevich CRE)."""

from repro.core.cre import run_cre
from repro.core.dhc1 import Dhc1Protocol, default_sqrt_colors, run_dhc1
from repro.core.dhc2 import Dhc2Protocol, default_color_count, run_dhc2
from repro.core.dra import DraProtocol, run_dra
from repro.core.rotation import RotationWalk, VirtualEdge
from repro.core.turau import TurauProtocol, run_turau
from repro.core.upcast import UpcastProtocol, run_trivial, run_upcast, upcast_sample_size
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph

__all__ = [
    "run_dra",
    "run_dhc1",
    "run_dhc2",
    "run_upcast",
    "run_trivial",
    "run_turau",
    "run_cre",
    "find_hamiltonian_cycle",
    "DraProtocol",
    "Dhc1Protocol",
    "Dhc2Protocol",
    "UpcastProtocol",
    "TurauProtocol",
    "RotationWalk",
    "VirtualEdge",
    "RunResult",
    "default_color_count",
    "default_sqrt_colors",
    "upcast_sample_size",
]

_ALGORITHMS = {
    "dra": run_dra,
    "dhc1": run_dhc1,
    "dhc2": run_dhc2,
    "upcast": run_upcast,
    "trivial": run_trivial,
    "turau": run_turau,
    "cre": run_cre,
}


def find_hamiltonian_cycle(graph: Graph, *, algorithm: str = "dhc2",
                           seed: int = 0, **kwargs) -> RunResult:
    """Convenience dispatcher over the paper's algorithms.

    ``algorithm`` is one of ``dra``, ``dhc1``, ``dhc2`` (default — the
    paper's general fully-distributed algorithm), ``upcast``, or
    ``trivial``; extra keyword arguments flow to the specific runner.
    """
    try:
        runner = _ALGORITHMS[algorithm]
    except KeyError:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(_ALGORITHMS)}"
        ) from None
    return runner(graph, seed=seed, **kwargs)
