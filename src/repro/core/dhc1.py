"""DHC1 — Algorithm 2: the two-phase algorithm for ``p = c ln n / sqrt(n)``.

Phase 1 (shared base): ``sqrt(n)`` random colour classes, each builds
its own sub-Hamiltonian-cycle.  Phase 2 (this module): one *hypernode*
per class — a cycle edge ``e_i = (v_i, u_i)`` with ``u_i`` a uniformly
random cycle node and ``v_i = predecessor(u_i)`` (Algorithm 2 l.13-15)
— and a ported rotation walk over the hypernode graph G' (l.16-17).
The HC of G' fixes, per class, where the global cycle enters and leaves
the class cycle, which completes the Hamiltonian cycle of G (Fig. 1).

Reproduction decisions (DESIGN.md):

* *Dynamic ports.*  The paper fixes ``u_i`` as in-port and ``v_i`` as
  out-port, but an undirected walk over G' cannot maintain a globally
  consistent orientation (both cycle edges of a hypernode could land on
  one port).  We let either physical endpoint serve either role and let
  the ported :class:`~repro.core.rotation.RotationWalk` bind them
  dynamically, so the result is always stitchable; G' edges comprise
  all four port pairings (edge probability ``1-(1-p)^4 >= 1-(1-p)^2``,
  so Lemma 6 holds a fortiori).
* *Relayed virtual fabric.*  A hypernode's state lives at its holder
  ``u_i``; virtual messages route holder -> (own ``v_i``) -> cross edge
  -> (peer port) -> peer holder, at most 3 physical hops, through the
  host's paced out-queue.  Broadcast waits are sized by the virtual
  tree's ``max_load`` (a CONGEST-honest bound on relay serialisation).
* *Two global barriers* (over a global BFS tree built before Phase 1)
  separate port announcement, adjacency assembly, and the virtual walk,
  because a hypernode cannot otherwise know when its virtual edge list
  has stopped growing.

Host-level message kinds: ``hs`` (hypernode selection flood), ``hp``
(port announcement), ``hl``/``hle`` (port-adjacency relay v -> u),
``hrel``/``hx``/``hfw`` (virtual fabric envelopes), ``hfin`` (final
stitching flood).
"""

from __future__ import annotations

import math

from repro.analysis.bounds import diameter_budget, dra_round_budget, dra_step_budget
from repro.congest.message import Message
from repro.congest.model import build_network, coerce_network_model
from repro.congest.node import Context
from repro.core.phase1 import PartitionedPhase1Protocol
from repro.core.rotation import RotationWalk, VirtualEdge
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.primitives.barrier import Barrier
from repro.primitives.bfs import BfsTree
from repro.verify.hamiltonicity import CycleViolation, cycle_from_successors, verify_cycle

__all__ = ["Dhc1Protocol", "run_dhc1", "default_sqrt_colors"]

_ROLE_U = 0  # holder (the paper's u_i, the "incoming" endpoint)
_ROLE_V = 1


def default_sqrt_colors(n: int) -> int:
    """Algorithm 2's ``sqrt(n)`` partition count."""
    return max(1, round(math.isqrt(max(1, n))))


class Dhc1Protocol(PartitionedPhase1Protocol):
    """Per-node DHC1: Phase 1 + hypernode walk over G'."""

    def __init__(self, node_id: int, n: int, k: int):
        super().__init__(node_id, n, k, global_tree_first=True)
        self.h_stage = "phase1"
        self.hyper_r = -1  # selected cycle index of u_i
        self.role = -1  # _ROLE_U / _ROLE_V / -1
        self.partner = -1  # the other endpoint of my hypernode
        self.port_neighbors: dict[int, tuple[int, int]] = {}  # phys -> (hyper, role)
        self.barrier1: Barrier | None = None
        self.barrier2: Barrier | None = None

        # Holder-only state.
        self._v_entries: list[tuple[int, int, int]] = []  # (hyper, their_role, far)
        self._v_expected = -1
        self._vedges: list[VirtualEdge] = []
        self._far: dict[tuple[int, int, int], int] = {}  # realization -> far phys
        self.vbfs: BfsTree | None = None
        self.vwalk: RotationWalk | None = None
        self._vwalk_started = False

        self.global_succ = -1

    # -- phase-1 handoff: hypernode selection (l.13-15) ----------------------------

    def on_phase1_complete(self, ctx: Context) -> None:
        self.h_stage = "select"
        if self.cycindex == 1:
            r = 1 + int(ctx.rng.integers(self.cycle_size))
            self._apply_selection(ctx, r)
            for peer in self.tree_neighbors:
                self.queue_send(ctx, peer, "hs", r, self.node_id)

    def _apply_selection(self, ctx: Context, r: int) -> None:
        self.hyper_r = r
        v_index = r - 1 if r > 1 else self.cycle_size
        if self.cycindex == r:
            self.role = _ROLE_U
            self.partner = self.pred
        elif self.cycindex == v_index:
            self.role = _ROLE_V
            self.partner = self.succ
        if self.role >= 0:
            for peer in ctx.neighbors:
                self.queue_send(ctx, peer, "hp", self.color, self.role)
        self.h_stage = "ports"
        self._ensure_barrier1(ctx)
        # Readiness is reported only once the port announcements have
        # actually left the out-queue, so "go" cannot overtake them.
        self._barrier1_pending = True
        ctx.request_wake(ctx.round_index + 1)

    def _ensure_barrier1(self, ctx: Context) -> None:
        if self.barrier1 is None:
            self.barrier1 = Barrier(
                "g1", parent=self.global_bfs.parent,
                children=self.global_bfs.children, send=self._queued,
            )
            self.activate(ctx, self.barrier1)

    def _ensure_barrier2(self, ctx: Context) -> None:
        if self.barrier2 is None:
            self.barrier2 = Barrier(
                "g2", parent=self.global_bfs.parent,
                children=self.global_bfs.children, send=self._queued,
            )
            self.activate(ctx, self.barrier2)

    def _queued(self, ctx: Context, dest: int, kind: str, *fields) -> None:
        self.queue_send(ctx, dest, kind, *fields)

    # -- host-level messages -----------------------------------------------------------

    def host_message_hook(self, ctx: Context, message: Message) -> bool:
        kind = message.payload[0]
        if kind == "hs":
            if self.hyper_r < 0:
                r, origin = message.payload[1], message.payload[2]
                for peer in self.tree_neighbors:
                    if peer != origin:
                        self.queue_send(ctx, peer, "hs", r, self.node_id)
                self._apply_selection(ctx, r)
            return True
        if kind == "hp":
            self.port_neighbors[message.sender] = (message.payload[1], message.payload[2])
            return True
        if kind == "hl":
            self._v_entries.append(tuple(message.payload[1:4]))
            self._check_assembly(ctx)
            return True
        if kind == "hle":
            self._v_expected = message.payload[1]
            self._check_assembly(ctx)
            return True
        if kind in ("hrel", "hx", "hfw"):
            self._route_envelope(ctx, message)
            return True
        if kind == "hfin":
            self._apply_stitch(ctx, *message.payload[1:4])
            return True
        return False

    def advance_hook(self, ctx: Context) -> None:
        if self.aborted or self.finished:
            return
        if getattr(self, "_barrier1_pending", False) and not self._outqueue:
            self._barrier1_pending = False
            self.barrier1.mark_ready(ctx)
        elif getattr(self, "_barrier1_pending", False):
            ctx.request_wake(ctx.round_index + 1)
        if self.h_stage == "ports" and self.barrier1 is not None and self.barrier1.done:
            self.h_stage = "assemble"
            self._begin_assembly(ctx)
        if self.h_stage == "assemble" and self.barrier2 is not None and self.barrier2.done:
            self.h_stage = "virtual"
            self._begin_virtual(ctx)
        if (self.h_stage == "virtual" and self.role == _ROLE_U
                and self.vbfs is not None and self.vbfs.done and not self._vwalk_started):
            if self.vbfs.failed:
                self._fail_local(ctx)
                return
            self._vwalk_started = True
            self._begin_vwalk(ctx)
        if (self.h_stage == "virtual" and self.vwalk is not None and self.vwalk.done
                and self.h_stage != "stitch"):
            self.h_stage = "stitch"
            if not self.vwalk.success:
                self._fail_local(ctx)
                return
            self._begin_stitch(ctx)

    # -- adjacency assembly (between the barriers) -----------------------------------------

    def _begin_assembly(self, ctx: Context) -> None:
        self._ensure_barrier2(ctx)
        if self.role == _ROLE_V:
            entries = sorted(
                (hyper, role, phys)
                for phys, (hyper, role) in self.port_neighbors.items()
                if hyper != self.color
            )
            for hyper, role, phys in entries:
                self.queue_send(ctx, self.partner, "hl", hyper, role, phys)
            self.queue_send(ctx, self.partner, "hle", len(entries))
            self.barrier2.mark_ready(ctx)
        elif self.role == _ROLE_U:
            self._check_assembly(ctx)
        else:
            self.barrier2.mark_ready(ctx)

    def _check_assembly(self, ctx: Context) -> None:
        if self.role != _ROLE_U or self.h_stage != "assemble":
            return
        if self._v_expected < 0 or len(self._v_entries) < self._v_expected:
            return
        realizations = []
        for phys, (hyper, role) in self.port_neighbors.items():
            if hyper != self.color:
                realizations.append((hyper, _ROLE_U, role, phys))
        for hyper, role, phys in self._v_entries:
            realizations.append((hyper, _ROLE_V, role, phys))
        realizations.sort()
        self._vedges = [VirtualEdge(h, mp, tp) for h, mp, tp, _f in realizations]
        self._far = {(h, mp, tp): f for h, mp, tp, f in realizations}
        self._ensure_barrier2(ctx)
        self.barrier2.mark_ready(ctx)

    # -- the virtual fabric ------------------------------------------------------------------

    def _vsend(self, ctx: Context, edge: VirtualEdge, suffix: str, *fields) -> None:
        """Send a walk message over the virtual graph (<= 3 physical hops)."""
        self._vship(ctx, edge, f"vw.{suffix}", *fields, self.color)

    def _vsend_bfs(self, ctx: Context, dest_hyper: int, kind: str, *fields) -> None:
        self._vship(ctx, VirtualEdge(dest_hyper), kind, *fields, self.color)

    def _vship(self, ctx: Context, edge: VirtualEdge, kind: str, *fields) -> None:
        if kind.startswith("vw.") and kind.split(".")[1] in ("p", "y"):
            key = (edge.peer, edge.my_port, edge.peer_port)
            far = self._far[key]
            my_port = edge.my_port
        else:
            options = [k for k in self._far if k[0] == edge.peer]
            if not options:
                self._fail_local(ctx)
                return
            key = min(options)
            far = self._far[key]
            my_port = key[1]
        if my_port == _ROLE_U:
            self.queue_send(ctx, far, "hx", key[2], kind, *fields)
        else:
            self.queue_send(ctx, self.partner, "hrel", far, key[2], kind, *fields)

    def _route_envelope(self, ctx: Context, message: Message) -> None:
        kind = message.payload[0]
        if kind == "hrel":
            far, landing = message.payload[1], message.payload[2]
            self.queue_send(ctx, far, "hx", landing, *message.payload[3:])
            return
        landing, inner = message.payload[1], message.payload[2]
        fields = message.payload[3:]
        if kind == "hx" and self.role == _ROLE_V:
            self.queue_send(ctx, self.partner, "hfw", landing, inner, *fields)
            return
        # Delivery at the holder.
        if inner.startswith("vw."):
            if inner.endswith(".p"):
                # Fill the receiver-port placeholder (wire contract).
                fields = fields[:3] + (landing,) + fields[4:]
            payload = (inner, *fields)
            self.dispatch(ctx, [Message(sender=message.sender, payload=payload)])
        else:
            vsender = fields[-1]
            payload = (inner, *fields[:-1])
            self.dispatch(ctx, [Message(sender=vsender, payload=payload)])

    # -- virtual BFS + walk ---------------------------------------------------------------------

    def _begin_virtual(self, ctx: Context) -> None:
        if self.role != _ROLE_U:
            return
        vpeers = sorted({e.peer for e in self._vedges})
        deadline = ctx.round_index + 40 * diameter_budget(self.k) + 200
        self.vbfs = BfsTree(
            "vb", vpeers, is_root=self.color == 1, deadline=deadline,
            send=self._vsend_bfs,
        )
        self.activate(ctx, self.vbfs)

    def _begin_vwalk(self, ctx: Context) -> None:
        latency = self.vbfs.max_load + 5
        self.vwalk = RotationWalk(
            "vw",
            self.color,
            self._vedges,
            tree_neighbors=self.vbfs.tree_neighbors,
            tree_depth=max(1, self.vbfs.tree_depth),
            size=self.vbfs.size,
            is_initial_head=self.color == 1,
            step_budget=dra_step_budget(self.vbfs.size),
            send=self._vsend,
            latency=latency,
            ported=True,
        )
        self.activate(ctx, self.vwalk)

    # -- final stitching (Fig. 1) -------------------------------------------------------------------

    def _begin_stitch(self, ctx: Context) -> None:
        walk = self.vwalk
        exit_phys = self.node_id if walk.succ_port == _ROLE_U else self.partner
        next_entry = self._far[(walk.succ, walk.succ_port, walk.succ_peer_port)]
        entry_is_u = 1 if walk.pred_port == _ROLE_U else 0
        for peer in self.tree_neighbors:
            self.queue_send(ctx, peer, "hfin", entry_is_u, exit_phys, next_entry)
        self._apply_stitch(ctx, entry_is_u, exit_phys, next_entry, forwarded=True)

    def _apply_stitch(self, ctx: Context, entry_is_u: int, exit_phys: int,
                      next_entry: int, *, forwarded: bool = False) -> None:
        if self.global_succ >= 0:
            return
        if not forwarded:
            for peer in self.tree_neighbors:
                self.queue_send(ctx, peer, "hfin", entry_is_u, exit_phys, next_entry)
        if self.node_id == exit_phys:
            self.global_succ = next_entry
        elif entry_is_u:
            self.global_succ = self.succ
        else:
            self.global_succ = self.pred
        self.finished = True
        self.request_halt(ctx)


def dhc1_round_budget(n: int, k: int) -> int:
    """Watchdog ``max_rounds`` for DHC1 (failure backstop only)."""
    part = max(3, (2 * n) // max(1, k))
    virtual = dra_round_budget(k) * 12  # relays + queue pacing
    return dra_round_budget(part) + virtual + 60 * diameter_budget(n) + 2048


def run_dhc1(
    graph: Graph,
    *,
    k: int | None = None,
    seed: int = 0,
    max_rounds: int | None = None,
    audit_memory: bool = False,
    network_hook=None,
    fault_plan=None,
    network=None,
) -> RunResult:
    """Run Algorithm 2 on ``graph`` in the CONGEST simulator.

    Intended for the DHC1 regime ``p = c ln n / sqrt(n)``; ``k`` defaults
    to ``sqrt(n)`` colour classes.  ``network`` is a
    :class:`~repro.congest.model.NetworkModel` (or its JSON form)
    describing the substrate; the legacy ``network_hook=`` /
    ``fault_plan=`` keywords are deprecated shims folding into it.  A
    fault plan's counters appear under ``detail["faults"]``; async runs
    also report ``detail["async"]``.
    """
    n = graph.n
    model = coerce_network_model(network, network_hook=network_hook,
                                 fault_plan=fault_plan, caller="run_dhc1")
    colors = k if k is not None else default_sqrt_colors(n)
    limit = max_rounds if max_rounds is not None else dhc1_round_budget(n, colors)
    network_, injector = build_network(
        graph,
        lambda v: Dhc1Protocol(v, n, colors),
        seed=seed,
        model=model,
        audit_memory=audit_memory,
        default_bandwidth=12,
    )
    metrics = network_.run(max_rounds=limit, raise_on_limit=False)

    protocols: list[Dhc1Protocol] = network_.protocols  # type: ignore[assignment]
    ok = bool(protocols) and all(
        p.finished and not p.aborted and p.global_succ >= 0 for p in protocols
    )
    cycle = None
    if ok:
        try:
            cycle = cycle_from_successors({p.node_id: p.global_succ for p in protocols})
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    steps = max(
        (p.vwalk.steps_seen for p in protocols if p.vwalk is not None), default=0
    )
    detail = {"k": colors, "aborted": sum(p.aborted for p in protocols)}
    if injector is not None:
        detail["faults"] = injector.summary()
    if model.is_async():
        detail["async"] = network_.async_summary()
    if audit_memory or model.audit_memory:
        detail["max_state_words"] = metrics.max_state_words()
        detail["state_words"] = metrics.peak_state_words.tolist()
    return RunResult(
        algorithm="dhc1",
        success=ok,
        cycle=cycle,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
        steps=steps,
        engine="async" if model.is_async() else "congest",
        detail=detail,
    )
