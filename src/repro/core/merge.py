"""One merge level of DHC2 Phase 2 (Algorithm 3 lines 5-19, Fig. 3).

At level ``l`` the surviving cycles are paired by colour — active
(odd colour) with the next colour up — and each pair merges through one
*bridge*: cycle edges ``(v, u=succ(v))`` in the active cycle and
``(w, w')`` in the passive one such that ``(v, w)`` and ``(u, w')`` are
graph edges.  Removing the two cycle edges and inserting the two bridge
edges splices the cycles into one.  Both bridge orientations are valid —
the passive cycle is simply traversed in whichever direction the bridge
dictates — which is why this merge, unlike DHC1's fixed-port
hypernodes, can never produce an unstitchable configuration.

Distributed realisation (kinds in this machine's namespace):

======  ===========================================  ===================
``v``   verify(u)                                    active -> partner-
                                                     colour neighbours
                                                     (l.7)
``k``   ask(u)                                       passive -> its own
                                                     cycle succ & pred
                                                     (l.15)
``n``   answer(u, yes)                               adjacency answer
``d``   verdict(found, b, w', dir, sB)               passive -> asker
                                                     (l.16)
``r``   report(found, v, a, u, w, b, w', dir, sB)    min-convergecast up
                                                     the active tree
                                                     (l.9-11)
``w``   win(v, a, u, w, w', sB, dir)                 active-tree flood:
                                                     chosen bridge (l.11)
``f``   fail()                                       active-tree flood
``b``   build(a, sA, w', dir, u)                     v -> w (l.12, 17)
``i``   info(b, dir, sA, w', u)                      passive-tree flood
                                                     (l.18)
======  ===========================================  ===================

All sends go through the host's paced out-queue, so concurrent
sub-activities (pipelined asks, convergecast, floods) share edges
without violating the one-message-per-edge CONGEST rule; the queue adds
at most O(1) rounds of delay per hop.

Selection is deterministic: a passive node prefers ``w' = succ(w)``
over ``pred(w)``; an active node keeps the verdict with the smallest
``w``; the convergecast keeps the candidate with the smallest
``(v, w)``.  (Ablation A1 revisits these rules.)  Determinism is what
lets the fast engine replay identical merges.

Renumbering (derived in DESIGN.md): the merged cycle starts at ``w``
(new index 1), walks the passive cycle away from ``w'``, crosses
``w' -> u``, walks the active cycle forward, and closes ``v -> w``:

* passive node at old index ``y``:
  ``dir == DIR_SUCC`` (``w' = succ(w)``, reversed traversal):
  ``1 + ((b - y) mod sB)``, pred/succ swap;
  ``dir == DIR_PRED``: ``1 + ((y - b) mod sB)``, orientation kept;
* active node at old index ``x``: ``sB + 1 + ((x - (a+1)) mod sA)``;
* bridge fixups: ``v.succ = w``, ``w.pred = v``, ``w'.succ = u``,
  ``u.pred = w'``.
"""

from __future__ import annotations

from typing import Callable

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = ["MergeMachine", "DIR_SUCC", "DIR_PRED"]

DIR_SUCC = 0  # w' = succ(w): passive cycle is traversed reversed
DIR_PRED = 1  # w' = pred(w): passive cycle keeps its orientation

_NONE_REPORT = (0, 0, 0, 0, 0, 0, 0, 0, 0)


class MergeMachine(SubMachine):
    """Per-node state machine for one merge level.

    Results (once ``done``): ``merged`` (did my cycle grow), ``failed``
    (no bridge — the host aborts globally), and the updated cycle state
    ``new_cycindex`` / ``new_succ`` / ``new_pred`` / ``new_size``.
    """

    def __init__(
        self,
        prefix: str,
        *,
        node_id: int,
        role: str,  # "active" | "passive" | "idle"
        cycindex: int,
        succ: int,
        pred: int,
        cycle_size: int,
        tree_neighbors: list[int],
        is_root: bool,
        tree_children_count: int,
        cross_neighbors: list[int],
        send: Callable[..., None],
        is_graph_neighbor: Callable[[int], bool],
    ):
        super().__init__()
        self.PREFIX = prefix
        self.node_id = node_id
        self.role = role
        self.cycindex = cycindex
        self.succ = succ
        self.pred = pred
        self.cycle_size = cycle_size
        self.tree_neighbors = tree_neighbors
        self.is_root = is_root
        self.tree_children_count = tree_children_count
        self.cross_neighbors = cross_neighbors
        self._send = send
        self._adjacent = is_graph_neighbor

        self.merged = False
        self.new_cycindex = cycindex
        self.new_succ = succ
        self.new_pred = pred
        self.new_size = cycle_size

        # Active-side bookkeeping.
        self._verdicts_expected = len(cross_neighbors)
        self._verdicts_seen = 0
        self._best: tuple | None = None  # (v, a, u, w, b, wp, dir, sB)
        self._child_reports = 0
        self._reported = False

        # Passive-side bookkeeping.
        self._queries: dict[int, dict] = {}  # u -> {"asker", "answers"}

    # -- lifecycle ---------------------------------------------------------------

    def begin(self, ctx: Context) -> None:
        if self.role == "idle":
            self.done = True
            return
        if self.role == "active":
            for peer in self.cross_neighbors:
                self._send(ctx, peer, self.kind("v"), self.succ)
            self._maybe_report(ctx)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        for message in messages:
            if self.done:
                return
            suffix = message.payload[0].rsplit(".", 1)[1]
            getattr(self, f"_on_{suffix}")(ctx, message)

    # -- passive side ---------------------------------------------------------------

    def _on_v(self, ctx: Context, message: Message) -> None:
        """verify(u): start the succ/pred adjacency queries (l.15)."""
        u = message.payload[1]
        self._queries[u] = {"asker": message.sender, "answers": {}}
        self._send(ctx, self.succ, self.kind("k"), u)
        self._send(ctx, self.pred, self.kind("k"), u)

    def _on_k(self, ctx: Context, message: Message) -> None:
        """ask(u): answer from our static graph adjacency."""
        u = message.payload[1]
        self._send(ctx, message.sender, self.kind("n"), u, int(self._adjacent(u)))

    def _on_n(self, ctx: Context, message: Message) -> None:
        """answer(u, yes): combine both answers into a verdict (l.16)."""
        u, yes = message.payload[1], message.payload[2]
        query = self._queries.get(u)
        if query is None:
            return
        query["answers"][message.sender] = bool(yes)
        if len(query["answers"]) < 2:
            return
        if query["answers"].get(self.succ):
            found, wp, direction = 1, self.succ, DIR_SUCC
        elif query["answers"].get(self.pred):
            found, wp, direction = 1, self.pred, DIR_PRED
        else:
            found, wp, direction = 0, 0, 0
        self._send(ctx, query["asker"], self.kind("d"),
                   found, self.cycindex, wp, direction, self.cycle_size)
        del self._queries[u]

    def _on_b(self, ctx: Context, message: Message) -> None:
        """build(a, sA, w', dir, u): we are w — splice and tell our cycle."""
        a, s_a, wp, direction, u = message.payload[1:6]
        self._flood(ctx, "i", self.cycindex, direction, s_a, wp, u)
        self._apply_passive(b=self.cycindex, direction=direction, s_a=s_a,
                            wp=wp, u=u, bridge_pred=message.sender)

    def _on_i(self, ctx: Context, message: Message) -> None:
        """info flood: renumber the passive cycle (l.18)."""
        fields = message.payload[1:-1]
        self._forward_flood(ctx, message, "i", fields)
        b, direction, s_a, wp, u = fields
        self._apply_passive(b=b, direction=direction, s_a=s_a, wp=wp, u=u,
                            bridge_pred=None)

    # -- active side -------------------------------------------------------------------

    def _on_d(self, ctx: Context, message: Message) -> None:
        """verdict(found, b, w', dir, sB): collect and minimise (l.9)."""
        self._verdicts_seen += 1
        found, b, wp, direction, s_b = message.payload[1:6]
        if found:
            candidate = (self.node_id, self.cycindex, self.succ,
                         message.sender, b, wp, direction, s_b)
            if self._best is None or candidate[3] < self._best[3]:
                self._best = candidate
        self._maybe_report(ctx)

    def _on_r(self, ctx: Context, message: Message) -> None:
        """report from a tree child: min-convergecast (l.10-11)."""
        self._child_reports += 1
        if message.payload[1]:
            candidate = tuple(message.payload[2:10])
            if self._best is None or (candidate[0], candidate[3]) < (self._best[0], self._best[3]):
                self._best = candidate
        self._maybe_report(ctx)

    def _maybe_report(self, ctx: Context) -> None:
        if self._reported or self.role != "active":
            return
        if self._verdicts_seen < self._verdicts_expected:
            return
        if self._child_reports < self.tree_children_count:
            return
        self._reported = True
        if self.is_root:
            self._decide(ctx)
            return
        parent = self.tree_neighbors[-1]
        if self._best is None:
            self._send(ctx, parent, self.kind("r"), *_NONE_REPORT)
        else:
            self._send(ctx, parent, self.kind("r"), 1, *self._best)

    def _decide(self, ctx: Context) -> None:
        if self._best is None:
            self._flood(ctx, "f")
            self.failed = True
            self.done = True
            return
        v, a, u, w, b, wp, direction, s_b = self._best
        self._flood(ctx, "w", v, a, u, w, wp, s_b, direction)
        self._apply_active(v=v, a=a, u=u, w=w, wp=wp, s_b=s_b, direction=direction, ctx=ctx)

    def _on_w(self, ctx: Context, message: Message) -> None:
        fields = message.payload[1:-1]
        self._forward_flood(ctx, message, "w", fields)
        v, a, u, w, wp, s_b, direction = fields
        self._apply_active(v=v, a=a, u=u, w=w, wp=wp, s_b=s_b, direction=direction, ctx=ctx)

    def _on_f(self, ctx: Context, message: Message) -> None:
        self._forward_flood(ctx, message, "f", ())
        self.failed = True
        self.done = True

    # -- state transitions ---------------------------------------------------------------

    def _apply_active(self, *, v: int, a: int, u: int, w: int, wp: int,
                      s_b: int, direction: int, ctx: Context) -> None:
        s_a = self.cycle_size
        self.new_cycindex = s_b + 1 + ((self.cycindex - (a + 1)) % s_a)
        self.new_size = s_a + s_b
        self.new_succ, self.new_pred = self.succ, self.pred
        if self.node_id == v:
            self.new_succ = w
            self._send(ctx, w, self.kind("b"), a, s_a, wp, direction, u)
        if self.node_id == u:
            self.new_pred = wp
        self.merged = True
        self.done = True

    def _apply_passive(self, *, b: int, direction: int, s_a: int,
                       wp: int, u: int, bridge_pred: int | None) -> None:
        s_b = self.cycle_size
        y = self.cycindex
        if direction == DIR_SUCC:
            self.new_cycindex = 1 + ((b - y) % s_b)
            self.new_pred, self.new_succ = self.succ, self.pred  # reversed
        else:
            self.new_cycindex = 1 + ((y - b) % s_b)
            self.new_pred, self.new_succ = self.pred, self.succ
        if bridge_pred is not None:  # we are w (new index 1): pred is v
            self.new_pred = bridge_pred
        if self.node_id == wp:  # w': the bridge continues to u
            self.new_succ = u
        self.new_size = s_a + s_b
        self.merged = True
        self.done = True

    # -- flood helpers ------------------------------------------------------------------

    def _flood(self, ctx: Context, suffix: str, *fields: int) -> None:
        for peer in self.tree_neighbors:
            self._send(ctx, peer, self.kind(suffix), *fields, self.node_id)

    def _forward_flood(self, ctx: Context, message: Message, suffix: str, fields: tuple) -> None:
        origin = message.payload[-1]
        for peer in self.tree_neighbors:
            if peer != origin:
                self._send(ctx, peer, self.kind(suffix), *fields, self.node_id)
