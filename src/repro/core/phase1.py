"""Phase 1 shared by DHC1 and DHC2: colour, partition, per-partition DRA.

Both algorithms start identically (Algorithm 2 lines 5-10, reused by
Algorithm 3 line 2): every node draws a uniform colour from ``1..K``
(``K = sqrt(n)`` for DHC1, ``n**(1-delta)`` for DHC2), the colour
classes induce disjoint random subgraphs, and each class independently
elects a leader, builds a BFS tree, and runs the rotation walk to get
its own sub-Hamiltonian-cycle.  All classes proceed concurrently in one
network; every message stays inside its class (plus the one initial
colour-announcement round).

The class below is an abstract host; subclasses take over via
:meth:`on_phase1_complete` (DHC2 starts merging, DHC1 builds
hypernodes).  A paced out-queue (:meth:`queue_send`) is provided for
later phases whose sub-activities would otherwise collide on edges.

Failure handling: any partition whose election/BFS/walk fails triggers
a global abort flood ("ab") so the whole network terminates quickly and
reports an honest failure (experiment E6 counts these).
"""

from __future__ import annotations

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.congest.message import Message
from repro.congest.node import Context, Protocol
from repro.core.rotation import RotationWalk, VirtualEdge
from repro.primitives.bfs import BfsTree
from repro.primitives.floodmin import FloodMin
from repro.primitives.submachine import SubMachineHost

__all__ = ["PartitionedPhase1Protocol", "color_at_level", "colors_at_level", "merge_levels"]


def color_at_level(color1: int, level: int) -> int:
    """Colour of a node at merge level ``level`` (1-based colours).

    Level 1 sees the original colours; each level halves:
    ``ceil(c / 2**(level-1))``.  Deterministic, so every node knows every
    neighbour's colour at every level from the single initial
    announcement.
    """
    return -(-color1 // (1 << (level - 1)))


def colors_at_level(k: int, level: int) -> int:
    """How many colours remain at merge level ``level`` (K_1 = k)."""
    return -(-k // (1 << (level - 1)))


def merge_levels(k: int) -> int:
    """Number of merge levels needed to go from ``k`` colours to one."""
    levels = 0
    while k > 1:
        k = -(-k // 2)
        levels += 1
    return levels


class PartitionedPhase1Protocol(Protocol, SubMachineHost):
    """Colour draw -> partition election -> partition BFS -> partition DRA."""

    def __init__(self, node_id: int, n: int, k: int, *, global_tree_first: bool = False):
        SubMachineHost.__init__(self)
        self.node_id = node_id
        self.n = n
        self.k = k  # number of colours
        self.global_tree_first = global_tree_first
        self.global_election: FloodMin | None = None
        self.global_bfs: BfsTree | None = None
        self.color = 0  # 1-based, drawn in on_start
        self.neighbor_colors: dict[int, int] = {}
        self.peers: list[int] = []  # same-colour neighbours

        self.election: FloodMin | None = None
        self.bfs: BfsTree | None = None
        self.walk: RotationWalk | None = None
        self._stage = "color"
        self._walk_at = -1

        # Cycle state maintained from phase 1 onwards (physical ids).
        self.cycindex = 0
        self.succ = -1
        self.pred = -1
        self.cycle_size = 0
        self.tree_neighbors: list[int] = []
        self.tree_depth = 0

        self.aborted = False
        self.finished = False
        self._abort_pending: set[int] = set()
        self._outqueue: list[tuple[int, tuple]] = []
        self._halt_when_drained = False

        expected = max(3, (2 * n) // max(1, k))
        self._elect_budget = diameter_budget(expected)

    # -- protocol interface ------------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        if not ctx.neighbors:
            self._fail_local(ctx)  # isolated node: no HC exists
            return
        if self.global_tree_first:
            self._stage = "gelect"
            self.global_election = FloodMin("gl", ctx.neighbors, diameter_budget(self.n))
            self.activate(ctx, self.global_election)
            return
        self._announce_color(ctx)

    def _announce_color(self, ctx: Context) -> None:
        self.color = 1 + int(ctx.rng.integers(self.k))
        for peer in ctx.neighbors:
            ctx.send(peer, "co", self.color)
        self._color_round = ctx.round_index
        ctx.request_wake(ctx.round_index + 1)

    def on_round(self, ctx: Context, inbox: list[Message]) -> None:
        colors = [m for m in inbox if m.payload[0] == "co"]
        aborts = [m for m in inbox if m.payload[0] == "ab"]
        rest = [m for m in inbox if m.payload[0] not in ("co", "ab")]
        for message in colors:
            self.neighbor_colors[message.sender] = message.payload[1]
        if aborts and not self.aborted:
            self._begin_abort(ctx)
        if self.aborted:
            self._flush_abort(ctx)
            return
        rest = [m for m in rest if not self.host_message_hook(ctx, m)]
        self.dispatch(ctx, rest)
        if self.done_dispatching_hook(ctx):
            return
        self._advance(ctx)
        self.flush_queue(ctx)
        if self._halt_when_drained and not self._outqueue and not ctx.halted:
            ctx.halt()

    def done_dispatching_hook(self, ctx: Context) -> bool:
        """Subclass hook run after message dispatch; return True to stop."""
        return False

    def host_message_hook(self, ctx: Context, message: Message) -> bool:
        """Subclass hook for host-level kinds; return True when consumed."""
        return False

    # -- phase-1 stage machine -------------------------------------------------------

    def _advance(self, ctx: Context) -> None:
        if self._stage == "gelect" and self.global_election is not None and self.global_election.done:
            self.deactivate(self.global_election)
            is_leader = self.global_election.is_leader
            self.global_election = None
            self._stage = "gbfs"
            deadline = ctx.round_index + 3 * diameter_budget(self.n) + 8
            self.global_bfs = BfsTree(
                "gb", ctx.neighbors,
                is_root=is_leader, deadline=deadline,
            )
            self.activate(ctx, self.global_bfs)
        if self._stage == "gbfs" and self.global_bfs is not None and self.global_bfs.done:
            if self.global_bfs.failed:
                self._fail_local(ctx)
                return
            # The commit wave reaches nodes at (root_finish + depth); every
            # node can therefore compute the same network-wide announcement
            # round, so all colour announcements land simultaneously.
            self._stage = "gwait"
            self._announce_at = (ctx.round_index - max(0, self.global_bfs.depth)
                                 + self.global_bfs.tree_depth + 1)
            self._announce_at = max(self._announce_at, ctx.round_index + 1)
            ctx.request_wake(self._announce_at)
            return
        if self._stage == "gwait":
            if ctx.round_index < self._announce_at:
                return
            self._stage = "color"
            self._announce_color(ctx)
            return
        if self._stage == "color" and ctx.round_index >= getattr(self, "_color_round", 0) + 1:
            self.peers = sorted(
                v for v, c in self.neighbor_colors.items() if c == self.color
            )
            self._stage = "elect"
            self.election = FloodMin("lm", self.peers, self._elect_budget)
            self.activate(ctx, self.election)
        if self._stage == "elect" and self.election is not None and self.election.done:
            self.deactivate(self.election)
            is_leader = self.election.is_leader
            self.election = None
            self._stage = "bfs"
            deadline = ctx.round_index + 3 * self._elect_budget + 8
            self.bfs = BfsTree("b0", self.peers,
                               is_root=is_leader, deadline=deadline)
            self.activate(ctx, self.bfs)
        if self._stage == "bfs" and self.bfs is not None and self.bfs.done:
            if self.bfs.failed:
                self._fail_local(ctx)
                return
            if self._walk_at < 0:
                self._walk_at = ctx.round_index + 1
                ctx.request_wake(self._walk_at)
                return
            if ctx.round_index < self._walk_at:
                return
            self._stage = "walk"
            self.deactivate(self.bfs)
            self.tree_neighbors = self.bfs.tree_neighbors
            self.tree_depth = max(1, self.bfs.tree_depth)
            self.cycle_size = self.bfs.size
            self.walk = RotationWalk(
                "rw",
                self.node_id,
                [VirtualEdge(peer) for peer in self.peers],
                tree_neighbors=self.tree_neighbors,
                tree_depth=self.tree_depth,
                size=self.cycle_size,
                is_initial_head=self.bfs.is_root,
                step_budget=dra_step_budget(self.cycle_size),
                send=self._walk_send,
            )
            self.activate(ctx, self.walk)
        if self._stage == "walk" and self.walk is not None and self.walk.done:
            if not self.walk.success:
                self._fail_local(ctx)
                return
            self._stage = "phase2"
            self.cycindex = self.walk.cycindex
            self.succ = self.walk.succ
            self.pred = self.walk.pred
            self.on_phase1_complete(ctx)
        self.advance_hook(ctx)

    def _walk_send(self, ctx: Context, edge: VirtualEdge, suffix: str, *fields: int) -> None:
        ctx.send(edge.peer, f"rw.{suffix}", *fields, self.node_id)

    # -- subclass extension points ------------------------------------------------------

    def on_phase1_complete(self, ctx: Context) -> None:
        """Called once when this node's partition cycle is in place."""
        raise NotImplementedError

    def advance_hook(self, ctx: Context) -> None:
        """Called at the end of every round's stage evaluation."""

    # -- paced out-queue ------------------------------------------------------------------

    def queue_send(self, ctx: Context, dest: int, kind: str, *fields: int) -> None:
        """FIFO-per-destination send that never violates edge bandwidth.

        Buffered until the end of the round (after every direct-sending
        sub-machine has had its turn) and flushed one message per free
        edge per round.
        """
        self._outqueue.append((dest, (kind, *fields)))
        ctx.request_wake(ctx.round_index + 1)

    def request_halt(self, ctx: Context) -> None:
        """Halt as soon as the out-queue has fully drained."""
        self._halt_when_drained = True
        ctx.request_wake(ctx.round_index + 1)

    def flush_queue(self, ctx: Context) -> None:
        """Send the head-of-line message for every destination possible."""
        if not self._outqueue or self.aborted or ctx.halted:
            return
        remaining: list[tuple[int, tuple]] = []
        sent_to: set[int] = set()
        for dest, payload in self._outqueue:
            if dest not in sent_to and ctx.edge_free(dest):
                ctx.send(dest, *payload)
                sent_to.add(dest)
            else:
                remaining.append((dest, payload))
        self._outqueue = remaining
        if self._outqueue:
            ctx.request_wake(ctx.round_index + 1)

    # -- failure / abort ---------------------------------------------------------------------

    def _fail_local(self, ctx: Context) -> None:
        """This node discovered a failure: flood a global abort."""
        if not self.aborted:
            self._begin_abort(ctx)
            self._flush_abort(ctx)

    def _begin_abort(self, ctx: Context) -> None:
        self.aborted = True
        self.finished = False
        self._abort_pending = set(ctx.neighbors)
        self._outqueue.clear()

    def _flush_abort(self, ctx: Context) -> None:
        for peer in sorted(self._abort_pending):
            if ctx.edge_free(peer):
                ctx.send(peer, "ab")
                self._abort_pending.discard(peer)
        if self._abort_pending:
            ctx.request_wake(ctx.round_index + 1)
        else:
            ctx.halt()
