"""Turau-style fully-distributed path merging (arXiv:1805.06728).

Turau's algorithm ``A_HC`` finds a Hamiltonian cycle in ``G(n, p)`` for
sufficiently dense ``p`` with a *fully-distributed* structure that is
very different from the source paper's rotation walks: every node joins
an initial system of vertex-disjoint paths via one random proposal
round, then logarithmically many *merge phases* connect path endpoints
pairwise along graph edges until a single spanning path remains and its
endpoints close the cycle.  No leader, no spanning tree, no rotation —
messages are O(1) words and every decision is endpoint-local.

This reproduction keeps that phase structure exactly and makes two
honest simplifications, documented so the round accounting stays
truthful:

* **Endpoint bookkeeping travels along the path.**  Each phase ends
  with both endpoints of every path launching a *token* that walks the
  path (one hop per round) and delivers to the opposite endpoint the
  pair (other-endpoint id, path length).  Turau gets the equivalent
  information in O(1) rounds by relaying over the diameter-2 backbone
  of the dense regime; our tokens make the per-phase cost proportional
  to the longest path instead, so the total round count is O(n) rather
  than O(log n).  Phase windows double (capped at ``2n + 4``) so a
  path whose token is still in flight simply sits out a phase — its
  endpoints are *stale* — and rejoins once the window covers it.
* **Endpoint-only merges, no rotation fallback.**  Paths merge only
  along edges between designated *endpoints*, and if the final
  spanning path's endpoints are not adjacent the run fails
  (``detail["fail"] = "no-closure-edge"``) instead of rotating.
  Turau's full algorithm also *inserts* paths at interior nodes and
  rotates at closure, which is what pushes its working density down
  to ``p`` in ``Omega~(n**-0.5)``; without those moves this
  reproduction needs denser graphs (roughly ``p >~ 0.7``; the CLI's
  default ``delta = 0.5`` parameterisation caps ``p`` at 1 up to
  ``n ~ 4000``, where it succeeds essentially always), and surviving
  endpoint pairs are *selected against* adjacency — both effects are
  Monte Carlo failures that ``benchmarks/bench_e16_related_algos.py``
  quantifies.  Absorbing insertion merges and closure rotations is
  the recorded ROADMAP follow-up.

Phase ``l`` (start round ``s``, known to every node from ``n``):

1. round ``s``: each path designates one *request* end and one
   *announce* end for the phase (:func:`role_bit` — the phase index
   cycles through the bits of the path id, so any two paths
   eventually realise all four endpoint pairings), which caps a pair
   of paths at one merge per phase: no premature cycle can form.
   *Fresh* announce endpoints broadcast ``(pid)`` to all neighbours,
   where ``pid`` is the smaller endpoint id of their path — a total
   order on paths that keeps simultaneous merges acyclic.
2. round ``s + 1``: each fresh request-eligible endpoint picks
   uniformly among the announcing neighbours with a strictly larger
   ``pid`` and sends a merge request.
3. round ``s + 2``: each announcer accepts the smallest-id requester
   and commits the merge edge.
4. round ``s + 3``: every node that is still an endpoint launches its
   token (stamped ``l``) toward the path interior; an endpoint is
   *fresh* for phase ``l + 1`` iff a stamp-``l`` token reached it
   before that phase starts, which (tokens walk one hop per round,
   uncontended by construction) is exactly ``len(path) <=
   window(l) + 2``.

A fresh endpoint that knows its path spans all ``n`` nodes attempts
closure instead of announcing: the smaller endpoint commits the
closing edge if it exists and floods "done"; otherwise it floods an
abort.  Exhausting the phase budget is the remaining failure mode
(``detail["fail"] = "phase-budget"``).

``run_turau`` wraps the protocol into the standard
:class:`~repro.engines.results.RunResult` contract; the array replay in
:mod:`repro.engines.fast_turau` reproduces cycle, steps, and failure
codes seed for seed (the registry ``parity`` declaration).
"""

from __future__ import annotations

import math
from bisect import bisect_right

from repro.congest.message import Message
from repro.congest.model import build_network, coerce_network_model, faults_summary_for
from repro.congest.node import Context, Protocol
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = [
    "TurauProtocol",
    "run_turau",
    "turau_phase_budget",
    "phase_windows",
    "phase_starts",
    "turau_round_budget",
    "cycle_from_links",
    "FAIL_TOO_SMALL",
    "FAIL_PHASE_BUDGET",
    "FAIL_NO_CLOSURE_EDGE",
]

FAIL_TOO_SMALL = "too-small"
FAIL_PHASE_BUDGET = "phase-budget"
FAIL_NO_CLOSURE_EDGE = "no-closure-edge"

#: Initial token-walk window (covers the short proposal-round paths).
_FIRST_WINDOW = 8


def turau_phase_budget(n: int) -> int:
    """Default number of merge phases.

    The path count shrinks geometrically per phase in the algorithm's
    density regime, so ``O(log n)`` phases suffice; the constant is
    generous because stale (long-path) endpoints sit phases out until
    the doubling windows cover them.
    """
    if n < 2:
        return 1
    return 4 * math.ceil(math.log2(n)) + 8


def phase_windows(n: int, phase_budget: int) -> list[int]:
    """Token-walk windows ``W_0 .. W_L`` (doubling, capped at ``2n + 4``).

    ``W_0`` covers the initial tokens launched right after the proposal
    round; ``W_l`` follows phase ``l``.  An endpoint of a length-``len``
    path is fresh for the next phase iff ``len <= W + 2``.
    """
    cap = 2 * n + 4
    return [min(cap, _FIRST_WINDOW << j) for j in range(phase_budget + 1)]


def phase_starts(n: int, phase_budget: int) -> list[int]:
    """Start round of each phase, plus the final timeout round.

    ``starts[l - 1]`` is phase ``l``'s announce round for ``l = 1 ..
    phase_budget``; the last element is the round at which every node
    gives up.  Phase ``l`` occupies 4 control rounds plus its token
    window, so the whole schedule is a pure function of ``n`` that
    every node (and the fast replay) computes identically.  The final
    gap is stretched to at least ``n + 2`` rounds so a done/abort
    flood triggered in the last phase always completes before the
    timeout, whatever the graph diameter.
    """
    windows = phase_windows(n, phase_budget)
    starts = [3 + windows[0]]
    for j in range(1, phase_budget + 1):
        starts.append(starts[-1] + 4 + windows[j])
    starts[-1] = starts[-2] + 4 + max(windows[-1], n + 2)
    return starts


def turau_round_budget(n: int, phase_budget: int | None = None) -> int:
    """Watchdog ``max_rounds`` for a run (schedule end plus flood slack)."""
    budget = max(1, phase_budget if phase_budget is not None
                 else turau_phase_budget(n))
    return phase_starts(n, budget)[-1] + 8


def role_bit(pid: int, phase: int, n: int) -> int:
    """Which end of a path requests in ``phase`` (1 = the ``pid`` end).

    ``(phase + bit(pid, phase % B)) % 2`` with ``B`` odd: the phase
    index cycles through the bit positions of the path id, and any two
    distinct pids differ in some bit, so across ``2 B`` consecutive
    phases two given paths realise every (request-end, announce-end)
    combination — the property that keeps the two-path endgame from
    stalling on a missing endpoint-pair edge.
    """
    period = n.bit_length() | 1
    return (phase + ((pid >> (phase % period)) & 1)) % 2


def cycle_from_links(links: list[list[int]]) -> list[int] | None:
    """Assemble the cycle from per-node path-neighbour pairs.

    ``links[v]`` must hold exactly two distinct neighbours for every
    node; returns the node sequence starting at 0 (second node = the
    smaller link of 0, making the orientation deterministic), or
    ``None`` if the links do not form one cycle over all nodes.
    """
    n = len(links)
    if n < 3 or any(len(pair) != 2 for pair in links):
        return None
    cycle = [0]
    prev, cur = 0, min(links[0])
    while cur != 0:
        if len(cycle) > n:
            return None
        cycle.append(cur)
        a, b = links[cur]
        nxt = a if b == prev else b
        if nxt == cur or (a != prev and b != prev):
            return None
        prev, cur = cur, nxt
    return cycle if len(cycle) == n else None


class TurauProtocol(Protocol):
    """Per-node Turau path merging: propose -> merge phases -> close."""

    def __init__(self, node_id: int, n: int, *, phase_budget: int | None = None):
        self.node_id = node_id
        self.n = n
        self.phase_budget = max(1, phase_budget if phase_budget is not None
                                else turau_phase_budget(n))
        self.starts = phase_starts(n, self.phase_budget)

        self.links: list[int] = []  # committed path neighbours (<= 2)
        self.far = node_id  # opposite endpoint of my path (when fresh)
        self.plen = 1  # my path's node count (when fresh)
        self.tok_stamp = -1  # stamp of the freshest token received
        self.initial_degree = 0

        self.done = False
        self.aborted = False
        self.fail_code: str | None = None
        self.phases: int | None = None  # phase at which done/fail was decided
        self.commits = 0  # merge edges committed at this node

        self._announced = False
        self._may_request = False

    # -- protocol interface ----------------------------------------------------

    def on_start(self, ctx: Context) -> None:
        higher = [w for w in ctx.neighbors if w > self.node_id]
        if higher:
            target = higher[int(ctx.rng.integers(len(higher)))]
            ctx.send(target, "pp")
        ctx.request_wake(2)
        ctx.request_wake(self.starts[-1])

    def on_round(self, ctx: Context, inbox: list[Message]) -> None:
        r = ctx.round_index
        phase_now = bisect_right(self.starts, r)  # phases whose start is <= r
        for message in inbox:
            kind = message.payload[0]
            if kind == "dn":
                self._become_done(ctx)
                return
            if kind == "ab":
                self._become_aborted(ctx)
                return
            if kind == "cl":
                self._commit_link(message.sender)
                self.phases = phase_now
                self._become_done(ctx)
                return
        for message in inbox:
            kind = message.payload[0]
            if kind == "tk":
                self._on_token(ctx, message)
            elif kind == "pa" and r == 2:
                self._commit_link(message.sender)
            elif kind == "ac":
                self._commit_link(message.sender)
        if r == 1:
            proposers = [m.sender for m in inbox if m.payload[0] == "pp"]
            if proposers:
                winner = min(proposers)
                self._commit_link(winner)
                self.commits += 1
                ctx.send(winner, "pa")
        if r == 2:
            self.initial_degree = len(self.links)
            if len(self.links) == 1:
                ctx.send(self.links[0], "tk", self.node_id, 1, 0)
            ctx.request_wake(self.starts[0])
            return
        if r >= self.starts[-1]:
            self._timeout(ctx)
            return
        stage, phase = self._stage_of(r)
        if stage == 0:
            self._phase_start(ctx, phase)
        elif stage == 1:
            self._active_stage(ctx, inbox)
        elif stage == 2:
            self._passive_stage(ctx, inbox)
        elif stage == 3:
            self._launch_stage(ctx, phase)

    # -- phase machinery -------------------------------------------------------

    def _stage_of(self, r: int) -> tuple[int, int]:
        """(offset into the phase's control rounds, 1-based phase index)."""
        idx = bisect_right(self.starts, r) - 1
        if idx < 0:
            return -1, 0
        return r - self.starts[idx], idx + 1

    def _is_fresh(self, phase: int) -> bool:
        if len(self.links) == 0:
            return True  # singletons know their own (trivial) path
        return len(self.links) == 1 and self.tok_stamp == phase - 1

    def _phase_start(self, ctx: Context, phase: int) -> None:
        self._announced = False
        self._may_request = False
        ctx.request_wake(self.starts[phase - 1] + 3)
        if phase < len(self.starts):
            ctx.request_wake(self.starts[phase])
        if not self._is_fresh(phase):
            return
        if self.plen == self.n:
            self._attempt_closure(ctx, phase)
            return
        # Each path designates one request end and one announce end per
        # phase, so a pair of paths can commit at most one merge per
        # phase (two parallel merges would close a premature cycle).
        # The designation is driven by the phase index and one bit of
        # the path id (:func:`role_bit`): cycling through bit positions
        # with an odd period guarantees that any two distinct paths
        # eventually realise all four endpoint pairings — including the
        # (min, min)/(max, max) ones a plain phase-parity alternation
        # never tries.  Min-id acceptance and the strict pid order make
        # the merge pattern deterministic given the requests — no coin
        # is needed to break symmetry.
        pid = min(self.node_id, self.far)
        r = role_bit(pid, phase, self.n)
        if self.far == self.node_id:  # singleton: its one end alternates
            self._may_request = bool(r)
            may_announce = not r
        else:
            request_end = pid if r else max(self.node_id, self.far)
            self._may_request = self.node_id == request_end
            may_announce = not self._may_request
        if may_announce:
            self._announced = True
            for peer in ctx.neighbors:
                ctx.send(peer, "an", pid)

    def _active_stage(self, ctx: Context, inbox: list[Message]) -> None:
        if not self._may_request:
            return
        pid = min(self.node_id, self.far)
        candidates = sorted(m.sender for m in inbox
                            if m.payload[0] == "an" and m.payload[1] > pid)
        if candidates:
            chosen = candidates[int(ctx.rng.integers(len(candidates)))]
            ctx.send(chosen, "rq")

    def _passive_stage(self, ctx: Context, inbox: list[Message]) -> None:
        if not self._announced:
            return
        requesters = [m.sender for m in inbox if m.payload[0] == "rq"]
        if requesters:
            winner = min(requesters)
            self._commit_link(winner)
            self.commits += 1
            ctx.send(winner, "ac")

    def _launch_stage(self, ctx: Context, phase: int) -> None:
        if len(self.links) == 1:
            ctx.send(self.links[0], "tk", self.node_id, 1, phase)

    def _attempt_closure(self, ctx: Context, phase: int) -> None:
        if self.node_id > self.far:
            return  # the smaller endpoint initiates
        self.phases = phase
        if ctx.is_neighbor(self.far):
            ctx.send(self.far, "cl")
            self._commit_link(self.far)
            self.commits += 1
            self._become_done(ctx, skip=self.far)
        else:
            self.fail_code = FAIL_NO_CLOSURE_EDGE
            self.aborted = True
            self._flood_abort(ctx)

    # -- token walking ---------------------------------------------------------

    def _on_token(self, ctx: Context, message: Message) -> None:
        _kind, origin, hops, stamp = message.payload
        if message.sender not in self.links:
            return  # stale walker from a pre-commit pointer; drop
        if len(self.links) == 2:
            other = self.links[0] if self.links[1] == message.sender else self.links[1]
            ctx.send(other, "tk", origin, hops + 1, stamp)
            return
        if stamp > self.tok_stamp:
            self.tok_stamp = stamp
            self.far = origin
            self.plen = hops + 1

    # -- commits and floods ----------------------------------------------------

    def _commit_link(self, peer: int) -> None:
        if peer not in self.links:
            self.links.append(peer)

    def _become_done(self, ctx: Context, skip: int = -1) -> None:
        self.done = True
        for peer in ctx.neighbors:
            if peer != skip and ctx.edge_free(peer):
                ctx.send(peer, "dn")
        ctx.halt()

    def _become_aborted(self, ctx: Context) -> None:
        """An abort flood reached this node: relay and stop."""
        self.aborted = True
        self._flood_abort(ctx)

    def _timeout(self, ctx: Context) -> None:
        """Phase budget exhausted (every node detects this locally)."""
        self.aborted = True
        self.fail_code = FAIL_PHASE_BUDGET
        self.phases = self.phase_budget
        ctx.halt()

    def _flood_abort(self, ctx: Context) -> None:
        for peer in ctx.neighbors:
            if ctx.edge_free(peer):
                ctx.send(peer, "ab")
        ctx.halt()


def run_turau(
    graph: Graph,
    *,
    seed: int = 0,
    phase_budget: int | None = None,
    max_rounds: int | None = None,
    audit_memory: bool = False,
    network_hook=None,
    fault_plan=None,
    network=None,
) -> RunResult:
    """Run Turau-style path merging on ``graph`` in the CONGEST simulator.

    Same contract as :func:`~repro.core.dra.run_dra`: ``success`` is
    true only if every node terminated in the done state *and* the
    committed links verify as a Hamiltonian cycle of ``graph``.
    ``network`` is a :class:`~repro.congest.model.NetworkModel` (or its
    JSON form) describing the substrate; the legacy ``network_hook=`` /
    ``fault_plan=`` keywords are deprecated shims folding into it.  A
    fault plan's counters appear under ``detail["faults"]`` (zeros when
    the run never started, e.g. ``n < 3``); async runs also report
    ``detail["async"]``.
    """
    n = graph.n
    model = coerce_network_model(network, network_hook=network_hook,
                                 fault_plan=fault_plan, caller="run_turau")
    if n < 3:
        detail = {"fail": FAIL_TOO_SMALL, "phases": 0, "initial_paths": n}
        faults = faults_summary_for(model)
        if faults is not None:
            detail["faults"] = faults
        return RunResult("turau", False, None, 0,
                         engine="async" if model.is_async() else "congest",
                         detail=detail)
    budget = max(1, phase_budget if phase_budget is not None
                 else turau_phase_budget(n))
    limit = max_rounds if max_rounds is not None else turau_round_budget(n, budget)
    network_, injector = build_network(
        graph,
        lambda v: TurauProtocol(v, n, phase_budget=budget),
        seed=seed,
        model=model,
        audit_memory=audit_memory,
    )
    metrics = network_.run(max_rounds=limit, raise_on_limit=False)

    protocols: list[TurauProtocol] = network_.protocols  # type: ignore[assignment]
    ok = all(p.done for p in protocols)
    cycle = None
    if ok:
        cycle = cycle_from_links([p.links for p in protocols])
        if cycle is None:
            ok = False
        else:
            try:
                verify_cycle(graph, cycle)
            except CycleViolation:
                ok, cycle = False, None
    fail = None
    if not ok:
        codes = {p.fail_code for p in protocols if p.fail_code}
        fail = (FAIL_NO_CLOSURE_EDGE if FAIL_NO_CLOSURE_EDGE in codes
                else FAIL_PHASE_BUDGET)
    singles = sum(p.initial_degree == 0 for p in protocols)
    ends = sum(p.initial_degree == 1 for p in protocols)
    detail = {
        "fail": fail,
        "phases": max((p.phases for p in protocols if p.phases is not None),
                      default=budget if not ok else 0),
        "initial_paths": singles + ends // 2,
    }
    if injector is not None:
        detail["faults"] = injector.summary()
    if model.is_async():
        detail["async"] = network_.async_summary()
    if audit_memory or model.audit_memory:
        detail["max_state_words"] = metrics.max_state_words()
        detail["state_words"] = metrics.peak_state_words.tolist()
    return RunResult(
        algorithm="turau",
        success=ok,
        cycle=cycle,
        rounds=metrics.rounds,
        messages=metrics.messages,
        bits=metrics.bits,
        steps=sum(p.commits for p in protocols),
        engine="async" if model.is_async() else "congest",
        detail=detail,
    )
