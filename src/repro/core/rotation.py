"""The Distributed Rotation Algorithm (DRA) — Algorithm 1 of the paper.

The walk grows a Hamiltonian path with the head extending along random
unused edges; hitting an on-path node triggers a *rotation* (Fig. 2),
implemented as a renumbering broadcast over a pre-built spanning tree
(DESIGN.md substitution 3).  The closing edge back to the start node
upgrades the path to a Hamiltonian cycle.

The machine runs over a *virtual graph* so one implementation serves
both uses in the paper:

* Phase 1 of DHC1/DHC2 — virtual nodes are physical nodes of one colour
  class, virtual edges are intra-class edges (``latency = 1``,
  ``ported = False``);
* Phase 2 of DHC1 — virtual nodes are *hypernodes* (cycle edges) whose
  two physical endpoints act as ports, and virtual messages are relayed
  through at most 3 physical hops (``latency = 3``, ``ported = True``).

Port-awareness (a reproduction decision, documented in DESIGN.md): with
hypernodes the paper fixes ``u_i`` as in-port and ``v_i`` as out-port,
but an undirected rotation walk cannot maintain that orientation
globally — both cycle edges could land on one port, and the final
stitching would break.  We bind ports dynamically instead: every path
edge occupies a specific port of each endpoint; a rotation hit is valid
only on the port currently bound toward the victim's *successor*
(freeing it keeps the path connected), and invalid hits are
discarded-and-retried.  A hit is valid with probability >= 1/2, so
Theorem 2's step bound degrades by at most a constant factor, and the
attachments are always stitchable.  In portless mode every edge lives
on port 0 and every hit is valid — exactly Algorithm 1 as printed.

Wire contract (host/fabric responsibility)
------------------------------------------
Every walk message payload is ``(kind, *fields, vsender)`` where
``vsender`` is the immediate virtual sender, appended by the fabric.
For progress messages the field ``my_port`` (which port of the receiver
was hit) is filled in by the receiving side's fabric in ported mode.

Kinds (suffix after the instance prefix):

====== =====================================  ==========================
``p``  progress(step, pos, sender_port,       head -> random unused edge
       my_port)                               (Algorithm 1, l.7-10)
``y``  retry(step)                            invalid ported hit -> head
``r``  rotation(step, h, j, start_round)      tree flood (l.16-20, Fig 2)
``w``  win()                                  tree flood: success (l.12)
``f``  fail(code)                             tree flood: abort
====== =====================================  ==========================
"""

from __future__ import annotations

from typing import Callable

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = [
    "RotationWalk",
    "VirtualEdge",
    "FAIL_NO_EDGES",
    "FAIL_BUDGET",
    "FAIL_TOO_SMALL",
    "FAIL_CORRUPT",
]

FAIL_NO_EDGES = 1
FAIL_BUDGET = 2
FAIL_TOO_SMALL = 3
#: Local state contradicted the protocol invariants.  Unreachable in a
#: fault-free execution (the integration suite exercises that); reached
#: only under failure injection (dropped renumbering floods can leave
#: stale ``cycindex`` values), where it downgrades a would-be crash into
#: an observable clean failure.
FAIL_CORRUPT = 4

_NO_PORT = 0


class VirtualEdge:
    """One usable realization of a virtual edge, as seen from one side.

    ``peer`` is the virtual neighbour; ``my_port`` / ``peer_port``
    identify the physical endpoints realizing the edge (always 0 in
    portless mode).  Hypernode pairs connected by several physical
    edges contribute one :class:`VirtualEdge` per realization.
    """

    __slots__ = ("peer", "my_port", "peer_port")

    def __init__(self, peer: int, my_port: int = _NO_PORT, peer_port: int = _NO_PORT):
        self.peer = peer
        self.my_port = my_port
        self.peer_port = peer_port

    def key(self) -> tuple[int, int, int]:
        return (self.peer, self.my_port, self.peer_port)

    def __repr__(self) -> str:
        return f"VirtualEdge({self.peer}, my_port={self.my_port}, peer_port={self.peer_port})"


class RotationWalk(SubMachine):
    """Per-participant state machine of the rotation walk.

    Results (valid once ``done``): ``success``, ``fail_code``,
    ``cycindex`` (1-based path position — the paper's ``cycindex``),
    ``pred`` / ``succ`` (cycle neighbours, virtual ids),
    ``pred_port`` / ``succ_port`` (stitching info in ported mode),
    ``steps_seen`` (Theorem 2's step count, as observed locally).
    """

    def __init__(
        self,
        prefix: str,
        vid: int,
        edges: list[VirtualEdge],
        *,
        tree_neighbors: list[int],
        tree_depth: int,
        size: int,
        is_initial_head: bool,
        step_budget: int,
        send: Callable[..., None],
        latency: int = 1,
        ported: bool = False,
    ):
        super().__init__()
        self.PREFIX = prefix
        self.vid = vid
        self.edges = list(edges)
        self.tree_neighbors = list(tree_neighbors)
        self.tree_depth = tree_depth
        self.size = size
        self.is_initial_head = is_initial_head
        self.step_budget = step_budget
        self.latency = max(1, latency)
        self.ported = ported
        self._send = send

        self.success = False
        self.fail_code = 0
        self.cycindex = 0
        self.pred = -1
        self.succ = -1
        self.pred_port = _NO_PORT
        self.succ_port = _NO_PORT
        self.pred_peer_port = _NO_PORT
        self.succ_peer_port = _NO_PORT
        self.free_port: int | None = None  # open port at the head / the tail
        self.steps_seen = 0

        self._dead: set[tuple[int, int, int]] = set()
        self._is_head = False
        self._last_progress: VirtualEdge | None = None
        self._pending_head_round = -1

    # -- lifecycle -------------------------------------------------------------

    def begin(self, ctx: Context) -> None:
        if not self.is_initial_head:
            return
        if self.size < 3:
            self._abort(ctx, FAIL_TOO_SMALL)
            return
        self.cycindex = 1
        self._is_head = True
        self.free_port = None  # both ports open until the first edge binds
        self._progress(ctx, 1)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        for message in messages:
            if self.done:
                return
            suffix = message.payload[0].rsplit(".", 1)[1]
            fields = message.payload[1:-1]
            vsender = message.payload[-1]
            if suffix == "p":
                self._on_progress(ctx, vsender, *fields)
            elif suffix == "y":
                self._on_retry(ctx, *fields)
            elif suffix == "r":
                self._forward_flood(ctx, vsender, "r", fields)
                self._on_rotation(ctx, *fields)
            elif suffix == "w":
                self._forward_flood(ctx, vsender, "w", fields)
                self._finish(True)
            elif suffix == "f":
                self._forward_flood(ctx, vsender, "f", fields)
                self._finish(False, fields[0])

    def on_wake(self, ctx: Context) -> None:
        # Post-rotation quiescence wait is over: act as the new head.
        if self._is_head and ctx.round_index >= self._pending_head_round:
            self._progress(ctx, self.steps_seen + 1)

    # -- head behaviour ----------------------------------------------------------

    def _progress(self, ctx: Context, step: int) -> None:
        """Pick a random unused edge at the free port and advance (l.7-10)."""
        if step > self.step_budget:
            self._abort(ctx, FAIL_BUDGET)
            return
        usable = [
            e for e in self.edges
            if e.key() not in self._dead
            and (self.free_port is None or e.my_port == self.free_port)
        ]
        if not usable:
            self._abort(ctx, FAIL_NO_EDGES)
            return
        edge = usable[int(ctx.rng.integers(len(usable)))]
        self._dead.add(edge.key())
        self._last_progress = edge
        self.steps_seen = step
        # Optimistic successor binding; corrected on rotation or retry.
        self.succ = edge.peer
        self.succ_port = edge.my_port
        self.succ_peer_port = edge.peer_port
        if self.free_port is None:  # initial head binding its first edge
            self.free_port = _other_port(edge.my_port) if self.ported else _NO_PORT
        self._send(ctx, edge, "p", step, self.cycindex, edge.my_port, _NO_PORT)

    def _on_retry(self, ctx: Context, step: int) -> None:
        if not self._is_head or self.done:
            return
        self.succ = -1
        self.succ_port = _NO_PORT
        self.succ_peer_port = _NO_PORT
        self._progress(ctx, step + 1)

    def _abort(self, ctx: Context, code: int) -> None:
        self._flood(ctx, "f", code)
        self._finish(False, code)

    # -- receiving a progress ------------------------------------------------------

    def _on_progress(self, ctx: Context, vsender: int, step: int, pos: int,
                     sender_port: int, my_port: int) -> None:
        self._dead.add((vsender, my_port, sender_port))
        self.steps_seen = max(self.steps_seen, step)

        if self.cycindex == 0:
            # Extension (l.14-15): join the path and become the head.
            self.cycindex = pos + 1
            self.pred = vsender
            self.pred_port = my_port
            self.pred_peer_port = sender_port
            self._is_head = True
            self.free_port = _other_port(my_port) if self.ported else _NO_PORT
            self._progress(ctx, step + 1)
            return

        tail = self.cycindex == 1
        tail_open_hit = tail and (not self.ported or my_port == self.free_port)
        if tail_open_hit and pos == self.size:
            # Closure (l.12): the full path reached the start's open port.
            self.pred = vsender
            self.pred_port = my_port
            self.pred_peer_port = sender_port
            self._flood(ctx, "w", 0)
            self._finish(True)
            return
        if self.ported and not tail and my_port != self.succ_port:
            # The hit port is bound toward our predecessor; freeing it
            # would disconnect the path prefix.  Discard and retry.
            self._send(ctx, VirtualEdge(vsender, my_port, sender_port), "y", step)
            return

        # Rotation (l.16-17): we are v_j, the sender is the head v_h.
        # Our successor edge (v_j, v_{j+1}) is removed; the new edge
        # binds at the hit port.  For the tail both ports are legal and
        # whichever is not hit stays/becomes the open tail port.
        self.succ = vsender
        self.succ_port = my_port
        self.succ_peer_port = sender_port
        if tail and self.ported:
            self.free_port = _other_port(my_port)
        start = ctx.round_index
        self._flood(ctx, "r", step, pos, self.cycindex, start)

    # -- rotation renumbering (Fig. 2) ----------------------------------------------

    def _on_rotation(self, ctx: Context, step: int, h: int, j: int, start: int) -> None:
        self.steps_seen = max(self.steps_seen, step)
        ci = self.cycindex
        if not (j < ci <= h):
            return  # off-segment (incl. off-path and the initiator v_j)

        self.cycindex = h + j + 1 - ci
        if ci == h and self._last_progress is None:
            self._abort(ctx, FAIL_CORRUPT)
            return
        if ci == h and ci == j + 1:
            # Degenerate single-node segment: the head hit its own
            # predecessor through a second realization.  Its pred edge
            # re-binds to the freshly used edge; it remains the head.
            freed = self.pred_port
            self.pred = self._last_progress.peer
            self.pred_port = self._last_progress.my_port
            self.pred_peer_port = self._last_progress.peer_port
            self.succ, self.succ_port, self.succ_peer_port = -1, _NO_PORT, _NO_PORT
            self.free_port = freed if self.ported else _NO_PORT
            self._become_head(ctx, start)
        elif ci == h:
            # v_h: its proposed edge became a path edge; the old
            # predecessor is now its successor (segment reversed).
            self.succ, self.pred = self.pred, self._last_progress.peer
            self.succ_port, self.pred_port = self.pred_port, self._last_progress.my_port
            self.succ_peer_port, self.pred_peer_port = (
                self.pred_peer_port, self._last_progress.peer_port)
            self._is_head = False
        elif ci == j + 1:
            # v_{j+1}: the removed edge frees its pred-side port; it is
            # the new head.
            freed = self.pred_port
            self.pred, self.pred_port = self.succ, self.succ_port
            self.pred_peer_port = self.succ_peer_port
            self.succ, self.succ_port, self.succ_peer_port = -1, _NO_PORT, _NO_PORT
            self.free_port = freed if self.ported else _NO_PORT
            self._become_head(ctx, start)
        else:
            # Interior of the reversed segment: roles swap.
            self.pred, self.succ = self.succ, self.pred
            self.pred_port, self.succ_port = self.succ_port, self.pred_port
            self.pred_peer_port, self.succ_peer_port = (
                self.succ_peer_port, self.pred_peer_port)

    def _become_head(self, ctx: Context, flood_start: int) -> None:
        self._is_head = True
        wait = 2 * self.tree_depth * self.latency + 2
        self._pending_head_round = max(flood_start + wait, ctx.round_index + 1)
        self.schedule(ctx, self._pending_head_round)

    # -- tree flooding ----------------------------------------------------------------

    def _flood(self, ctx: Context, suffix: str, *fields: int) -> None:
        for peer in self.tree_neighbors:
            self._send(ctx, VirtualEdge(peer), suffix, *fields)

    def _forward_flood(self, ctx: Context, vsender: int, suffix: str, fields: tuple) -> None:
        for peer in self.tree_neighbors:
            if peer != vsender:
                self._send(ctx, VirtualEdge(peer), suffix, *fields)

    # -- termination --------------------------------------------------------------------

    def _finish(self, success: bool, code: int = 0) -> None:
        self.success = success
        self.fail_code = code
        self.failed = not success
        self.done = True


def _other_port(port: int) -> int:
    return 1 - port
