"""Distributed baselines the paper compares against.

Two comparators frame the paper's contribution:

* :mod:`repro.baselines.levy` — the only prior distributed HC algorithm,
  Levy–Louchard–Petit [18]: three phases (initial cycle, ``sqrt(n)``
  disjoint paths, patching), ``O(n^{3/4+eps})`` rounds, requires the
  much denser regime ``p = omega(sqrt(log n) / n^{1/4})``.
* :mod:`repro.baselines.local_collect` — the LOCAL-model triviality of
  footnote 6: with unbounded message sizes every problem falls to
  "collect the topology at one node in O(D) rounds"; measuring the bits
  it moves is what motivates CONGEST in the first place.

Both return the library-standard :class:`~repro.engines.results.RunResult`
so the comparison benches treat all algorithms uniformly.
"""

from repro.baselines.levy import run_levy
from repro.baselines.local_collect import run_local_collect

__all__ = ["run_levy", "run_local_collect"]
