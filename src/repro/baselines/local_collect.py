"""The LOCAL-model triviality — footnote 6 of the paper.

"In contrast, in the LOCAL model — where there is no bandwidth
constraint — all problems can be trivially solved in O(D) rounds by
collecting all the topological information at one node."

This baseline makes that remark measurable.  It simulates, at step
level, the canonical LOCAL algorithm:

1. leader = the minimum id (a flood takes ``ecc`` rounds; every node
   learns the winner);
2. *gather*: every node repeatedly forwards everything it knows toward
   the leader; after ``ecc(leader)`` rounds the leader holds the whole
   edge list;
3. the leader solves locally (Angluin–Valiant with restarts — the graph
   is a random graph, so this succeeds whp);
4. *scatter*: the leader floods each node's two cycle neighbours back;
   another ``ecc(leader)`` rounds.

The round count is honest LOCAL accounting (``3 ecc + O(1)``).  What
the model hides — and what this module *measures* — is the traffic: the
gather moves ``Theta(m)`` edge descriptions, each travelling up to
``ecc`` hops, so the bit total is ``Theta(m * D * log n)``, far beyond
CONGEST's per-round budget.  Experiment E9 contrasts this with the
CONGEST algorithms' totals.

Memory is equally centralised: the leader stores all ``m`` edges, an
``Omega(n)`` (indeed ``Omega(m)``) footprint that breaks the paper's
fully-distributed o(n) restriction — the same critique Section III
makes of the Upcast algorithm, amplified.
"""

from __future__ import annotations

import numpy as np

from repro.congest.message import word_bits
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.graphs.properties import bfs_distances
from repro.sequential.posa import posa_cycle
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_local_collect"]


def run_local_collect(
    graph: Graph,
    *,
    seed: int = 0,
    restarts: int = 8,
) -> RunResult:
    """Solve HC the LOCAL way: collect everything at the min-id node.

    Returns ``rounds`` = ``3 * ecc(leader) + 1`` (election + gather +
    scatter) and ``bits`` = the exact traffic the gather and scatter
    move (each edge charged ``2 * word_bits(n)`` per hop travelled).
    ``success`` requires a verified Hamiltonian cycle, as everywhere in
    this library.
    """
    n = graph.n
    if n < 3:
        return RunResult("local", False, None, 0, engine="fast",
                         detail={"reason": "too-small"})

    leader = 0  # minimum id, as the election would produce
    dist = bfs_distances(graph, leader)
    if np.any(dist < 0):
        return RunResult("local", False, None, 0, engine="fast",
                         detail={"reason": "disconnected"})
    ecc = int(dist.max())
    rounds = 3 * ecc + 1

    # Gather traffic: edge {u, v} is reported by its lower endpoint and
    # travels dist(endpoint -> leader) hops; 2 id words per edge per hop.
    wb = word_bits(n)
    edge_arr = graph.edge_array()
    hops_up = int(dist[edge_arr[:, 0]].sum())
    gather_bits = 2 * wb * hops_up
    # Scatter traffic: each node's (pred, succ) assignment, 2 words,
    # travels dist(leader -> node) hops.
    scatter_bits = 2 * wb * int(dist.sum())
    bits = gather_bits + scatter_bits
    messages = hops_up + int(dist.sum())

    rng = np.random.default_rng(np.random.SeedSequence(seed))
    neighbors = {v: graph.neighbor_list(v) for v in range(n)}
    cycle = posa_cycle(n, neighbors, rng=rng, restarts=restarts)

    ok = cycle is not None
    if ok:
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    return RunResult(
        algorithm="local",
        success=ok,
        cycle=cycle if ok else None,
        rounds=rounds,
        messages=messages,
        bits=bits,
        engine="fast",
        detail={
            "leader": leader,
            "eccentricity": ecc,
            "leader_state_words": 2 * graph.m,  # the whole edge list
        },
    )
