"""The Levy–Louchard–Petit baseline — reference [18] of the paper.

The paper positions its algorithms against the only prior distributed
HC algorithm: Levy et al. (2004), which runs in ``O(n^{3/4 + eps})``
rounds and *requires* ``p = omega(sqrt(log n) / n^{1/4})`` — a much
denser regime than the Hamiltonicity threshold.  Their algorithm
(built on MacKenzie–Stout [19]) "works in three phases: finding an
initial cycle, finding ``sqrt(n)`` disjoint paths, and finally patching
paths into the cycle to build the HC" (Section I-B).

Reconstruction (documented in DESIGN.md, substitution 5)
--------------------------------------------------------
The original workshop paper predates artifact culture and no
implementation survives; we rebuild the three-phase structure at step
level with explicit round accounting:

1. *Disjoint paths.*  ``sqrt(n)`` seed nodes grow vertex-disjoint paths
   greedily in parallel; per round every active head claims a uniformly
   random unclaimed neighbour (ties broken by smallest path id — losers
   burn the round, exactly the conflict cost a distributed
   implementation pays).  Heads with no unclaimed neighbours retire.
2. *Initial cycle.*  The longest path is closed into a cycle by
   rotation–extension restricted to its own nodes (each rotation costs
   a renumbering broadcast over the path, charged at the path's
   diameter-bounded backbone like our DRA does).
3. *Patching.*  Paths are patched into the growing cycle one at a time:
   endpoints ``(u, v)`` of the path seek a cycle edge ``(x, y)`` with
   ``x ~ u`` and ``y ~ v`` (either orientation); each attempt costs one
   endpoint broadcast plus one candidate convergecast (charged ``2D+2``
   rounds).  If no patch edge exists the path is rotated to expose new
   endpoints and retried; after ``patch_attempts`` failures the run
   aborts.  Unclaimed leftover nodes are singleton paths patched the
   same way (a singleton needs a cycle edge whose *both* endpoints see
   it).

The reconstruction preserves the two behaviours the comparison (A4)
needs: the round count is dominated by sequential patching of
``Theta(sqrt(n))`` paths, and patching relies on *pairs* of adjacent
cross edges (probability ``~p^2`` per cycle edge), so success collapses
once ``n * p^2`` drops below ``~ln n`` — reproducing the density floor
the paper criticises [18] for, while DHC2 keeps working down to the
true threshold.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.graphs.properties import bfs_distances
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_levy", "levy_density_requirement"]


def levy_density_requirement(n: int) -> float:
    """The regime [18] needs: ``p = omega(sqrt(log n) / n^{1/4})``.

    Returned as the boundary value ``sqrt(ln n) / n^{1/4}``; the
    algorithm is only promised for ``p`` asymptotically above this.
    """
    if n < 3:
        return 1.0
    return math.sqrt(math.log(n)) / n**0.25


class _PathSystem:
    """Vertex-disjoint paths under construction (phase 1 state)."""

    def __init__(self, seeds: list[int]):
        self.paths: list[list[int]] = [[s] for s in seeds]
        self.owner: dict[int, int] = {s: i for i, s in enumerate(seeds)}
        self.active: set[int] = set(range(len(seeds)))

    def claimed(self, v: int) -> bool:
        return v in self.owner

    def grow(self, path_id: int, v: int) -> None:
        self.paths[path_id].append(v)
        self.owner[v] = path_id


def _grow_disjoint_paths(
    graph: Graph, seeds: list[int], rng: np.random.Generator,
) -> tuple[_PathSystem, int]:
    """Phase 1: parallel greedy growth; returns the system and round cost."""
    system = _PathSystem(seeds)
    rounds = 0
    while system.active:
        rounds += 1
        # Each active head proposes one random unclaimed neighbour.
        proposals: dict[int, list[int]] = {}
        for path_id in sorted(system.active):
            head = system.paths[path_id][-1]
            unclaimed = [w for w in graph.neighbor_list(head)
                         if not system.claimed(w)]
            if not unclaimed:
                system.active.discard(path_id)
                continue
            pick = unclaimed[int(rng.integers(len(unclaimed)))]
            proposals.setdefault(pick, []).append(path_id)
        # Conflict rule: smallest path id wins the node; losers retry.
        for node, contenders in proposals.items():
            system.grow(min(contenders), node)
    return system, rounds


def _close_into_cycle(
    graph: Graph, path: list[int], rng: np.random.Generator,
    *, step_budget: int,
) -> tuple[list[int] | None, int, int]:
    """Phase 2: rotation-close a path into a cycle using its own nodes.

    Returns ``(cycle | None, steps, rounds)``; each rotation is charged
    ``2 * ceil(log2 L) + 2`` rounds (renumbering broadcast over a
    balanced backbone of the L path nodes), closure checks are free
    (head consults its own adjacency).
    """
    if len(path) < 3:
        return None, 0, 0
    members = set(path)
    path = list(path)
    pos = {v: i for i, v in enumerate(path)}
    used: set[tuple[int, int]] = set()
    broadcast = 2 * max(1, math.ceil(math.log2(len(path)))) + 2
    steps = 0
    rounds = 0
    while steps < step_budget:
        steps += 1
        head = path[-1]
        start = path[0]
        if graph.has_edge(head, start) and len(path) == len(members):
            rounds += 1
            return path, steps, rounds
        options = [w for w in graph.neighbor_list(head)
                   if w in members and w != head
                   and (head, w) not in used]
        if not options:
            return None, steps, rounds
        pick = options[int(rng.integers(len(options)))]
        used.add((head, pick))
        used.add((pick, head))
        j = pos[pick]
        if j == len(path) - 2:  # its own predecessor: nothing to rotate
            rounds += 1
            continue
        # Rotate: reverse the suffix after pick.
        suffix = path[j + 1:]
        suffix.reverse()
        path[j + 1:] = suffix
        for i, v in enumerate(suffix, start=j + 1):
            pos[v] = i
        rounds += broadcast
    return None, steps, rounds


def _rotate_endpoint(
    graph: Graph, work: list[int], rng: np.random.Generator,
) -> list[int] | None:
    """Pósa-rotate ``work`` at one end to expose a fresh endpoint.

    If the tail ``work[-1]`` has an on-path edge to ``work[j]``
    (``j < len-2``), the suffix after ``j`` reverses and ``work[j+1]``
    becomes the new tail; failing that, the same is tried from the head
    (on the reversed path).  Returns the rotated path, or ``None`` when
    neither endpoint has a usable fold edge (endpoints cannot change).
    """
    for attempt in (work, work[::-1]):
        tail = attempt[-1]
        folds = [j for j in range(len(attempt) - 2)
                 if graph.has_edge(tail, attempt[j])]
        if folds:
            j = folds[int(rng.integers(len(folds)))]
            return attempt[:j + 1] + attempt[j + 1:][::-1]
    return None


def _find_patch(
    graph: Graph, cycle: list[int], u: int, v: int,
) -> tuple[int, bool] | None:
    """Find ``i`` such that cycle edge ``(c[i], c[i+1])`` patches path ends
    ``u .. v``; returns ``(i, reversed)`` or ``None``.

    ``reversed`` means the path must be inserted tail-first
    (``c[i] ~ v`` and ``c[i+1] ~ u``).
    """
    L = len(cycle)
    for i in range(L):
        x, y = cycle[i], cycle[(i + 1) % L]
        if graph.has_edge(x, u) and graph.has_edge(y, v):
            return i, False
        if graph.has_edge(x, v) and graph.has_edge(y, u):
            return i, True
    return None


def run_levy(
    graph: Graph,
    *,
    seed: int = 0,
    seeds_count: int | None = None,
    patch_attempts: int = 12,
) -> RunResult:
    """Run the reconstructed Levy et al. baseline on ``graph``.

    Step-level engine (``engine="fast"``): the returned ``rounds`` is
    the explicit accounting described in the module docstring, and
    ``success`` requires a fully verified Hamiltonian cycle.
    """
    n = graph.n
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    if n < 3:
        return RunResult("levy", False, None, 0, engine="fast",
                         detail={"reason": "too-small"})

    k = seeds_count if seeds_count is not None else max(1, math.isqrt(n))
    k = min(k, n)
    seeds = rng.choice(n, size=k, replace=False).astype(int).tolist()

    # Phase 1 — sqrt(n) disjoint paths.
    system, rounds = _grow_disjoint_paths(graph, seeds, rng)
    paths = sorted((p for p in system.paths), key=len, reverse=True)
    leftovers = [v for v in range(n) if v not in system.owner]
    paths.extend([v] for v in leftovers)
    phase1_rounds = rounds

    # Phase 2 — close a path into the initial cycle (longest first; a
    # couple of fallbacks keep one unlucky path from dooming the run).
    cycle = None
    steps = 0
    base_index = -1
    for candidate in range(min(3, len(paths))):
        base = paths[candidate]
        budget = int(7 * len(base) * max(1.0, math.log(max(2, len(base))))) + 32
        cycle, attempt_steps, close_rounds = _close_into_cycle(
            graph, base, rng, step_budget=budget)
        steps += attempt_steps
        rounds += close_rounds
        if cycle is not None:
            base_index = candidate
            break
    if cycle is None:
        return RunResult("levy", False, None, rounds, steps=steps, engine="fast",
                         detail={"reason": "initial-cycle", "paths": len(paths)})
    paths.pop(base_index)

    # Phase 3 — patch the remaining paths in, one at a time.
    diam_budget = _hop_radius(graph, cycle[0])
    patch_cost = 2 * diam_budget + 2
    patched = 0
    for path in paths:
        ok = False
        work = list(path)
        for _attempt in range(max(1, patch_attempts)):
            rounds += patch_cost
            u, v = work[0], work[-1]
            found = _find_patch(graph, cycle, u, v)
            if found is not None:
                i, rev = found
                insert = list(reversed(work)) if rev else work
                cycle = cycle[:i + 1] + insert + cycle[i + 1:]
                ok = True
                break
            if len(work) > 2:
                # Expose fresh endpoints by a genuine Pósa rotation
                # (edge-preserving); stop retrying if no fold exists.
                rotated = _rotate_endpoint(graph, work, rng)
                if rotated is None:
                    break
                work = rotated
        if not ok:
            return RunResult(
                "levy", False, None, rounds, steps=steps, engine="fast",
                detail={"reason": "patch-failed", "patched": patched,
                        "paths": len(paths) + 1})
        patched += 1

    ok = len(cycle) == n
    if ok:
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok = False
    return RunResult(
        algorithm="levy",
        success=ok,
        cycle=cycle if ok else None,
        rounds=rounds,
        steps=steps,
        engine="fast",
        detail={"paths": len(paths) + 1, "patched": patched,
                "phase1_rounds": phase1_rounds,
                "density_floor": levy_density_requirement(n)},
    )


def _hop_radius(graph: Graph, source: int) -> int:
    """Eccentricity of ``source`` (broadcast cost), tolerant of isolates."""
    dist = bfs_distances(graph, source)
    reachable = dist[dist >= 0]
    return int(reachable.max()) if reachable.size else 1
