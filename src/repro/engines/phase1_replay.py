"""The shared Phase-1 replay: colour draw + per-class rotation walks.

Three engines execute the same Phase 1 — DHC2's ``fast`` replay, DHC2
under native k-machine execution, and DHC1's k-machine engine (whose
CONGEST protocol shares ``PartitionedPhase1Protocol`` with DHC2) — and
they must consume the per-node RNG streams in exactly the same order:
one colour draw per node id, then each colour class's walk draws in
class order.  This module is that one implementation; the engines wrap
it with their own round accounting and (for the k-machine pair) link
ledger charges via the ``observer`` hook.

:func:`color_partition` draws the colours and builds the colour-filtered
CSR every class walk shares (classes partition the nodes, so the
filtered CSR is member-closed per class and one dead-edge mask serves
all walks).  :func:`replay_partition_walks` then runs the per-class
min-id BFS tree builds and rotation walks in colour order, stopping at
the first failure with the same fail reasons the engines always used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.analysis.bounds import dra_step_budget
from repro.graphs.adjacency import Graph, csr_sources

__all__ = ["Phase1Replay", "color_partition", "replay_partition_walks"]


@dataclass
class Phase1Replay:
    """What Phase 1 produced: per-class cycles, or the first failure.

    ``fail_reason`` is ``None`` on success, else one of
    ``"empty-partition"``, ``"partition-disconnected"``, or
    ``"walk-<code>"``; ``fail_round`` is the round the failure is
    charged to (the phase start for structural failures, the walk's
    end round otherwise).  ``phase1_end`` is the round by which every
    class's win flood has reached its whole tree.
    """

    ok: bool = True
    fail_reason: str | None = None
    fail_round: int = 0
    cycles: dict[int, list[int]] = field(default_factory=dict)
    trees: dict[int, object] = field(default_factory=dict)
    steps: int = 0
    phase1_end: int = 0

    @property
    def walk_failed(self) -> bool:
        """Whether the failure happened inside a class walk (so the
        walk's traffic demonstrably ran and must be charged)."""
        return self.fail_reason is not None and \
            self.fail_reason.startswith("walk-")


def color_partition(graph: Graph, rngs, colors: int):
    """Colour draw + the member-closed same-colour CSR all walks share.

    Returns ``(color_of, sub_indptr, sub_indices, twins, alive)`` —
    the per-node colours (1-based), the colour-filtered CSR built in
    one vectorised pass, its reverse-orientation table, and the shared
    dead-edge mask.
    """
    from repro.engines.arraywalk import edge_twins, filtered_csr

    n = graph.n
    color_of = np.array(
        [1 + int(rngs[v].integers(colors)) for v in range(n)],
        dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    src = csr_sources(indptr)
    sub_indptr, sub_indices = filtered_csr(
        indptr, indices, color_of[src] == color_of[indices])
    twins = edge_twins(sub_indptr, sub_indices)
    alive = np.ones(sub_indices.size, dtype=bool)
    return color_of, sub_indptr, sub_indices, twins, alive


def replay_partition_walks(
    *,
    indptr: np.ndarray,
    indices: np.ndarray,
    twins: np.ndarray,
    alive: np.ndarray,
    rngs,
    color_of: np.ndarray,
    colors: int,
    start_round: int,
    observer: Callable | None = None,
) -> Phase1Replay:
    """Run every colour class's BFS build + rotation walk in order.

    ``observer(c, members, tree, done, walk, trace, flood_ecc)``, if
    given, sees every class right after its walk finishes (successful
    or not) without perturbing the replay — the k-machine engines
    charge BFS schedules and walk traffic there.  ``done`` is the
    tree's full completion-time vector and ``trace`` the walk's
    ``(head, target)`` step log (collected only when an observer is
    present; the fast path keeps the walk's hot loop branch-only).
    """
    from repro.engines.arraywalk import ArrayWalk, build_array_tree

    res = Phase1Replay(fail_round=start_round, phase1_end=start_round)
    for c in range(1, colors + 1):
        members = np.flatnonzero(color_of == c)
        if members.size == 0:
            res.ok, res.fail_reason = False, "empty-partition"
            return res
        tree = build_array_tree(indptr, indices, members,
                                root=int(members[0]))
        if tree is None:
            res.ok, res.fail_reason = False, "partition-disconnected"
            return res
        done = tree.completion_times(start_round)
        trace: list[tuple[int, int]] | None = \
            [] if observer is not None else None
        walk = ArrayWalk(
            indptr=indptr,
            indices=indices,
            twins=twins,
            alive=alive,
            rngs=rngs,
            size=members.size,
            initial_head=tree.root,
            step_budget=dra_step_budget(members.size),
            tree_depth=max(1, tree.tree_depth),
            start_round=int(done[tree.root]) + 1,
            trace=trace,
        )
        walk.run()
        res.steps = max(res.steps, walk.steps)
        flood_ecc = (tree.eccentricity(walk.flood_initiator)
                     if observer is not None or walk.success else 0)
        if observer is not None:
            observer(c, members, tree, done, walk, trace, flood_ecc)
        if not walk.success:
            res.ok = False
            res.fail_reason = f"walk-{walk.fail_code}"
            res.fail_round = walk.end_round
            return res
        res.cycles[c] = walk.cycle()
        res.trees[c] = tree
        res.phase1_end = max(res.phase1_end, walk.end_round + flood_ecc)
    return res
