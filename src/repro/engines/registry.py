"""The unified algorithm x engine registry and ``repro.run``.

One table maps every ``(algorithm, engine)`` pair to its runner with
declared capabilities (see :mod:`repro.engines.api`).  Everything above
the execution layer — the CLI, the k-machine conversion, the harness,
the benchmarks and examples — dispatches through this table, so adding
an algorithm or engine is one :meth:`EngineRegistry.register` call
instead of a dozen call-site edits.

>>> import repro
>>> g = repro.gnp_random_graph(64, 0.5, seed=1)
>>> repro.run(g, "dra", engine="fast", seed=1).success
True

``engine="auto"`` picks the highest-priority engine that supports every
requested keyword: a plain run lands on the step-level fast engine when
one exists, while e.g. ``audit_memory=True`` steers the same call onto
the message-level congest simulator (the only engine that can audit).
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.engines.api import EngineSpec
from repro.engines.results import RunResult

__all__ = ["EngineRegistry", "REGISTRY", "run"]

#: Keyword sets shared by the fully-distributed congest front ends.
#: ``network`` is the unified substrate description (a
#: :class:`~repro.congest.model.NetworkModel` or its JSON form) —
#: bandwidth, fault plan, latency, churn in one object; the legacy
#: ``network_hook`` / ``fault_plan`` keywords remain as deprecation
#: shims folding into it, so sweeps mix fault scenarios without
#: importing ``repro.congest.faults`` at call sites (and
#: ``engine="auto"`` steers such runs onto the simulator, the only
#: engine that can inject).
_CONGEST_COMMON = ("max_rounds", "audit_memory", "network_hook", "fault_plan",
                   "network")

#: Keywords of the asynchronous event-queue entries: the unified
#: ``network`` model only (the async engine has no legacy shims — its
#: configuration surface was born consolidated).
_ASYNC_COMMON = ("max_rounds", "audit_memory", "network")

#: Keywords shared by the native k-machine engine entries: machine
#: count, per-link word budget (the model's ``W``), and an RVP stream
#: override (defaults to the run seed — the converted path's
#: convention, so both engines draw the identical partition).
_KMACHINE_COMMON = ("k_machines", "link_words", "partition_seed")


def _builtin_specs() -> list[EngineSpec]:
    """The library's shipped algorithms, referenced lazily by path."""
    return [
        # -- the paper's fully-distributed algorithms --------------------------
        EngineSpec("dra", "congest", "repro.core:run_dra",
                   supported_kwargs=("step_budget", *_CONGEST_COMMON),
                   kmachine_convertible=True, audits_memory=True,
                   summary="Algorithm 1 in the message-level simulator"),
        EngineSpec("dra", "async", "repro.engines.async_runners:_dra_async",
                   supported_kwargs=("step_budget", *_ASYNC_COMMON),
                   audits_memory=True, async_capable=True,
                   summary="Algorithm 1 on the asynchronous event-queue "
                           "engine (latency, loss, reordering, churn)"),
        EngineSpec("dra", "fast", "repro.engines.fast:_dra_fast",
                   supported_kwargs=("step_budget",),
                   parity=("cycle", "steps", "rounds"),
                   summary="Algorithm 1, step-level replay on the array kernel"),
        EngineSpec("dra", "fast-batch",
                   "repro.engines.fast_batch:_dra_fast_batch_one",
                   batch_runner="repro.engines.fast_batch:_dra_fast_batch",
                   supported_kwargs=("step_budget",),
                   parity=("cycle", "steps", "rounds"), jit=True, threads=True,
                   summary="Algorithm 1, hundreds of trials per pass on the "
                           "batch-major kernel"),
        EngineSpec("dra", "kmachine", "repro.engines.kmachine_engine:_dra_kmachine",
                   supported_kwargs=("step_budget", "k", *_KMACHINE_COMMON),
                   parity=("cycle", "steps", "rounds"),
                   summary="Algorithm 1 on the native k-machine engine "
                           "(k is an alias for k_machines here)"),
        EngineSpec("dhc1", "congest", "repro.core:run_dhc1",
                   supported_kwargs=("k", *_CONGEST_COMMON),
                   kmachine_convertible=True, audits_memory=True,
                   summary="Algorithm 2 in the message-level simulator"),
        EngineSpec("dhc1", "async", "repro.engines.async_runners:_dhc1_async",
                   supported_kwargs=("k", *_ASYNC_COMMON),
                   audits_memory=True, async_capable=True,
                   summary="Algorithm 2 on the asynchronous event-queue "
                           "engine"),
        EngineSpec("dhc1", "kmachine", "repro.engines.kmachine_dhc1:_dhc1_kmachine",
                   supported_kwargs=("k", *_KMACHINE_COMMON),
                   parity=("cycle", "steps"),
                   summary="Algorithm 2 on the native k-machine engine "
                           "(first step-level DHC1 replay)"),
        EngineSpec("dhc2", "congest", "repro.core:run_dhc2",
                   supported_kwargs=("delta", "k", *_CONGEST_COMMON),
                   kmachine_convertible=True, audits_memory=True,
                   summary="Algorithm 3 in the message-level simulator"),
        EngineSpec("dhc2", "async", "repro.engines.async_runners:_dhc2_async",
                   supported_kwargs=("delta", "k", *_ASYNC_COMMON),
                   audits_memory=True, async_capable=True,
                   summary="Algorithm 3 on the asynchronous event-queue "
                           "engine"),
        EngineSpec("dhc2", "fast", "repro.engines.fast_dhc2:_dhc2_fast",
                   supported_kwargs=("delta", "k"),
                   parity=("cycle", "steps"),
                   summary="Algorithm 3, step-level replay on the array kernel"),
        EngineSpec("dhc2", "fast-batch",
                   "repro.engines.fast_batch:_dhc2_fast_batch_one",
                   batch_runner="repro.engines.fast_batch:_dhc2_fast_batch",
                   supported_kwargs=("delta", "k"),
                   parity=("cycle", "steps"), jit=True, threads=True,
                   summary="Algorithm 3, Phase 1 batched per colour class on "
                           "the batch-major kernel"),
        EngineSpec("dhc2", "kmachine", "repro.engines.kmachine_engine:_dhc2_kmachine",
                   supported_kwargs=("delta", "k", *_KMACHINE_COMMON),
                   parity=("cycle", "steps"),
                   summary="Algorithm 3 on the native k-machine engine"),
        # The pure-Python walkers that preceded the array kernel served
        # one release as registered "fast-py" engines; they remain
        # importable (repro.engines.fast:_dra_fast_py,
        # repro.engines.fast_dhc2:_dhc2_fast_py) as the parity suite's
        # test-only oracles but are no longer dispatch targets.
        # -- related-work algorithms (ROADMAP: absorbed as registry entries) ----
        EngineSpec("turau", "congest", "repro.core.turau:run_turau",
                   supported_kwargs=("phase_budget", *_CONGEST_COMMON),
                   kmachine_convertible=True, audits_memory=True,
                   summary="Turau path merging (arXiv:1805.06728) in the "
                           "message-level simulator"),
        EngineSpec("turau", "async", "repro.engines.async_runners:_turau_async",
                   supported_kwargs=("phase_budget", *_ASYNC_COMMON),
                   audits_memory=True, async_capable=True,
                   summary="Turau path merging on the asynchronous "
                           "event-queue engine (its self-stabilising home "
                           "turf)"),
        EngineSpec("turau", "fast", "repro.engines.fast_turau:_turau_fast",
                   supported_kwargs=("phase_budget",),
                   parity=("cycle", "steps"),
                   summary="Turau path merging replayed on link arrays"),
        EngineSpec("turau", "fast-batch",
                   "repro.engines.fast_batch:_turau_fast_batch_one",
                   batch_runner="repro.engines.fast_batch:_turau_fast_batch",
                   supported_kwargs=("phase_budget",),
                   parity=("cycle", "steps"),
                   summary="Turau path merging, proposal and merge phases "
                           "batched in lockstep"),
        EngineSpec("turau", "kmachine", "repro.engines.kmachine_engine:_turau_kmachine",
                   supported_kwargs=("phase_budget", *_KMACHINE_COMMON),
                   parity=("cycle", "steps"),
                   summary="Turau path merging on the native k-machine engine"),
        EngineSpec("cre", "sequential", "repro.core.cre:run_cre",
                   supported_kwargs=("step_budget",),
                   summary="Alon-Krivelevich CRE solver (arXiv:1903.03007), "
                           "scalar reference"),
        EngineSpec("cre", "fast", "repro.engines.fast_cre:_cre_fast",
                   supported_kwargs=("step_budget",),
                   parity=("cycle", "steps"),
                   summary="Alon-Krivelevich CRE solver on CSR position "
                           "arrays"),
        EngineSpec("cre", "fast-batch",
                   "repro.engines.fast_batch:_cre_fast_batch_one",
                   batch_runner="repro.engines.fast_batch:_cre_fast_batch",
                   supported_kwargs=("step_budget",),
                   parity=("cycle", "steps"), jit=True, threads=True,
                   summary="Alon-Krivelevich CRE solver, batched trials on "
                           "shared position arrays"),
        # -- the paper's centralized algorithms --------------------------------
        EngineSpec("upcast", "congest", "repro.core:run_upcast",
                   supported_kwargs=("c_prime", "solver_restarts",
                                     "max_rounds", "audit_memory"),
                   audits_memory=True,
                   summary="Section III-A sampling upcast"),
        EngineSpec("trivial", "congest", "repro.core:run_trivial",
                   supported_kwargs=("solver_restarts", "max_rounds",
                                     "audit_memory"),
                   audits_memory=True,
                   summary="collect-everything O(m) baseline"),
        # -- distributed baselines ---------------------------------------------
        EngineSpec("levy", "fast", "repro.baselines:run_levy",
                   supported_kwargs=("seeds_count", "patch_attempts"),
                   summary="Levy-Louchard-Petit [18] reconstruction"),
        EngineSpec("local", "fast", "repro.baselines:run_local_collect",
                   supported_kwargs=("restarts",),
                   summary="LOCAL-model topology collection (footnote 6)"),
        # -- sequential solvers ------------------------------------------------
        EngineSpec("posa", "sequential", "repro.sequential.runners:run_posa",
                   supported_kwargs=("restarts", "step_budget"),
                   summary="Posa rotation-extension with restarts"),
        EngineSpec("angluin-valiant", "sequential",
                   "repro.sequential.runners:run_angluin_valiant",
                   supported_kwargs=("step_budget",),
                   summary="classical O(n log^2 n) sequential walk"),
    ]


class EngineRegistry:
    """Mutable mapping ``(algorithm, engine) -> EngineSpec``.

    The module-level :data:`REGISTRY` holds the shipped algorithms;
    downstream code registers its own entries (or builds a private
    registry) to plug new algorithms into the CLI, harness, and
    k-machine conversion without touching them.
    """

    def __init__(self, specs: Iterable[EngineSpec] = ()):
        self._specs: dict[tuple[str, str], EngineSpec] = {}
        for spec in specs:
            self.register(spec)

    @classmethod
    def with_builtins(cls) -> "EngineRegistry":
        return cls(_builtin_specs())

    # -- registration ----------------------------------------------------------

    def register(self, spec: EngineSpec, *, replace: bool = False) -> EngineSpec:
        """Add one spec; re-registering a key needs ``replace=True``."""
        if spec.key in self._specs and not replace:
            raise ValueError(
                f"{spec.key} already registered; pass replace=True to override")
        self._specs[spec.key] = spec
        return spec

    # -- lookup ----------------------------------------------------------------

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._specs

    def __iter__(self):
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def get(self, algorithm: str, engine: str) -> EngineSpec:
        """The exact ``(algorithm, engine)`` spec, or ``ValueError``."""
        try:
            return self._specs[(algorithm, engine)]
        except KeyError:
            if not self.engines_for(algorithm):
                raise ValueError(
                    f"unknown algorithm {algorithm!r}; choose from "
                    f"{self.algorithms()}") from None
            raise ValueError(
                f"algorithm {algorithm!r} has no {engine!r} engine; "
                f"available: {sorted(self.engines_for(algorithm))}") from None

    def algorithms(self) -> list[str]:
        """All registered algorithm names, sorted."""
        return sorted({a for a, _ in self._specs})

    def engines_for(self, algorithm: str) -> dict[str, EngineSpec]:
        """``engine name -> spec`` for one algorithm."""
        return {e: s for (a, e), s in self._specs.items() if a == algorithm}

    def engine_names(self) -> list[str]:
        """All registered engine names, sorted."""
        return sorted({e for _, e in self._specs})

    def resolve(self, algorithm: str, engine: str = "auto",
                require: Iterable[str] = ()) -> EngineSpec:
        """Pick the spec for ``algorithm``.

        With an explicit ``engine`` this is :meth:`get` (the ``require``
        check still applies, so capability errors surface here rather
        than deep in a runner).  With ``engine="auto"`` the
        highest-priority engine whose ``supported_kwargs`` cover
        ``require`` wins.
        """
        need = frozenset(require)
        if engine != "auto":
            spec = self.get(algorithm, engine)
            missing = sorted(need - spec.supported_kwargs)
            if missing:
                raise ValueError(
                    f"engine {engine!r} for algorithm {algorithm!r} does not "
                    f"support: {', '.join(missing)}")
            return spec
        candidates = self.engines_for(algorithm)
        if not candidates:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from "
                f"{self.algorithms()}")
        usable = [s for s in candidates.values() if s.supports(need)]
        if not usable:
            raise ValueError(
                f"no engine for algorithm {algorithm!r} supports "
                f"{sorted(need)}; available: "
                + "; ".join(f"{e}: {sorted(s.supported_kwargs)}"
                            for e, s in sorted(candidates.items())))
        return max(usable, key=lambda s: (s.priority, s.engine))

    def convertible_algorithms(self) -> list[str]:
        """Algorithms whose congest runner admits k-machine conversion."""
        return sorted(s.algorithm for s in self._specs.values()
                      if s.kmachine_convertible)


#: The default registry holding the library's shipped algorithms.
REGISTRY = EngineRegistry.with_builtins()


def run(graph, algorithm: str = "dhc2", engine: str = "auto", *,
        seed: int = 0, registry: EngineRegistry | None = None,
        **kwargs: Any) -> RunResult:
    """Run ``algorithm`` on ``graph`` — the library's one entry point.

    Parameters
    ----------
    graph:
        A :class:`~repro.graphs.adjacency.Graph`.
    algorithm:
        A registered algorithm name (``repro.REGISTRY.algorithms()``).
    engine:
        ``"auto"`` (default — fastest engine that supports the given
        keywords), or an explicit engine name such as ``"congest"``,
        ``"fast"``, or ``"sequential"``.
    seed:
        Master seed for the run's RNG streams.
    registry:
        Dispatch table override (defaults to :data:`REGISTRY`).
    **kwargs:
        Runner options, validated against the chosen spec's declared
        ``supported_kwargs`` — e.g. ``delta=0.5``, ``k=8``,
        ``audit_memory=True``.
    """
    table = REGISTRY if registry is None else registry
    spec = table.resolve(algorithm, engine, require=kwargs)
    return spec.call(graph, seed=seed, **kwargs)
