"""The result object every algorithm front-end returns."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunResult"]


@dataclass
class RunResult:
    """Outcome of one Hamiltonian-cycle computation.

    Attributes
    ----------
    algorithm:
        Short name ("dra", "dhc1", "dhc2", "upcast", "trivial", ...).
    success:
        Whether a verified Hamiltonian cycle was produced.  The paper's
        algorithms are Monte Carlo over the input graph *and* their own
        coins; failures are legitimate outcomes that experiment E6
        quantifies.
    cycle:
        The cycle as a node sequence (closing edge implied), or ``None``.
    rounds:
        CONGEST rounds consumed — the paper's primary cost measure.
    messages / bits:
        Communication totals.
    steps:
        Rotation-walk steps (extensions + rotations + retries), the unit
        of Theorem 2; 0 when not applicable.
    engine:
        "congest" (message-level) or "fast" (step-level).
    detail:
        Algorithm-specific extras (phase breakdowns, memory audit, ...).
    """

    algorithm: str
    success: bool
    cycle: list[int] | None
    rounds: int
    messages: int = 0
    bits: int = 0
    steps: int = 0
    engine: str = "congest"
    detail: dict = field(default_factory=dict)

    def __repr__(self) -> str:
        status = "ok" if self.success else "FAILED"
        return (
            f"RunResult({self.algorithm}/{self.engine} {status}, "
            f"rounds={self.rounds}, messages={self.messages}, steps={self.steps})"
        )
