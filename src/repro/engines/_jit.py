"""Optional numba backend for the batch kernels (``REPRO_JIT``).

Pure numpy is the default and the fallback: nothing here is required
for correctness, and numba is never a hard dependency — it ships as
the ``jit`` optional extra (``pip install repro-hc[jit]``), and
requesting JIT without it installed degrades to the numpy kernels
with a one-time warning.

When ``REPRO_JIT=1`` *and* numba is importable, the **fused** batch
kernels below are compiled and :mod:`repro.engines.batchwalk`
dispatches to them through the module attributes ``walk_kernel`` /
``tree_kernel`` / ``reverse_blocks`` (``None`` when disabled; looked
up dynamically, so benchmarks can toggle the compiled path inside one
process).  They replace the two narrow ``compile_kernel`` shims of
the first JIT cut (bit-select ranking and the CRE blockwise
reversal): instead of accelerating one inner scan per pass,
:func:`walk_steps_impl` runs each trial's *entire* rotation walk to
completion — per-step PCG64 advance, Lemire bounded draw, live-bit
popcount/select, twin-table edge kill, and the
extension/closure/rotation path update — in one compiled loop, which
is where the residual ~8 us/trial-step of numpy dispatch lived.

Trials are fully independent (disjoint node id blocks, per-node RNG
streams, disjoint CSR blocks), so running them to completion one
after another instead of interleaved pass-by-pass consumes every
per-node stream in exactly the serial order: results are bitwise
identical to the numpy path.  ``tests/test_batch_kernel.py`` asserts
that by executing these same ``*_impl`` functions *uncompiled*
against :class:`~repro.engines.batchwalk.BatchWalk`, so the contract
is enforced on every host — numba or not — and the CI jit lane
re-runs the whole suite compiled.

Every ``*_impl`` function is plain Python over numpy scalars and
preallocated arrays: valid ``numba.njit`` input and runnable
(slowly) without it.  All uint64 arithmetic sticks to uint64-typed
constants — mixing signed ints into uint64 expressions promotes to
float64 under numba and raises under numpy 2 scalar rules.

**Threading** (``REPRO_JIT_THREADS``): each kernel also exists as a
``*_parallel_impl`` variant whose outer trial loop is
``numba.prange`` instead of ``range``.  Lanes are trial-independent
by construction — trial ``b`` owns node-id block ``[b*n, (b+1)*n)``,
so its PCG64 state rows, live-bit words, path buffer, and every
outcome slot are disjoint from every other lane's — which makes the
prange loop race-free *and* bitwise-identical to the serial order:
each lane consumes exactly its own per-node streams regardless of
which thread runs it.  ``REPRO_JIT_THREADS=N`` (with ``REPRO_JIT=1``
and numba present) compiles the parallel variants with
``parallel=True`` and calls ``numba.set_num_threads(N)``; ``0`` or
unset keeps the serial njit kernels.  The equality contract in
``tests/test_batch_kernel.py`` covers the parallel impls uncompiled
(prange degrades to ``range`` without numba), and the CI threaded
numba lane re-runs the suite compiled with two threads.
"""

from __future__ import annotations

import os
import warnings

import numpy as np

__all__ = [
    "HAVE_NUMBA", "REQUESTED", "ENABLED", "THREADS", "THREADED",
    "compile_kernel", "compile_parallel", "configure_threads",
    "walk_steps_impl", "tree_build_impl", "reverse_blocks_impl",
    "walk_steps_parallel_impl", "tree_build_parallel_impl",
    "reverse_blocks_parallel_impl",
    "walk_kernel", "tree_kernel", "reverse_blocks",
]


def _truthy(value: str) -> bool:
    return value.strip().lower() in {"1", "true", "yes", "on"}


def _parse_threads(value: str) -> int:
    """``REPRO_JIT_THREADS`` as a non-negative thread count (0 = serial)."""
    value = value.strip()
    if not value:
        return 0
    try:
        threads = int(value)
    except ValueError:
        warnings.warn(
            f"REPRO_JIT_THREADS={value!r} is not an integer; "
            "using the serial kernel",
            RuntimeWarning,
            stacklevel=2,
        )
        return 0
    return max(0, threads)


#: Whether the environment asked for the compiled backend.
REQUESTED = _truthy(os.environ.get("REPRO_JIT", ""))

#: Requested kernel thread count (0 = serial njit kernels).
THREADS = _parse_threads(os.environ.get("REPRO_JIT_THREADS", ""))

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: Compiled kernels are used only when requested *and* available.
ENABLED = REQUESTED and HAVE_NUMBA

#: Whether the threaded (prange) kernels are in effect right now.
THREADED = ENABLED and THREADS > 0

if REQUESTED and not HAVE_NUMBA:
    warnings.warn(
        "REPRO_JIT requested but numba is not installed; falling back to "
        "the pure-numpy batch kernel (install the 'jit' extra to compile)",
        RuntimeWarning,
        stacklevel=2,
    )

if THREADS > 0 and not ENABLED:
    warnings.warn(
        "REPRO_JIT_THREADS requested without a compiled backend "
        "(needs REPRO_JIT=1 and numba); the threaded kernel is unavailable "
        "and the active path stays single-threaded",
        RuntimeWarning,
        stacklevel=2,
    )

#: ``numba.prange`` when numba is importable, plain ``range`` otherwise —
#: so the ``*_parallel_impl`` variants run (serially) uncompiled too.
prange = numba.prange if HAVE_NUMBA else range


def compile_kernel(fn):
    """``numba.njit(cache=True)`` when enabled; the function unchanged otherwise."""
    if ENABLED:  # pragma: no cover - exercised only in the CI jit variant
        return numba.njit(cache=True)(fn)
    return fn


def compile_parallel(fn):
    """``numba.njit(parallel=True, cache=True)`` when enabled; identity otherwise."""
    if ENABLED:  # pragma: no cover - exercised only in the CI jit variant
        return numba.njit(parallel=True, cache=True)(fn)
    return fn


# -- uint64 constants (kept typed: see the module docstring) ---------------

_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U32 = np.uint64(32)
_U58 = np.uint64(58)
_U63 = np.uint64(63)
_U64 = np.uint64(64)
_MASK32 = np.uint64(0xFFFFFFFF)
_RANGE32 = np.uint64(1 << 32)
# PCG64's 128-bit LCG multiplier in 64-bit limbs (low limb split again
# into 32-bit halves for the mulhi decomposition) — the same constants
# batchwalk's vector replication uses.
_PCG_MH = np.uint64(0x2360ED051FC65DA4)
_PCG_ML = np.uint64(0x4385DF649FCCF645)
_PCG_ML_LO = np.uint64(0x9FCCF645)
_PCG_ML_HI = np.uint64(0x4385DF64)


def walk_steps_impl(order, ip, idx, twins, wp, bits, alive,
                    sh, sl, ih, il, word, pend,
                    buf, bpos, tails, sizes, budgets, rot_costs,
                    head, plen, rounds, steps, rotations, extensions,
                    success, fail_code, end_round, flood, live,
                    stride, fail_budget, fail_no_edges):
    """Run every listed trial's rotation walk to completion, in place.

    The fused equivalent of :meth:`BatchWalk.run`'s numpy pass loop,
    trial by trial: budget gate, cornered-before-draw failure, one
    bounded draw per step from the head's own PCG64 stream
    (``sh``/``sl``/``ih``/``il``/``word``/``pend`` are the
    ``DrawPool``'s state arrays, advanced exactly as ``DrawPool.draw``
    would), the draw-th live bit of the head row, a twin-table edge
    kill, then extension / closure / rotation applied eagerly to the
    backing row.  ``bpos`` holds *path* positions here (rotations
    reverse the suffix in place); the caller rewrites the segment
    descriptors to one forward run per finished trial afterwards.
    All outcome vectors receive the values the numpy passes write.
    """
    for t in range(order.size):
        b = order[t]
        h = head[b]
        row0 = b * stride
        step = 1
        while True:
            if step > budgets[b]:
                fail_code[b] = fail_budget
                flood[b] = h
                end_round[b] = rounds[b]
                live[b] = False
                break
            cnt = alive[h]
            if cnt == 0:
                fail_code[b] = fail_no_edges
                flood[b] = h
                end_round[b] = rounds[b]
                live[b] = False
                break
            # One bounded draw from node h's half-word stream (Lemire
            # multiply-shift with rejection; bound 1 consumes nothing).
            if cnt == 1:
                draw = 0
            else:
                c = np.uint64(cnt)
                threshold = (_RANGE32 - c) % c
                while True:
                    if pend[h]:
                        half = word[h] >> _U32
                        pend[h] = False
                    else:
                        lo_ = sl[h]
                        hi_ = sh[h]
                        al = lo_ & _MASK32
                        ah = lo_ >> _U32
                        mid1 = ah * _PCG_ML_LO
                        mid2 = al * _PCG_ML_HI
                        spill = ((al * _PCG_ML_LO >> _U32)
                                 + (mid1 & _MASK32)
                                 + (mid2 & _MASK32)) >> _U32
                        mulhi = (ah * _PCG_ML_HI + (mid1 >> _U32)
                                 + (mid2 >> _U32) + spill)
                        nlo = lo_ * _PCG_ML
                        nhi = mulhi + lo_ * _PCG_MH + hi_ * _PCG_ML
                        out_lo = nlo + il[h]
                        out_hi = nhi + ih[h]
                        if out_lo < nlo:
                            out_hi = out_hi + _U1
                        sl[h] = out_lo
                        sh[h] = out_hi
                        x = out_hi ^ out_lo
                        rot = out_hi >> _U58
                        w64 = (x >> rot) | (x << ((_U64 - rot) & _U63))
                        word[h] = w64
                        half = w64 & _MASK32
                        pend[h] = True
                    m = half * c
                    if (m & _MASK32) >= threshold:
                        draw = np.int64(m >> _U32)
                        break
            # The draw-th live bit of row h: word by popcount prefix,
            # then an LSB-first in-word scan (same rank rule as the
            # numpy binary select).
            w = np.int64(wp[h])
            rem = draw
            base = 0
            wv = _U0
            while True:
                wv = bits[w]
                pc = 0
                tmp = wv
                while tmp != _U0:
                    pc += 1
                    tmp &= tmp - _U1
                if rem < pc:
                    break
                rem -= pc
                w += 1
                base += 64
            j = 0
            while True:
                if wv & _U1:
                    if rem == 0:
                        break
                    rem -= 1
                wv >>= _U1
                j += 1
            off = base + j
            slot = ip[h] + off
            target = np.int64(idx[slot])
            # Kill the used edge in both directions.
            toff = np.int64(twins[slot]) - ip[target]
            bits[w] &= ~(_U1 << np.uint64(j))
            bits[np.int64(wp[target]) + (toff >> 6)] &= \
                ~(_U1 << np.uint64(toff & 63))
            alive[h] -= 1
            alive[target] -= 1
            steps[b] = step

            tp = np.int64(bpos[target])
            if tp < 0:
                length = plen[b]
                bpos[target] = length
                buf[row0 + length] = target
                plen[b] = length + 1
                h = target
                rounds[b] += 1
                extensions[b] += 1
            elif target == tails[b] and plen[b] == sizes[b]:
                success[b] = True
                flood[b] = target
                end_round[b] = rounds[b] + 1
                live[b] = False
                break
            else:
                # Rotation: reverse the path suffix after the target;
                # the new head is the target's old path successor.
                lo2 = tp + 1
                hi2 = np.int64(plen[b])
                i = row0 + lo2
                j2 = row0 + hi2 - 1
                while i < j2:
                    tmpv = buf[i]
                    buf[i] = buf[j2]
                    buf[j2] = tmpv
                    i += 1
                    j2 -= 1
                for cpos in range(lo2, hi2):
                    bpos[buf[row0 + cpos]] = cpos
                h = np.int64(buf[row0 + hi2 - 1])
                rounds[b] += rot_costs[b]
                rotations[b] += 1
            step += 1
        head[b] = h


def tree_build_impl(ip, idx, roots, expect, live, stride,
                    depth, parent, ok, tree_depth):
    """Per-trial min-id BFS trees over the stacked CSR, in place.

    The fused equivalent of :func:`build_batch_tree`'s per-trial
    passes: a queue BFS from each live trial's root (level structure —
    hence every depth — is visit-order independent), then the min-id
    parent rule as each reached non-root's *first* one-level-up
    neighbour in sorted row order.  ``expect`` is the trial's
    participant count (``n`` for full blocks, the colour-class size
    for partition walks); ``ok`` records whether the BFS reached all
    of them.  Skipped (non-live) trials keep depth -1 everywhere.
    """
    queue = np.empty(stride, dtype=np.int64)
    for b in range(roots.size):
        if not live[b]:
            continue
        base = b * stride
        r = np.int64(roots[b])
        depth[r] = 0
        queue[0] = r
        qh = 0
        qt = 1
        reached = 1
        maxd = 0
        while qh < qt:
            v = queue[qh]
            qh += 1
            dnext = depth[v] + 1
            for e in range(ip[v], ip[v + 1]):
                w = np.int64(idx[e])
                if depth[w] < 0:
                    depth[w] = dnext
                    if dnext > maxd:
                        maxd = dnext
                    queue[qt] = w
                    qt += 1
                    reached += 1
        ok[b] = reached == expect[b]
        tree_depth[b] = maxd
        for v in range(base, base + stride):
            dv = depth[v]
            if dv <= 0:
                continue
            for e in range(ip[v], ip[v + 1]):
                w = np.int64(idx[e])
                if depth[w] == dv - 1:
                    parent[v] = w
                    break


def reverse_blocks_impl(path_flat, pos, rows, los, highs, size):
    """In-place suffix reversals for walks that keep eager positions."""
    for t in range(rows.size):
        base = rows[t] * size
        i = base + los[t]
        j = base + highs[t] - 1
        while i < j:
            tmp = path_flat[i]
            path_flat[i] = path_flat[j]
            path_flat[j] = tmp
            i += 1
            j -= 1
        for c in range(los[t], highs[t]):
            pos[path_flat[base + c]] = c


# -- threaded (prange-over-lanes) variants ---------------------------------
#
# Byte-for-byte copies of the serial impls with the outer trial loop
# swapped to ``prange``.  The bodies must stay textually in sync with
# their serial twins — the batch-kernel equality tests pin all of
# serial / parallel / numpy to identical outputs, so a divergence is a
# test failure, not silent drift.  Duplication over cleverness here:
# numba resolves ``prange`` lexically inside the compiled function, so
# the loop construct cannot be parameterised without defeating
# ``parallel=True`` analysis or on-disk caching.

def walk_steps_parallel_impl(order, ip, idx, twins, wp, bits, alive,
                             sh, sl, ih, il, word, pend,
                             buf, bpos, tails, sizes, budgets, rot_costs,
                             head, plen, rounds, steps, rotations, extensions,
                             success, fail_code, end_round, flood, live,
                             stride, fail_budget, fail_no_edges):
    """:func:`walk_steps_impl` with the trial loop parallelised.

    Every array the body touches is indexed through the lane's own
    trial id ``b`` (outcome slots), node-id block (RNG state, live
    bits, positions) or row block (path buffer), so lanes never share
    a writable element and the per-lane draw order is unchanged: the
    threaded kernel is bitwise-identical to the serial one.
    """
    for t in prange(order.size):
        b = order[t]
        h = head[b]
        row0 = b * stride
        step = 1
        while True:
            if step > budgets[b]:
                fail_code[b] = fail_budget
                flood[b] = h
                end_round[b] = rounds[b]
                live[b] = False
                break
            cnt = alive[h]
            if cnt == 0:
                fail_code[b] = fail_no_edges
                flood[b] = h
                end_round[b] = rounds[b]
                live[b] = False
                break
            # One bounded draw from node h's half-word stream (Lemire
            # multiply-shift with rejection; bound 1 consumes nothing).
            if cnt == 1:
                draw = 0
            else:
                c = np.uint64(cnt)
                threshold = (_RANGE32 - c) % c
                while True:
                    if pend[h]:
                        half = word[h] >> _U32
                        pend[h] = False
                    else:
                        lo_ = sl[h]
                        hi_ = sh[h]
                        al = lo_ & _MASK32
                        ah = lo_ >> _U32
                        mid1 = ah * _PCG_ML_LO
                        mid2 = al * _PCG_ML_HI
                        spill = ((al * _PCG_ML_LO >> _U32)
                                 + (mid1 & _MASK32)
                                 + (mid2 & _MASK32)) >> _U32
                        mulhi = (ah * _PCG_ML_HI + (mid1 >> _U32)
                                 + (mid2 >> _U32) + spill)
                        nlo = lo_ * _PCG_ML
                        nhi = mulhi + lo_ * _PCG_MH + hi_ * _PCG_ML
                        out_lo = nlo + il[h]
                        out_hi = nhi + ih[h]
                        if out_lo < nlo:
                            out_hi = out_hi + _U1
                        sl[h] = out_lo
                        sh[h] = out_hi
                        x = out_hi ^ out_lo
                        rot = out_hi >> _U58
                        w64 = (x >> rot) | (x << ((_U64 - rot) & _U63))
                        word[h] = w64
                        half = w64 & _MASK32
                        pend[h] = True
                    m = half * c
                    if (m & _MASK32) >= threshold:
                        draw = np.int64(m >> _U32)
                        break
            # The draw-th live bit of row h: word by popcount prefix,
            # then an LSB-first in-word scan (same rank rule as the
            # numpy binary select).
            w = np.int64(wp[h])
            rem = draw
            base = 0
            wv = _U0
            while True:
                wv = bits[w]
                pc = 0
                tmp = wv
                while tmp != _U0:
                    pc += 1
                    tmp &= tmp - _U1
                if rem < pc:
                    break
                rem -= pc
                w += 1
                base += 64
            j = 0
            while True:
                if wv & _U1:
                    if rem == 0:
                        break
                    rem -= 1
                wv >>= _U1
                j += 1
            off = base + j
            slot = ip[h] + off
            target = np.int64(idx[slot])
            # Kill the used edge in both directions.
            toff = np.int64(twins[slot]) - ip[target]
            bits[w] &= ~(_U1 << np.uint64(j))
            bits[np.int64(wp[target]) + (toff >> 6)] &= \
                ~(_U1 << np.uint64(toff & 63))
            alive[h] -= 1
            alive[target] -= 1
            steps[b] = step

            tp = np.int64(bpos[target])
            if tp < 0:
                length = plen[b]
                bpos[target] = length
                buf[row0 + length] = target
                plen[b] = length + 1
                h = target
                rounds[b] += 1
                extensions[b] += 1
            elif target == tails[b] and plen[b] == sizes[b]:
                success[b] = True
                flood[b] = target
                end_round[b] = rounds[b] + 1
                live[b] = False
                break
            else:
                # Rotation: reverse the path suffix after the target;
                # the new head is the target's old path successor.
                lo2 = tp + 1
                hi2 = np.int64(plen[b])
                i = row0 + lo2
                j2 = row0 + hi2 - 1
                while i < j2:
                    tmpv = buf[i]
                    buf[i] = buf[j2]
                    buf[j2] = tmpv
                    i += 1
                    j2 -= 1
                for cpos in range(lo2, hi2):
                    bpos[buf[row0 + cpos]] = cpos
                h = np.int64(buf[row0 + hi2 - 1])
                rounds[b] += rot_costs[b]
                rotations[b] += 1
            step += 1
        head[b] = h


def tree_build_parallel_impl(ip, idx, roots, expect, live, stride,
                             depth, parent, ok, tree_depth):
    """:func:`tree_build_impl` with the trial loop parallelised.

    The serial impl hoists one shared BFS ``queue`` scratch out of the
    loop; here it is allocated *inside* the prange body so numba makes
    it thread-private — the only state in any of the three kernels
    that is not already per-lane.
    """
    for b in prange(roots.size):
        if not live[b]:
            continue
        queue = np.empty(stride, dtype=np.int64)
        base = b * stride
        r = np.int64(roots[b])
        depth[r] = 0
        queue[0] = r
        qh = 0
        qt = 1
        reached = 1
        maxd = 0
        while qh < qt:
            v = queue[qh]
            qh += 1
            dnext = depth[v] + 1
            for e in range(ip[v], ip[v + 1]):
                w = np.int64(idx[e])
                if depth[w] < 0:
                    depth[w] = dnext
                    if dnext > maxd:
                        maxd = dnext
                    queue[qt] = w
                    qt += 1
                    reached += 1
        ok[b] = reached == expect[b]
        tree_depth[b] = maxd
        for v in range(base, base + stride):
            dv = depth[v]
            if dv <= 0:
                continue
            for e in range(ip[v], ip[v + 1]):
                w = np.int64(idx[e])
                if depth[w] == dv - 1:
                    parent[v] = w
                    break


def reverse_blocks_parallel_impl(path_flat, pos, rows, los, highs, size):
    """:func:`reverse_blocks_impl` with the row loop parallelised.

    ``rows`` lists distinct trials, each owning a disjoint
    ``size``-slot block of ``path_flat`` and node-id block of ``pos``.
    """
    for t in prange(rows.size):
        base = rows[t] * size
        i = base + los[t]
        j = base + highs[t] - 1
        while i < j:
            tmp = path_flat[i]
            path_flat[i] = path_flat[j]
            path_flat[j] = tmp
            i += 1
            j -= 1
        for c in range(los[t], highs[t]):
            pos[path_flat[base + c]] = c


# -- dispatch --------------------------------------------------------------

_serial_kernels = None
_parallel_kernels = None


def _kernels(parallel):
    """Compiled (serial or prange) kernel triple, built once per process."""
    global _serial_kernels, _parallel_kernels
    if parallel:
        if _parallel_kernels is None:  # pragma: no cover - CI jit lane
            _parallel_kernels = (
                compile_parallel(walk_steps_parallel_impl),
                compile_parallel(tree_build_parallel_impl),
                compile_parallel(reverse_blocks_parallel_impl),
            )
        return _parallel_kernels
    if _serial_kernels is None:  # pragma: no cover - CI jit lane
        _serial_kernels = (
            compile_kernel(walk_steps_impl),
            compile_kernel(tree_build_impl),
            compile_kernel(reverse_blocks_impl),
        )
    return _serial_kernels


def configure_threads(threads):
    """Re-point the dispatch kernels at runtime (bench thread-scaling lane).

    ``threads == 0`` selects the serial njit kernels, ``threads > 0``
    the prange kernels with ``numba.set_num_threads(threads)``.
    Returns ``False`` — leaving the current dispatch untouched — when
    the compiled backend is unavailable or ``threads`` exceeds the
    pool numba launched with (``NUMBA_NUM_THREADS``); callers record
    an explicit null for that lane.
    """
    global walk_kernel, tree_kernel, reverse_blocks, THREADS, THREADED
    if not ENABLED:
        return False
    if threads > 0:  # pragma: no cover - CI jit lane
        if threads > int(numba.config.NUMBA_NUM_THREADS):
            return False
        numba.set_num_threads(threads)
    walk_kernel, tree_kernel, reverse_blocks = _kernels(threads > 0)
    THREADS = threads
    THREADED = threads > 0
    return True


if ENABLED:  # pragma: no cover - exercised in the CI jit variant
    if THREADS > 0:
        THREADS = min(THREADS, int(numba.config.NUMBA_NUM_THREADS))
        numba.set_num_threads(THREADS)
        THREADED = THREADS > 0
    walk_kernel, tree_kernel, reverse_blocks = _kernels(THREADS > 0)
else:
    walk_kernel = tree_kernel = reverse_blocks = None
