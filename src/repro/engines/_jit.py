"""Optional numba acceleration for the batch kernel (``REPRO_JIT``).

The batched walk (:mod:`repro.engines.batchwalk`) has two inner
pieces with natural scalar formulations — ranking the drawn edge out
of the head row's live-bit words and the blockwise path reversals of
the eager-position (CRE) rotation — that the pure-numpy path handles
with a popcount/bit-halving select and a gather/scatter respectively.
When ``REPRO_JIT=1`` *and* numba is importable, those pieces compile
to tight per-lane loops instead; otherwise the numpy fallback runs.
numba is never a hard dependency: it ships as the ``jit`` optional
extra (``pip install repro-hc[jit]``), and requesting JIT without it
installed degrades to the fallback with a one-time warning.

The compiled and fallback paths are decision-identical by
construction (no RNG consumption happens inside either — draws stay
in the batch's :class:`~repro.engines.batchwalk.DrawPool` streams,
which is what preserves the seed-for-seed parity contract).  CI gates
both: the regular matrix jobs run with numba absent, and a dedicated
variant installs the extra and re-runs the suite — batch parity
included — under ``REPRO_JIT=1``.
"""

from __future__ import annotations

import os
import warnings

__all__ = ["HAVE_NUMBA", "REQUESTED", "ENABLED", "compile_kernel"]


def _truthy(value: str) -> bool:
    return value.strip().lower() in {"1", "true", "yes", "on"}


#: Whether the environment asked for the compiled backend.
REQUESTED = _truthy(os.environ.get("REPRO_JIT", ""))

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:
    numba = None
    HAVE_NUMBA = False

#: Compiled kernels are used only when requested *and* available.
ENABLED = REQUESTED and HAVE_NUMBA

if REQUESTED and not HAVE_NUMBA:
    warnings.warn(
        "REPRO_JIT requested but numba is not installed; falling back to "
        "the pure-numpy batch kernel (install the 'jit' extra to compile)",
        RuntimeWarning,
        stacklevel=2,
    )


def compile_kernel(fn):
    """``numba.njit(cache=True)`` when enabled; the function unchanged otherwise."""
    if ENABLED:  # pragma: no cover - exercised only in the CI jit variant
        return numba.njit(cache=True)(fn)
    return fn
