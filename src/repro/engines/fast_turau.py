"""Fast-engine Turau: identical merge decisions, estimated rounds.

Replays :mod:`repro.core.turau`'s path-merging protocol centrally on
int64 link/position arrays: the proposal round is one vectorised
min-id accept, each merge phase draws the *same per-node RNG streams
in the same order* as the CONGEST protocol (one candidate pick over
the same sorted candidate list), and path bookkeeping (the
far-endpoint/length pairs the distributed tokens deliver) is
recomputed by walking the committed links — exactly the information a
stamp-``l`` token carries, including its *timing*: an endpoint is
fresh for phase ``l + 1`` iff its path length fits the phase window
(``len <= W_l + 2``), which is precisely the condition under which the
distributed token arrives before the next announce round (tokens walk
one hop per round and are uncontended by construction — path edge
sets are vertex-disjoint and launches are spaced a full phase apart).

Cycle, steps, failure codes, phase counts, and initial path counts
are therefore seed-for-seed identical to ``engine="congest"`` (the
registry ``parity`` declaration; ``tests/test_engine_parity.py``
holds it across a model/size/density grid).  Rounds are a structural
estimate (closure round plus a done-flood eccentricity), like the
DHC2 fast engine's Phase-2 accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.turau import (
    FAIL_NO_CLOSURE_EDGE,
    FAIL_PHASE_BUDGET,
    FAIL_TOO_SMALL,
    cycle_from_links,
    phase_starts,
    phase_windows,
    role_bit,
    turau_phase_budget,
)
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.graphs.properties import eccentricity
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["_turau_fast"]

class _LinkState:
    """Committed path links (two slots per node) and path walks."""

    def __init__(self, n: int):
        self.n = n
        self.slot_a = np.full(n, -1, dtype=np.int64)
        self.slot_b = np.full(n, -1, dtype=np.int64)

    def commit(self, u: int, v: int) -> None:
        for me, peer in ((u, v), (v, u)):
            if self.slot_a[me] < 0:
                self.slot_a[me] = peer
            else:
                self.slot_b[me] = peer

    def degrees(self) -> np.ndarray:
        return (self.slot_a >= 0).astype(np.int64) + (self.slot_b >= 0)

    def links_of(self, v: int) -> list[int]:
        return [int(w) for w in (self.slot_a[v], self.slot_b[v]) if w >= 0]

    def walk_paths(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(far, plen, deg): the pairs the distributed tokens deliver.

        ``far[v]`` / ``plen[v]`` are meaningful for endpoints
        (``deg == 1``) and singletons (``deg == 0``, ``far = v``,
        ``plen = 1``); interior nodes keep ``far = -1``.
        """
        n = self.n
        deg = self.degrees()
        far = np.full(n, -1, dtype=np.int64)
        plen = np.zeros(n, dtype=np.int64)
        singles = deg == 0
        far[singles] = np.flatnonzero(singles)
        plen[singles] = 1
        seen = np.zeros(n, dtype=bool)
        slot_a, slot_b = self.slot_a, self.slot_b
        for v in np.flatnonzero(deg == 1):
            if seen[v]:
                continue
            seen[v] = True
            length = 1
            prev, cur = int(v), int(slot_a[v])
            while True:
                seen[cur] = True
                length += 1
                a, b = int(slot_a[cur]), int(slot_b[cur])
                nxt = a if b == prev else (b if a == prev else -1)
                if nxt < 0:
                    break
                prev, cur = cur, nxt
            far[v], far[cur] = cur, v
            plen[v] = plen[cur] = length
        return far, plen, deg


def _turau_fast(
    graph: Graph,
    *,
    seed: int = 0,
    phase_budget: int | None = None,
    trace: dict | None = None,
) -> RunResult:
    """Turau path merging replayed on arrays; see module docstring.

    ``trace``, if given, is filled with the replay's communication
    schedule — the proposal endpoints, each phase's request/grant
    pairs, and the closure flood source — without perturbing any
    decision.  The native k-machine engine uses it to bin the
    protocol's traffic onto machine links.
    """
    n = graph.n
    if trace is not None:
        trace.update(proposals=None, phases=[], flood_source=-1)
    if n < 3:
        return RunResult("turau", False, None, 0, engine="fast",
                         detail={"fail": FAIL_TOO_SMALL, "phases": 0,
                                 "initial_paths": n})
    budget = max(1, phase_budget if phase_budget is not None
                 else turau_phase_budget(n))
    windows = phase_windows(n, budget)
    starts = phase_starts(n, budget)
    seeds = np.random.SeedSequence(seed).spawn(n)
    rngs = [np.random.default_rng(s) for s in seeds]
    indptr, indices = graph.indptr, graph.indices

    links = _LinkState(n)
    steps = 0

    # -- proposal round: each node picks one random higher-id neighbour,
    # each target accepts its minimum-id proposer --------------------------------
    propose = np.full(n, -1, dtype=np.int64)
    for v in range(n):
        row = indices[indptr[v]:indptr[v + 1]]
        higher = row[row > v]
        if higher.size:
            propose[v] = higher[int(rngs[v].integers(higher.size))]
    proposers = np.flatnonzero(propose >= 0)
    # Sorting by (target, proposer) makes the first entry per target the
    # min-id winner — the acceptance rule of the distributed round.
    order = np.lexsort((proposers, propose[proposers]))
    targets = propose[proposers][order]
    winners = proposers[order]
    first = np.ones(targets.size, dtype=bool)
    first[1:] = targets[1:] != targets[:-1]
    for v, w in zip(winners[first], targets[first]):
        links.commit(int(v), int(w))
        steps += 1
    if trace is not None:
        trace["proposals"] = (proposers, propose[proposers])
        trace["accepts"] = (targets[first], winners[first])

    deg0 = links.degrees()
    initial_paths = int((deg0 == 0).sum()) + int((deg0 == 1).sum()) // 2

    # -- merge phases -------------------------------------------------------------
    phases_used = budget
    fail: str | None = FAIL_PHASE_BUDGET
    closure_at = -1
    flood_source = -1
    for ell in range(1, budget + 1):
        far, plen, deg = links.walk_paths()
        window = windows[ell - 1]
        endpoints = np.flatnonzero(deg == 1)
        fresh = endpoints[plen[endpoints] <= window + 2]
        spanning = fresh[plen[fresh] == n]
        if spanning.size:
            # One path covers every node and both (fresh) endpoints know
            # it; the smaller endpoint attempts closure.
            e = int(spanning.min())
            f = int(far[e])
            phases_used = ell
            row = indices[indptr[e]:indptr[e + 1]]
            if (row == f).any():
                links.commit(e, f)
                steps += 1
                fail = None
            else:
                fail = FAIL_NO_CLOSURE_EDGE
            closure_at = starts[ell - 1]
            flood_source = f if fail is None else e
            if trace is not None:
                trace["flood_source"] = flood_source
            break
        # Role designation per path end, driven by the phase index and
        # the path id's bits (see :func:`repro.core.turau.role_bit`).
        participants = np.sort(np.concatenate((np.flatnonzero(deg == 0), fresh)))
        pid = {int(v): min(int(v), int(far[v])) for v in participants}
        passive: set[int] = set()
        requesters: list[int] = []
        for v in participants:
            v = int(v)
            f = int(far[v])
            r = role_bit(pid[v], ell, n)
            if f == v:  # singleton: its one end alternates roles
                may_request = bool(r)
            else:
                request_end = pid[v] if r else max(v, f)
                may_request = v == request_end
            if may_request:
                requesters.append(v)
            else:
                passive.add(v)
        choice: dict[int, int] = {}
        for a in requesters:  # id order (participants are sorted)
            row = indices[indptr[a]:indptr[a + 1]]
            candidates = [int(w) for w in row
                          if int(w) in passive and pid[int(w)] > pid[a]]
            if candidates:  # CSR rows are sorted, hence so is the list
                choice[a] = candidates[int(rngs[a].integers(len(candidates)))]
        accepted: dict[int, int] = {}
        for a, b in choice.items():
            if b not in accepted or a < accepted[b]:
                accepted[b] = a
        for b, a in sorted(accepted.items()):
            links.commit(a, b)
            steps += 1
        if trace is not None:
            trace["phases"].append({
                "participants": int(participants.size),
                "window": int(window),
                "announcers": np.array(sorted(passive), dtype=np.int64),
                "requests": np.array(sorted(choice.items()),
                                     dtype=np.int64).reshape(-1, 2),
                "grants": np.array(sorted(accepted.items()),
                                   dtype=np.int64).reshape(-1, 2),
            })

    # -- result assembly ----------------------------------------------------------
    ok = fail is None
    cycle = None
    if ok:
        cycle = cycle_from_links([links.links_of(v) for v in range(n)])
        if cycle is None:
            ok, fail = False, FAIL_PHASE_BUDGET
        else:
            try:
                verify_cycle(graph, cycle)
            except CycleViolation:
                ok, cycle, fail = False, None, FAIL_PHASE_BUDGET
    if closure_at >= 0:
        # A spanning path exists at closure time, so the graph is
        # connected and the flood cost is the source's eccentricity.
        rounds = closure_at + 1 + eccentricity(graph, flood_source)
    else:
        rounds = starts[-1]
    return RunResult(
        algorithm="turau",
        success=ok,
        cycle=cycle,
        rounds=rounds,
        steps=steps,
        engine="fast",
        detail={"fail": fail, "phases": phases_used,
                "initial_paths": initial_paths},
    )
