"""Native k-machine execution engine (``engine="kmachine"``).

The converted path (:func:`repro.kmachine.simulation.run_converted_hc`)
reaches the k-machine model by driving the message-level CONGEST
simulator node by node and re-costing what it observes — faithful, but
it pays the full per-message simulation price, so it cannot leave toy
sizes.  This engine is the model *natively*: the ``k`` machines jointly
hold the graph via the random vertex partition
(:class:`~repro.kmachine.partition.VertexPartition`, same RVP seed
convention as the converted path), each machine's hosted nodes live in
*array* state on the CSR kernel (:mod:`repro.engines.arraywalk` — no
per-node ``Node`` objects, no message-level ``Network``), machine
rounds advance as batched steps over all hosted nodes, and cross-link
traffic is word-capped bundles accounted by
:class:`~repro.kmachine.ledger.LinkLedger` under the exact charging
rule of the Conversion Theorem (per CONGEST-equivalent tick,
``max(1, ceil(busiest link / W))`` machine rounds).

Parity contract (enforced by ``tests/test_kmachine_native.py`` and the
registry gate)
---------------------------------------------------------------------
* the produced ``cycle`` (and ``steps``) is seed-for-seed identical to
  the converted simulator's — the replay consumes the same per-node
  RNG streams in the same decision order as the CONGEST protocols, so
  conversion and native execution agree on every output;
* the reported ``detail["kmachine_rounds"]`` must stay within the
  Conversion Theorem's ``O~(M/k^2 + T*Delta/k)`` bound
  (:func:`~repro.kmachine.simulation.conversion_round_bound`) and
  preserve its ``~1/k`` scaling.  Setup floods (election, BFS build)
  and walk progress traffic are modelled exactly; renumbering floods
  use the root-based tree profile, and event-driven phases without an
  array replay of their timing (DHC2 merges, Turau tokens, DHC1's
  virtual fabric) are charged structurally — the same estimate stance
  the fast engines take for their round counts.

The converted simulator stays registered as the *oracle*, mirroring
how the reference walkers gate the fast engines.

Keyword surface (declared per spec in the registry): ``k_machines``
(machine count, default :data:`DEFAULT_K_MACHINES`; plain ``k`` is an
alias for DRA, where no colour-count meaning collides),
``link_words`` (the model's per-link ``W``), and ``partition_seed``
(RVP stream override; defaults to ``seed`` — the converted path's
convention, so both engines draw the identical partition).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph, csr_sources
from repro.kmachine.ledger import (
    LinkLedger,
    TreeFloodProfile,
    bfs_messages,
    floodmin_traffic,
    gossip_traffic,
)
from repro.kmachine.partition import VertexPartition
from repro.kmachine.simulation import DEFAULT_LINK_WORDS

__all__ = [
    "DEFAULT_K_MACHINES",
    "_dra_kmachine",
    "_dhc2_kmachine",
    "_turau_kmachine",
]

#: Machine count when the caller does not pass ``k_machines``.
DEFAULT_K_MACHINES = 8

#: Word sizes of the rotation walk's wire messages (kind tag included),
#: matching :mod:`repro.congest.message` accounting for the payloads
#: :class:`repro.core.rotation.RotationWalk` sends.
_PROGRESS_WORDS = 6
_ROTATE_WORDS = 6
_FLOOD_WORDS = 3


def _setup(graph: Graph, seed: int, machines: int | None,
           link_words: int, partition_seed: int | None):
    """Partition + ledger shared by every driver."""
    k = DEFAULT_K_MACHINES if machines is None else int(machines)
    partition = VertexPartition.random(
        graph.n, k, seed=seed if partition_seed is None else partition_seed)
    return partition, LinkLedger(partition, link_words)


def _finish(result: RunResult, ledger: LinkLedger) -> RunResult:
    """Reconcile the modelled clock and attach the k-machine accounting.

    The traffic model walks the same schedule the round estimate in
    ``result.rounds`` describes; any CONGEST ticks the structural
    phases did not explicitly model are quiet (1 machine round each),
    which is exactly the converted accountant's floor.
    """
    m = ledger.metrics
    gap = result.rounds - m.congest_rounds
    if gap > 0:
        ledger.quiet(gap)
    result.detail["kmachine"] = m.summary()
    result.detail["kmachine_rounds"] = m.kmachine_rounds
    result.detail["k_machines"] = ledger.k
    result.detail["link_words"] = ledger.link_words
    return result


def _walk_traffic(ledger: LinkLedger, walk, trace: list,
                  profile: TreeFloodProfile, flood_ecc: int) -> None:
    """Charge one rotation walk: progress singles, renumbering floods
    with their quiescence windows, and the final win/fail flood."""
    if trace:
        arr = np.asarray(trace, dtype=np.int64)
        ledger.singles(arr[:, 0], arr[:, 1], _PROGRESS_WORDS)
    if walk.rotations:
        ledger.flood(profile, _ROTATE_WORDS, times=walk.rotations)
        wait = 2 * walk.tree_depth * walk.latency + 2 - profile.tree_depth
        ledger.quiet(wait * walk.rotations)
    ledger.flood(profile, _FLOOD_WORDS)
    ledger.quiet(max(0, flood_ecc - profile.tree_depth))


# ---------------------------------------------------------------------------
# DRA — Algorithm 1
# ---------------------------------------------------------------------------


def _dra_kmachine(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
    k: int | None = None,
    k_machines: int | None = None,
    link_words: int = DEFAULT_LINK_WORDS,
    partition_seed: int | None = None,
) -> RunResult:
    """Algorithm 1 under native k-machine execution.

    Same replay as the ``fast`` engine (identical cycle, steps, and
    CONGEST round count), with election, BFS build, and walk traffic
    binned onto the machine links tick by tick.  ``k`` is accepted as
    an alias for ``k_machines`` (DRA has no partition-count keyword).
    """
    from repro.engines.arraywalk import ArrayWalk, build_array_tree, edge_twins
    from repro.engines.fast import _dra_result

    n = graph.n
    partition, ledger = _setup(
        graph, seed, k_machines if k_machines is not None else k,
        link_words, partition_seed)
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    election_rounds = diameter_budget(n)
    indptr, indices = graph.indptr, graph.indices
    members = np.arange(n, dtype=np.int64)
    tree = build_array_tree(indptr, indices, members, root=0) if n else None
    if tree is None:
        deadline = election_rounds + 3 * diameter_budget(n) + 8
        if n:
            floodmin_traffic(ledger, indptr, indices, members, election_rounds)
        result = RunResult("dra", False, None, deadline, engine="kmachine",
                           detail={"fail_codes": ["bfs-unreachable"]})
        return _finish(result, ledger)

    trace: list[tuple[int, int]] = []
    walk = ArrayWalk(
        indptr=indptr,
        indices=indices,
        twins=edge_twins(indptr, indices),
        alive=np.ones(indices.size, dtype=bool),
        rngs=rngs,
        size=n,
        initial_head=tree.root,
        step_budget=budget,
        tree_depth=max(1, tree.tree_depth),
        start_round=tree.completion_round(election_rounds) + 1,
        trace=trace,
    )
    walk.run()
    flood_ecc = tree.eccentricity(walk.flood_initiator)
    result = _dra_result(graph, walk, walk.end_round + flood_ecc,
                         engine="kmachine")

    # -- machine-level accounting of the identical schedule ---------------------
    floodmin_traffic(ledger, indptr, indices, members, election_rounds)
    done = tree.completion_times(election_rounds)
    ticks, src, dst, words = bfs_messages(tree, indptr, indices,
                                          election_rounds, done)
    span = int(done[tree.root]) - election_rounds + 1
    ledger.series(np.minimum(ticks, span - 1), src, dst, words, span=span)
    profile = TreeFloodProfile(ledger, tree.parent, tree.depth, members)
    _walk_traffic(ledger, walk, trace, profile, flood_ecc)
    return _finish(result, ledger)


# ---------------------------------------------------------------------------
# DHC2 — Algorithm 3
# ---------------------------------------------------------------------------


def _dhc2_kmachine(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
    k_machines: int | None = None,
    link_words: int = DEFAULT_LINK_WORDS,
    partition_seed: int | None = None,
) -> RunResult:
    """Algorithm 3 under native k-machine execution.

    Phase 1 replays every colour-class walk on the shared-mask CSR
    kernel exactly as the ``fast`` engine does (``k`` keeps its DHC2
    meaning: the colour count).  Concurrent class traffic folds with
    wall-clock semantics: the shared election and BFS ticks are binned
    jointly across classes, and per-class walk charges combine as the
    across-class maximum.  Phase 2 reuses the deterministic merge
    replay with bridge-scan bursts charged per pair.
    """
    from repro.core.dhc2 import default_color_count
    from repro.engines.fast_dhc2 import _fail, _phase2
    from repro.engines.phase1_replay import (
        color_partition,
        replay_partition_walks,
    )

    n = graph.n
    partition, ledger = _setup(graph, seed, k_machines, link_words,
                               partition_seed)
    colors = k if k is not None else default_color_count(n, delta)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    color_of, sub_indptr, sub_indices, twins, alive = color_partition(
        graph, rngs, colors)
    indptr, indices = graph.indptr, graph.indices
    ledger.burst(csr_sources(indptr), indices, 2)  # colour announcement

    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    phase1_start = 1 + elect_budget
    floodmin_traffic(ledger, sub_indptr, sub_indices,
                     np.arange(n, dtype=np.int64), elect_budget)

    bfs_parts: list[tuple] = []
    bfs_span = 1
    walk_forks: list[LinkLedger] = []

    def flush_phase1():
        # The classes' builds and walks share wall-clock rounds: bin
        # the BFS schedules jointly, fold the walk forks as a maximum.
        # Charged on walk-failure paths too — the traffic demonstrably
        # ran.
        if bfs_parts:
            ticks = np.concatenate([p[0] for p in bfs_parts])
            ledger.series(np.minimum(ticks, bfs_span - 1),
                          np.concatenate([p[1] for p in bfs_parts]),
                          np.concatenate([p[2] for p in bfs_parts]),
                          np.concatenate([p[3] for p in bfs_parts]),
                          span=bfs_span)
        ledger.absorb_concurrent(walk_forks)

    def charge_class(c, members, tree, done, walk, trace, flood_ecc):
        nonlocal bfs_span
        bfs_parts.append(bfs_messages(tree, sub_indptr, sub_indices,
                                      phase1_start, done))
        bfs_span = max(bfs_span, int(done[tree.root]) - phase1_start + 1)
        fork = ledger.fork()
        _walk_traffic(fork, walk, trace,
                      TreeFloodProfile(fork, tree.parent, tree.depth, members),
                      flood_ecc)
        walk_forks.append(fork)

    p1 = replay_partition_walks(
        indptr=sub_indptr, indices=sub_indices, twins=twins, alive=alive,
        rngs=rngs, color_of=color_of, colors=colors,
        start_round=phase1_start, observer=charge_class)
    if not p1.ok:
        if p1.walk_failed:
            flush_phase1()
        return _finish(_fail(n, colors, p1.fail_round, p1.fail_reason,
                             "kmachine"), ledger)
    cycles, steps, phase1_end = p1.cycles, p1.steps, p1.phase1_end

    ledger.quiet(1)  # the BFS-commit / walk-start separation round
    flush_phase1()

    def _charge_merge(a_cycle, b_cycle, merged):
        # Bridge scan: every class-A node polls its class-B neighbours,
        # candidates answer — one burst each way over the A-B edges.
        from repro.engines.arraywalk import gather_neighbors

        a_arr = np.asarray(a_cycle, dtype=np.int64)
        in_b = np.zeros(n, dtype=bool)
        in_b[np.asarray(b_cycle, dtype=np.int64)] = True
        counts = indptr[a_arr + 1] - indptr[a_arr]
        v_e = np.repeat(a_arr, counts)
        w_e = gather_neighbors(indptr, indices, a_arr)
        keep = in_b[w_e]
        ledger.burst(v_e[keep], w_e[keep], 3)
        ledger.burst(w_e[keep], v_e[keep], 3)
        # Winner convergecast + splice broadcast over the merged class:
        # structural, like the fast engine's level cost.
        ledger.uniform_burst(2 * len(merged), 3, ticks=2)

    result = _phase2(graph, cycles, colors, phase1_end, steps, "kmachine",
                     observer=_charge_merge)
    return _finish(result, ledger)


# ---------------------------------------------------------------------------
# Turau path merging (arXiv:1805.06728)
# ---------------------------------------------------------------------------


def _turau_kmachine(
    graph: Graph,
    *,
    seed: int = 0,
    phase_budget: int | None = None,
    k_machines: int | None = None,
    link_words: int = DEFAULT_LINK_WORDS,
    partition_seed: int | None = None,
) -> RunResult:
    """Turau path merging under native k-machine execution.

    Decisions (and hence cycle/steps/failure codes) come from the
    array replay; the proposal round, per-phase announce/request/grant
    bursts, and the closure gossip flood are binned exactly, while the
    in-flight token walks are charged as an RVP-uniform estimate over
    each phase's window (tokens are single messages walking disjoint
    paths — never the busiest-link driver).
    """
    from repro.engines.fast_turau import _turau_fast

    trace: dict = {}
    result = _turau_fast(graph, seed=seed, phase_budget=phase_budget,
                         trace=trace)
    result.engine = "kmachine"
    partition, ledger = _setup(graph, seed, k_machines, link_words,
                               partition_seed)
    indptr, indices = graph.indptr, graph.indices

    if trace.get("proposals") is not None:
        proposers, targets = trace["proposals"]
        ledger.burst(proposers, targets, 2)
        acc_targets, acc_winners = trace["accepts"]
        ledger.burst(acc_targets, acc_winners, 2)
        ledger.quiet(1)  # link-commit settling round
    for phase in trace.get("phases", ()):
        announcers = phase["announcers"]
        if announcers.size:
            from repro.engines.arraywalk import gather_neighbors

            counts = indptr[announcers + 1] - indptr[announcers]
            src = np.repeat(announcers, counts)
            dst = gather_neighbors(indptr, indices, announcers)
            ledger.burst(src, dst, 2)
        else:
            ledger.quiet(1)
        requests, grants = phase["requests"], phase["grants"]
        ledger.burst(requests[:, 0], requests[:, 1], 3)
        ledger.burst(grants[:, 0], grants[:, 1], 3)
        window = phase["window"]
        hops = 2 * int(grants.shape[0]) * min(window, graph.n)
        ledger.uniform_burst(hops, 2, ticks=max(1, window + 1))
    if trace.get("flood_source", -1) >= 0:
        gossip_traffic(ledger, indptr, indices, int(trace["flood_source"]),
                       words=1)
    return _finish(result, ledger)
