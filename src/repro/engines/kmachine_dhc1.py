"""DHC1 (Algorithm 2) under native k-machine execution.

DHC1 never had a step-level replay: its hypernode phase lives on a
relayed virtual fabric whose timing is event-driven.  The native
k-machine engine supplies the first one.  Decisions replay exactly —
the same per-node RNG streams in the same order as
:class:`repro.core.dhc1.Dhc1Protocol`:

1. **Phase 1** — colour draw + per-class rotation walks on the
   colour-filtered CSR, identical to the DHC2 fast engine's Phase 1
   (the CONGEST protocols share :class:`PartitionedPhase1Protocol`,
   and the preceding global election/BFS consume no randomness, so the
   streams line up even though DHC1 runs them first in wall-clock).
2. **Hypernode selection** (Algorithm 2 l.13-15) — each class's
   ``cycindex == 1`` node (the class root: the initial head is never
   renumbered) draws ``r``; ``u = path[r-1]`` holds the hypernode,
   ``v`` is its cycle predecessor.
3. **Virtual-edge assembly** — port announcements become, per holder,
   the sorted realization list ``(peer class, my role, peer role,
   far endpoint)``; duplicates per key are kept as distinct
   :class:`VirtualEdge` realizations and the far map keeps the last
   (largest ``phys``) entry, exactly as ``Dhc1Protocol`` builds
   ``_vedges`` / ``_far``.
4. **Ported virtual walk** — :class:`repro.engines.fast._FastWalk` in
   the ported mode it was built for, with per-hypernode streams taken
   from the holders' generators; the min-id virtual BFS tree supplies
   root/size, and the winning closure edge is captured for stitching.
5. **Stitching** (Fig. 1) — each class's entry/exit ports and the
   ``_far`` lookup reproduce every node's ``global_succ``, flattened
   from node 0 like the CONGEST engine.

Rounds are a structural machine-level estimate (the fabric's relay
pacing is event-driven), accounted phase by phase on the
:class:`~repro.kmachine.ledger.LinkLedger`; the parity contract for
DHC1 is therefore ``success``/``cycle``/``steps``, with round conformance
covered by the Conversion-Theorem bound like every k-machine entry.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.engines.fast import _FastWalk, build_min_id_bfs_tree
from repro.engines.kmachine_engine import (
    DEFAULT_LINK_WORDS,
    _setup,
    _finish,
    _walk_traffic,
)
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph, csr_sources
from repro.kmachine.ledger import (
    LinkLedger,
    TreeFloodProfile,
    bfs_messages,
    floodmin_traffic,
)
from repro.verify.hamiltonicity import (
    CycleViolation,
    cycle_from_successors,
    verify_cycle,
)

__all__ = ["_dhc1_kmachine"]

_ROLE_U = 0
_ROLE_V = 1


class _PortedWalk(_FastWalk):
    """The ported walker, additionally remembering the closure edge.

    ``RotationWalk`` binds the winning head's successor ports
    optimistically before the win flood; the centralized walker never
    needed them, but DHC1's stitching does.
    """

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.win_edge: tuple[int, int, int, int] | None = None

    def _hit(self, head, target, my_port, their_port):
        outcome = super()._hit(head, target, my_port, their_port)
        if outcome[0] == "win":
            self.win_edge = (head, target, my_port, their_port)
        return outcome


def _dhc1_fail(n: int, colors: int, reason: str) -> RunResult:
    return RunResult("dhc1", False, None, 0, engine="kmachine",
                     detail={"k": colors, "fail": reason})


def _dhc1_kmachine(
    graph: Graph,
    *,
    k: int | None = None,
    seed: int = 0,
    k_machines: int | None = None,
    link_words: int = DEFAULT_LINK_WORDS,
    partition_seed: int | None = None,
) -> RunResult:
    """Algorithm 2 under native k-machine execution (see module docs).

    ``k`` keeps its DHC1 meaning — the colour count, defaulting to
    ``sqrt(n)`` — and ``k_machines`` selects the machine count.
    """
    from repro.core.dhc1 import default_sqrt_colors
    from repro.engines.arraywalk import build_array_tree
    from repro.engines.phase1_replay import (
        color_partition,
        replay_partition_walks,
    )

    n = graph.n
    partition, ledger = _setup(graph, seed, k_machines, link_words,
                               partition_seed)
    colors = k if k is not None else default_sqrt_colors(n)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]
    indptr, indices = graph.indptr, graph.indices
    members_all = np.arange(n, dtype=np.int64)

    if n == 0 or graph.m == 0 or int(graph.degrees().min()) == 0:
        # An isolated node admits no Hamiltonian cycle; the protocol
        # aborts in its first round.
        result = _dhc1_fail(n, colors, "isolated-node")
        return _finish(result, ledger)

    # -- global election + BFS (consume rounds, not randomness) ----------------
    global_elect = diameter_budget(n)
    floodmin_traffic(ledger, indptr, indices, members_all, global_elect)
    gtree = build_array_tree(indptr, indices, members_all, root=0)
    if gtree is None:
        return _finish(_dhc1_fail(n, colors, "global-bfs-unreachable"), ledger)
    gdone = gtree.completion_times(global_elect)
    gticks, gsrc, gdst, gwords = bfs_messages(gtree, indptr, indices,
                                              global_elect, gdone)
    gspan = int(gdone[gtree.root]) - global_elect + 1
    ledger.series(np.minimum(gticks, gspan - 1), gsrc, gdst, gwords,
                  span=gspan)
    gprofile = TreeFloodProfile(ledger, gtree.parent, gtree.depth, members_all)
    ledger.quiet(max(1, gtree.tree_depth))  # synchronized announce wait

    # -- Phase 1: colours + per-class walks (same replay as DHC2) --------------
    color_of, sub_indptr, sub_indices, twins, alive = color_partition(
        graph, rngs, colors)
    ledger.burst(csr_sources(indptr), indices, 2)  # colour announcement
    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    floodmin_traffic(ledger, sub_indptr, sub_indices, members_all,
                     elect_budget)

    bfs_parts: list[tuple] = []
    bfs_span = 1
    walk_forks: list[LinkLedger] = []
    p1_start = 0  # relative clock: class BFS begins after the election

    def flush_phase1():
        # Jointly-binned class BFS ticks + wall-clock-max walk forks;
        # charged on walk-failure paths too (the traffic demonstrably
        # ran).
        if bfs_parts:
            ticks = np.concatenate([p[0] for p in bfs_parts])
            ledger.series(np.minimum(ticks, bfs_span - 1),
                          np.concatenate([p[1] for p in bfs_parts]),
                          np.concatenate([p[2] for p in bfs_parts]),
                          np.concatenate([p[3] for p in bfs_parts]),
                          span=bfs_span)
        ledger.absorb_concurrent(walk_forks)

    def charge_class(c, members, tree, done, walk, trace, flood_ecc):
        nonlocal bfs_span
        bfs_parts.append(bfs_messages(tree, sub_indptr, sub_indices,
                                      p1_start, done))
        bfs_span = max(bfs_span, int(done[tree.root]) - p1_start + 1)
        fork = ledger.fork()
        _walk_traffic(fork, walk, trace,
                      TreeFloodProfile(fork, tree.parent, tree.depth, members),
                      flood_ecc)
        walk_forks.append(fork)

    p1 = replay_partition_walks(
        indptr=sub_indptr, indices=sub_indices, twins=twins, alive=alive,
        rngs=rngs, color_of=color_of, colors=colors, start_round=p1_start,
        observer=charge_class)
    if not p1.ok:
        if p1.walk_failed:
            flush_phase1()
        return _finish(_dhc1_fail(n, colors, p1.fail_reason), ledger)
    paths, class_trees = p1.cycles, p1.trees
    flush_phase1()

    # -- hypernode selection (l.13-15) + port announcement ----------------------
    holder = np.full(colors + 1, -1, dtype=np.int64)   # u_i per class
    partner = np.full(colors + 1, -1, dtype=np.int64)  # v_i per class
    port_class = np.zeros(n, dtype=np.int64)
    port_role = np.zeros(n, dtype=np.int64)
    max_class_depth = 0
    for c in range(1, colors + 1):
        path = paths[c]
        size = len(path)
        root = path[0]  # cycindex 1: the initial head, never renumbered
        r = 1 + int(rngs[root].integers(size))
        u = path[r - 1]
        v = path[r - 2] if r > 1 else path[size - 1]
        holder[c], partner[c] = u, v
        port_class[u], port_role[u] = c, _ROLE_U
        port_class[v], port_role[v] = c, _ROLE_V
        max_class_depth = max(max_class_depth, class_trees[c].tree_depth)
    # Selection floods over the class trees, then the "hp" broadcast.
    ledger.uniform_burst(2 * (n - colors), 2, ticks=max(1, 2 * max_class_depth))
    ports = np.flatnonzero(port_class > 0)
    counts = indptr[ports + 1] - indptr[ports]
    ledger.burst(np.repeat(ports, counts),
                 _gather(indptr, indices, ports), 3)

    # -- barrier 1, adjacency assembly, barrier 2 -------------------------------
    ledger.flood(gprofile, 1, times=2)  # barrier 1: ready up, go down
    entries_max = 0
    realizations: dict[int, list[tuple[int, int, int, int]]] = {}
    for c in range(1, colors + 1):
        entries: list[tuple[int, int, int, int]] = []
        for endpoint, my_role in ((holder[c], _ROLE_U), (partner[c], _ROLE_V)):
            for w in graph.neighbors(int(endpoint)):
                w = int(w)
                pc = int(port_class[w])
                if pc and pc != c:
                    entries.append((pc, my_role, int(port_role[w]), w))
        entries.sort()
        realizations[c] = entries
        entries_max = max(
            entries_max, sum(1 for e in entries if e[1] == _ROLE_V) + 1)
    ledger.burst(partner[1:], holder[1:], 4)  # first v -> u relay tick
    ledger.quiet(entries_max)                 # rest of the paced queue
    ledger.flood(gprofile, 1, times=2)        # barrier 2

    # -- virtual BFS + ported walk over G' --------------------------------------
    vpeers = {c: sorted({e[0] for e in realizations[c]})
              for c in range(1, colors + 1)}
    vtree = build_min_id_bfs_tree(list(range(1, colors + 1)),
                                  lambda c: vpeers[c], root=1)
    if vtree is None:
        return _finish(_dhc1_fail(n, colors, "virtual-bfs-unreachable"),
                       ledger)
    latency = 3  # a virtual hop is at most 3 physical hops
    vdepth = max(1, vtree.tree_depth)
    ledger.uniform_burst(4 * colors, 3,
                         ticks=latency * (2 * vtree.tree_depth + 4))
    vwalk = _PortedWalk(
        size=colors,
        edges_of=lambda c: [(h, mp, tp) for h, mp, tp, _f in realizations[c]],
        rngs={c: rngs[int(holder[c])] for c in range(1, colors + 1)},
        initial_head=1,
        step_budget=dra_step_budget(colors),
        tree_depth=vdepth,
        start_round=0,
        ported=True,
        latency=latency,
    )
    vwalk.run()
    ledger.uniform_burst(3 * max(1, vwalk.steps), 6,
                         ticks=latency * max(1, vwalk.steps))
    ledger.quiet(vwalk.rotations * (2 * vdepth * latency + 2))
    if not vwalk.success:
        result = _dhc1_fail(n, colors, f"virtual-walk-{vwalk.fail_code}")
        result.steps = vwalk.steps
        return _finish(result, ledger)

    # -- stitching (Fig. 1) ------------------------------------------------------
    vorder = vwalk.cycle()  # hypernode colours in virtual-cycle order
    vhead = vorder[-1]
    far = {c: {(h, mp, tp): f for h, mp, tp, f in realizations[c]}
           for c in range(1, colors + 1)}
    succ_global: dict[int, int] = {}
    for i, c in enumerate(vorder):
        vsucc = vorder[(i + 1) % colors]
        pred_port, succ_port = vwalk._bound[c]
        if c == vhead:
            _head, _target, succ_port, succ_peer_port = vwalk.win_edge
        else:
            succ_peer_port = vwalk._bound[vsucc][0]
        exit_phys = int(holder[c] if succ_port == _ROLE_U else partner[c])
        next_entry = far[c][(vsucc, succ_port, succ_peer_port)]
        entry_is_u = pred_port == _ROLE_U
        path = paths[c]
        size = len(path)
        for j, w in enumerate(path):
            if w == exit_phys:
                succ_global[w] = next_entry
            elif entry_is_u:
                succ_global[w] = path[(j + 1) % size]
            else:
                succ_global[w] = path[(j - 1) % size]
    ok = True
    cycle = None
    try:
        cycle = cycle_from_successors(succ_global)
        verify_cycle(graph, cycle)
    except CycleViolation:
        ok, cycle = False, None
    ledger.flood(gprofile, 3)  # the final stitching flood
    ledger.quiet(max(0, 2 * gtree.tree_depth - gprofile.tree_depth))
    result = RunResult(
        algorithm="dhc1",
        success=ok,
        cycle=cycle,
        rounds=ledger.metrics.congest_rounds,
        steps=vwalk.steps,
        engine="kmachine",
        detail={"k": colors} if ok else {"k": colors, "fail": "bad-stitch"},
    )
    return _finish(result, ledger)


def _gather(indptr: np.ndarray, indices: np.ndarray,
            nodes: np.ndarray) -> np.ndarray:
    from repro.engines.arraywalk import gather_neighbors

    return gather_neighbors(indptr, indices, nodes)
