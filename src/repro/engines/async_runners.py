"""Registry entry points for ``engine="async"``.

Each wrapper forces the run's :class:`~repro.congest.model.NetworkModel`
into ``mode="async"`` (building the default asynchronous substrate —
unit latency, no faults — when none is given) and delegates to the
algorithm's congest runner, which dispatches to
:class:`~repro.congest.async_engine.AsyncNetwork` via
:func:`~repro.congest.model.build_network`.  The wrappers exist so the
engine choice lives in the registry key: ``repro.run(g, "dra",
engine="async")`` never silently falls back to synchronous rounds, and
a sync-mode model passed to the async engine is upgraded rather than
rejected (the model's other fields — bandwidth, fault plan — carry
over unchanged).
"""

from __future__ import annotations

import json

from repro.congest.model import NetworkModel
from repro.core.dhc1 import run_dhc1
from repro.core.dhc2 import run_dhc2
from repro.core.dra import run_dra
from repro.core.turau import run_turau
from repro.engines.results import RunResult

__all__ = ["_dra_async", "_dhc1_async", "_dhc2_async", "_turau_async"]


def _as_async_model(network) -> NetworkModel:
    if network is None:
        return NetworkModel(mode="async")
    if isinstance(network, NetworkModel):
        return network.as_async()
    if isinstance(network, str):
        network = json.loads(network)
    if isinstance(network, dict):
        # Default the mode *before* construction: a latency or churn
        # field in a JSON document without an explicit mode would
        # otherwise be rejected by the sync-mode validator.
        network = {"mode": "async", **network}
    return NetworkModel.from_json(network).as_async()


def _dra_async(graph, *, seed: int = 0, network=None, **kwargs) -> RunResult:
    return run_dra(graph, seed=seed, network=_as_async_model(network), **kwargs)


def _dhc1_async(graph, *, seed: int = 0, network=None, **kwargs) -> RunResult:
    return run_dhc1(graph, seed=seed, network=_as_async_model(network), **kwargs)


def _dhc2_async(graph, *, seed: int = 0, network=None, **kwargs) -> RunResult:
    return run_dhc2(graph, seed=seed, network=_as_async_model(network), **kwargs)


def _turau_async(graph, *, seed: int = 0, network=None, **kwargs) -> RunResult:
    return run_turau(graph, seed=seed, network=_as_async_model(network), **kwargs)
