"""Batch-major execution kernel: B same-n trials per numpy pass.

:mod:`repro.engines.arraywalk` vectorised the walk *within* one trial;
at sweep sizes the residual cost is per-trial Python dispatch — every
step of every trial pays its own numpy-call overhead.  This module
vectorises across the *trial axis* instead: a batch of B same-n
trials, each with its own sampled graph, lives in one disjoint-union
CSR (trial ``b``'s node ``v`` becomes global id ``b * n + v``), and
every kernel pass advances all still-live trials at once.

Layout
------
* **stacked CSR** (:func:`stack_graph_csrs`): the B per-trial CSRs
  concatenated with node ids offset by ``b * n`` — one ``indptr`` of
  length ``B*n + 1`` and one int32 ``indices`` array (components never
  touch, so all single-trial CSR invariants hold per block).  Two
  per-edge tables come along at setup: a **twin table** — CSR order is
  (src, dst)-lexicographic and reversal is an order-preserving
  bijection onto (dst, src) order, so one stable argsort of ``indices``
  *is* the reverse-edge permutation, no lexsort of pairs needed — and
  a **live-edge bitmask**, one bit per directed edge packed into
  per-row uint64 words, so a head's whole row of dead/live flags is a
  handful of words instead of a byte per edge;
* **flat node state**: backing positions, live-edge counts, and RNG
  states are flat ``B*n`` arrays indexed by global id;
* **per-trial walk state**: length-B vectors for path length, head,
  round, step, and outcome.

Segment representation of the path
----------------------------------
At sweep sizes the serial walk's cost is *data movement*: ~90% of
steps are rotations, each reversing an O(n) path suffix eagerly.
:class:`BatchWalk` instead keeps every path in an append-only backing
row (nodes never move once written) and describes path order as a
short list of directed runs ``(lo, hi, dir)`` over that row, stacked
as one ``(B, 3, seg_cap)`` descriptor array.  A rotation at target
``t`` splits the run containing ``t`` and reverses the order (and
direction flags) of everything after it — an O(#segments) descriptor
shuffle done for *all* rotating trials in one set of (R, 3, seg_cap)
array passes, instead of O(n) element moves per trial.  The walk's
decisions never read positions: membership is a backing-index test,
closure is ``target == tail`` (position 0 is never touched by a
suffix reversal), and the new head is the target's path-successor
read straight from the descriptors.  When a trial accumulates
``seg_cap - 2`` runs it is flattened back to one run — a blocked
gather/scatter over every crowded trial at once — so amortised
movement per rotation drops from ~n/2 elements to ~n/seg_cap.

Masking
-------
Each pass gathers the live trials' head rows' live-bit words into a
``(A, W)`` matrix (W = max words per row, ~deg/64), finds every drawn
edge by popcount prefix + an in-word bit select, classifies every
trial's step outcome with whole-array ops, applies
extensions/closures as single fancy-indexed updates and all rotations
as one descriptor shuffle, then drops finished trials from the live
set.  Finished/failed trials stop consuming RNG draws exactly where
their serial counterpart stopped.

RNG parity across the batch axis
--------------------------------
Trial ``b`` draws from its own per-node streams (the same
``SeedSequence(seed_b).spawn(n)`` tree as ``engine="fast"``) in the
same decision order — one draw per step, on the same remaining-edge
count, in the same sorted CSR row order.  Trials are independent
streams, so interleaving their draws across the batch changes
nothing; that is the whole parity argument, and it is why batched
results are seed-for-seed identical to serial
(``tests/test_engine_parity.py::TestFastBatchParity`` and the
registry parity gate enforce it).

What *is* batched is the mechanics of drawing: :class:`DrawPool`
replicates the whole numpy stack below ``Generator.integers(bound)``
in whole-array arithmetic — the SeedSequence entropy-pool hash that
seeds every spawned child (children differ only in their spawn-key
word, so one vector pass per parent seed yields all n child states),
the PCG64 LCG advance and XSL-RR output (128-bit multiply-add in
64-bit limbs), and the buffered Lemire bounded-integer reduction over
32-bit half-words.  No per-node ``SeedSequence`` / ``PCG64`` /
``Generator`` objects are ever constructed on the hot path; one
vector advance per pass produces every live trial's draw.  The
replication is verified against real numpy objects at first pool
construction; if a numpy build ever disagrees, pools transparently
fall back to per-draw ``integers`` calls on real per-node generators,
which is slower but definitionally exact.

An optional compiled backend (:mod:`repro.engines._jit`, behind
``REPRO_JIT`` + the ``jit`` extra) replaces the whole per-pass step
loop with one fused numba kernel per batch — per-step PCG64 draw,
bit-select, twin kill, and path update in a single compiled loop over
the same state arrays, bitwise identical by construction (trials are
independent, so per-trial completion order equals pass-interleaved
order stream by stream).  The fallback is pure numpy and the default;
dispatch looks the kernels up on :mod:`repro.engines._jit` at call
time so a host can toggle them within one process.  Under
``REPRO_JIT_THREADS=N`` the dispatch attributes point at prange
variants of the same kernels that run the trial lanes on N cores —
still bitwise identical, because each lane touches only its own
disjoint node-id block and RNG state rows (see the threading section
of :mod:`repro.engines._jit`).
"""

from __future__ import annotations

import numpy as np

from repro.engines import _jit
from repro.graphs.adjacency import csr_gather, csr_sources

__all__ = [
    "BatchTree",
    "BatchWalk",
    "DrawPool",
    "build_batch_tree",
    "stack_graph_csrs",
    "stacked_edge_twins",
    "reverse_path_blocks",
]


def stack_graph_csrs(graphs) -> tuple[np.ndarray, np.ndarray]:
    """The disjoint-union CSR of B same-n graphs (ids offset by ``b*n``).

    ``indices`` comes back int32: global ids and edge offsets both fit
    comfortably (the chunker caps directed entries well below 2**31),
    and the stacked row contents are what every kernel pass gathers —
    half-width entries are half the memory traffic.
    """
    n = graphs[0].n
    indptrs = np.stack([np.asarray(g.indptr, dtype=np.int64) for g in graphs])
    edge_off = np.concatenate(
        ([0], np.cumsum(indptrs[:, -1], dtype=np.int64)))
    if edge_off[-1] >= 2**31 or len(graphs) * n >= 2**31:
        raise ValueError(
            "stacked batch exceeds int32 id space; lower "
            "REPRO_BATCH_EDGE_BUDGET so chunks stay below 2**31 entries")
    indptr = np.concatenate(
        ((indptrs[:, :-1] + edge_off[:-1, None]).ravel(), edge_off[-1:]))
    indices = np.empty(int(edge_off[-1]), dtype=np.int32)
    for b, g in enumerate(graphs):
        at = int(edge_off[b])
        row = np.asarray(g.indices)
        indices[at:at + row.size] = row
        if b:
            indices[at:at + row.size] += np.int32(b * n)
    return indptr, indices


# -- exact batched replication of Generator.integers -----------------------


_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)
_RANGE32 = np.uint64(1 << 32)

# SeedSequence entropy-pool hash constants (numpy bit_generator).
_SS_INIT_A = 0x43B0D7E5
_SS_MULT_A = 0x931E8875
_SS_INIT_B = 0x8B51F9DD
_SS_MULT_B = 0x58F38DED
_SS_MIX_L = 0xCA01F9DD
_SS_MIX_R = 0x4973F715
_SS_XSHIFT = np.uint32(16)
_M32 = 0xFFFFFFFF

# PCG64's 128-bit LCG multiplier, split into 64-bit limbs (and the low
# limb again into 32-bit halves for the mulhi decomposition).
_PCG_MH = np.uint64(0x2360ED051FC65DA4)
_PCG_ML = np.uint64(0x4385DF649FCCF645)
_PCG_ML_LO = np.uint64(0x9FCCF645)
_PCG_ML_HI = np.uint64(0x4385DF64)

#: Lazily-established verdict of the replication self-checks.
_EXACT: bool | None = None


def _entropy_words(seed: int) -> list[int]:
    """``seed`` as little-endian uint32 words (SeedSequence's coercion)."""
    words = []
    while seed:
        words.append(seed & _M32)
        seed >>= 32
    return words or [0]


def _spawned_pcg_states(seeds, n: int) -> np.ndarray:
    """PCG64 seed material of every spawn child, one vector pass per seed.

    Row ``s * n + i`` is ``SeedSequence(seeds[s]).spawn(n)[i]
    .generate_state(4, uint64)``.  A child's assembled entropy is the
    parent's entropy words zero-padded to the pool size (4) plus the
    child index, so the entropy-pool state after the scalar prefix is
    shared by all n children; only the final four spawn-key mixes and
    the eight ``generate_state`` hashes see the index, and those
    vectorise over ``arange(n)``.
    """
    out = np.empty((len(seeds) * n, 4), dtype=np.uint64)
    iv = np.arange(n, dtype=np.uint32)
    for s_at, seed in enumerate(seeds):
        words = _entropy_words(int(seed))
        if len(words) < 4:
            words = words + [0] * (4 - len(words))
        hc = _SS_INIT_A

        def hashmix(value: int) -> int:
            nonlocal hc
            value = (value ^ hc) & _M32
            hc = (hc * _SS_MULT_A) & _M32
            value = (value * hc) & _M32
            return value ^ (value >> 16)

        def mix(x: int, y: int) -> int:
            r = (x * _SS_MIX_L - y * _SS_MIX_R) & _M32
            return r ^ (r >> 16)

        pool = [hashmix(w) for w in words[:4]]
        for i_src in range(4):
            for i_dst in range(4):
                if i_src != i_dst:
                    pool[i_dst] = mix(pool[i_dst], hashmix(pool[i_src]))
        for w in words[4:]:
            for i_dst in range(4):
                pool[i_dst] = mix(pool[i_dst], hashmix(w))
        # Spawn key (the child index): the one vector word, mixed last.
        poolv = []
        for i_dst in range(4):
            v = iv ^ np.uint32(hc)
            hc = (hc * _SS_MULT_A) & _M32
            v = v * np.uint32(hc)
            v ^= v >> _SS_XSHIFT
            r = np.uint32((pool[i_dst] * _SS_MIX_L) & _M32) \
                - v * np.uint32(_SS_MIX_R)
            r ^= r >> _SS_XSHIFT
            poolv.append(r)
        hc2 = _SS_INIT_B
        halves = []
        for i_dst in range(8):
            d = poolv[i_dst % 4] ^ np.uint32(hc2)
            hc2 = (hc2 * _SS_MULT_B) & _M32
            d = d * np.uint32(hc2)
            d ^= d >> _SS_XSHIFT
            halves.append(d.astype(np.uint64))
        rows = out[s_at * n:(s_at + 1) * n]
        for k in range(4):
            rows[:, k] = halves[2 * k] | (halves[2 * k + 1] << _SHIFT32)
    return out


def _pcg_mult_add(lo, hi, inc_lo, inc_hi):
    """One 128-bit LCG step ``state * MULT + inc`` in 64-bit limbs."""
    al = lo & _MASK32
    ah = lo >> _SHIFT32
    mid1 = ah * _PCG_ML_LO
    mid2 = al * _PCG_ML_HI
    spill = ((al * _PCG_ML_LO >> _SHIFT32) + (mid1 & _MASK32)
             + (mid2 & _MASK32)) >> _SHIFT32
    mulhi = ah * _PCG_ML_HI + (mid1 >> _SHIFT32) + (mid2 >> _SHIFT32) + spill
    nlo = lo * _PCG_ML
    nhi = mulhi + lo * _PCG_MH + hi * _PCG_ML
    out_lo = nlo + inc_lo
    out_hi = nhi + inc_hi + (out_lo < nlo)
    return out_lo, out_hi


def _pcg_out(hi, lo):
    """The XSL-RR output of a (stepped) 128-bit state."""
    x = hi ^ lo
    rot = hi >> np.uint64(58)
    return (x >> rot) | (x << ((np.uint64(64) - rot) & np.uint64(63)))


def _pcg_srandom(states: np.ndarray):
    """PCG64's seeding, vectorised: seed material -> (sh, sl, ih, il)."""
    ish, isl = states[:, 0], states[:, 1]
    qh, ql = states[:, 2], states[:, 3]
    ih = (qh << np.uint64(1)) | (ql >> np.uint64(63))
    il = (ql << np.uint64(1)) | np.uint64(1)
    # state = 0 stepped once is just the increment; add the init state,
    # step again.
    sl = il + isl
    sh = ih + ish + (sl < isl)
    sl, sh = _pcg_mult_add(sl, sh, il, ih)
    return sh, sl, ih, il


def _replication_self_check() -> bool:
    """Does the raw-word Lemire replication match this numpy's Generator?

    Drains one PCG64 stream twice — through a real ``Generator`` and
    through the half-word arithmetic :class:`DrawPool` uses — over a
    bound mix that exercises the no-consumption ``bound == 1`` case,
    small and large bounds, and the rejection path (``2**31 + 1``
    rejects ~50% of halves).  Any numpy whose bounded-integer
    algorithm differs fails this check and demotes every pool to the
    per-draw ``integers`` fallback, keeping parity unconditional.
    """
    ss = np.random.SeedSequence(0xBA7C4ED)
    ref = np.random.default_rng(ss)
    words = np.random.PCG64(ss).random_raw(256)
    halves = np.empty(512, dtype=np.uint64)
    halves[0::2] = words & _MASK32
    halves[1::2] = words >> _SHIFT32
    pos = 0
    bounds = [1, 2, 3, 7, 1, 100, 4096, 2**31 + 1, 1, 5, 12,
              1000003, 2**31 + 1, 64, 1, 2] * 4
    for c in bounds:
        expect = int(ref.integers(c))
        if c == 1:
            got = 0
        else:
            threshold = ((1 << 32) - c) % c
            while True:
                if pos >= halves.size:
                    return False
                m = int(halves[pos]) * c
                pos += 1
                if (m & 0xFFFFFFFF) >= threshold:
                    got = m >> 32
                    break
        if got != expect:
            return False
    return True


def _vector_seed_self_check() -> bool:
    """Do the vectorised SeedSequence + PCG64 replications match numpy?

    Reconstructs a few parents' spawn children end to end — seed
    material, seeded LCG state, and the first raw words — against the
    real objects, over one-word, multi-word (> 32-bit) and > 128-bit
    entropy.  Any mismatch demotes every pool to the per-draw
    ``integers`` fallback, keeping parity unconditional.
    """
    for seed in (0, 1, 0xBA7C4ED, (1 << 40) + 7, (1 << 130) + 5):
        k = 3
        try:
            states = _spawned_pcg_states([seed], k)
        except Exception:
            return False
        sh, sl, ih, il = _pcg_srandom(states)
        sh, sl = sh.copy(), sl.copy()
        for i, child in enumerate(np.random.SeedSequence(seed).spawn(k)):
            bg = np.random.PCG64(child)
            st = bg.state["state"]
            if ((int(sh[i]) << 64) | int(sl[i])) != st["state"]:
                return False
            if ((int(ih[i]) << 64) | int(il[i])) != st["inc"]:
                return False
            want = [int(w) for w in bg.random_raw(4)]
            got = []
            for _ in range(4):
                lo, hi = _pcg_mult_add(sl[i:i + 1], sh[i:i + 1],
                                       il[i:i + 1], ih[i:i + 1])
                sl[i:i + 1], sh[i:i + 1] = lo, hi
                got.append(int(_pcg_out(hi, lo)[0]))
            if got != want:
                return False
    return True


class DrawPool:
    """Per-node bounded-integer streams, drawn for a whole pass at once.

    One pool owns the ``B*n`` node streams of a batch — the exact
    ``SeedSequence(seed_b).spawn(n)`` children that ``engine="fast"``
    hands to ``default_rng`` — and serves ``draw(nodes, bounds)``:
    one value per lane, each from its own stream, bitwise identical
    to ``Generator(PCG64(child)).integers(bound)`` called in the same
    per-node order.

    How: the PCG64 LCG states of *all* children are materialised up
    front by the vectorised SeedSequence replication — four uint64
    columns per node, no bit-generator objects anywhere — and each
    step's lanes advance their LCGs in one 64-bit-limb array pass.  A
    ``Generator`` satisfies bounded draws from 32-bit halves of its
    raw 64-bit words (low half first), applying Lemire's
    multiply-shift with rejection, and consumes *nothing* for
    ``bound == 1``; the pool mirrors that with a one-word half buffer
    per node (``_word`` plus a high-half-pending flag).  Rejections
    (probability ``< bound / 2**32``) finish on tiny index subsets.

    The replication is self-checked once per process against real
    ``SeedSequence`` / ``PCG64`` / ``Generator`` objects; on mismatch
    every pool runs per-draw ``integers`` calls instead (exact by
    definition, no longer vectorised).
    """

    __slots__ = ("exact", "_children", "_gens", "_sh", "_sl", "_ih",
                 "_il", "_word", "_pend")

    def __init__(self, seeds, n: int):
        global _EXACT
        if _EXACT is None:
            _EXACT = _replication_self_check() and _vector_seed_self_check()
        self.exact = _EXACT
        if not self.exact:
            self._children = []
            for seed in seeds:
                self._children.extend(np.random.SeedSequence(seed).spawn(n))
            self._gens: list = [None] * len(self._children)
            return
        states = _spawned_pcg_states(list(seeds), n)
        self._sh, self._sl, self._ih, self._il = _pcg_srandom(states)
        total = states.shape[0]
        self._word = np.zeros(total, dtype=np.uint64)
        self._pend = np.zeros(total, dtype=bool)

    def _next_halves(self, nv: np.ndarray) -> np.ndarray:
        """Next 32-bit half per node; ``nv`` must be pairwise distinct."""
        pend = self._pend[nv]
        fresh = nv[~pend]
        if fresh.size:
            lo, hi = _pcg_mult_add(self._sl[fresh], self._sh[fresh],
                                   self._il[fresh], self._ih[fresh])
            self._sl[fresh] = lo
            self._sh[fresh] = hi
            self._word[fresh] = _pcg_out(hi, lo)
        w = self._word[nv]
        self._pend[nv] = ~pend
        return np.where(pend, w >> _SHIFT32, w & _MASK32)

    def draw(self, nodes: np.ndarray, bounds: np.ndarray) -> np.ndarray:
        """One bounded draw per lane; ``nodes`` must be pairwise distinct."""
        if not self.exact:
            gens, children = self._gens, self._children
            out = np.empty(nodes.size, dtype=np.int64)
            for i, (v, c) in enumerate(zip(nodes.tolist(), bounds.tolist())):
                g = gens[v]
                if g is None:
                    g = gens[v] = np.random.default_rng(children[v])
                out[i] = g.integers(c)
            return out

        if bounds.min() > 1:
            nv, need, out = nodes, None, None
        else:
            out = np.zeros(nodes.size, dtype=np.int64)
            need = np.flatnonzero(bounds > 1)  # bound 1 consumes no entropy
            if need.size == 0:
                return out
            nodes, bounds = nodes[need], bounds[need]
            nv = nodes
        half = self._next_halves(nv)
        c = bounds.astype(np.uint64)
        m = half * c
        leftover = m & _MASK32
        vals = (m >> _SHIFT32).astype(np.int64)
        if (leftover < c).any():  # threshold < bound: almost never taken
            threshold = (_RANGE32 - c) % c
            retry = np.flatnonzero(leftover < threshold)
            while retry.size:
                m = self._next_halves(nv[retry]) * c[retry]
                vals[retry] = (m >> _SHIFT32).astype(np.int64)
                retry = retry[(m & _MASK32) < threshold[retry]]
        if need is None:
            return vals
        out[need] = vals
        return out


# -- pluggable inner scans (numpy fallback / optional numba) ---------------


def _padded_rows(values: np.ndarray, starts: np.ndarray,
                 ends: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Rows ``values[starts[i]:ends[i]]`` as a padded matrix + validity mask.

    Padding slots hold an arbitrary in-range element and are masked
    False; callers must apply the mask before trusting any entry.
    """
    degs = ends - starts
    width = int(degs.max()) if degs.size else 0
    cols = np.arange(width, dtype=np.int64)
    flat = starts[:, None] + cols
    np.minimum(flat, values.size - 1, out=flat)
    return values[flat], cols < degs[:, None]


def stacked_edge_twins(indptr: np.ndarray, indices: np.ndarray,
                       batch: int, size: int) -> np.ndarray:
    """Reverse-edge permutation of a stacked CSR, one block at a time.

    A stable argsort of the destination column re-lists the
    (src, dst)-sorted edges in (dst, src) order, and reversal is an
    order-preserving bijection between those orders — so the
    permutation *is* its own reverse-edge table (and involution).
    Per trial block: each block is closed under reversal, and the
    block-local sorts stay cache-resident.  Exposed so callers that
    run several walks over one stacked CSR (the per-colour-class
    DHC2 batch) can compute the table once.
    """
    twins = np.empty(indices.size, dtype=np.int32)
    for b in range(batch):
        lo = int(indptr[b * size])
        hi = int(indptr[(b + 1) * size])
        twins[lo:hi] = np.argsort(indices[lo:hi], kind="stable")
        twins[lo:hi] += np.int32(lo)
    return twins


def reverse_path_blocks(path_flat: np.ndarray, pos: np.ndarray,
                        rows: np.ndarray, los: np.ndarray,
                        highs: np.ndarray, size: int) -> None:
    """Reverse ``path[rows[t], los[t]:highs[t]]`` for every t, in place.

    One gather + one scatter over the concatenated segments (the same
    per-block arange trick as :func:`~repro.graphs.adjacency.csr_gather`)
    replaces a Python loop of per-trial slice reversals; ``pos`` picks
    up each moved node's new *local* path position.  This is the
    rotation step of every batched walk that keeps eager positions
    (the CRE chunk); :class:`BatchWalk` itself rotates by descriptor.
    """
    kern = _jit.reverse_blocks
    if kern is not None:  # pragma: no cover - jit variant
        kern(path_flat, pos, rows, los, highs, size)
        return
    seg = highs - los
    total = int(seg.sum())
    if total == 0:
        return
    offs = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(seg) - seg, seg)
    base = np.repeat(rows, seg) * size
    dst = np.repeat(los, seg) + offs
    vals = path_flat[base + (np.repeat(highs, seg) - 1 - offs)]
    path_flat[base + dst] = vals
    pos[vals] = dst


class BatchTree:
    """Min-id BFS trees of every trial in a batch, built in one BFS.

    The multi-root analogue of
    :class:`~repro.engines.arraywalk.ArrayTree` /
    :func:`~repro.engines.arraywalk.build_array_tree` over the
    disjoint-union CSR: one frontier BFS grows all B trees at once
    (components never interact), the min-id parent rule falls out of
    CSR row order, and the completion-round recursion and flood
    eccentricities run jointly over every connected trial.  Trials
    whose graph is disconnected are flagged in :attr:`ok` (their
    distributed BFS would hit its deadline) and excluded from the
    timing computations.
    """

    __slots__ = ("batch", "n", "roots", "ok", "depth", "parent",
                 "tree_depth", "_indptr", "_indices")

    def __init__(self, batch, n, roots, ok, depth, parent, tree_depth,
                 indptr, indices):
        self.batch = batch
        self.n = n
        self.roots = roots          # global ids, one per trial
        self.ok = ok                # per-trial: all participants reached?
        self.depth = depth          # flat B*n, -1 outside the trees
        self.parent = parent        # flat B*n, -1 at roots / outside
        self.tree_depth = tree_depth  # per-trial max depth
        self._indptr = indptr
        self._indices = indices

    def completion_times(self, start_round: int) -> np.ndarray:
        """Per-node done-report rounds for every connected trial.

        The same recursion as
        :meth:`~repro.engines.arraywalk.ArrayTree.completion_times` —
        ``done(v) = max(join(v) + 1, peer responses, children done +
        1)`` — run trial by trial over graph-local slices of the
        stacked CSR.  Trials are independent components, so per-trial
        evaluation is exactly the joint recursion; the local n-node
        working set stays cache-resident where a union-wide pass
        would stream every temp through memory.  The peer-response
        term is a masked per-row ``maximum.reduceat``, the per-level
        child scatter-max a sort + ``reduceat`` (ufunc.at is orders
        of magnitude slower).
        """
        n = self.n
        indptr, indices = self._indptr, self._indices
        done = np.zeros(self.batch * n, dtype=np.int64)
        lowest = np.iinfo(np.int64).min
        for b in np.flatnonzero(self.ok).tolist():
            base = b * n
            lo = int(indptr[base])
            ip = (indptr[base:base + n + 1] - lo).astype(np.int64)
            dsts = indices[lo:int(indptr[base + n])].astype(np.int64)
            dsts -= base
            dep = self.depth[base:base + n]
            par = self.parent[base:base + n] - base  # root stays < 0
            counts = np.diff(ip)
            srcs = np.repeat(np.arange(n, dtype=np.int64), counts)
            masked = np.where(dsts != par[srcs], dep[dsts], lowest)
            nonempty = counts > 0  # connected n >= 2 has none empty
            respd = np.full(n, lowest, dtype=np.int64)
            if masked.size:
                respd[nonempty] = np.maximum.reduceat(
                    masked, (np.cumsum(counts) - counts)[nonempty])
            resp = np.where(respd >= 0, start_round + respd + 1, 0)

            done_b = done[base:base + n]
            kid = np.zeros(n, dtype=np.int64)
            top = int(dep.max())
            # Nodes outside the tree (depth -1: non-participants of a
            # partition walk) sort into a trailing pseudo-level the
            # loop below never visits; full blocks have none, so this
            # relabelling is the identity there.
            dep_lv = np.where(dep >= 0, dep, top + 1)
            by_depth = np.argsort(dep_lv, kind="stable")
            level_sizes = np.bincount(dep_lv, minlength=top + 2)
            stops = np.cumsum(level_sizes)
            for d in range(top, -1, -1):
                level = by_depth[stops[d] - level_sizes[d]:stops[d]]
                done_b[level] = np.maximum(
                    np.maximum(start_round + d + 1, resp[level]),
                    kid[level])
                if d > 0:
                    pl = par[level]
                    order = np.argsort(pl, kind="stable")
                    sp = pl[order]
                    heads_ = np.ones(sp.size, dtype=bool)
                    heads_[1:] = sp[1:] != sp[:-1]
                    segmax = np.maximum.reduceat(
                        (done_b[level] + 1)[order], np.flatnonzero(heads_))
                    uniq = sp[heads_]
                    kid[uniq] = np.maximum(kid[uniq], segmax)
        return done

    def eccentricities(self, starts: np.ndarray) -> np.ndarray:
        """Largest tree distance from each start (one per connected trial).

        One multi-source BFS over the union's tree edges; sources must
        lie in distinct trials (components), so each BFS wave is
        confined to its own tree and the last level that touches a
        trial is that start's eccentricity.
        """
        far = np.zeros(starts.size, dtype=np.int64)
        kids = np.flatnonzero(self.depth > 0)
        if kids.size == 0 or starts.size == 0:
            return far
        src = np.concatenate((kids, self.parent[kids]))
        dst = np.concatenate((self.parent[kids], kids))
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        total = self.batch * self.n
        tree_indptr = np.zeros(total + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=total), out=tree_indptr[1:])
        slot_of_trial = np.full(self.batch, -1, dtype=np.int64)
        slot_of_trial[starts // self.n] = np.arange(starts.size)
        seen = np.zeros(total, dtype=bool)
        seen[starts] = True
        frontier = np.asarray(starts, dtype=np.int64)
        level = 0
        while frontier.size:
            nbrs = csr_gather(tree_indptr, dst, frontier)
            fresh = np.unique(nbrs[~seen[nbrs]])
            if fresh.size == 0:
                break
            level += 1
            seen[fresh] = True
            far[slot_of_trial[fresh // self.n]] = level
            frontier = fresh
        return far


def build_batch_tree(indptr: np.ndarray, indices: np.ndarray,
                     batch: int, n: int, roots: np.ndarray,
                     expect: np.ndarray | None = None,
                     live: np.ndarray | None = None) -> BatchTree:
    """Build every trial's min-id BFS tree over the stacked CSR.

    Unlike :func:`~repro.engines.arraywalk.build_array_tree` this never
    returns ``None``: disconnected trials are reported per-trial via
    :attr:`BatchTree.ok` so the rest of the batch keeps going.

    ``expect`` is the per-trial participant count a complete BFS must
    reach (default: all ``n`` nodes of the block; the per-colour-class
    DHC2 batch passes class sizes).  ``live`` masks trials to skip
    entirely — their root entry may be garbage and their block keeps
    depth -1 with ``ok`` False.
    """
    total = batch * n
    roots = np.asarray(roots, dtype=np.int64)
    expect = (np.full(batch, n, dtype=np.int64) if expect is None
              else np.asarray(expect, dtype=np.int64))
    live = (np.ones(batch, dtype=bool) if live is None
            else np.asarray(live, dtype=bool))
    depth = np.full(total, -1, dtype=np.int64)
    parent = np.full(total, -1, dtype=np.int64)
    ok = np.zeros(batch, dtype=bool)
    tree_depth = np.zeros(batch, dtype=np.int64)
    kern = _jit.tree_kernel
    if kern is not None:  # pragma: no cover - exercised in the jit lane
        kern(np.asarray(indptr, dtype=np.int64), indices, roots, expect,
             live, n, depth, parent, ok, tree_depth)
        return BatchTree(batch, n, roots, ok, depth, parent, tree_depth,
                         indptr, indices)
    # Trial by trial over graph-local slices: components never
    # interact, so this is the union BFS evaluated in an order that
    # keeps each trial's n-node arrays cache-resident instead of
    # streaming multi-million-entry union temps through memory.
    for b in range(batch):
        if not live[b]:
            continue
        base = b * n
        lo = int(indptr[base])
        ip = (indptr[base:base + n + 1] - lo).astype(np.int64)
        idx = indices[lo:int(indptr[base + n])].astype(np.int64)
        idx -= base
        dep = np.full(n, -1, dtype=np.int64)
        r = int(roots[b]) - base
        dep[r] = 0
        frontier = np.asarray([r], dtype=np.int64)
        d = 0
        while frontier.size:
            nbrs = csr_gather(ip, idx, frontier)
            fresh = nbrs[dep[nbrs] < 0]
            if fresh.size == 0:
                break
            d += 1
            # Duplicate marks are idempotent; re-scanning depth beats
            # the sort a np.unique of the wave would cost.
            dep[fresh] = d
            frontier = np.flatnonzero(dep == d)
        ok[b] = int((dep >= 0).sum()) == int(expect[b])
        tree_depth[b] = int(dep.max())

        # Min-id parent rule: rows are sorted ascending, so each
        # reached non-root's parent is its *first* one-level-up
        # neighbour.
        srcs = csr_sources(ip)
        up = np.flatnonzero(dep[idx] == dep[srcs] - 1)
        up_src = srcs[up]
        first = np.ones(up_src.size, dtype=bool)
        first[1:] = up_src[1:] != up_src[:-1]
        par = np.full(n, -1, dtype=np.int64)
        par[up_src[first]] = idx[up[first]]
        par[r] = -1
        depth[base:base + n] = dep
        parent[base:base + n] = np.where(par >= 0, par + base, -1)
    return BatchTree(batch, n, roots, ok, depth, parent, tree_depth,
                     indptr, indices)


class BatchWalk:
    """Algorithm 1's rotation walk over every live trial per pass.

    Step-for-step identical to running one
    :class:`~repro.engines.arraywalk.ArrayWalk` per trial (each trial's
    draws, edge kills, extension/rotation/closure sequence, round
    accounting, and failure codes are unchanged); only the execution
    order interleaves — pass k performs step k of every trial still
    live.  The budget gate runs before the edge scan and no-edge
    trials fail *before* any draw, exactly mirroring the serial check
    order.

    Parameters mirror :class:`~repro.engines.arraywalk.ArrayWalk` with
    the batch axis added: ``initial_heads`` / ``tree_depths`` /
    ``start_rounds`` are per-trial vectors, ``draws`` is the batch's
    :class:`DrawPool` (one stream per global node id), and ``live``
    masks trials excluded before the walk starts (e.g. disconnected
    graphs).  By default every trial's participant set is its full
    n-node block; partition walks (the per-colour-class DHC2 batch)
    pass per-trial participant counts via ``sizes`` and a per-trial
    ``step_budget`` vector — closure then requires
    ``plen == sizes[b]``, and blocks may contain non-participant
    nodes as long as the CSR never reaches them (class rows are
    colour-closed).  ``twins`` accepts a precomputed
    :func:`stacked_edge_twins` table so several walks over one
    stacked CSR share the sort.

    When :mod:`repro.engines._jit` has compiled kernels *and* the
    pool is in exact (vector-replication) mode, :meth:`run` hands the
    whole walk to the fused kernel instead of the numpy pass loop;
    outcomes are bitwise identical either way.
    """

    __slots__ = ("batch", "size", "sizes", "draws", "step_budget",
                 "latency",
                 "seg_cap", "success", "fail_code", "steps", "rotations",
                 "extensions", "round", "end_round", "flood_initiator",
                 "plen", "head", "_indptr", "_ip32", "_twins", "_wp32",
                 "_bits", "_alive_count", "_idx_pad", "_buf", "_bpos",
                 "_tail", "_segs", "_seg_cnt", "_live", "_rotation_cost",
                 "_budgets", "_cols", "_cols32", "_lanes")

    def __init__(self, *, indptr, indices, draws, batch, size,
                 initial_heads, step_budget, tree_depths, start_rounds,
                 live=None, latency=1, seg_cap=64, sizes=None, twins=None):
        self.batch = batch
        self.size = size
        self.sizes = (np.full(batch, size, dtype=np.int64) if sizes is None
                      else np.asarray(sizes, dtype=np.int64).copy())
        self.draws = draws
        self.step_budget = step_budget
        budgets = np.asarray(step_budget, dtype=np.int64)
        self._budgets = (np.full(batch, budgets) if budgets.ndim == 0
                         else budgets.copy())
        self.latency = max(1, latency)
        # Room for one split + one append per pass between compactions.
        self.seg_cap = cap = max(8, int(seg_cap))

        heads = np.asarray(initial_heads, dtype=np.int64)
        self.success = np.zeros(batch, dtype=bool)
        self.fail_code = np.zeros(batch, dtype=np.int64)
        self.steps = np.zeros(batch, dtype=np.int64)
        self.rotations = np.zeros(batch, dtype=np.int64)
        self.extensions = np.zeros(batch, dtype=np.int64)
        self.round = np.asarray(start_rounds, dtype=np.int64).copy()
        self.end_round = self.round.copy()
        self.flood_initiator = heads.copy()
        self.plen = np.zeros(batch, dtype=np.int64)
        self.head = heads.copy()

        self._indptr = indptr
        degs = np.diff(indptr)
        self._alive_count = degs.astype(np.int64)
        maxdeg = int(degs.max()) if degs.size else 0
        # Padding indices by one max-degree row lets every (A, width)
        # gather index unclamped: spill slots read -1 sentinels, never
        # a neighbouring row by accident.  int32 copies keep the
        # per-pass index matrices and row gathers at half the memory
        # traffic (global ids and edge offsets both stay far below
        # 2**31 at any sane chunk size).
        self._ip32 = indptr.astype(np.int32)
        self._idx_pad = np.concatenate(
            (np.asarray(indices, dtype=np.int32),
             np.full(maxdeg, -1, dtype=np.int32)))
        self._twins = (stacked_edge_twins(indptr, indices, batch, size)
                       if twins is None else twins)
        # Live edges, one bit per directed slot: row r owns words
        # [wptr[r], wptr[r+1]) — bit j of the run is local slot j.
        # One max-width spill row keeps masked gathers unclamped.
        nwords = (degs + 63) >> 6
        wptr = np.zeros(degs.size + 1, dtype=np.int64)
        np.cumsum(nwords, out=wptr[1:])
        self._wp32 = wptr.astype(np.int32)
        maxw = int(nwords.max()) if nwords.size else 0
        bits = np.zeros(int(wptr[-1]) + maxw, dtype=np.uint64)
        bits[:wptr[-1]] = ~np.uint64(0)
        rem = degs & 63
        partial = np.flatnonzero(rem)
        bits[wptr[1:][partial] - 1] = \
            (np.uint64(1) << rem[partial].astype(np.uint64)) - np.uint64(1)
        self._bits = bits
        self._cols = np.arange(max(maxdeg, cap, 1), dtype=np.int64)
        self._cols32 = self._cols.astype(np.int32)
        self._lanes = np.arange(batch, dtype=np.int64)

        # Append-only backing rows: a node's backing slot never moves;
        # path order lives in the (lo, hi, dir) run descriptors.
        # int32 throughout — these are the arrays every rotation pass
        # gathers and scatters, so width is bandwidth.
        self._buf = np.zeros((batch, max(size, 1)), dtype=np.int32)
        self._bpos = np.full(batch * size, -1, dtype=np.int32)
        self._tail = heads.copy()
        self._segs = np.zeros((batch, 3, cap), dtype=np.int32)
        self._segs[:, 2, :] = 1
        self._seg_cnt = np.zeros(batch, dtype=np.int64)
        self._live = (np.ones(batch, dtype=bool) if live is None
                      else np.asarray(live, dtype=bool).copy())

        self._rotation_cost = (2 * np.asarray(tree_depths, dtype=np.int64)
                               * self.latency + 3)
        started = np.flatnonzero(self._live)
        self._buf[started, 0] = heads[started]
        if size:
            self._bpos[heads[started]] = 0
        self._segs[started, 1, 0] = 1
        self._seg_cnt[started] = 1
        self.plen[started] = 1

    def _flatten_rows(self, rows: np.ndarray) -> None:
        """Compact every listed trial back to one forward run, jointly.

        One gather + one scatter over the concatenation of all listed
        trials' runs in path order (reading into a scratch array first,
        since source and destination share the backing rows).
        """
        if rows.size == 0:
            return
        size = self.size
        buf_flat = self._buf.reshape(-1)
        cnt = self._seg_cnt[rows]
        g = self._segs[rows]
        keep = self._cols[:self.seg_cap][None, :] < cnt[:, None]
        lo = g[:, 0][keep]
        hi = g[:, 1][keep]
        fwd = g[:, 2][keep] > 0
        lens = hi - lo
        total = int(lens.sum())
        if total == 0:
            return
        offs = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(lens) - lens, lens)
        idx = np.where(np.repeat(fwd, lens),
                       np.repeat(lo, lens) + offs,
                       np.repeat(hi, lens) - 1 - offs)
        vals = buf_flat[np.repeat(np.repeat(rows, cnt) * size, lens) + idx]
        row_lens = self.plen[rows]
        dstoff = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(row_lens) - row_lens, row_lens)
        buf_flat[np.repeat(rows * size, row_lens) + dstoff] = vals
        self._bpos[vals] = dstoff
        self._segs[rows, 0, 0] = 0
        self._segs[rows, 1, 0] = row_lens
        self._segs[rows, 2, 0] = 1
        self._seg_cnt[rows] = 1

    def cycle(self, b: int) -> list[int]:
        """Trial ``b``'s path in *local* node ids."""
        if self.plen[b]:
            self._flatten_rows(np.asarray([b], dtype=np.int64))
        return (self._buf[b, :self.plen[b]] - b * self.size).tolist()

    def verified_cycles(self, trials: np.ndarray
                        ) -> tuple[np.ndarray, np.ndarray]:
        """Full-length paths of ``trials`` plus a Hamiltonian-cycle verdict.

        One joint flatten, then whole-array versions of the checks
        :func:`repro.verify.hamiltonicity.verify_cycle` performs
        per-trial — each row is a permutation of its trial's node
        block and every consecutive (and the closing) pair is a graph
        edge — so a serial run would accept exactly the same rows.
        The edge test is a lockstep binary search of every pair at
        once (rows are sorted, so each query halves in unison).
        Returns the ``(len(trials), n)`` global-id path matrix and a
        per-trial bool.
        """
        self._flatten_rows(trials)
        rows = self._buf[trials]
        n = self.size
        block = np.arange(n, dtype=np.int64) + (trials * n)[:, None]
        ok = (np.sort(rows, axis=1) == block).all(axis=1)
        u = rows.reshape(-1).astype(np.int64)
        v = np.roll(rows, -1, axis=1).reshape(-1).astype(np.int32)
        ip32, idx_pad = self._ip32, self._idx_pad
        if idx_pad.size == 0:  # edgeless batch: nothing can close
            return rows, np.zeros(len(trials), dtype=bool)
        lo = ip32[u].astype(np.int64)
        hi = ip32[u + 1].astype(np.int64)
        ends = hi
        while True:
            open_ = lo < hi
            if not open_.any():
                break
            mid = (lo + hi) >> 1
            less = idx_pad[mid] < v
            lo = np.where(open_ & less, mid + 1, lo)
            hi = np.where(open_ & ~less, mid, hi)
        good = (lo < ends) & (idx_pad[lo] == v)
        ok &= good.reshape(rows.shape).all(axis=1)
        return rows, ok

    def _fail(self, trials: np.ndarray, code: int) -> None:
        self.fail_code[trials] = code
        self.flood_initiator[trials] = self.head[trials]
        self.end_round[trials] = self.round[trials]
        self._live[trials] = False

    def _run_fused(self, kern) -> None:
        """Hand the whole walk to the compiled kernel (exact pools only)."""
        from repro.core.rotation import FAIL_BUDGET, FAIL_NO_EDGES

        pool = self.draws
        order = np.flatnonzero(self._live)
        if order.size == 0:
            return
        # uint64 wraparound is the LCG arithmetic itself; silence the
        # numpy-2 scalar overflow warning for the uncompiled case (the
        # parity tests run the kernel as plain Python).
        with np.errstate(over="ignore"):
            kern(order, np.asarray(self._indptr, dtype=np.int64),
                 self._idx_pad, self._twins, self._wp32, self._bits,
                 self._alive_count,
                 pool._sh, pool._sl, pool._ih, pool._il,
                 pool._word, pool._pend,
                 self._buf.reshape(-1), self._bpos, self._tail, self.sizes,
                 self._budgets, self._rotation_cost,
                 self.head, self.plen, self.round, self.steps,
                 self.rotations, self.extensions,
                 self.success, self.fail_code, self.end_round,
                 self.flood_initiator, self._live,
                 self.size, FAIL_BUDGET, FAIL_NO_EDGES)
        # The kernel keeps eager path positions in the backing rows;
        # re-describe each ran trial as one forward run so cycle() /
        # verified_cycles() read the same state the numpy path leaves.
        self._segs[order, 0, 0] = 0
        self._segs[order, 1, 0] = self.plen[order]
        self._segs[order, 2, 0] = 1
        self._seg_cnt[order] = 1

    def run(self) -> None:
        from repro.core.rotation import FAIL_BUDGET, FAIL_NO_EDGES, FAIL_TOO_SMALL

        small = np.flatnonzero(self._live & (self.sizes < 3))
        if small.size:
            self._fail(small, FAIL_TOO_SMALL)
        kern = _jit.walk_kernel
        if kern is not None and getattr(self.draws, "exact", False):
            self._run_fused(kern)
            return
        ip32, idx_pad, twins = self._ip32, self._idx_pad, self._twins
        wp32, bits = self._wp32, self._bits
        alive_count, pool = self._alive_count, self.draws
        bpos, live, cols = self._bpos, self._live, self._cols
        cols32 = self._cols32
        one = np.uint64(1)
        six3 = np.uint64(63)
        widths = [(np.uint64(w), (one << np.uint64(w)) - one)
                  for w in (32, 16, 8, 4, 2, 1)]
        buf_flat = self._buf.reshape(-1)
        segs = self._segs
        segs_flat = segs.reshape(-1)
        seg_cnt = self._seg_cnt
        size, budgets, cap = self.size, self._budgets, self.seg_cap
        plane = cap  # flat stride between the lo/hi/dir planes
        axis3 = np.arange(3, dtype=np.int64)[None, :, None]
        # Uniform batches (every full-block walk) keep the per-pass
        # budget gate and closure-length test scalar; only partition
        # walks with genuinely per-trial values pay the vector forms.
        budget_floor = int(budgets.min()) if budgets.size else 0
        uniform_size = bool((self.sizes == size).all())

        step = 1
        while True:
            act = np.flatnonzero(live)
            if act.size == 0:
                return
            if step > budget_floor:
                over = step > budgets[act]
                if over.any():
                    self._fail(act[over], FAIL_BUDGET)
                    act = act[~over]
                    if act.size == 0:
                        return
            heads = self.head[act]
            counts = alive_count[heads]
            cornered = counts == 0
            if cornered.any():
                # Serial order: a cornered head fails without drawing.
                self._fail(act[cornered], FAIL_NO_EDGES)
                going = ~cornered
                act, heads, counts = act[going], heads[going], counts[going]
                if act.size == 0:
                    step += 1
                    continue
            trials = act

            draws = pool.draw(heads, counts)
            wstart = wp32[heads]
            # Find the word holding the (draws+1)-th live bit of
            # each head row, then binary-select the bit inside it:
            # halve the window six times, descending into whichever
            # half still holds the wanted rank.
            wdeg = wp32[heads + 1] - wstart
            wwidth = int(wdeg.max())
            wmat = bits[wstart[:, None] + cols32[:wwidth]]
            wmat *= cols32[:wwidth] < wdeg[:, None]
            pc = np.bitwise_count(wmat)
            cum = pc.cumsum(axis=1, dtype=np.int32)
            d32 = draws.astype(np.int32)
            k = (cum > d32[:, None]).argmax(axis=1)
            r_ = self._lanes[:heads.size]
            rank = (d32 - cum[r_, k] + pc[r_, k]).astype(np.uint64)
            word = wmat[r_, k]
            pos = np.zeros(heads.size, dtype=np.uint64)
            for w64, mask in widths:
                low = word & mask
                c = np.bitwise_count(low).astype(np.uint64)
                up = rank >= c
                rank -= np.where(up, c, 0)
                pos += np.where(up, w64, 0)
                word = np.where(up, word >> w64, low)
            offs = (k.astype(np.int64) << 6) + pos.astype(np.int64)
            slots = ip32[heads].astype(np.int64) + offs
            targets = idx_pad[slots].astype(np.int64)

            # Kill the used edge in both directions: the reverse slot
            # is one twin-table gather, and each lane's head and target
            # rows are pairwise distinct (disjoint trial blocks, no
            # self-loops), so the word read-modify-writes never alias.
            twin_slots = twins[slots].astype(np.int64)
            toffs = twin_slots - ip32[targets]
            wk = wstart.astype(np.int64) + (offs >> 6)
            bits[wk] &= ~(one << (offs.astype(np.uint64) & six3))
            tk = wp32[targets].astype(np.int64) + (toffs >> 6)
            bits[tk] &= ~(one << (toffs.astype(np.uint64) & six3))
            alive_count[heads] -= 1
            alive_count[targets] -= 1
            self.steps[trials] = step

            is_ext = bpos[targets] < 0
            # The tail (path position 0) is never moved by a suffix
            # reversal, so the serial ``tpos == 0`` closure test is an
            # identity check against the start node.
            want = size if uniform_size else self.sizes[trials]
            is_win = ((targets == self._tail[trials])
                      & (self.plen[trials] == want))
            is_rot = ~(is_ext | is_win)

            if is_ext.any():
                grew = trials[is_ext]
                new_heads = targets[is_ext]
                lengths = self.plen[grew]
                bpos[new_heads] = lengths
                buf_flat[grew * size + lengths] = new_heads
                # Extend the last run in place when it already ends at
                # the backing top going forward; otherwise open a run.
                base3 = grew * (3 * cap)
                last = base3 + seg_cnt[grew] - 1
                can = (segs_flat[last + 2 * plane] > 0) \
                    & (segs_flat[last + plane] == lengths)
                segs_flat[(last + plane)[can]] += 1
                app = np.flatnonzero(~can)
                if app.size:
                    slot = base3[app] + seg_cnt[grew[app]]
                    segs_flat[slot] = lengths[app]
                    segs_flat[slot + plane] = lengths[app] + 1
                    segs_flat[slot + 2 * plane] = 1
                    seg_cnt[grew[app]] += 1
                self.plen[grew] = lengths + 1
                self.head[grew] = new_heads
                self.round[grew] += 1
                self.extensions[grew] += 1

            if is_win.any():
                won = trials[is_win]
                self.success[won] = True
                self.flood_initiator[won] = targets[is_win]
                self.end_round[won] = self.round[won] + 1
                live[won] = False

            if is_rot.any():
                # Path = S_0 .. S_{k-1} (A|B) S_{k+1} .. S_{m-1} with the
                # target last in A; the reversal rewrites this to
                # S_0 .. S_{k-1} A rev(S_{m-1}) .. rev(S_{k+1}) rev(B)
                # — descriptors only, no elements move.
                spun = trials[is_rot]
                p = bpos[targets[is_rot]]
                r_ = self._lanes[:spun.size]
                m = seg_cnt[spun]
                g = segs[spun]
                lo, hi, dr = g[:, 0], g[:, 1], g[:, 2]
                colr = cols[:cap][None, :]
                inside = ((lo <= p[:, None]) & (p[:, None] < hi)
                          & (colr < m[:, None]))
                k = inside.argmax(axis=1)
                klo, khi, kdr = lo[r_, k], hi[r_, k], dr[r_, k]
                fwd = kdr > 0
                alo = np.where(fwd, klo, p)
                ahi = np.where(fwd, p + 1, khi)
                blo = np.where(fwd, p + 1, klo)
                bhi = np.where(fwd, khi, p)
                has_b = blo < bhi

                # New head = the target's path-successor: B's first
                # element, or the next run's first element when the
                # split lands on a run boundary (target == head leaves
                # the head as-is, mirroring serial's empty reversal).
                base = spun * size
                # The masked-out corners still index the gather: empty-B
                # lanes can put first_b at -1 (bhi == 0) or at size
                # (blo == p + 1 past the backing top), and stale
                # next-run descriptors can send first_n to -1 — but
                # stale values are always old backing coords < size, so
                # first_b needs both clamps and first_n the lower one.
                first_b = np.where(fwd, blo, bhi - 1)
                np.maximum(first_b, 0, out=first_b)
                np.minimum(first_b, size - 1, out=first_b)
                nxt = np.minimum(k + 1, cap - 1)
                first_n = np.where(dr[r_, nxt] > 0, lo[r_, nxt],
                                   hi[r_, nxt] - 1)
                np.maximum(first_n, 0, out=first_n)
                new_head = np.where(
                    has_b, buf_flat[base + first_b],
                    np.where(k + 1 < m, buf_flat[base + first_n],
                             self.head[spun]))

                srcs = np.where(colr <= k[:, None], colr,
                                (m + k)[:, None] - colr)
                np.maximum(srcs, 0, out=srcs)  # reflected side: <= k < cap
                new_g = g[r_[:, None, None], axis3, srcs[:, None, :]]
                flip = (colr > k[:, None]) & (colr < m[:, None])
                np.negative(new_g[:, 2], out=new_g[:, 2], where=flip)
                new_g[r_, 0, k] = alo
                new_g[r_, 1, k] = ahi
                new_g[r_, 2, k] = kdr
                wb = np.flatnonzero(has_b)
                if wb.size:
                    new_g[wb, 0, m[wb]] = blo[wb]
                    new_g[wb, 1, m[wb]] = bhi[wb]
                    new_g[wb, 2, m[wb]] = -kdr[wb]
                segs[spun] = new_g
                seg_cnt[spun] = m + has_b

                self.head[spun] = new_head
                self.round[spun] += self._rotation_cost[spun]
                self.rotations[spun] += 1

            # Splits and run appends each add at most one descriptor per
            # trial per pass; compact before anyone can overflow.
            self._flatten_rows(trials[seg_cnt[trials] >= cap - 2])

            step += 1
