"""Fast-engine CRE: the same moves on CSR position arrays.

Replays :mod:`repro.core.cre`'s decision sequence (see that module's
decision contract) with the data layout of the array kernel: an int64
path array plus position map (rotation = one slice reversal plus one
fancy-indexed update, exactly like :class:`~repro.engines.arraywalk.
ArrayWalk`), a vectorised unvisited-degree array maintained by one
scatter-subtract per visit, and candidate scans as masked CSR row
slices — the "vectorised rotation scan" that makes the solver usable
at sweep sizes.  Same single RNG stream, same draw order, hence
seed-for-seed identical cycle, steps, and failure codes (the registry
``parity`` declaration, held by ``tests/test_engine_parity.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.cre import (
    CRE_FAIL_BUDGET,
    CRE_FAIL_CUT_OFF,
    CRE_FAIL_STRANDED,
    CRE_FAIL_TOO_SMALL,
    cre_step_budget,
)
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["_cre_fast"]


def _cre_fast(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
) -> RunResult:
    """The CRE solver on CSR arrays; see module docstring."""
    n = graph.n
    detail = {"fail": None, "extensions": 0, "rotations": 0,
              "cycle_extensions": 0}
    if n < 3:
        detail["fail"] = CRE_FAIL_TOO_SMALL
        return RunResult("cre", False, None, 0, engine="fast", detail=detail)
    budget = step_budget if step_budget is not None else cre_step_budget(n)
    rng = np.random.default_rng(seed)
    indptr, indices = graph.indptr, graph.indices

    path = np.empty(n, dtype=np.int64)
    pos = np.full(n, -1, dtype=np.int64)
    ramp = np.arange(n, dtype=np.int64)
    unvisited_degree = (indptr[1:] - indptr[:-1]).astype(np.int64)

    def row_of(v: int) -> np.ndarray:
        return indices[indptr[v]:indptr[v + 1]]

    start = int(rng.integers(n))
    path[0] = start
    pos[start] = 0
    plen = 1
    unvisited_degree[row_of(start)] -= 1

    steps = 0
    ok = False
    while True:
        head = int(path[plen - 1])
        tail = int(path[0])
        row = row_of(head)
        closes = bool((row == tail).any())
        # Closure precedes the budget gate (see the reference
        # implementation): it is the termination condition, not a move.
        if plen == n and closes:
            ok = True
            break
        if steps >= budget:
            detail["fail"] = CRE_FAIL_BUDGET
            break
        steps += 1
        fresh = row[pos[row] < 0]
        if fresh.size:
            target = int(fresh[rng.integers(fresh.size)])
            pos[target] = plen
            path[plen] = target
            plen += 1
            unvisited_degree[row_of(target)] -= 1
            detail["extensions"] += 1
            continue
        if closes and plen < n:
            # Cycle extension: re-open the (head, tail) cycle at a
            # pivot with an unvisited neighbour, in path order.
            on_path = path[:plen]
            pivots = on_path[unvisited_degree[on_path] > 0]
            if pivots.size == 0:
                detail["fail"] = CRE_FAIL_CUT_OFF
                break
            pivot = int(pivots[rng.integers(pivots.size)])
            pivot_row = row_of(pivot)
            targets = pivot_row[pos[pivot_row] < 0]
            target = int(targets[rng.integers(targets.size)])
            i = int(pos[pivot])
            path[:plen] = np.concatenate((path[i + 1:plen], path[:i + 1]))
            pos[path[:plen]] = ramp[:plen]
            pos[target] = plen
            path[plen] = target
            plen += 1
            unvisited_degree[row_of(target)] -= 1
            detail["cycle_extensions"] += 1
            continue
        # Rotation: a random on-path neighbour of the head, excluding
        # the head's predecessor.
        pred = int(path[plen - 2]) if plen >= 2 else -1
        pivots = row[(pos[row] >= 0) & (row != pred)]
        if pivots.size == 0:
            detail["fail"] = CRE_FAIL_STRANDED
            break
        pivot = int(pivots[rng.integers(pivots.size)])
        j = int(pos[pivot])
        path[j + 1:plen] = path[j + 1:plen][::-1].copy()
        pos[path[j + 1:plen]] = ramp[j + 1:plen]
        detail["rotations"] += 1

    cycle = None
    if ok:
        cycle = path[:plen].tolist()
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
            detail["fail"] = CRE_FAIL_STRANDED
    return RunResult(
        algorithm="cre",
        success=ok,
        cycle=cycle,
        rounds=0,
        steps=steps,
        engine="fast",
        detail=detail,
    )
