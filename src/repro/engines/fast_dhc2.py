"""Fast-engine DHC2: identical cycles, estimated rounds.

Phase 1 replays exactly (same colour draws, same per-partition trees
and walk RNG streams as the CONGEST protocol — integration tests assert
the per-partition cycles match).  Phase 2's bridge selection is fully
deterministic (no randomness), so the merge sequence and final
Hamiltonian cycle are likewise identical.

Rounds: Phase 1 is computed with the exact event recursion of
:mod:`repro.engines.fast`; Phase 2 merge levels use a structural
estimate (verify/verdict handshake + convergecast + floods + tree
rebuild, each a small multiple of the class diameter), since the
event-driven CONGEST implementation's exact timing depends on queue
pacing.  Cross-engine tests bound the ratio; scaling *shape* (the
``n**delta`` exponent of Theorem 10) is unaffected.
"""

from __future__ import annotations

import math
import warnings

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.core.dhc2 import default_color_count
from repro.core.phase1 import color_at_level, colors_at_level, merge_levels
from repro.engines.fast import _FastWalk, bfs_completion_round, build_min_id_bfs_tree
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_dhc2_fast"]


def run_dhc2_fast(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
) -> RunResult:
    """Deprecated direct entry point — use ``repro.run(graph, "dhc2", engine="fast")``.

    Kept as a thin wrapper over the registry-registered implementation
    so out-of-tree scripts written against the pre-registry API keep
    working unchanged.
    """
    warnings.warn(
        "run_dhc2_fast is deprecated; use repro.run(graph, 'dhc2', engine='fast') "
        "or repro.engines.registry.REGISTRY.get('dhc2', 'fast')",
        DeprecationWarning, stacklevel=2)
    return _dhc2_fast(graph, delta=delta, k=k, seed=seed)


def _dhc2_fast(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
) -> RunResult:
    """Algorithm 3 on the fast engine (see module docstring for fidelity)."""
    n = graph.n
    colors = k if k is not None else default_color_count(n, delta)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    color_of = np.array([1 + int(rngs[v].integers(colors)) for v in range(n)], dtype=np.int64)
    classes: dict[int, list[int]] = {c: [] for c in range(1, colors + 1)}
    for v in range(n):
        classes[int(color_of[v])].append(v)

    def same_color_neighbors(v: int) -> list[int]:
        return [int(w) for w in graph.neighbors(v) if color_of[w] == color_of[v]]

    # -- Phase 1: replay every partition walk ------------------------------------
    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    phase1_start = 1 + elect_budget  # colour round + election deadline
    cycles: dict[int, list[int]] = {}
    steps = 0
    phase1_end = phase1_start
    for c, members in classes.items():
        if not members:
            return _fail(n, colors, phase1_start, "empty-partition")
        tree = build_min_id_bfs_tree(members, same_color_neighbors, root=min(members))
        if tree is None:
            return _fail(n, colors, phase1_start, "partition-disconnected")
        finish = bfs_completion_round(tree, same_color_neighbors, phase1_start)
        walk = _FastWalk(
            size=len(members),
            edges_of=lambda v: [(w, 0, 0) for w in same_color_neighbors(v)],
            rngs=rngs,
            initial_head=tree.root,
            step_budget=dra_step_budget(len(members)),
            tree_depth=max(1, tree.tree_depth),
            start_round=finish + 1,
        )
        walk.run()
        steps = max(steps, walk.steps)
        if not walk.success:
            return _fail(n, colors, walk.end_round, f"walk-{walk.fail_code}")
        cycles[c] = walk.cycle()
        phase1_end = max(phase1_end, walk.end_round + tree.eccentricity(walk.flood_initiator))

    # -- Phase 2: deterministic merges --------------------------------------------
    rounds = phase1_end
    levels = merge_levels(colors)
    adjacency_check = graph.has_edge
    for level in range(1, levels + 1):
        remaining = colors_at_level(colors, level)
        next_cycles: dict[int, list[int]] = {}
        for a_color in range(1, remaining + 1, 2):
            b_color = a_color + 1
            new_color = (a_color + 1) // 2
            a_members = cycles.get(a_color)
            if b_color > remaining:
                if a_members is None:
                    return _fail(n, colors, rounds, "missing-class")
                next_cycles[new_color] = a_members
                continue
            b_members = cycles.get(b_color)
            if a_members is None or b_members is None:
                return _fail(n, colors, rounds, "missing-class")
            merged = _merge_pair(graph, a_members, b_members, adjacency_check)
            if merged is None:
                return _fail(n, colors, rounds, "no-bridge")
            next_cycles[new_color] = merged
            rounds += _level_cost(len(merged))
        cycles = next_cycles

    final = cycles.get(1)
    ok = final is not None and len(final) == n
    if ok:
        # Normalise to start at node 0 (the congest engine's convention),
        # keeping the successor direction.
        start = final.index(0)
        final = final[start:] + final[:start]
        try:
            verify_cycle(graph, final)
        except CycleViolation:
            ok = False
    return RunResult(
        algorithm="dhc2",
        success=bool(ok),
        cycle=final if ok else None,
        rounds=rounds,
        steps=steps,
        engine="fast",
        detail={"k": colors, "levels": levels},
    )


def _level_cost(merged_size: int) -> int:
    """Structural per-merge round estimate (see module docstring)."""
    diam = diameter_budget(merged_size)
    return 24 + 8 * diam


def _merge_pair(graph: Graph, a_cycle: list[int], b_cycle: list[int], has_edge):
    """Replay the deterministic bridge selection and splice the cycles.

    Mirrors :class:`repro.core.merge.MergeMachine`: per active node ``v``
    (with successor ``u``), each partner-colour neighbour ``w`` answers
    with ``w' = succ(w)`` preferred over ``pred(w)``; ``v`` keeps the
    smallest ``w``; the winner is the smallest ``(v, w)``.
    """
    s_a, s_b = len(a_cycle), len(b_cycle)
    b_pos = {v: i for i, v in enumerate(b_cycle)}
    b_set = set(b_cycle)
    best = None  # (v, w, u, wp, direction, w_pos, v_pos)
    for v_pos, v in enumerate(a_cycle):
        u = a_cycle[(v_pos + 1) % s_a]
        local = None
        for w in graph.neighbors(v):
            w = int(w)
            if w not in b_set:
                continue
            wp_succ = b_cycle[(b_pos[w] + 1) % s_b]
            wp_pred = b_cycle[(b_pos[w] - 1) % s_b]
            if has_edge(u, wp_succ):
                cand = (w, wp_succ, 0)
            elif has_edge(u, wp_pred):
                cand = (w, wp_pred, 1)
            else:
                continue
            if local is None or cand[0] < local[0]:
                local = cand
        if local is not None:
            cand = (v, local[0], u, local[1], local[2], b_pos[local[0]], v_pos)
            if best is None or (cand[0], cand[1]) < (best[0], best[1]):
                best = cand
    if best is None:
        return None
    v, w, u, wp, direction, w_pos, v_pos = best
    if direction == 0:  # w' = succ(w): walk B backwards from w
        b_seq = [b_cycle[(w_pos - t) % s_b] for t in range(s_b)]
    else:  # w' = pred(w): keep B's orientation
        b_seq = [b_cycle[(w_pos + t) % s_b] for t in range(s_b)]
    u_pos = (v_pos + 1) % s_a
    a_seq = a_cycle[u_pos:] + a_cycle[:u_pos]  # u ... v
    return b_seq + a_seq  # w ... w' , u ... v  (closes v -> w)


def _fail(n: int, colors: int, rounds: int, reason: str) -> RunResult:
    return RunResult(
        algorithm="dhc2",
        success=False,
        cycle=None,
        rounds=rounds,
        engine="fast",
        detail={"k": colors, "levels": merge_levels(colors), "fail": reason},
    )
