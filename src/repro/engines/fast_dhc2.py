"""Fast-engine DHC2: identical cycles, estimated rounds.

Phase 1 replays exactly (same colour draws, same per-partition trees
and walk RNG streams as the CONGEST protocol — integration tests assert
the per-partition cycles match).  Phase 2's bridge selection is fully
deterministic (no randomness), so the merge sequence and final
Hamiltonian cycle are likewise identical.

Rounds: Phase 1 is computed with the exact event recursion of
:mod:`repro.engines.fast`; Phase 2 merge levels use a structural
estimate (verify/verdict handshake + convergecast + floods + tree
rebuild, each a small multiple of the class diameter), since the
event-driven CONGEST implementation's exact timing depends on queue
pacing.  Cross-engine tests bound the ratio; scaling *shape* (the
``n**delta`` exponent of Theorem 10) is unaffected.

``engine="fast"`` replays Phase 1 through the shared replay core
(:mod:`repro.engines.phase1_replay` — also what the native k-machine
DHC1/DHC2 engines consume) on the array kernel
(:mod:`repro.engines.arraywalk`) over a colour-filtered CSR built in
one vectorised pass; ``_dhc2_fast_py`` keeps the pure-Python walker
as a test-only parity oracle (formerly registered as
``engine="fast-py"``, retired after its deprecation release).
Phase 2 is deterministic and shared verbatim by both.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.core.dhc2 import default_color_count
from repro.core.phase1 import colors_at_level, merge_levels
from repro.engines.fast import _FastWalk, bfs_completion_round, build_min_id_bfs_tree
from repro.engines.phase1_replay import color_partition, replay_partition_walks
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph, csr_sources
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_dhc2_fast"]


def run_dhc2_fast(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
) -> RunResult:
    """Deprecated direct entry point — use ``repro.run(graph, "dhc2", engine="fast")``.

    Kept as a thin wrapper over the registry-registered implementation
    so out-of-tree scripts written against the pre-registry API keep
    working unchanged.
    """
    warnings.warn(
        "run_dhc2_fast is deprecated; use repro.run(graph, 'dhc2', engine='fast') "
        "or repro.engines.registry.REGISTRY.get('dhc2', 'fast')",
        DeprecationWarning, stacklevel=2)
    return _dhc2_fast(graph, delta=delta, k=k, seed=seed)


def _dhc2_fast(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
) -> RunResult:
    """Algorithm 3 with Phase 1 on the array kernel."""
    n = graph.n
    colors = k if k is not None else default_color_count(n, delta)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    color_of, sub_indptr, sub_indices, twins, alive = color_partition(
        graph, rngs, colors)

    # -- Phase 1: replay every partition walk ------------------------------------
    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    phase1_start = 1 + elect_budget  # colour round + election deadline
    p1 = replay_partition_walks(
        indptr=sub_indptr, indices=sub_indices, twins=twins, alive=alive,
        rngs=rngs, color_of=color_of, colors=colors,
        start_round=phase1_start)
    if not p1.ok:
        return _fail(n, colors, p1.fail_round, p1.fail_reason, "fast")

    return _phase2(graph, p1.cycles, colors, p1.phase1_end, p1.steps, "fast")


def _dhc2_fast_py(
    graph: Graph,
    *,
    delta: float = 0.5,
    k: int | None = None,
    seed: int = 0,
) -> RunResult:
    """Algorithm 3 on the pure-Python walker (the kernel's parity oracle)."""
    n = graph.n
    colors = k if k is not None else default_color_count(n, delta)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    color_of = np.array([1 + int(rngs[v].integers(colors)) for v in range(n)], dtype=np.int64)
    classes: dict[int, list[int]] = {c: [] for c in range(1, colors + 1)}
    for v in range(n):
        classes[int(color_of[v])].append(v)

    def same_color_neighbors(v: int) -> list[int]:
        return [int(w) for w in graph.neighbors(v) if color_of[w] == color_of[v]]

    # -- Phase 1: replay every partition walk ------------------------------------
    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    phase1_start = 1 + elect_budget  # colour round + election deadline
    cycles: dict[int, list[int]] = {}
    steps = 0
    phase1_end = phase1_start
    for c, members in classes.items():
        if not members:
            return _fail(n, colors, phase1_start, "empty-partition", "fast-py")
        tree = build_min_id_bfs_tree(members, same_color_neighbors, root=min(members))
        if tree is None:
            return _fail(n, colors, phase1_start, "partition-disconnected",
                         "fast-py")
        finish = bfs_completion_round(tree, same_color_neighbors, phase1_start)
        walk = _FastWalk(
            size=len(members),
            edges_of=lambda v: [(w, 0, 0) for w in same_color_neighbors(v)],
            rngs=rngs,
            initial_head=tree.root,
            step_budget=dra_step_budget(len(members)),
            tree_depth=max(1, tree.tree_depth),
            start_round=finish + 1,
        )
        walk.run()
        steps = max(steps, walk.steps)
        if not walk.success:
            return _fail(n, colors, walk.end_round, f"walk-{walk.fail_code}",
                         "fast-py")
        cycles[c] = walk.cycle()
        phase1_end = max(phase1_end, walk.end_round + tree.eccentricity(walk.flood_initiator))

    return _phase2(graph, cycles, colors, phase1_end, steps, "fast-py")


def _phase2(graph: Graph, cycles: dict[int, list[int]], colors: int,
            phase1_end: int, steps: int, engine: str,
            observer=None) -> RunResult:
    """Phase 2: deterministic merges (identical for both Phase-1 paths).

    ``observer(a_cycle, b_cycle, merged)``, if given, sees every
    successful pair merge in execution order without perturbing it —
    the native k-machine engine charges bridge-scan traffic there.
    """
    n = graph.n
    rounds = phase1_end
    levels = merge_levels(colors)
    keys = _edge_keys(graph)  # shared by every vectorised bridge scan
    for level in range(1, levels + 1):
        remaining = colors_at_level(colors, level)
        next_cycles: dict[int, list[int]] = {}
        for a_color in range(1, remaining + 1, 2):
            b_color = a_color + 1
            new_color = (a_color + 1) // 2
            a_members = cycles.get(a_color)
            if b_color > remaining:
                if a_members is None:
                    return _fail(n, colors, rounds, "missing-class", engine)
                next_cycles[new_color] = a_members
                continue
            b_members = cycles.get(b_color)
            if a_members is None or b_members is None:
                return _fail(n, colors, rounds, "missing-class", engine)
            merged = _merge_pair_vec(graph, a_members, b_members, keys)
            if merged is None:
                return _fail(n, colors, rounds, "no-bridge", engine)
            if observer is not None:
                observer(a_members, b_members, merged)
            next_cycles[new_color] = merged
            rounds += _level_cost(len(merged))
        cycles = next_cycles

    final = cycles.get(1)
    ok = final is not None and len(final) == n
    if ok:
        # Normalise to start at node 0 (the congest engine's convention),
        # keeping the successor direction.
        start = final.index(0)
        final = final[start:] + final[:start]
        try:
            verify_cycle(graph, final)
        except CycleViolation:
            ok = False
    return RunResult(
        algorithm="dhc2",
        success=bool(ok),
        cycle=final if ok else None,
        rounds=rounds,
        steps=steps,
        engine=engine,
        detail={"k": colors, "levels": levels},
    )


def _level_cost(merged_size: int) -> int:
    """Structural per-merge round estimate (see module docstring)."""
    diam = diameter_budget(merged_size)
    return 24 + 8 * diam


def _merge_pair(graph: Graph, a_cycle: list[int], b_cycle: list[int], has_edge):
    """Replay the deterministic bridge selection and splice the cycles.

    Mirrors :class:`repro.core.merge.MergeMachine`: per active node ``v``
    (with successor ``u``), each partner-colour neighbour ``w`` answers
    with ``w' = succ(w)`` preferred over ``pred(w)``; ``v`` keeps the
    smallest ``w``; the winner is the smallest ``(v, w)``.

    With the graph's own adjacency test (the normal case) the candidate
    scan runs vectorised over the CSR; a caller-supplied ``has_edge``
    (e.g. an ablated rule) takes the reference Python path.
    """
    if has_edge == graph.has_edge:
        return _merge_pair_vec(graph, a_cycle, b_cycle)
    return _merge_pair_py(graph, a_cycle, b_cycle, has_edge)


def _edge_keys(graph: Graph) -> np.ndarray:
    """Sorted ``src * n + dst`` keys of the directed edges (CSR order)."""
    return csr_sources(graph.indptr) * graph.n + graph.indices


def _merge_pair_vec(graph: Graph, a_cycle: list[int], b_cycle: list[int],
                    keys: np.ndarray | None = None):
    """Vectorised bridge selection: one masked scan over A's CSR rows.

    The winner is the lexicographically smallest valid ``(v, w)`` with
    ``w' = succ(w)`` preferred at that pair — exactly the selection the
    per-node Python loop makes, so both produce the same splice.
    """
    from repro.engines.arraywalk import gather_neighbors

    n = graph.n
    s_a, s_b = len(a_cycle), len(b_cycle)
    a_arr = np.asarray(a_cycle, dtype=np.int64)
    b_arr = np.asarray(b_cycle, dtype=np.int64)
    a_pos = np.empty(n, dtype=np.int64)
    a_pos[a_arr] = np.arange(s_a, dtype=np.int64)
    succ_a = np.empty(n, dtype=np.int64)
    succ_a[a_arr] = np.roll(a_arr, -1)
    in_b = np.zeros(n, dtype=bool)
    in_b[b_arr] = True
    b_pos = np.empty(n, dtype=np.int64)
    b_pos[b_arr] = np.arange(s_b, dtype=np.int64)
    b_succ = np.empty(n, dtype=np.int64)
    b_succ[b_arr] = np.roll(b_arr, -1)
    b_pred = np.empty(n, dtype=np.int64)
    b_pred[b_arr] = np.roll(b_arr, 1)

    # Directed candidate edges v -> w with v in A, w in B.
    indptr, indices = graph.indptr, graph.indices
    counts = indptr[a_arr + 1] - indptr[a_arr]
    v_e = np.repeat(a_arr, counts)
    w_e = gather_neighbors(indptr, indices, a_arr)
    keep = in_b[w_e]
    v_e, w_e = v_e[keep], w_e[keep]
    if v_e.size == 0:
        return None

    # Pair-membership tests u—w' as one searchsorted over the sorted
    # directed-edge key array (CSR order is (src, dst)-sorted already).
    if keys is None:
        keys = _edge_keys(graph)
    u_e = succ_a[v_e] * n
    present = _pairs_present(
        keys, np.concatenate((u_e + b_succ[w_e], u_e + b_pred[w_e])))
    ok_succ, ok_pred = present[:v_e.size], present[v_e.size:]
    valid = ok_succ | ok_pred
    if not valid.any():
        return None
    v_e, w_e, ok_succ = v_e[valid], w_e[valid], ok_succ[valid]
    at_v = v_e == v_e.min()
    w_at_v = w_e[at_v]
    j = int(np.argmin(w_at_v))
    v, w = int(v_e[at_v][j]), int(w_at_v[j])
    direction = 0 if bool(ok_succ[at_v][j]) else 1

    w_pos = int(b_pos[w])
    if direction == 0:  # w' = succ(w): walk B backwards from w
        b_seq = b_arr[(w_pos - np.arange(s_b, dtype=np.int64)) % s_b]
    else:  # w' = pred(w): keep B's orientation
        b_seq = np.roll(b_arr, -w_pos)
    u_pos = (int(a_pos[v]) + 1) % s_a
    a_seq = np.roll(a_arr, -u_pos)  # u ... v
    return np.concatenate((b_seq, a_seq)).tolist()  # w ... w', u ... v


def _pairs_present(sorted_keys: np.ndarray, queries: np.ndarray) -> np.ndarray:
    """Whether each query key appears in the sorted key array."""
    if sorted_keys.size == 0:
        return np.zeros(queries.shape, dtype=bool)
    slots = np.searchsorted(sorted_keys, queries)
    slots[slots == sorted_keys.size] = 0  # any in-range slot; compared next
    return sorted_keys[slots] == queries


def _merge_pair_py(graph: Graph, a_cycle: list[int], b_cycle: list[int],
                   has_edge):
    """Reference per-node scan, kept for ablations with a custom rule."""
    s_a, s_b = len(a_cycle), len(b_cycle)
    b_pos = {v: i for i, v in enumerate(b_cycle)}
    b_set = set(b_cycle)
    best = None  # (v, w, u, wp, direction, w_pos, v_pos)
    for v_pos, v in enumerate(a_cycle):
        u = a_cycle[(v_pos + 1) % s_a]
        local = None
        for w in graph.neighbors(v):
            w = int(w)
            if w not in b_set:
                continue
            wp_succ = b_cycle[(b_pos[w] + 1) % s_b]
            wp_pred = b_cycle[(b_pos[w] - 1) % s_b]
            if has_edge(u, wp_succ):
                cand = (w, wp_succ, 0)
            elif has_edge(u, wp_pred):
                cand = (w, wp_pred, 1)
            else:
                continue
            if local is None or cand[0] < local[0]:
                local = cand
        if local is not None:
            cand = (v, local[0], u, local[1], local[2], b_pos[local[0]], v_pos)
            if best is None or (cand[0], cand[1]) < (best[0], best[1]):
                best = cand
    if best is None:
        return None
    v, w, u, wp, direction, w_pos, v_pos = best
    if direction == 0:  # w' = succ(w): walk B backwards from w
        b_seq = [b_cycle[(w_pos - t) % s_b] for t in range(s_b)]
    else:  # w' = pred(w): keep B's orientation
        b_seq = [b_cycle[(w_pos + t) % s_b] for t in range(s_b)]
    u_pos = (v_pos + 1) % s_a
    a_seq = a_cycle[u_pos:] + a_cycle[:u_pos]  # u ... v
    return b_seq + a_seq  # w ... w' , u ... v  (closes v -> w)


def _fail(n: int, colors: int, rounds: int, reason: str,
          engine: str = "fast") -> RunResult:
    return RunResult(
        algorithm="dhc2",
        success=False,
        cycle=None,
        rounds=rounds,
        engine=engine,
        detail={"k": colors, "levels": merge_levels(colors), "fail": reason},
    )
