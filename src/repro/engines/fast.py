"""Step-level fast engine: the same algorithms without per-message cost.

For scaling experiments the message-level simulator is too slow (a
single rotation broadcast is Θ(n) Python-object messages).  This engine
executes the *identical* algorithm — same leader, same spanning tree,
same per-node RNG streams, same unused-edge bookkeeping, same decision
order — and advances the round counter by the deterministic schedule
the CONGEST protocol follows:

* flood-min election: ``diameter_budget(n)`` rounds (fixed deadline);
* BFS build: exact per-node event recursion (join wave, response wave,
  done convergecast, commit wave) — the same rounds the message-level
  :class:`~repro.primitives.bfs.BfsTree` takes;
* rotation walk: 1 round per extension, ``2 * tree_depth + 3`` rounds
  per rotation (flood + quiescence wait), 2 per ported retry, and the
  final win/fail flood costs the initiator's tree eccentricity.

Integration tests assert that, seed for seed, this engine and the
CONGEST engine return the *same cycle, step count, and round count* —
which is what licenses using it for the large-n benchmark sweeps.

Two implementations share this contract.  ``engine="fast"`` runs on
the array-native CSR kernel (:mod:`repro.engines.arraywalk`):
dead-edge bitmask, int64 path/position arrays, vectorised tree
timing.  The original pure-Python walker below (``_dra_fast_py`` /
:class:`_FastWalk`) spent its one deprecation release registered as
``engine="fast-py"`` and is now a *test-only parity oracle*: no
longer in the registry, but importable so
``tests/test_engine_parity.py`` can assert the kernel remains
decision-identical to it seed for seed.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_dra_fast", "SpanningTree", "build_min_id_bfs_tree", "bfs_completion_round"]


class SpanningTree:
    """The min-id BFS tree both engines build, with exact timing data."""

    __slots__ = ("root", "parent", "depth", "children", "tree_depth", "order")

    def __init__(self, root: int, parent: dict[int, int], depth: dict[int, int],
                 children: dict[int, list[int]], order: list[int]):
        self.root = root
        self.parent = parent
        self.depth = depth
        self.children = children
        self.tree_depth = max(depth.values()) if depth else 0
        self.order = order  # BFS visit order (for deterministic post-order walks)

    def eccentricity(self, v: int) -> int:
        """Largest tree distance from ``v`` (cost of a flood it initiates)."""
        # dist(v, w) in a tree = depth(v) + depth(w) - 2 * depth(lca); a
        # two-pass computation is overkill here — tree sizes are the
        # participant counts, so a direct BFS over the tree is fine.
        adjacency: dict[int, list[int]] = {u: list(self.children[u]) for u in self.depth}
        for u, p in self.parent.items():
            if p >= 0:
                adjacency[u].append(p)
        dist = {v: 0}
        frontier = [v]
        far = 0
        while frontier:
            nxt = []
            for u in frontier:
                for w in adjacency[u]:
                    if w not in dist:
                        dist[w] = dist[u] + 1
                        far = max(far, dist[w])
                        nxt.append(w)
            frontier = nxt
        return far


def build_min_id_bfs_tree(members: list[int], neighbors_of, root: int) -> SpanningTree | None:
    """Rebuild the tree :class:`~repro.primitives.bfs.BfsTree` would build.

    ``neighbors_of(v)`` must yield the *participating* neighbours in
    ascending id order.  Returns ``None`` if some member is unreachable
    from ``root`` (the distributed BFS would hit its deadline).
    """
    member_set = set(members)
    depth = {root: 0}
    parent = {root: -1}
    children: dict[int, list[int]] = {v: [] for v in members}
    order = [root]
    frontier = [root]
    while frontier:
        nxt = []
        for v in sorted(frontier):
            for w in neighbors_of(v):
                if w in member_set and w not in depth:
                    depth[w] = depth[v] + 1
                    parent[w] = v
                    nxt.append(w)
        frontier = nxt
        order.extend(sorted(frontier))
    if len(depth) != len(member_set):
        return None
    # The distributed protocol picks the min-id among shallowest offers.
    for w in members:
        if w == root:
            continue
        best = min(u for u in neighbors_of(w) if u in member_set and depth[u] == depth[w] - 1)
        parent[w] = best
    for w in members:
        if w != root:
            children[parent[w]].append(w)
    for v in children:
        children[v].sort()
    return SpanningTree(root, parent, depth, children, order)


def bfs_completion_round(tree: SpanningTree, neighbors_of, start_round: int) -> int:
    """Exact round at which the distributed BFS root finishes (sends commit).

    Mirrors :class:`~repro.primitives.bfs.BfsTree`: ``join(v) = start +
    depth(v)``; responses from peer ``w`` arrive at ``join(w) + 1``;
    ``done(v) = max(join(v) + 1, responses, max_children(done) + 1)``.
    """
    member_depth = tree.depth
    done: dict[int, int] = {}
    # Children finish before parents; reverse BFS order is a post-order.
    for v in reversed(tree.order):
        join_v = start_round + member_depth[v]
        resp = 0
        for w in neighbors_of(v):
            if w in member_depth and w != tree.parent[v]:
                resp = max(resp, start_round + member_depth[w] + 1)
        kid = max((done[c] + 1 for c in tree.children[v]), default=0)
        done[v] = max(join_v + 1, resp, kid)
    return done[tree.root]


def run_dra_fast(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
) -> RunResult:
    """Deprecated direct entry point — use ``repro.run(graph, "dra", engine="fast")``.

    Kept as a thin wrapper over the registry-registered implementation
    so out-of-tree scripts written against the pre-registry API keep
    working unchanged.
    """
    warnings.warn(
        "run_dra_fast is deprecated; use repro.run(graph, 'dra', engine='fast') "
        "or repro.engines.registry.REGISTRY.get('dra', 'fast')",
        DeprecationWarning, stacklevel=2)
    return _dra_fast(graph, seed=seed, step_budget=step_budget)


def _dra_fast(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
) -> RunResult:
    """Algorithm 1 on the array kernel; see module docstring for fidelity."""
    from repro.engines.arraywalk import ArrayWalk, build_array_tree, edge_twins

    n = graph.n
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    election_rounds = diameter_budget(n)
    indptr, indices = graph.indptr, graph.indices
    tree = build_array_tree(indptr, indices,
                            np.arange(n, dtype=np.int64), root=0) if n else None
    if tree is None:
        deadline = election_rounds + 3 * diameter_budget(n) + 8
        return RunResult("dra", False, None, deadline, engine="fast",
                         detail={"fail_codes": ["bfs-unreachable"]})

    walk = ArrayWalk(
        indptr=indptr,
        indices=indices,
        twins=edge_twins(indptr, indices),
        alive=np.ones(indices.size, dtype=bool),
        rngs=rngs,
        size=n,
        initial_head=tree.root,
        step_budget=budget,
        tree_depth=max(1, tree.tree_depth),
        start_round=tree.completion_round(election_rounds) + 1,
    )
    walk.run()
    end_round = walk.end_round + tree.eccentricity(walk.flood_initiator)
    return _dra_result(graph, walk, end_round, engine="fast")


def _dra_fast_py(
    graph: Graph,
    *,
    seed: int = 0,
    step_budget: int | None = None,
) -> RunResult:
    """Algorithm 1 on the pure-Python walker (the kernel's parity oracle)."""
    n = graph.n
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    seeds = np.random.SeedSequence(seed).spawn(n) if n else []
    rngs = [np.random.default_rng(s) for s in seeds]

    election_rounds = diameter_budget(n)
    members = list(range(n))
    tree = build_min_id_bfs_tree(members, graph.neighbor_list, root=0) if n else None
    if tree is None:
        deadline = election_rounds + 3 * diameter_budget(n) + 8
        return RunResult("dra", False, None, deadline, engine="fast-py",
                         detail={"fail_codes": ["bfs-unreachable"]})

    finish = bfs_completion_round(tree, graph.neighbor_list, election_rounds)
    walk = _FastWalk(
        size=n,
        edges_of=lambda v: [(w, 0, 0) for w in graph.neighbor_list(v)],
        rngs=rngs,
        initial_head=tree.root,
        step_budget=budget,
        tree_depth=max(1, tree.tree_depth),
        start_round=finish + 1,
    )
    walk.run()
    end_round = walk.end_round + tree.eccentricity(walk.flood_initiator)
    return _dra_result(graph, walk, end_round, engine="fast-py")


def _dra_result(graph: Graph, walk, end_round: int, *, engine: str) -> RunResult:
    """Shared verification + RunResult assembly for both DRA walkers."""
    cycle = None
    ok = walk.success
    if ok:
        cycle = walk.cycle()
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    return RunResult(
        algorithm="dra",
        success=ok,
        cycle=cycle,
        rounds=end_round,
        steps=walk.steps,
        engine=engine,
        detail={"fail_codes": [walk.fail_code] if walk.fail_code else [],
                "rotations": walk.rotations, "extensions": walk.extensions,
                "retries": walk.retries},
    )


class _FastWalk:
    """Centralised replay of :class:`repro.core.rotation.RotationWalk`.

    ``edges_of(v)`` must list virtual-edge triples ``(peer, my_port,
    peer_port)`` in exactly the order the distributed walk builds them,
    and ``rngs[v]`` must be the same generator stream — those two
    invariants are what make the engines decision-identical.
    """

    def __init__(self, *, size, edges_of, rngs, initial_head, step_budget,
                 tree_depth, start_round, ported=False, latency=1):
        self.size = size
        self.edges_of = edges_of
        self.rngs = rngs
        self.initial_head = initial_head
        self.step_budget = step_budget
        self.tree_depth = tree_depth
        self.round = start_round
        self.ported = ported
        self.latency = max(1, latency)

        self.success = False
        self.fail_code = 0
        self.steps = 0
        self.rotations = 0
        self.extensions = 0
        self.retries = 0
        self.end_round = start_round
        self.flood_initiator = initial_head

        self._edges: dict[int, list[tuple[int, int, int]]] = {}
        self._dead: set[tuple[int, int, int, int]] = set()  # (owner, peer, my, their)
        self._path: list[int] = []
        self._pos: dict[int, int] = {}
        self._free_port: dict[int, int | None] = {}
        self._bound: dict[int, tuple[int, int]] = {}  # vid -> (pred_port, succ_port)

    # -- driver --------------------------------------------------------------------

    def run(self) -> None:
        from repro.core.rotation import FAIL_BUDGET, FAIL_NO_EDGES, FAIL_TOO_SMALL

        if self.size < 3:
            self._fail(FAIL_TOO_SMALL, self.initial_head)
            return
        head = self.initial_head
        self._path = [head]
        self._pos[head] = 0
        self._free_port[head] = None
        step = 1
        while True:
            if step > self.step_budget:
                self._fail(FAIL_BUDGET, head)
                return
            edge = self._pick(head)
            if edge is None:
                self._fail(FAIL_NO_EDGES, head)
                return
            self.steps = step
            target, my_port, their_port = edge
            self._kill(head, target, my_port, their_port)
            if self._free_port.get(head, 0) is None:
                self._free_port[head] = (1 - my_port) if self.ported else 0

            if target not in self._pos:
                # Extension: 1 round (send; the new head acts next round).
                self._grow(head, target, my_port, their_port)
                head = target
                self.round += 1
                self.extensions += 1
            else:
                outcome, head = self._hit(head, target, my_port, their_port)
                if outcome == "win":
                    self.success = True
                    self.flood_initiator = target
                    self.end_round = self.round + 1
                    return
                if outcome == "retry":
                    self.round += 2
                    self.retries += 1
                else:  # rotation: flood at round+1, head waits quiescence
                    self.round += 2 * self.tree_depth * self.latency + 3
                    self.rotations += 1
            step += 1

    # -- walk mechanics -------------------------------------------------------------

    def _edge_list(self, v: int) -> list[tuple[int, int, int]]:
        if v not in self._edges:
            self._edges[v] = self.edges_of(v)
        return self._edges[v]

    def _pick(self, head: int) -> tuple[int, int, int] | None:
        free = self._free_port.get(head, 0)
        usable = [
            e for e in self._edge_list(head)
            if (head, *e) not in self._dead and (free is None or e[1] == free)
        ]
        if not usable:
            return None
        return usable[int(self.rngs[head].integers(len(usable)))]

    def _kill(self, a: int, b: int, my_port: int, their_port: int) -> None:
        self._dead.add((a, b, my_port, their_port))
        self._dead.add((b, a, their_port, my_port))

    def _grow(self, head: int, target: int, my_port: int, their_port: int) -> None:
        self._bound.setdefault(head, (0, 0))
        pred_port, _ = self._bound.get(head, (0, 0))
        self._bound[head] = (pred_port, my_port)
        self._pos[target] = len(self._path)
        self._path.append(target)
        self._bound[target] = (their_port, 0)
        self._free_port[target] = (1 - their_port) if self.ported else 0

    def _hit(self, head: int, target: int, my_port: int, their_port: int):
        """Progress landed on an on-path node: closure, retry, or rotation."""
        h = len(self._path)  # head's 1-based cycindex
        tpos = self._pos[target]
        tail = tpos == 0
        t_pred_port, t_succ_port = self._bound.get(target, (0, 0))
        tail_open = tail and (not self.ported or their_port == self._free_port[target])

        if tail_open and h == self.size:
            self._bound[target] = (their_port, t_succ_port)
            return "win", head
        if self.ported and not tail and their_port != t_succ_port:
            return "retry", head
        # Rotation at j = tpos + 1 (1-based), head at h: reverse positions
        # j+1..h, i.e. list indices tpos+1 .. h-1.
        seg = self._path[tpos + 1:]
        seg.reverse()
        self._path[tpos + 1:] = seg
        for offset, v in enumerate(seg):
            self._pos[v] = tpos + 1 + offset
        # Port bookkeeping mirrors RotationWalk._on_rotation.
        if self.ported:
            self._rotate_ports(target, their_port, head, my_port, seg, tail)
        new_head = self._path[-1]
        self._free_port.setdefault(new_head, 0)
        return "rotate", new_head

    def _rotate_ports(self, target, their_port, old_head, my_port, seg, tail) -> None:
        t_pred, t_succ = self._bound.get(target, (0, 0))
        if tail:
            self._free_port[target] = 1 - their_port
        self._bound[target] = (t_pred, their_port)
        degenerate = len(seg) == 1  # old head hit its own predecessor
        for v in seg:
            p, s = self._bound.get(v, (0, 0))
            if v == old_head and degenerate:
                self._bound[v] = (my_port, 0)
                self._free_port[v] = p
            elif v == old_head:
                self._bound[v] = (my_port, p)
            elif v == seg[-1]:  # the new head: pred-side port freed
                self._bound[v] = (s, 0)
                self._free_port[v] = p
            else:
                self._bound[v] = (s, p)

    def _fail(self, code: int, at: int) -> None:
        self.fail_code = code
        self.flood_initiator = at
        self.end_round = self.round

    def cycle(self) -> list[int]:
        return list(self._path)
