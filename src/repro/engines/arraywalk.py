"""Array-native execution kernel: CSR rotation walks and tree timing.

This module is the step-level engines' hot core, rewritten on raw CSR
buffers (:attr:`repro.graphs.adjacency.Graph.indptr` /
:attr:`~repro.graphs.adjacency.Graph.indices`).  The pure-Python
walker (:class:`repro.engines.fast._FastWalk`) scans a Python edge
list and a dead-edge *set* on every step; at n=2048 that scan is the
dominant sweep cost.  Here the same walk runs on:

* a **dead-edge bitmask** over the directed CSR entries, with a
  precomputed ``twin`` table so killing an undirected edge is two
  O(1) stores (no reverse-slice search);
* **int64 path/position arrays**, so a rotation is one slice reversal
  plus one fancy-indexed position update instead of a Python loop;
* **vectorised tree construction** (:class:`ArrayTree`): frontier BFS,
  the min-id parent rule, the BFS completion-round recursion, and tree
  eccentricities all run as whole-level numpy operations.

RNG-parity contract
-------------------
The kernel consumes the *same per-node RNG streams in the same
decision order* as the CONGEST protocol and the pure-Python walker:
at each step the head ``v`` draws exactly one
``rngs[v].integers(k)`` where ``k`` is the count of its remaining
(non-dead) edges, listed in sorted CSR order — the same count and
order the distributed walk sees.  That invariant is what makes the
``fast`` engine cycle/step/round-identical to ``congest`` and
``fast-py`` (enforced by the registry ``parity`` declarations and
``tests/test_engine_parity.py``).

CSR invariants the kernel relies on
-----------------------------------
* every row slice ``indices[indptr[v]:indptr[v+1]]`` is sorted
  ascending (true for :class:`~repro.graphs.adjacency.Graph` and
  preserved by :func:`filtered_csr` masking);
* the CSR is *member-closed* for the walk/tree at hand: every listed
  neighbour of a participant is itself a participant (trivially true
  for the full graph; true per colour class for the same-colour CSR,
  since colour classes partition the nodes);
* the directed entries come in reverse pairs, so the ``twin``
  permutation (edge ``u→v`` ↔ ``v→u``) is well defined.

A new algorithm targets the kernel by building (or filtering) a CSR,
spawning per-node generators from one ``SeedSequence``, and driving
:class:`ArrayWalk` / :class:`ArrayTree`; see ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import contextlib
from typing import Callable

import numpy as np

from repro.graphs.adjacency import csr_gather, csr_sources

__all__ = [
    "ArrayTree",
    "ArrayWalk",
    "build_array_tree",
    "edge_twins",
    "filtered_csr",
    "gather_neighbors",
    "observe_walks",
]


#: Active kernel observers; see :func:`observe_walks`.
_walk_observers: list[Callable[["ArrayWalk"], None]] = []


@contextlib.contextmanager
def observe_walks(callback: Callable[["ArrayWalk"], None]):
    """Kernel-level inspection hook: see every completed walk.

    Within the context, ``callback(walk)`` fires after each
    :meth:`ArrayWalk.run` finishes (success or failure), in execution
    order — e.g. DHC2's Phase-1 partition walks arrive in colour
    order 1..K.  Ablation studies use this to capture intermediate
    walk state (paths, step counts) from a normal ``repro.run``
    dispatch instead of re-deriving partitions by hand; the walk is
    live kernel state, so observers must not mutate it.  The cost is
    one list check per *walk*, not per step — negligible.
    """
    _walk_observers.append(callback)
    try:
        yield
    finally:
        _walk_observers.remove(callback)


#: Multi-row CSR gather; lives beside the CSR structure itself.
gather_neighbors = csr_gather


def edge_twins(indptr: np.ndarray, indices: np.ndarray) -> np.ndarray:
    """Reverse-orientation permutation of the directed CSR entries.

    ``twins[i]`` is the position of edge ``v→u`` given that position
    ``i`` holds ``u→v``.  Sorting the directed edge list by
    ``(dst, src)`` visits exactly the reverse partners in ``(src,
    dst)`` order, so one lexsort yields the whole table.
    """
    return np.lexsort((csr_sources(indptr), indices))


def filtered_csr(indptr: np.ndarray, indices: np.ndarray,
                 keep: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """CSR with only the directed entries where ``keep`` is True.

    ``keep`` is a boolean mask parallel to ``indices``.  Row order (and
    hence per-row sortedness) is preserved.  The caller is responsible
    for keeping the mask symmetric (keep ``u→v`` iff ``v→u``) so the
    result is still an undirected CSR.
    """
    n = len(indptr) - 1
    src = csr_sources(indptr)
    new_indices = indices[keep]
    new_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(src[keep], minlength=n), out=new_indptr[1:])
    return new_indptr, new_indices


class ArrayTree:
    """Vectorised replay of the min-id BFS spanning tree.

    Produces the same tree (root, parents, depths) as
    :func:`repro.engines.fast.build_min_id_bfs_tree` and the same
    timing quantities (:meth:`completion_round`,
    :meth:`eccentricity`) as the pure-Python helpers, computed with
    whole-level numpy operations over the CSR.
    """

    __slots__ = ("root", "depth", "parent", "tree_depth", "members",
                 "_indptr", "_indices")

    def __init__(self, root: int, depth: np.ndarray, parent: np.ndarray,
                 tree_depth: int, members: np.ndarray,
                 indptr: np.ndarray, indices: np.ndarray):
        self.root = root
        self.depth = depth          # full-id-space, -1 outside the tree
        self.parent = parent        # full-id-space, -1 at root / outside
        self.tree_depth = tree_depth
        self.members = members      # sorted participant ids
        self._indptr = indptr
        self._indices = indices

    def completion_round(self, start_round: int) -> int:
        """Round at which the distributed BFS root sends commit."""
        return int(self.completion_times(start_round)[self.root])

    def completion_times(self, start_round: int) -> np.ndarray:
        """Per-member round at which the done-report leaves each node.

        The same recursion as
        :func:`repro.engines.fast.bfs_completion_round` — ``done(v) =
        max(join(v) + 1, peer responses, children done + 1)`` —
        evaluated level by level from the deepest up, with the peer
        response term computed as one masked scatter-max over the
        member edges.  The full vector (meaningful at member indices)
        is what the native k-machine engine's traffic model needs; the
        root's entry is the commit round the fast engines use.
        """
        members, depth, parent = self.members, self.depth, self.parent
        n = len(self._indptr) - 1
        counts = self._indptr[members + 1] - self._indptr[members]
        srcs = np.repeat(members, counts)
        dsts = gather_neighbors(self._indptr, self._indices, members)
        # resp(v) = max over non-parent member neighbours w of
        # (start + depth(w) + 1); 0 when v has no such neighbour.
        peer = dsts != parent[srcs]
        respd = np.full(n, np.iinfo(np.int64).min, dtype=np.int64)
        np.maximum.at(respd, srcs[peer], depth[dsts[peer]])
        resp = np.where(respd >= 0, start_round + respd + 1, 0)

        done = np.zeros(n, dtype=np.int64)
        kid = np.zeros(n, dtype=np.int64)
        by_depth = members[np.argsort(depth[members], kind="stable")]
        level_sizes = np.bincount(depth[members], minlength=self.tree_depth + 1)
        stops = np.cumsum(level_sizes)
        for d in range(self.tree_depth, -1, -1):
            level = by_depth[stops[d] - level_sizes[d]:stops[d]]
            done[level] = np.maximum(
                np.maximum(start_round + d + 1, resp[level]), kid[level])
            if d > 0:
                np.maximum.at(kid, parent[level], done[level] + 1)
        return done

    def eccentricity(self, v: int) -> int:
        """Largest tree distance from ``v`` (cost of a flood it starts)."""
        kids = self.members[self.members != self.root]
        if kids.size == 0:
            return 0
        src = np.concatenate((kids, self.parent[kids]))
        dst = np.concatenate((self.parent[kids], kids))
        order = np.argsort(src, kind="stable")
        src, dst = src[order], dst[order]
        n = len(self._indptr) - 1
        tree_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(src, minlength=n), out=tree_indptr[1:])
        seen = np.zeros(n, dtype=bool)
        seen[v] = True
        frontier = np.array([v], dtype=np.int64)
        far = 0
        while True:
            nbrs = gather_neighbors(tree_indptr, dst, frontier)
            nbrs = np.unique(nbrs[~seen[nbrs]])
            if nbrs.size == 0:
                return far
            seen[nbrs] = True
            frontier = nbrs
            far += 1


def build_array_tree(indptr: np.ndarray, indices: np.ndarray,
                     members: np.ndarray, root: int) -> ArrayTree | None:
    """Build the min-id BFS tree over ``members``, or ``None`` if the
    member subgraph is disconnected (the distributed BFS would hit its
    deadline).

    The CSR must be member-closed (see module docstring).  Matches
    :func:`repro.engines.fast.build_min_id_bfs_tree`: BFS depths from
    ``root``, then each non-root member's parent is its *minimum-id*
    neighbour one level up — the offer the distributed protocol keeps.
    """
    n = len(indptr) - 1
    depth = np.full(n, -1, dtype=np.int64)
    depth[root] = 0
    frontier = np.array([root], dtype=np.int64)
    reached = 1
    d = 0
    while frontier.size:
        nbrs = gather_neighbors(indptr, indices, frontier)
        fresh = np.unique(nbrs[depth[nbrs] < 0])
        if fresh.size == 0:
            break
        d += 1
        depth[fresh] = d
        reached += fresh.size
        frontier = fresh
    if reached != members.size:
        return None

    counts = indptr[members + 1] - indptr[members]
    srcs = np.repeat(members, counts)
    dsts = gather_neighbors(indptr, indices, members)
    up = depth[dsts] == depth[srcs] - 1
    parent = np.full(n, n, dtype=np.int64)  # sentinel above any id
    np.minimum.at(parent, srcs[up], dsts[up])
    parent[parent == n] = -1
    parent[root] = -1
    return ArrayTree(root, depth, parent, d, members, indptr, indices)


class ArrayWalk:
    """The rotation walk of Algorithm 1 on CSR buffers.

    Decision-identical to :class:`repro.engines.fast._FastWalk` in its
    unported mode (the mode both step-level engines use): same RNG
    draws, same edge kills, same extension/rotation/win sequence, same
    round accounting and failure codes.  The ported (DHC1 virtual
    walk) variant stays on the Python walker — port bookkeeping is
    per-edge state the bitmask does not model.

    Parameters
    ----------
    indptr / indices:
        The walk's CSR (full graph, or a colour-filtered view).
    twins:
        Reverse-orientation table from :func:`edge_twins` for this CSR.
    alive:
        Boolean mask parallel to ``indices``; killed (traversed) edges
        are flipped off in both orientations.  Shared across walks on
        disjoint member sets (the DHC2 colour classes).
    rngs:
        Per-node generators, indexed by *original* node id.
    size:
        Participant count — the cycle length a win requires.
    """

    __slots__ = ("size", "rngs", "initial_head", "step_budget", "tree_depth",
                 "round", "latency", "success", "fail_code", "steps",
                 "rotations", "extensions", "retries", "end_round",
                 "flood_initiator", "trace", "_indptr", "_indices", "_twins",
                 "_alive", "_path", "_pos", "_plen")

    def __init__(self, *, indptr, indices, twins, alive, rngs, size,
                 initial_head, step_budget, tree_depth, start_round,
                 latency=1, trace=None):
        self.size = size
        self.rngs = rngs
        self.initial_head = initial_head
        self.step_budget = step_budget
        self.tree_depth = tree_depth
        self.round = start_round
        self.latency = max(1, latency)

        self.success = False
        self.fail_code = 0
        self.steps = 0
        self.rotations = 0
        self.extensions = 0
        self.retries = 0  # unported walks never retry; kept for RunResult parity
        self.end_round = start_round
        self.flood_initiator = initial_head
        #: Optional per-step endpoint log: ``(head, target)`` appended
        #: for every progress message the walk sends, in step order.
        #: The native k-machine engine feeds this to its link ledger;
        #: ``None`` (the default) keeps the hot loop branch-only.
        self.trace = trace

        self._indptr = indptr
        self._indices = indices
        self._twins = twins
        self._alive = alive
        self._path = np.empty(size, dtype=np.int64)
        self._pos = np.full(len(indptr) - 1, -1, dtype=np.int64)
        self._plen = 0

    def run(self) -> None:
        self._run()
        for callback in _walk_observers:
            callback(self)

    def _run(self) -> None:
        # Lazy: the fail codes live beside the CONGEST walk, and
        # importing that module drags in the simulator substrate.
        from repro.core.rotation import FAIL_BUDGET, FAIL_NO_EDGES, FAIL_TOO_SMALL

        if self.size < 3:
            self._fail(FAIL_TOO_SMALL, self.initial_head)
            return
        indices, twins, alive = self._indices, self._twins, self._alive
        path, pos, rngs = self._path, self._pos, self.rngs
        # Hot-loop locals: Python-int row pointers (cheaper lookups than
        # numpy scalars), a preallocated position ramp for rotations,
        # and the per-step constants.
        row = self._indptr.tolist()
        ramp = np.arange(self.size, dtype=np.int64)
        size, budget = self.size, self.step_budget
        rotation_cost = 2 * self.tree_depth * self.latency + 3
        trace = self.trace

        head = self.initial_head
        path[0] = head
        pos[head] = 0
        plen = 1
        step = 1
        while True:
            if step > budget:
                self._plen = plen
                self._fail(FAIL_BUDGET, head)
                return
            start = row[head]
            usable = alive[start:row[head + 1]].nonzero()[0]
            if usable.size == 0:
                self._plen = plen
                self._fail(FAIL_NO_EDGES, head)
                return
            slot = start + usable[rngs[head].integers(usable.size)]
            target = int(indices[slot])
            alive[slot] = False
            alive[twins[slot]] = False
            self.steps = step
            if trace is not None:
                trace.append((head, target))

            tpos = int(pos[target])
            if tpos < 0:
                # Extension: 1 round (send; the new head acts next round).
                pos[target] = plen
                path[plen] = target
                plen += 1
                head = target
                self.round += 1
                self.extensions += 1
            elif tpos == 0 and plen == size:
                # Closure: the head hit the open tail with a full path.
                self._plen = plen
                self.success = True
                self.flood_initiator = target
                self.end_round = self.round + 1
                return
            else:
                # Rotation at j = tpos + 1: reverse path positions
                # tpos+1 .. plen-1; the far end becomes the new head.
                lo = tpos + 1
                path[lo:plen] = path[lo:plen][::-1].copy()
                pos[path[lo:plen]] = ramp[lo:plen]
                head = int(path[plen - 1])
                self.round += rotation_cost
                self.rotations += 1
            step += 1

    def _fail(self, code: int, at: int) -> None:
        self.fail_code = code
        self.flood_initiator = at
        self.end_round = self.round

    def cycle(self) -> list[int]:
        return self._path[:self._plen].tolist()
