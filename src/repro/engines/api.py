"""The execution-layer contract: what it means to be an engine.

Every algorithm in this library can be executed by one or more
*engines* — interchangeable back ends that make different
fidelity/speed trade-offs while returning the same
:class:`~repro.engines.results.RunResult` shape:

``congest``
    The message-level simulator (:mod:`repro.congest`): every message
    materialised, every model rule enforced.  Ground truth, slow.
``fast``
    The step-level replay (:mod:`repro.engines.fast`): identical
    algorithmic decisions and RNG streams, rounds advanced by the
    deterministic schedule the CONGEST protocol follows.  Used for
    large-n sweeps.
``sequential``
    Plain centralized solvers (:mod:`repro.sequential`): no round
    accounting at all, useful as oracles and lower-bound comparators.

An :class:`EngineSpec` is one registered ``(algorithm, engine)`` pair
plus its declared capabilities — which keyword arguments the runner
accepts, whether the execution can be converted to the k-machine model,
whether it can audit per-node memory, and which result fields are
guaranteed seed-for-seed identical to the congest reference.  The
capabilities are what the layers above dispatch on: the CLI filters
flags through ``supported_kwargs``, ``engine="auto"`` resolution picks
the fastest engine that supports everything the caller asked for, and
:mod:`repro.kmachine.simulation` consults ``kmachine_convertible``
instead of an algorithm-name allowlist.

Runners are referenced by dotted path (``"module:attribute"``) and
imported on first call, so building a registry never drags in the whole
simulator substrate.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Protocol, runtime_checkable

from repro.engines.results import RunResult

__all__ = ["Engine", "EngineSpec", "ENGINE_PRIORITY"]

#: ``engine="auto"`` preference order (higher wins): the array-kernel
#: step-level engine when it can honour the request, the batch-major
#: kernel just below it (a single-trial ``repro.run`` call gains
#: nothing from batching, so ``auto`` prefers plain ``fast``; the
#: harness opts into ``fast-batch`` explicitly via ``batch_size``),
#: the message-level simulator when full CONGEST fidelity (or a
#: capability only it has, e.g. ``audit_memory`` / ``fault_plan``) is
#: needed, the native k-machine simulator when the caller asks for
#: machine-model accounting (``k_machines`` / ``link_words`` steer
#: onto it), and sequential solvers as a last resort.
ENGINE_PRIORITY = {"fast": 30, "fast-batch": 25, "congest": 20,
                   "async": 17, "kmachine": 15, "sequential": 10}


@runtime_checkable
class Engine(Protocol):
    """A callable that executes one algorithm on one graph."""

    def __call__(self, graph, *, seed: int = 0, **kwargs: Any) -> RunResult:
        ...


@dataclass(frozen=True)
class EngineSpec:
    """One registered ``(algorithm, engine)`` pair with capabilities.

    Attributes
    ----------
    algorithm / engine:
        The registry key, e.g. ``("dhc2", "fast")``.
    runner:
        The :class:`Engine` callable, or a lazy ``"module:attribute"``
        dotted path resolved on first use.
    batch_runner:
        Optional batched entry point ``run_batch(graphs, *, seeds,
        **kwargs) -> list[RunResult]`` (callable or dotted path)
        executing many independent same-n trials in shared kernel
        passes.  Declaring one is the ``batched`` capability the
        harness dispatches on; results must be seed-for-seed identical
        to calling ``runner`` once per ``(graph, seed)`` pair.
    supported_kwargs:
        Keyword arguments (beyond ``graph`` and ``seed``) the runner
        accepts; anything else raises at dispatch time.
    kmachine_convertible:
        True for fully-distributed CONGEST runners that accept a
        ``network_hook`` — the precondition for the Conversion Theorem
        machinery in :mod:`repro.kmachine.simulation`.
    audits_memory:
        True when the runner can record per-node peak state
        (``audit_memory=True``).
    parity:
        Result fields (``"cycle"``, ``"steps"``, ``"rounds"``)
        guaranteed seed-for-seed identical to the algorithm's
        *reference* engine — ``congest`` where one is registered,
        else ``sequential`` — on successful runs (failure paths may
        account partial work differently).  Empty for reference
        engines themselves and for engines with no reference
        counterpart; every non-empty declaration is enforced by
        ``tests/test_engine_parity.py``'s registry parity gate.
    async_capable:
        True when the runner can execute on the asynchronous
        event-queue engine (:mod:`repro.congest.async_engine`) via a
        ``NetworkModel`` with ``mode="async"`` — latency
        distributions, message loss/reordering, churn.  Declaring it
        carries a contract: at unit latency with no faults and no
        churn the async execution must be seed-for-seed identical to
        the synchronous congest reference
        (``tests/test_async_engine.py``'s registry gate enforces it).
    jit:
        True when the runner dispatches through the optional compiled
        kernels in :mod:`repro.engines._jit` under ``REPRO_JIT=1``
        (results stay bitwise identical to the numpy path either way;
        purely informational — ``repro engines`` lists it).
    threads:
        True when the runner's compiled kernels have prange-over-lanes
        variants that ``REPRO_JIT_THREADS=N`` runs on N cores (implies
        ``jit``; results stay bitwise identical — see the threading
        section of :mod:`repro.engines._jit`).  The CLI's sweep
        parallelism rule consults it: an active threaded kernel makes
        auto-batching beat process fan-out.
    priority:
        ``engine="auto"`` preference (higher wins); defaults to
        :data:`ENGINE_PRIORITY` for the standard engine names.
    summary:
        One line for ``repro engines`` style listings and docs.
    """

    algorithm: str
    engine: str
    runner: Callable[..., RunResult] | str
    batch_runner: Callable[..., list[RunResult]] | str | None = None
    supported_kwargs: frozenset[str] = frozenset()
    kmachine_convertible: bool = False
    audits_memory: bool = False
    parity: frozenset[str] = frozenset()
    async_capable: bool = False
    jit: bool = False
    threads: bool = False
    priority: int = field(default=-1)
    summary: str = ""

    def __post_init__(self):
        if not isinstance(self.supported_kwargs, frozenset):
            object.__setattr__(
                self, "supported_kwargs", frozenset(self.supported_kwargs))
        if not isinstance(self.parity, frozenset):
            object.__setattr__(self, "parity", frozenset(self.parity))
        if self.priority < 0:
            object.__setattr__(
                self, "priority", ENGINE_PRIORITY.get(self.engine, 0))

    @property
    def key(self) -> tuple[str, str]:
        return (self.algorithm, self.engine)

    @property
    def batched(self) -> bool:
        """Whether this engine can execute many trials per kernel pass."""
        return self.batch_runner is not None

    @staticmethod
    def _import(path: str) -> Callable:
        module_name, _, attr = path.partition(":")
        if not attr:
            raise ValueError(
                f"runner path {path!r} must look like 'module:attribute'")
        return getattr(importlib.import_module(module_name), attr)

    def load(self) -> Callable[..., RunResult]:
        """The runner callable, importing it if registered by path."""
        if callable(self.runner):
            return self.runner
        runner = self._import(self.runner)
        object.__setattr__(self, "runner", runner)  # cache the import
        return runner

    def load_batch(self) -> Callable[..., list[RunResult]]:
        """The batch runner callable, importing it if registered by path."""
        if self.batch_runner is None:
            raise ValueError(
                f"engine {self.engine!r} for algorithm {self.algorithm!r} "
                f"has no batch runner (spec.batched is False)")
        if callable(self.batch_runner):
            return self.batch_runner
        runner = self._import(self.batch_runner)
        object.__setattr__(self, "batch_runner", runner)
        return runner

    def supports(self, names) -> bool:
        """Whether every keyword in ``names`` is accepted."""
        return self.supported_kwargs.issuperset(names)

    def filter_kwargs(self, kwargs: Mapping[str, Any]) -> dict[str, Any]:
        """The subset of ``kwargs`` this runner accepts (soft dispatch)."""
        return {k: v for k, v in kwargs.items() if k in self.supported_kwargs}

    def call(self, graph, *, seed: int = 0, **kwargs: Any) -> RunResult:
        """Execute, rejecting keywords the runner does not declare."""
        unsupported = sorted(set(kwargs) - self.supported_kwargs)
        if unsupported:
            raise TypeError(
                f"engine {self.engine!r} for algorithm {self.algorithm!r} "
                f"does not support: {', '.join(unsupported)} "
                f"(supported: {', '.join(sorted(self.supported_kwargs)) or 'none'})")
        return self.load()(graph, seed=seed, **kwargs)

    def call_batch(self, graphs, *, seeds, **kwargs: Any) -> list[RunResult]:
        """Execute a batch of trials, validating keywords like :meth:`call`."""
        unsupported = sorted(set(kwargs) - self.supported_kwargs)
        if unsupported:
            raise TypeError(
                f"engine {self.engine!r} for algorithm {self.algorithm!r} "
                f"does not support: {', '.join(unsupported)} "
                f"(supported: {', '.join(sorted(self.supported_kwargs)) or 'none'})")
        return self.load_batch()(graphs, seeds=seeds, **kwargs)
