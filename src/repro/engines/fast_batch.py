"""The ``fast-batch`` engine: hundreds of trials per kernel pass.

Batched counterparts of :func:`repro.engines.fast._dra_fast` and
:func:`repro.engines.fast_cre._cre_fast` built on the batch-major
kernel (:mod:`repro.engines.batchwalk`).  A ``run_batch(graphs,
seeds=...)`` call executes B independent same-n trials — each with
its own sampled graph and its own seed — through shared whole-array
passes, returning one :class:`~repro.engines.results.RunResult` per
trial that is seed-for-seed identical to what ``engine="fast"`` would
have produced for that (graph, seed) pair.  The single-graph wrappers
(``*_one``) make the same code reachable through the ordinary
:func:`repro.run` path, which is what the registry parity gate
exercises.

Batches are transparently split into memory-bounded chunks (the
stacked CSR, dead-edge bitmask, and draw buffers scale with the
batch's total directed edge count), so callers may hand over
arbitrarily large batches; ``REPRO_BATCH_EDGE_BUDGET`` tunes the
per-chunk cap.  Chunking never changes results — trials are
independent.
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.core.cre import (
    CRE_FAIL_BUDGET,
    CRE_FAIL_CUT_OFF,
    CRE_FAIL_STRANDED,
    CRE_FAIL_TOO_SMALL,
    cre_step_budget,
)
from repro.engines.batchwalk import (
    BatchWalk,
    DrawPool,
    build_batch_tree,
    reverse_path_blocks,
    stack_graph_csrs,
)
from repro.engines.results import RunResult
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["_dra_fast_batch", "_cre_fast_batch",
           "_dra_fast_batch_one", "_cre_fast_batch_one"]

#: Per-chunk cap on the stacked CSR's directed entry count (int32
#: indices, twin table, and padded copy put the default around 1 GB
#: of per-chunk state); env-tunable for small-memory hosts.  Must
#: stay below 2**31 — the stacked ids and edge offsets are int32.
_EDGE_BUDGET = int(os.environ.get("REPRO_BATCH_EDGE_BUDGET", 80_000_000))


def _chunk_spans(graphs) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans whose stacked CSRs stay in budget."""
    spans = []
    lo = 0
    edges = 0
    for i, g in enumerate(graphs):
        count = int(g.indices.size)
        if i > lo and edges + count > _EDGE_BUDGET:
            spans.append((lo, i))
            lo, edges = i, 0
        edges += count
    spans.append((lo, len(graphs)))
    return spans


def _check_batch(graphs, seeds) -> int:
    if len(seeds) != len(graphs):
        raise ValueError(
            f"run_batch needs one seed per graph: {len(graphs)} graphs, "
            f"{len(seeds)} seeds")
    n = graphs[0].n
    for i, g in enumerate(graphs):
        if g.n != n:
            raise ValueError(
                f"fast-batch requires same-n graphs; graph 0 has n={n} "
                f"but graph {i} has n={g.n}")
    return n


# -- DRA -------------------------------------------------------------------


def _dra_fast_batch(graphs, *, seeds, step_budget: int | None = None,
                    ) -> list[RunResult]:
    """Algorithm 1 over a batch of trials; one RunResult per (graph, seed)."""
    graphs = list(graphs)
    seeds = list(seeds)
    if not graphs:
        return []
    n = _check_batch(graphs, seeds)
    if n == 0:
        deadline = diameter_budget(0) + 3 * diameter_budget(0) + 8
        return [RunResult("dra", False, None, deadline, engine="fast-batch",
                          detail={"fail_codes": ["bfs-unreachable"]})
                for _ in graphs]
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _dra_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, step_budget)
    return results  # type: ignore[return-value]  # every slot filled


def _dra_chunk(graphs, seeds, results, offset, step_budget) -> None:
    n = graphs[0].n
    batch = len(graphs)
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    election_rounds = diameter_budget(n)

    # Trial b's node v owns the same stream as in a serial run:
    # SeedSequence(seed_b).spawn(n)[v], flat-indexed by global id.
    pool = DrawPool(seeds, n)

    indptr, indices = stack_graph_csrs(graphs)
    roots = np.arange(batch, dtype=np.int64) * n
    tree = build_batch_tree(indptr, indices, batch, n, roots)
    deadline = election_rounds + 3 * diameter_budget(n) + 8
    for b in np.flatnonzero(~tree.ok).tolist():
        results[offset + b] = RunResult(
            "dra", False, None, deadline, engine="fast-batch",
            detail={"fail_codes": ["bfs-unreachable"]})
    connected = np.flatnonzero(tree.ok)
    if connected.size == 0:
        return

    done = tree.completion_times(election_rounds)
    walk = BatchWalk(
        indptr=indptr,
        indices=indices,
        draws=pool,
        batch=batch,
        size=n,
        initial_heads=roots,
        step_budget=budget,
        tree_depths=np.maximum(1, tree.tree_depth),
        start_rounds=done[roots] + 1,
        live=tree.ok,
    )
    walk.run()
    ecc = tree.eccentricities(walk.flood_initiator[connected])
    # Bulk verification: same accept/reject as per-trial verify_cycle,
    # done in whole-array checks instead of a Python loop per edge.
    winners = connected[walk.success[connected]]
    cycles: dict[int, list[int] | None] = {}
    if winners.size:
        rows, okv = walk.verified_cycles(winners)
        for i, b in enumerate(winners.tolist()):
            cycles[b] = (rows[i] - b * n).tolist() if okv[i] else None
    for slot, b in enumerate(connected.tolist()):
        end_round = int(walk.end_round[b]) + int(ecc[slot])
        ok = bool(walk.success[b])
        cycle = cycles.get(b) if ok else None
        if ok and cycle is None:
            ok = False
        fail_code = int(walk.fail_code[b])
        results[offset + b] = RunResult(
            algorithm="dra",
            success=ok,
            cycle=cycle,
            rounds=end_round,
            steps=int(walk.steps[b]),
            engine="fast-batch",
            detail={"fail_codes": [fail_code] if fail_code else [],
                    "rotations": int(walk.rotations[b]),
                    "extensions": int(walk.extensions[b]),
                    "retries": 0},
        )


def _dra_fast_batch_one(graph, *, seed: int = 0,
                        step_budget: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _dra_fast_batch([graph], seeds=[seed], step_budget=step_budget)[0]


# -- CRE -------------------------------------------------------------------


def _cre_fast_batch(graphs, *, seeds, step_budget: int | None = None,
                    ) -> list[RunResult]:
    """The CRE solver over a batch of trials (decision contract of
    :mod:`repro.core.cre`, one RNG stream per trial)."""
    graphs = list(graphs)
    seeds = list(seeds)
    if not graphs:
        return []
    n = _check_batch(graphs, seeds)
    if n < 3:
        return [RunResult("cre", False, None, 0, engine="fast-batch",
                          detail={"fail": CRE_FAIL_TOO_SMALL, "extensions": 0,
                                  "rotations": 0, "cycle_extensions": 0})
                for _ in graphs]
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _cre_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, step_budget)
    return results  # type: ignore[return-value]  # every slot filled


def _cre_chunk(graphs, seeds, results, offset, step_budget) -> None:
    from repro.engines.batchwalk import _padded_rows

    n = graphs[0].n
    batch = len(graphs)
    budget = step_budget if step_budget is not None else cre_step_budget(n)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    indptr, indices = stack_graph_csrs(graphs)
    base = np.arange(batch, dtype=np.int64) * n

    path = np.zeros((batch, n), dtype=np.int64)       # global ids
    path_flat = path.reshape(-1)
    pos = np.full(batch * n, -1, dtype=np.int64)      # global id -> local pos
    unvisited = np.diff(indptr).astype(np.int64)
    plen = np.ones(batch, dtype=np.int64)
    live = np.ones(batch, dtype=bool)
    success = np.zeros(batch, dtype=bool)
    steps = np.zeros(batch, dtype=np.int64)
    fail = [None] * batch
    extensions = np.zeros(batch, dtype=np.int64)
    rotations = np.zeros(batch, dtype=np.int64)
    cycle_extensions = np.zeros(batch, dtype=np.int64)
    ramp = np.arange(n, dtype=np.int64)

    # Same first draw as serial: the start node, uniform over n.
    starts0 = base + np.fromiter((rng.integers(n) for rng in rngs),
                                 dtype=np.int64, count=batch)
    path[:, 0] = starts0
    pos[starts0] = 0
    from repro.graphs.adjacency import csr_gather
    unvisited[csr_gather(indptr, indices, starts0)] -= 1

    def visit(trials: np.ndarray, targets: np.ndarray) -> None:
        """Append each target to its trial's path (the shared tail of
        every extension flavour)."""
        lengths = plen[trials]
        pos[targets] = lengths
        path_flat[trials * n + lengths] = targets
        plen[trials] += 1
        unvisited[csr_gather(indptr, indices, targets)] -= 1

    def stop(trials: np.ndarray, code: str) -> None:
        for b in trials.tolist():
            fail[b] = code
        steps[trials] = moves
        live[trials] = False

    moves = 0
    while True:
        act = np.flatnonzero(live)
        if act.size == 0:
            break
        heads = path_flat[act * n + plen[act] - 1]
        tails = path_flat[act * n]
        row_vals, valid = _padded_rows(indices, indptr[heads],
                                       indptr[heads + 1])
        closes = ((row_vals == tails[:, None]) & valid).any(axis=1)
        fresh = valid & (pos[row_vals] < 0)
        fresh_counts = fresh.sum(axis=1)

        # Closure precedes the budget gate (reference decision contract).
        won = closes & (plen[act] == n)
        if won.any():
            winners = act[won]
            success[winners] = True
            steps[winners] = moves
            live[winners] = False
        going = np.flatnonzero(~won)
        if going.size == 0:
            continue
        if moves >= budget:
            stop(act[going], CRE_FAIL_BUDGET)
            continue
        moves += 1

        ext = fresh_counts[going] > 0
        if ext.any():
            rows = going[ext]
            draws = np.fromiter(
                (rngs[b].integers(c) for b, c in
                 zip(act[rows].tolist(), fresh_counts[rows].tolist())),
                dtype=np.int64, count=rows.size)
            picked = fresh[rows]
            chosen = picked & (np.cumsum(picked, axis=1)
                               == (draws + 1)[:, None])
            targets = row_vals[rows, chosen.argmax(axis=1)]
            visit(act[rows], targets)
            extensions[act[rows]] += 1

        cyc = ~ext & closes[going]
        if cyc.any():
            # Cycle extension: rare enough that the two dependent draws
            # (pivot in path order, then target) stay per-trial.
            for b in act[going[cyc]].tolist():
                rng = rngs[b]
                on_path = path[b, :plen[b]]
                pivots = on_path[unvisited[on_path] > 0]
                if pivots.size == 0:
                    fail[b] = CRE_FAIL_CUT_OFF
                    steps[b] = moves
                    live[b] = False
                    continue
                pivot = int(pivots[rng.integers(pivots.size)])
                pivot_row = indices[indptr[pivot]:indptr[pivot + 1]]
                targets = pivot_row[pos[pivot_row] < 0]
                target = int(targets[rng.integers(targets.size)])
                i = int(pos[pivot]) + 1
                length = int(plen[b])
                path[b, :length] = np.concatenate(
                    (path[b, i:length], path[b, :i]))
                pos[path[b, :length]] = ramp[:length]
                one = np.array([b], dtype=np.int64)
                visit(one, np.array([target], dtype=np.int64))
                cycle_extensions[b] += 1

        rot = ~ext & ~closes[going]
        if rot.any():
            rows = going[rot]
            trials = act[rows]
            preds = np.where(plen[trials] >= 2,
                             path_flat[trials * n + plen[trials] - 2], -1)
            options = (valid[rows] & (pos[row_vals[rows]] >= 0)
                       & (row_vals[rows] != preds[:, None]))
            counts = options.sum(axis=1)
            cornered = counts == 0
            if cornered.any():
                stop(trials[cornered], CRE_FAIL_STRANDED)
                rows = rows[~cornered]
                trials = trials[~cornered]
                options = options[~cornered]
                counts = counts[~cornered]
            if rows.size:
                draws = np.fromiter(
                    (rngs[b].integers(c) for b, c in
                     zip(trials.tolist(), counts.tolist())),
                    dtype=np.int64, count=rows.size)
                chosen = options & (np.cumsum(options, axis=1)
                                    == (draws + 1)[:, None])
                pivots = row_vals[rows, chosen.argmax(axis=1)]
                los = pos[pivots] + 1
                reverse_path_blocks(path_flat, pos, trials, los,
                                    plen[trials], n)
                rotations[trials] += 1

    for b, graph in enumerate(graphs):
        ok = bool(success[b])
        cycle = None
        if ok:
            cycle = (path[b, :plen[b]] - b * n).tolist()
            try:
                verify_cycle(graph, cycle)
            except CycleViolation:
                ok, cycle = False, None
                fail[b] = CRE_FAIL_STRANDED
        results[offset + b] = RunResult(
            algorithm="cre",
            success=ok,
            cycle=cycle,
            rounds=0,
            steps=int(steps[b]),
            engine="fast-batch",
            detail={"fail": fail[b], "extensions": int(extensions[b]),
                    "rotations": int(rotations[b]),
                    "cycle_extensions": int(cycle_extensions[b])},
        )


def _cre_fast_batch_one(graph, *, seed: int = 0,
                        step_budget: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _cre_fast_batch([graph], seeds=[seed], step_budget=step_budget)[0]
