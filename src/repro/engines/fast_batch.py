"""The ``fast-batch`` engine: hundreds of trials per kernel pass.

Batched counterparts of the four fast engines —
:func:`repro.engines.fast._dra_fast`,
:func:`repro.engines.fast_cre._cre_fast`,
:func:`repro.engines.fast_dhc2._dhc2_fast`, and
:func:`repro.engines.fast_turau._turau_fast` — built on the
batch-major kernel (:mod:`repro.engines.batchwalk`).  A
``run_batch(graphs, seeds=...)`` call executes B independent same-n
trials — each with its own sampled graph and its own seed — through
shared whole-array passes, returning one
:class:`~repro.engines.results.RunResult` per trial that is
seed-for-seed identical to what ``engine="fast"`` would have produced
for that (graph, seed) pair.  The single-graph wrappers (``*_one``)
make the same code reachable through the ordinary :func:`repro.run`
path, which is what the registry parity gate exercises.

DHC2 batches Phase 1 per colour class: one pooled colour draw (each
node's first stream value, exactly the serial order), one stacked
colour-filtered CSR shared by every class (classes are edge-disjoint
within it, so per-class fresh dead-edge masks equal the serial shared
mask), then one :class:`~repro.engines.batchwalk.BatchWalk` per
colour over the class members of every still-live trial — per-trial
``sizes`` / budgets / roots, structural failures recorded at the
class where serial would have stopped.  Phase 2 is deterministic and
runs per trial, verbatim from the serial engine.  Turau batches the
proposal round as one pooled draw over the stacked CSR and runs the
merge phases in lockstep (same budget for same n), pooling each
phase's requester draws; the per-trial decision code is the serial
replay's, so decisions match seed for seed.

Batches are transparently split into memory-bounded chunks (the
stacked CSR, dead-edge bitmask, and draw buffers scale with the
batch's total directed edge count), so callers may hand over
arbitrarily large batches; ``REPRO_BATCH_EDGE_BUDGET`` tunes the
per-chunk cap.  Chunking never changes results — trials are
independent.  :func:`auto_batch_size` sizes batches from the same
budget for the ``engine="auto"`` sweep path.

``graphs`` may be a list of :class:`~repro.graphs.adjacency.Graph` or
a :class:`~repro.graphs.batch_gnp.GnpBatch`.  A ``GnpBatch`` is the
zero-copy path the sweep harness ships: the stacked CSR and twin
table come straight from the pooled generator (no per-graph CSR
builds, no stacking copy, no twin argsort), chunking slices the
shared pair arrays without copying, and per-trial ``Graph`` objects
are materialised lazily — only for the result tails that genuinely
need one (cycle verification, DHC2 Phase 2, Turau eccentricity).
"""

from __future__ import annotations

import os

import numpy as np

from repro.analysis.bounds import diameter_budget, dra_step_budget
from repro.core.cre import (
    CRE_FAIL_BUDGET,
    CRE_FAIL_CUT_OFF,
    CRE_FAIL_STRANDED,
    CRE_FAIL_TOO_SMALL,
    cre_step_budget,
)
from repro.engines.batchwalk import (
    BatchWalk,
    DrawPool,
    build_batch_tree,
    reverse_path_blocks,
    stack_graph_csrs,
    stacked_edge_twins,
)
from repro.engines.results import RunResult
from repro.graphs.batch_gnp import GnpBatch
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["_dra_fast_batch", "_cre_fast_batch",
           "_dhc2_fast_batch", "_turau_fast_batch",
           "_dra_fast_batch_one", "_cre_fast_batch_one",
           "_dhc2_fast_batch_one", "_turau_fast_batch_one",
           "auto_batch_size", "AUTO_BATCH_MIN_TRIALS"]

#: Per-chunk cap on the stacked CSR's directed entry count (int32
#: indices, twin table, and padded copy put the default around 1 GB
#: of per-chunk state); env-tunable for small-memory hosts.  Must
#: stay below 2**31 — the stacked ids and edge offsets are int32.
_EDGE_BUDGET = int(os.environ.get("REPRO_BATCH_EDGE_BUDGET", 80_000_000))

#: Fewest queued same-point trials before ``engine="auto"`` prefers
#: ``fast-batch`` over per-trial ``fast`` (below this, batching's
#: setup cost is not worth amortising; the CLI consults it).
AUTO_BATCH_MIN_TRIALS = 100


def auto_batch_size(n: int, p: float | None = None, *,
                    cap: int = 1024) -> int:
    """Largest sensible batch for same-n trials under the edge budget.

    Sizes one harness batch so its stacked chunk (expected directed
    entries ``n * (n-1) * p`` per trial) fills — but does not exceed —
    ``REPRO_BATCH_EDGE_BUDGET``; without a known density the complete
    graph is assumed.  Capped (batches past the cache sweet spot
    regress; see the E15 batch lane) and floored at 1.
    """
    density = 1.0 if p is None else min(1.0, max(0.0, float(p)))
    per_trial = max(1.0, float(n) * max(1.0, (n - 1) * density))
    return int(max(1, min(cap, _EDGE_BUDGET / per_trial)))


def _as_trials(graphs):
    """Normalise the batch argument (``GnpBatch`` passes through)."""
    return graphs if isinstance(graphs, GnpBatch) else list(graphs)


def _batch_n(graphs) -> int:
    return graphs.n if isinstance(graphs, GnpBatch) else graphs[0].n


def _stacked_csr(graphs):
    """The chunk's stacked CSR as ``(indptr, indices, twins-or-None)``.

    A ``GnpBatch`` ships all three directly from the pooled pair
    arrays; lists of graphs pay the per-graph stacking copy and leave
    the twin table for callers that need one to build on demand.
    """
    if isinstance(graphs, GnpBatch):
        return graphs.stacked()
    indptr, indices = stack_graph_csrs(graphs)
    return indptr, indices, None


def _chunk_spans(graphs) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` spans whose stacked CSRs stay in budget."""
    if isinstance(graphs, GnpBatch):
        counts = graphs.directed_counts.tolist()
    else:
        counts = [int(g.indices.size) for g in graphs]
    spans = []
    lo = 0
    edges = 0
    for i, count in enumerate(counts):
        if i > lo and edges + count > _EDGE_BUDGET:
            spans.append((lo, i))
            lo, edges = i, 0
        edges += count
    spans.append((lo, len(counts)))
    return spans


def _check_batch(graphs, seeds) -> int:
    if len(seeds) != len(graphs):
        raise ValueError(
            f"run_batch needs one seed per graph: {len(graphs)} graphs, "
            f"{len(seeds)} seeds")
    if isinstance(graphs, GnpBatch):
        return graphs.n  # same n by construction
    n = graphs[0].n
    for i, g in enumerate(graphs):
        if g.n != n:
            raise ValueError(
                f"fast-batch requires same-n graphs; graph 0 has n={n} "
                f"but graph {i} has n={g.n}")
    return n


# -- DRA -------------------------------------------------------------------


def _dra_fast_batch(graphs, *, seeds, step_budget: int | None = None,
                    ) -> list[RunResult]:
    """Algorithm 1 over a batch of trials; one RunResult per (graph, seed)."""
    graphs = _as_trials(graphs)
    seeds = list(seeds)
    if not len(graphs):
        return []
    n = _check_batch(graphs, seeds)
    if n == 0:
        deadline = diameter_budget(0) + 3 * diameter_budget(0) + 8
        return [RunResult("dra", False, None, deadline, engine="fast-batch",
                          detail={"fail_codes": ["bfs-unreachable"]})
                for _ in range(len(graphs))]
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _dra_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, step_budget)
    return results  # type: ignore[return-value]  # every slot filled


def _dra_chunk(graphs, seeds, results, offset, step_budget) -> None:
    n = _batch_n(graphs)
    batch = len(graphs)
    budget = step_budget if step_budget is not None else dra_step_budget(n)
    election_rounds = diameter_budget(n)

    # Trial b's node v owns the same stream as in a serial run:
    # SeedSequence(seed_b).spawn(n)[v], flat-indexed by global id.
    pool = DrawPool(seeds, n)

    indptr, indices, twins = _stacked_csr(graphs)
    roots = np.arange(batch, dtype=np.int64) * n
    tree = build_batch_tree(indptr, indices, batch, n, roots)
    deadline = election_rounds + 3 * diameter_budget(n) + 8
    for b in np.flatnonzero(~tree.ok).tolist():
        results[offset + b] = RunResult(
            "dra", False, None, deadline, engine="fast-batch",
            detail={"fail_codes": ["bfs-unreachable"]})
    connected = np.flatnonzero(tree.ok)
    if connected.size == 0:
        return

    done = tree.completion_times(election_rounds)
    walk = BatchWalk(
        indptr=indptr,
        indices=indices,
        draws=pool,
        batch=batch,
        size=n,
        initial_heads=roots,
        step_budget=budget,
        tree_depths=np.maximum(1, tree.tree_depth),
        start_rounds=done[roots] + 1,
        live=tree.ok,
        twins=twins,
    )
    walk.run()
    ecc = tree.eccentricities(walk.flood_initiator[connected])
    # Bulk verification: same accept/reject as per-trial verify_cycle,
    # done in whole-array checks instead of a Python loop per edge.
    winners = connected[walk.success[connected]]
    cycles: dict[int, list[int] | None] = {}
    if winners.size:
        rows, okv = walk.verified_cycles(winners)
        for i, b in enumerate(winners.tolist()):
            cycles[b] = (rows[i] - b * n).tolist() if okv[i] else None
    for slot, b in enumerate(connected.tolist()):
        end_round = int(walk.end_round[b]) + int(ecc[slot])
        ok = bool(walk.success[b])
        cycle = cycles.get(b) if ok else None
        if ok and cycle is None:
            ok = False
        fail_code = int(walk.fail_code[b])
        results[offset + b] = RunResult(
            algorithm="dra",
            success=ok,
            cycle=cycle,
            rounds=end_round,
            steps=int(walk.steps[b]),
            engine="fast-batch",
            detail={"fail_codes": [fail_code] if fail_code else [],
                    "rotations": int(walk.rotations[b]),
                    "extensions": int(walk.extensions[b]),
                    "retries": 0},
        )


def _dra_fast_batch_one(graph, *, seed: int = 0,
                        step_budget: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _dra_fast_batch([graph], seeds=[seed], step_budget=step_budget)[0]


# -- CRE -------------------------------------------------------------------


def _cre_fast_batch(graphs, *, seeds, step_budget: int | None = None,
                    ) -> list[RunResult]:
    """The CRE solver over a batch of trials (decision contract of
    :mod:`repro.core.cre`, one RNG stream per trial)."""
    graphs = _as_trials(graphs)
    seeds = list(seeds)
    if not len(graphs):
        return []
    n = _check_batch(graphs, seeds)
    if n < 3:
        return [RunResult("cre", False, None, 0, engine="fast-batch",
                          detail={"fail": CRE_FAIL_TOO_SMALL, "extensions": 0,
                                  "rotations": 0, "cycle_extensions": 0})
                for _ in range(len(graphs))]
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _cre_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, step_budget)
    return results  # type: ignore[return-value]  # every slot filled


def _cre_chunk(graphs, seeds, results, offset, step_budget) -> None:
    from repro.engines.batchwalk import _padded_rows

    n = _batch_n(graphs)
    batch = len(graphs)
    budget = step_budget if step_budget is not None else cre_step_budget(n)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    indptr, indices, _ = _stacked_csr(graphs)
    base = np.arange(batch, dtype=np.int64) * n

    path = np.zeros((batch, n), dtype=np.int64)       # global ids
    path_flat = path.reshape(-1)
    pos = np.full(batch * n, -1, dtype=np.int64)      # global id -> local pos
    unvisited = np.diff(indptr).astype(np.int64)
    plen = np.ones(batch, dtype=np.int64)
    live = np.ones(batch, dtype=bool)
    success = np.zeros(batch, dtype=bool)
    steps = np.zeros(batch, dtype=np.int64)
    fail = [None] * batch
    extensions = np.zeros(batch, dtype=np.int64)
    rotations = np.zeros(batch, dtype=np.int64)
    cycle_extensions = np.zeros(batch, dtype=np.int64)
    ramp = np.arange(n, dtype=np.int64)

    # Same first draw as serial: the start node, uniform over n.
    starts0 = base + np.fromiter((rng.integers(n) for rng in rngs),
                                 dtype=np.int64, count=batch)
    path[:, 0] = starts0
    pos[starts0] = 0
    from repro.graphs.adjacency import csr_gather
    unvisited[csr_gather(indptr, indices, starts0)] -= 1

    def visit(trials: np.ndarray, targets: np.ndarray) -> None:
        """Append each target to its trial's path (the shared tail of
        every extension flavour)."""
        lengths = plen[trials]
        pos[targets] = lengths
        path_flat[trials * n + lengths] = targets
        plen[trials] += 1
        unvisited[csr_gather(indptr, indices, targets)] -= 1

    def stop(trials: np.ndarray, code: str) -> None:
        for b in trials.tolist():
            fail[b] = code
        steps[trials] = moves
        live[trials] = False

    moves = 0
    while True:
        act = np.flatnonzero(live)
        if act.size == 0:
            break
        heads = path_flat[act * n + plen[act] - 1]
        tails = path_flat[act * n]
        row_vals, valid = _padded_rows(indices, indptr[heads],
                                       indptr[heads + 1])
        closes = ((row_vals == tails[:, None]) & valid).any(axis=1)
        fresh = valid & (pos[row_vals] < 0)
        fresh_counts = fresh.sum(axis=1)

        # Closure precedes the budget gate (reference decision contract).
        won = closes & (plen[act] == n)
        if won.any():
            winners = act[won]
            success[winners] = True
            steps[winners] = moves
            live[winners] = False
        going = np.flatnonzero(~won)
        if going.size == 0:
            continue
        if moves >= budget:
            stop(act[going], CRE_FAIL_BUDGET)
            continue
        moves += 1

        ext = fresh_counts[going] > 0
        if ext.any():
            rows = going[ext]
            draws = np.fromiter(
                (rngs[b].integers(c) for b, c in
                 zip(act[rows].tolist(), fresh_counts[rows].tolist())),
                dtype=np.int64, count=rows.size)
            picked = fresh[rows]
            chosen = picked & (np.cumsum(picked, axis=1)
                               == (draws + 1)[:, None])
            targets = row_vals[rows, chosen.argmax(axis=1)]
            visit(act[rows], targets)
            extensions[act[rows]] += 1

        cyc = ~ext & closes[going]
        if cyc.any():
            # Cycle extension: rare enough that the two dependent draws
            # (pivot in path order, then target) stay per-trial.
            for b in act[going[cyc]].tolist():
                rng = rngs[b]
                on_path = path[b, :plen[b]]
                pivots = on_path[unvisited[on_path] > 0]
                if pivots.size == 0:
                    fail[b] = CRE_FAIL_CUT_OFF
                    steps[b] = moves
                    live[b] = False
                    continue
                pivot = int(pivots[rng.integers(pivots.size)])
                pivot_row = indices[indptr[pivot]:indptr[pivot + 1]]
                targets = pivot_row[pos[pivot_row] < 0]
                target = int(targets[rng.integers(targets.size)])
                i = int(pos[pivot]) + 1
                length = int(plen[b])
                path[b, :length] = np.concatenate(
                    (path[b, i:length], path[b, :i]))
                pos[path[b, :length]] = ramp[:length]
                one = np.array([b], dtype=np.int64)
                visit(one, np.array([target], dtype=np.int64))
                cycle_extensions[b] += 1

        rot = ~ext & ~closes[going]
        if rot.any():
            rows = going[rot]
            trials = act[rows]
            preds = np.where(plen[trials] >= 2,
                             path_flat[trials * n + plen[trials] - 2], -1)
            options = (valid[rows] & (pos[row_vals[rows]] >= 0)
                       & (row_vals[rows] != preds[:, None]))
            counts = options.sum(axis=1)
            cornered = counts == 0
            if cornered.any():
                stop(trials[cornered], CRE_FAIL_STRANDED)
                rows = rows[~cornered]
                trials = trials[~cornered]
                options = options[~cornered]
                counts = counts[~cornered]
            if rows.size:
                draws = np.fromiter(
                    (rngs[b].integers(c) for b, c in
                     zip(trials.tolist(), counts.tolist())),
                    dtype=np.int64, count=rows.size)
                chosen = options & (np.cumsum(options, axis=1)
                                    == (draws + 1)[:, None])
                pivots = row_vals[rows, chosen.argmax(axis=1)]
                los = pos[pivots] + 1
                reverse_path_blocks(path_flat, pos, trials, los,
                                    plen[trials], n)
                rotations[trials] += 1

    for b in range(batch):
        ok = bool(success[b])
        cycle = None
        if ok:
            # Only winners materialise a Graph on the GnpBatch path.
            cycle = (path[b, :plen[b]] - b * n).tolist()
            try:
                verify_cycle(graphs[b], cycle)
            except CycleViolation:
                ok, cycle = False, None
                fail[b] = CRE_FAIL_STRANDED
        results[offset + b] = RunResult(
            algorithm="cre",
            success=ok,
            cycle=cycle,
            rounds=0,
            steps=int(steps[b]),
            engine="fast-batch",
            detail={"fail": fail[b], "extensions": int(extensions[b]),
                    "rotations": int(rotations[b]),
                    "cycle_extensions": int(cycle_extensions[b])},
        )


def _cre_fast_batch_one(graph, *, seed: int = 0,
                        step_budget: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _cre_fast_batch([graph], seeds=[seed], step_budget=step_budget)[0]


# -- DHC2 ------------------------------------------------------------------


def _dhc2_fast_batch(graphs, *, seeds, delta: float = 0.5,
                     k: int | None = None) -> list[RunResult]:
    """Algorithm 3 over a batch: Phase 1 per colour class, Phase 2 per trial."""
    graphs = _as_trials(graphs)
    seeds = list(seeds)
    if not len(graphs):
        return []
    _check_batch(graphs, seeds)
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _dhc2_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, delta, k)
    return results  # type: ignore[return-value]  # every slot filled


def _dhc2_chunk(graphs, seeds, results, offset, delta, k) -> None:
    from repro.core.dhc2 import default_color_count
    from repro.engines.arraywalk import filtered_csr
    from repro.engines.fast_dhc2 import _fail, _phase2
    from repro.graphs.adjacency import csr_sources

    n = _batch_n(graphs)
    batch = len(graphs)
    colors = k if k is not None else default_color_count(n, delta)
    total = batch * n
    pool = DrawPool(seeds, n)

    # The colour draw is each node's *first* stream value, consumed in
    # node id order exactly as the serial colour round does.
    if total:
        color_of = 1 + pool.draw(np.arange(total, dtype=np.int64),
                                 np.full(total, colors, dtype=np.int64))
    else:
        color_of = np.zeros(0, dtype=np.int64)
    indptr, indices, _ = _stacked_csr(graphs)
    src = csr_sources(indptr)
    # One colour-filtered CSR shared by all classes (as in serial):
    # classes are edge-disjoint within it, so the fresh dead-edge mask
    # each class walk starts from equals the serial shared mask.
    sub_indptr, sub_indices = filtered_csr(
        indptr, indices, color_of[src] == color_of[indices])
    twins = stacked_edge_twins(sub_indptr, sub_indices, batch, n)
    color_mat = color_of.reshape(batch, n)
    base = np.arange(batch, dtype=np.int64) * n

    elect_budget = diameter_budget(max(3, (2 * n) // max(1, colors)))
    phase1_start = 1 + elect_budget  # colour round + election deadline

    ok = np.ones(batch, dtype=bool)
    reasons: list[str | None] = [None] * batch
    fail_round = np.full(batch, phase1_start, dtype=np.int64)
    steps = np.zeros(batch, dtype=np.int64)
    phase1_end = np.full(batch, phase1_start, dtype=np.int64)
    cycles: list[dict[int, list[int]]] = [{} for _ in range(batch)]

    # Class by class over every still-live trial: a trial that fails
    # stops consuming draws at exactly the class where its serial run
    # returned (later classes' streams are disjoint per-node streams,
    # so skipping them is draw-neutral as well as cheaper).
    for c in range(1, colors + 1):
        maskc = color_mat == c
        cnt = maskc.sum(axis=1).astype(np.int64)
        empty = ok & (cnt == 0)
        if empty.any():
            ok[empty] = False
            for b in np.flatnonzero(empty).tolist():
                reasons[b] = "empty-partition"  # fail_round: phase start
        if not ok.any():
            break
        roots = base + maskc.argmax(axis=1)  # min-id member where cnt > 0
        tree = build_batch_tree(sub_indptr, sub_indices, batch, n, roots,
                                expect=cnt, live=ok)
        disc = ok & ~tree.ok
        if disc.any():
            ok[disc] = False
            for b in np.flatnonzero(disc).tolist():
                reasons[b] = "partition-disconnected"
        if not ok.any():
            break
        done = tree.completion_times(phase1_start)
        budgets = np.array([dra_step_budget(int(m)) for m in cnt.tolist()],
                           dtype=np.int64)
        walk = BatchWalk(
            indptr=sub_indptr,
            indices=sub_indices,
            draws=pool,
            batch=batch,
            size=n,
            sizes=cnt,
            initial_heads=roots,
            step_budget=budgets,
            tree_depths=np.maximum(1, tree.tree_depth),
            start_rounds=done[roots] + 1,
            live=ok,
            twins=twins,
        )
        walked = np.flatnonzero(ok)
        walk.run()
        # Steps accumulate before the failure check (serial counts the
        # failing class's walk).
        np.maximum(steps, walk.steps, out=steps)
        lost = walked[~walk.success[walked]]
        if lost.size:
            ok[lost] = False
            fail_round[lost] = walk.end_round[lost]
            for b in lost.tolist():
                reasons[b] = f"walk-{int(walk.fail_code[b])}"
        won = walked[walk.success[walked]]
        if won.size:
            ecc = tree.eccentricities(walk.flood_initiator[won])
            phase1_end[won] = np.maximum(phase1_end[won],
                                         walk.end_round[won] + ecc)
            for b in won.tolist():
                cycles[b][c] = walk.cycle(b)

    for b in range(batch):
        if ok[b]:
            # Phase 2 is the only consumer of a materialised Graph.
            results[offset + b] = _phase2(
                graphs[b], cycles[b], colors, int(phase1_end[b]),
                int(steps[b]), "fast-batch")
        else:
            results[offset + b] = _fail(
                n, colors, int(fail_round[b]), reasons[b], "fast-batch")


def _dhc2_fast_batch_one(graph, *, seed: int = 0, delta: float = 0.5,
                         k: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _dhc2_fast_batch([graph], seeds=[seed], delta=delta, k=k)[0]


# -- Turau -----------------------------------------------------------------


def _turau_fast_batch(graphs, *, seeds,
                      phase_budget: int | None = None) -> list[RunResult]:
    """Turau path merging over a batch; decisions identical to serial."""
    from repro.core.turau import FAIL_TOO_SMALL

    graphs = _as_trials(graphs)
    seeds = list(seeds)
    if not len(graphs):
        return []
    n = _check_batch(graphs, seeds)
    if n < 3:
        return [RunResult("turau", False, None, 0, engine="fast-batch",
                          detail={"fail": FAIL_TOO_SMALL, "phases": 0,
                                  "initial_paths": n})
                for _ in range(len(graphs))]
    results: list[RunResult | None] = [None] * len(graphs)
    for lo, hi in _chunk_spans(graphs):
        _turau_chunk(graphs[lo:hi], seeds[lo:hi], results, lo, phase_budget)
    return results  # type: ignore[return-value]  # every slot filled


def _turau_chunk(graphs, seeds, results, offset, phase_budget) -> None:
    from repro.core.turau import (
        FAIL_NO_CLOSURE_EDGE,
        FAIL_PHASE_BUDGET,
        cycle_from_links,
        phase_starts,
        phase_windows,
        role_bit,
        turau_phase_budget,
    )
    from repro.engines.fast_turau import _LinkState
    from repro.graphs.adjacency import csr_sources
    from repro.graphs.properties import eccentricity

    n = _batch_n(graphs)
    batch = len(graphs)
    total = batch * n
    budget = max(1, phase_budget if phase_budget is not None
                 else turau_phase_budget(n))
    windows = phase_windows(n, budget)
    starts = phase_starts(n, budget)
    pool = DrawPool(seeds, n)
    indptr, indices, _ = _stacked_csr(graphs)

    links = [_LinkState(n) for _ in range(batch)]
    steps = np.zeros(batch, dtype=np.int64)

    # Proposal round, pooled: each node with higher-id neighbours draws
    # once from its own stream (per-trial draw order is irrelevant —
    # streams are per-node), and the min-id acceptance is one global
    # (target, proposer) sort (block-disjoint ids keep trials apart).
    src = csr_sources(indptr)
    higher = indices > src
    counts = np.bincount(src[higher], minlength=total).astype(np.int64)
    need = np.flatnonzero(counts > 0)
    draws = pool.draw(need, counts[need])
    # Higher-id neighbours are each row's suffix (rows sort ascending).
    propose_g = indices[indptr[need + 1] - counts[need] + draws].astype(
        np.int64)
    order = np.lexsort((need, propose_g))
    targets = propose_g[order]
    winners = need[order]
    first = np.ones(targets.size, dtype=bool)
    first[1:] = targets[1:] != targets[:-1]
    for v, w in zip(winners[first].tolist(), targets[first].tolist()):
        b = v // n
        links[b].commit(v - b * n, w - b * n)
        steps[b] += 1

    initial_paths = np.zeros(batch, dtype=np.int64)
    for b in range(batch):
        deg0 = links[b].degrees()
        initial_paths[b] = (int((deg0 == 0).sum())
                            + int((deg0 == 1).sum()) // 2)

    # Merge phases in lockstep (same budget for same n): per-trial
    # decision code is the serial replay's, with each phase's
    # requester draws pooled into one DrawPool call (requesters are
    # distinct nodes, within a trial and across the batch).
    phases_used = np.full(batch, budget, dtype=np.int64)
    fail: list[str | None] = [FAIL_PHASE_BUDGET] * batch
    closure_at = np.full(batch, -1, dtype=np.int64)
    flood_source = np.full(batch, -1, dtype=np.int64)
    active = np.ones(batch, dtype=bool)
    for ell in range(1, budget + 1):
        act = np.flatnonzero(active)
        if act.size == 0:
            break
        window = int(windows[ell - 1])
        req_nodes: list[int] = []
        req_bounds: list[int] = []
        req_cands: list[list[int]] = []
        pending: list[tuple[int, int, list[int]]] = []
        for b in act.tolist():
            off = b * n
            far, plen, deg = links[b].walk_paths()
            endpoints = np.flatnonzero(deg == 1)
            fresh = endpoints[plen[endpoints] <= window + 2]
            spanning = fresh[plen[fresh] == n]
            if spanning.size:
                e = int(spanning.min())
                f = int(far[e])
                phases_used[b] = ell
                row = indices[indptr[off + e]:indptr[off + e + 1]]
                if (row == off + f).any():
                    links[b].commit(e, f)
                    steps[b] += 1
                    fail[b] = None
                else:
                    fail[b] = FAIL_NO_CLOSURE_EDGE
                closure_at[b] = int(starts[ell - 1])
                flood_source[b] = f if fail[b] is None else e
                active[b] = False
                continue
            participants = np.sort(
                np.concatenate((np.flatnonzero(deg == 0), fresh)))
            pid = {int(v): min(int(v), int(far[v])) for v in participants}
            passive: set[int] = set()
            requesters: list[int] = []
            for v in participants:
                v = int(v)
                f = int(far[v])
                r = role_bit(pid[v], ell, n)
                if f == v:  # singleton: its one end alternates roles
                    may_request = bool(r)
                else:
                    request_end = pid[v] if r else max(v, f)
                    may_request = v == request_end
                if may_request:
                    requesters.append(v)
                else:
                    passive.add(v)
            slot = len(req_nodes)
            req_as: list[int] = []
            for a in requesters:  # id order (participants are sorted)
                row = indices[indptr[off + a]:indptr[off + a + 1]]
                candidates = [int(w) - off for w in row
                              if int(w) - off in passive
                              and pid[int(w) - off] > pid[a]]
                if candidates:  # sorted: CSR rows are
                    req_nodes.append(off + a)
                    req_bounds.append(len(candidates))
                    req_cands.append(candidates)
                    req_as.append(a)
            pending.append((b, slot, req_as))
        if req_nodes:
            phase_draws = pool.draw(np.asarray(req_nodes, dtype=np.int64),
                                    np.asarray(req_bounds, dtype=np.int64))
        for b, slot, req_as in pending:
            choice: dict[int, int] = {}
            for i, a in enumerate(req_as):
                choice[a] = req_cands[slot + i][int(phase_draws[slot + i])]
            accepted: dict[int, int] = {}
            for a, t in choice.items():
                if t not in accepted or a < accepted[t]:
                    accepted[t] = a
            for t, a in sorted(accepted.items()):
                links[b].commit(a, t)
                steps[b] += 1

    for b in range(batch):
        ok = fail[b] is None
        cycle = None
        if ok:
            cycle = cycle_from_links(
                [links[b].links_of(v) for v in range(n)])
            if cycle is None:
                ok, fail[b] = False, FAIL_PHASE_BUDGET
            else:
                try:
                    verify_cycle(graphs[b], cycle)
                except CycleViolation:
                    ok, cycle, fail[b] = False, None, FAIL_PHASE_BUDGET
        if closure_at[b] >= 0:
            rounds = int(closure_at[b]) + 1 + eccentricity(
                graphs[b], int(flood_source[b]))
        else:
            rounds = int(starts[-1])
        results[offset + b] = RunResult(
            algorithm="turau",
            success=ok,
            cycle=cycle,
            rounds=rounds,
            steps=int(steps[b]),
            engine="fast-batch",
            detail={"fail": fail[b], "phases": int(phases_used[b]),
                    "initial_paths": int(initial_paths[b])},
        )


def _turau_fast_batch_one(graph, *, seed: int = 0,
                          phase_budget: int | None = None) -> RunResult:
    """Registry runner: a batch of one (``repro.run(..., engine="fast-batch")``)."""
    return _turau_fast_batch([graph], seeds=[seed],
                             phase_budget=phase_budget)[0]
