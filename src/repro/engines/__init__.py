"""Execution engines: the registry, the engine contract, result types.

Three ways to execute the library's algorithms:

* the message-level CONGEST engine (:mod:`repro.congest`) — every
  message simulated, every model rule enforced;
* the step-level fast engine — identical algorithmic decisions and
  RNG streams, with rounds advanced by the deterministic schedule the
  CONGEST protocol follows.  Used for large-n scaling experiments;
  cross-validated by integration tests.  It runs on the array-native
  CSR kernel (:mod:`repro.engines.arraywalk`); the pure-Python walker
  it replaced survives unregistered in :mod:`repro.engines.fast` as
  the parity suite's test-only oracle (the ``fast-py`` engine name
  was retired after its deprecation release);
* the sequential engine (:mod:`repro.sequential`) — centralized
  solvers used as oracles and comparators.

All of them are reached through one dispatch table,
:data:`repro.engines.registry.REGISTRY`, keyed by ``(algorithm,
engine)`` and exposed as :func:`repro.run`.  See
``docs/ARCHITECTURE.md`` for the layering and how to register a new
algorithm or engine.
"""

from repro.engines.api import ENGINE_PRIORITY, Engine, EngineSpec
from repro.engines.registry import REGISTRY, EngineRegistry, run
from repro.engines.results import RunResult

__all__ = [
    "RunResult",
    "Engine",
    "EngineSpec",
    "EngineRegistry",
    "REGISTRY",
    "ENGINE_PRIORITY",
    "run",
]
