"""Execution engines and shared result types.

Two ways to execute the paper's algorithms:

* the message-level CONGEST engine (:mod:`repro.congest`) — every
  message simulated, every model rule enforced;
* the step-level fast engine (:mod:`repro.engines.fast`) — identical
  algorithmic decisions and RNG streams, with rounds advanced by the
  deterministic schedule the CONGEST protocol follows.  Used for
  large-n scaling experiments; cross-validated by integration tests.
"""

from repro.engines.results import RunResult

__all__ = ["RunResult"]
