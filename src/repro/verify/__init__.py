"""Verification utilities: is an output really a Hamiltonian cycle?"""

from repro.verify.hamiltonicity import (
    CycleViolation,
    cycle_from_successors,
    is_hamiltonian_cycle,
    is_hamiltonian_path,
    verify_cycle,
)

__all__ = [
    "is_hamiltonian_cycle",
    "is_hamiltonian_path",
    "verify_cycle",
    "cycle_from_successors",
    "CycleViolation",
]
