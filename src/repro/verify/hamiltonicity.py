"""Hamiltonian-cycle verification.

The paper's output convention (end of Section I-A): "each node will know
which of its incident edges belong to the HC (exactly two of them)".
Our distributed algorithms therefore report their result as a successor
map (node -> next node on the cycle); this module checks such maps, and
plain node sequences, against the input graph.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.graphs.adjacency import Graph

__all__ = [
    "CycleViolation",
    "verify_cycle",
    "is_hamiltonian_cycle",
    "is_hamiltonian_path",
    "cycle_from_successors",
]


class CycleViolation(ValueError):
    """The proposed cycle is not a Hamiltonian cycle of the graph."""


def verify_cycle(graph: Graph, cycle: Sequence[int]) -> None:
    """Raise :class:`CycleViolation` unless ``cycle`` is a Hamiltonian cycle.

    ``cycle`` lists the nodes in traversal order; the closing edge
    ``cycle[-1] -> cycle[0]`` is implied.  Graphs with fewer than three
    nodes have no Hamiltonian cycle.
    """
    n = graph.n
    if n < 3:
        raise CycleViolation(f"no Hamiltonian cycle exists on {n} < 3 nodes")
    if len(cycle) != n:
        raise CycleViolation(f"cycle visits {len(cycle)} nodes, expected {n}")
    seen = set()
    for v in cycle:
        if not 0 <= v < n:
            raise CycleViolation(f"node {v} out of range")
        if v in seen:
            raise CycleViolation(f"node {v} visited twice")
        seen.add(v)
    for a, b in zip(cycle, list(cycle[1:]) + [cycle[0]]):
        if not graph.has_edge(a, b):
            raise CycleViolation(f"({a}, {b}) is not an edge of the graph")


def is_hamiltonian_cycle(graph: Graph, cycle: Sequence[int]) -> bool:
    """Boolean form of :func:`verify_cycle`."""
    try:
        verify_cycle(graph, cycle)
    except CycleViolation:
        return False
    return True


def is_hamiltonian_path(graph: Graph, path: Sequence[int]) -> bool:
    """Whether ``path`` visits every node exactly once along graph edges."""
    n = graph.n
    if len(path) != n or n == 0:
        return False
    if len(set(path)) != n:
        return False
    if any(not 0 <= v < n for v in path):
        return False
    return all(graph.has_edge(a, b) for a, b in zip(path, path[1:]))


def cycle_from_successors(successors: Mapping[int, int], *, start: int = 0) -> list[int]:
    """Flatten a successor map into a node sequence starting at ``start``.

    Raises :class:`CycleViolation` if the map does not describe a single
    cycle covering all its keys.
    """
    if start not in successors:
        raise CycleViolation(f"start node {start} has no successor entry")
    cycle = [start]
    v = successors[start]
    while v != start:
        if len(cycle) > len(successors):
            raise CycleViolation("successor map does not close into one cycle")
        if v not in successors:
            raise CycleViolation(f"node {v} has no successor entry")
        cycle.append(v)
        v = successors[v]
    if len(cycle) != len(successors):
        raise CycleViolation(
            f"successor map splits into multiple cycles "
            f"({len(cycle)} of {len(successors)} nodes reached)"
        )
    return cycle
