"""The Chung–Lu expected-degree random-graph model.

The paper cites Chung–Lu [6] as the family of random-graph models used
to capture real-world (heterogeneous-degree) networks.  We provide it as
an extension substrate: the expected degree of node ``i`` is ``w[i]``,
and edge ``{i, j}`` appears independently with probability
``min(1, w[i] * w[j] / sum(w))``.

Sampling uses the Miller–Hagberg skipping construction, which runs in
O(n + m) after sorting the weights: for each anchor ``i`` it walks the
remaining nodes in weight order, geometrically skipping runs of
non-edges under an upper-bound probability and correcting with a
Bernoulli acceptance test.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = ["chung_lu_graph", "power_law_weights"]


def chung_lu_graph(weights: Sequence[float], *, seed: int | np.random.Generator) -> Graph:
    """Sample a Chung–Lu graph with the given expected-degree weights."""
    w = np.asarray(weights, dtype=np.float64)
    if w.ndim != 1:
        raise ValueError("weights must be one-dimensional")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    n = w.size
    if n < 2:
        return Graph(n)
    total = float(w.sum())
    if total == 0.0:
        return Graph(n)

    rng = np.random.default_rng(seed)
    order = np.argsort(-w)  # descending weights
    sorted_w = w[order]
    edges_lo: list[int] = []
    edges_hi: list[int] = []

    for i in range(n - 1):
        wi = sorted_w[i]
        if wi == 0.0:
            break
        j = i + 1
        # q bounds the edge probability for every j' >= j because the
        # weights are sorted descending.
        q = min(1.0, wi * sorted_w[j] / total)
        while j < n and q > 0.0:
            if q < 1.0:
                # Skip a geometric number of guaranteed non-edges.
                r = rng.random()
                skip = int(math.floor(math.log(r) / math.log1p(-q))) if r > 0.0 else n
                j += skip
            if j >= n:
                break
            p_ij = min(1.0, wi * sorted_w[j] / total)
            if rng.random() < p_ij / q:
                a, b = int(order[i]), int(order[j])
                edges_lo.append(min(a, b))
                edges_hi.append(max(a, b))
            q = p_ij
            j += 1

    if not edges_lo:
        return Graph(n)
    lo = np.asarray(edges_lo, dtype=np.int64)
    hi = np.asarray(edges_hi, dtype=np.int64)
    keys = np.argsort(lo * np.int64(n) + hi)
    return Graph.from_sorted_pairs(n, lo[keys], hi[keys])


def power_law_weights(n: int, exponent: float, *, mean_degree: float) -> np.ndarray:
    """Weights ``w[i] ~ (i + i0)**(-1/(exponent-1))`` scaled to a mean degree.

    A convenience for heterogeneous-degree experiments; ``exponent`` is
    the target power-law exponent (> 2 for a finite mean).
    """
    if exponent <= 2.0:
        raise ValueError("exponent must exceed 2 for a finite mean degree")
    if mean_degree <= 0:
        raise ValueError("mean degree must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    raw = ranks ** (-1.0 / (exponent - 1.0))
    return raw * (mean_degree * n / raw.sum())
