"""Structural property analysis for graphs.

The paper's round-complexity proofs lean on three diameter facts for
``G(n, p)``:

* ``D = Theta(ln n / ln ln n)`` at the connectivity threshold
  ``p = c ln n / n`` (Chung–Lu [5]);
* ``D = 2`` whp when ``p = Theta(log n / sqrt(n))`` (Bollobás [2],
  "Fact 2" in the paper);
* ``D = ceil(1/eps)`` whp when ``p = c log n / n**(1-eps)``
  (Klee–Larman [17], "Fact 3").

Experiment E11 validates all three with the functions here.  BFS is
implemented frontier-at-a-time over the CSR arrays so that the exact
diameter of graphs in the 10^3–10^4 node range remains cheap.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs.adjacency import Graph, csr_gather

__all__ = [
    "bfs_distances",
    "connected_components",
    "is_connected",
    "giant_component",
    "eccentricity",
    "diameter",
    "diameter_lower_bound",
    "degree_statistics",
    "expected_diameter_sparse",
]


def bfs_distances(graph: Graph, source: int) -> np.ndarray:
    """Hop distances from ``source``; unreachable nodes get ``-1``."""
    if source not in graph:
        raise ValueError(f"source {source} not in graph of size {graph.n}")
    dist = np.full(graph.n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.asarray([source], dtype=np.int64)
    indptr, indices = graph.indptr, graph.indices
    level = 0
    while frontier.size:
        level += 1
        neighbours = csr_gather(indptr, indices, frontier)
        fresh = neighbours[dist[neighbours] == -1]
        if fresh.size == 0:
            break
        fresh = np.unique(fresh)
        dist[fresh] = level
        frontier = fresh
    return dist


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components, each a sorted list of node ids."""
    seen = np.zeros(graph.n, dtype=bool)
    components: list[list[int]] = []
    for start in range(graph.n):
        if seen[start]:
            continue
        dist = bfs_distances(graph, start)
        members = np.flatnonzero(dist >= 0)
        seen[members] = True
        components.append(members.tolist())
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (the empty graph counts as connected)."""
    if graph.n == 0:
        return True
    return bool(np.all(bfs_distances(graph, 0) >= 0))


def giant_component(graph: Graph) -> tuple[Graph, dict[int, int]]:
    """The largest connected component as an induced subgraph.

    Returns the subgraph and the original-id -> new-id mapping.
    """
    components = connected_components(graph)
    if not components:
        return Graph(0), {}
    largest = max(components, key=len)
    return graph.subgraph(largest)


def eccentricity(graph: Graph, v: int) -> int:
    """Largest hop distance from ``v``; raises if the graph is disconnected."""
    dist = bfs_distances(graph, v)
    if np.any(dist < 0):
        raise ValueError("eccentricity undefined on a disconnected graph")
    return int(dist.max())


def diameter(graph: Graph, *, exact_limit: int = 20_000) -> int:
    """Exact diameter via all-sources BFS.

    Cost is O(n * m); refuse (with a hint) beyond ``exact_limit`` nodes —
    use :func:`diameter_lower_bound` for large graphs.
    """
    if graph.n == 0:
        return 0
    if graph.n > exact_limit:
        raise ValueError(
            f"exact diameter on {graph.n} nodes exceeds exact_limit={exact_limit}; "
            "use diameter_lower_bound for an estimate"
        )
    best = 0
    for v in range(graph.n):
        dist = bfs_distances(graph, v)
        if np.any(dist < 0):
            raise ValueError("diameter undefined on a disconnected graph")
        best = max(best, int(dist.max()))
    return best


def diameter_lower_bound(graph: Graph, *, sweeps: int = 4, seed: int = 0) -> int:
    """Double-sweep diameter lower bound (exact on trees, sharp in practice).

    Runs ``sweeps`` random-start double BFS sweeps and returns the best
    eccentricity observed.
    """
    if graph.n == 0:
        return 0
    rng = np.random.default_rng(seed)
    best = 0
    for _ in range(max(1, sweeps)):
        start = int(rng.integers(graph.n))
        dist = bfs_distances(graph, start)
        if np.any(dist < 0):
            raise ValueError("diameter undefined on a disconnected graph")
        far = int(np.argmax(dist))
        dist2 = bfs_distances(graph, far)
        best = max(best, int(dist2.max()))
    return best


def degree_statistics(graph: Graph) -> dict[str, float]:
    """Min / max / mean / std of the degree sequence."""
    if graph.n == 0:
        return {"min": 0.0, "max": 0.0, "mean": 0.0, "std": 0.0}
    degs = graph.degrees()
    return {
        "min": float(degs.min()),
        "max": float(degs.max()),
        "mean": float(degs.mean()),
        "std": float(degs.std()),
    }


def expected_diameter_sparse(n: int) -> float:
    """The Chung–Lu [5] diameter scale ``ln n / ln ln n`` for threshold G(n,p).

    Used by the protocols to size round budgets (a whp upper bound is a
    constant multiple of this; see :mod:`repro.analysis.bounds`).
    """
    if n < 3:
        return 1.0
    return math.log(n) / math.log(math.log(n))
