"""Immutable undirected simple-graph data structure.

All algorithms in this library operate on :class:`Graph`, a compressed
sparse row (CSR) adjacency structure over nodes ``0 .. n-1``.  The CSR
layout keeps neighbour iteration allocation-free (numpy slices) and edge
queries logarithmic (binary search within a sorted neighbour slice),
which matters because the CONGEST simulator touches adjacency on every
message delivery.

The structure is immutable by design: every generator in
:mod:`repro.graphs` builds the full edge set first and then freezes it,
mirroring how the paper treats the input graph (the topology never
changes during an execution).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Graph", "csr_gather", "csr_sources"]


def csr_sources(indptr: np.ndarray) -> np.ndarray:
    """Source node of every directed CSR entry (parallel to ``indices``)."""
    return np.repeat(np.arange(len(indptr) - 1, dtype=np.int64),
                     np.diff(indptr))


def csr_gather(indptr: np.ndarray, indices: np.ndarray,
               nodes: np.ndarray) -> np.ndarray:
    """Concatenated CSR row slices of ``nodes`` (a multi-row gather).

    Equivalent to ``np.concatenate([indices[indptr[v]:indptr[v+1]]
    for v in nodes])`` without the per-row Python loop; the workhorse
    of the vectorised BFS and walk kernels.
    """
    counts = indptr[nodes + 1] - indptr[nodes]
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # Per-block arange: global arange minus each block's start offset.
    block_starts = np.repeat(np.cumsum(counts) - counts, counts)
    flat = np.repeat(indptr[nodes], counts) + (np.arange(total) - block_starts)
    return indices[flat]


class Graph:
    """An undirected simple graph on nodes ``0 .. n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        Array-like of shape ``(m, 2)`` with one row per undirected edge.
        Self-loops are rejected; duplicate rows (in either orientation)
        are collapsed to a single edge.

    Examples
    --------
    >>> g = Graph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    >>> g.degree(0)
    2
    >>> sorted(g.neighbors(1))
    [0, 2]
    >>> g.has_edge(0, 2)
    False
    """

    __slots__ = ("_n", "_m", "_indptr", "_indices")

    def __init__(self, n: int, edges: Iterable[tuple[int, int]] | np.ndarray = ()):
        if n < 0:
            raise ValueError(f"node count must be non-negative, got {n}")
        edge_array = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges,
                                dtype=np.int64)
        if edge_array.size == 0:
            edge_array = edge_array.reshape(0, 2)
        if edge_array.ndim != 2 or edge_array.shape[1] != 2:
            raise ValueError("edges must be an (m, 2) array of node pairs")
        if edge_array.size and (edge_array.min() < 0 or edge_array.max() >= n):
            raise ValueError("edge endpoint out of range")
        if np.any(edge_array[:, 0] == edge_array[:, 1]):
            raise ValueError("self-loops are not allowed in a simple graph")

        lo = np.minimum(edge_array[:, 0], edge_array[:, 1])
        hi = np.maximum(edge_array[:, 0], edge_array[:, 1])
        if lo.size:
            keys = lo * np.int64(n) + hi
            keys = np.unique(keys)
            lo, hi = keys // n, keys % n

        self._n = int(n)
        self._m = int(lo.size)
        self._indptr, self._indices = _build_csr(n, lo, hi)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_sorted_pairs(cls, n: int, lo: np.ndarray, hi: np.ndarray) -> "Graph":
        """Build a graph from pre-validated distinct pairs with ``lo < hi``.

        Fast path used by the random-graph generators, which already
        guarantee distinctness and orientation.  No validation is done.
        """
        graph = cls.__new__(cls)
        graph._n = int(n)
        graph._m = int(lo.size)
        graph._indptr, graph._indices = _build_csr(n, lo, hi)
        return graph

    # -- basic queries --------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """Raw CSR row-pointer array (length ``n + 1``, read-only).

        ``indices[indptr[v]:indptr[v + 1]]`` is the sorted neighbour
        slice of ``v``.  Exposed for array-native kernels
        (:mod:`repro.engines.arraywalk`) that operate on the CSR buffers
        directly instead of going through per-node accessors.
        """
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Raw CSR column-index array (length ``2 m``, read-only).

        One directed entry per edge orientation; each row slice is
        sorted ascending.  See :attr:`indptr`.
        """
        return self._indices

    def nodes(self) -> range:
        """The node ids, ``0 .. n-1``."""
        return range(self._n)

    def degree(self, v: int) -> int:
        """Degree of node ``v``."""
        return int(self._indptr[v + 1] - self._indptr[v])

    def degrees(self) -> np.ndarray:
        """Vector of all node degrees (length ``n``)."""
        return np.diff(self._indptr)

    def neighbors(self, v: int) -> np.ndarray:
        """Sorted neighbour ids of ``v`` as a read-only numpy view."""
        return self._indices[self._indptr[v]:self._indptr[v + 1]]

    def neighbor_list(self, v: int) -> list[int]:
        """Neighbours of ``v`` as a plain Python list of ints."""
        return self.neighbors(v).tolist()

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the undirected edge ``{u, v}`` is present."""
        if u == v:
            return False
        row = self.neighbors(u)
        pos = np.searchsorted(row, v)
        return bool(pos < row.size and row[pos] == v)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over edges as ``(u, v)`` with ``u < v``."""
        for u in range(self._n):
            for v in self.neighbors(u):
                if u < v:
                    yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array with ``u < v`` per row."""
        src = csr_sources(self._indptr)
        mask = src < self._indices
        return np.column_stack((src[mask], self._indices[mask]))

    # -- derived graphs -------------------------------------------------------

    def subgraph(self, nodes: Sequence[int]) -> tuple["Graph", dict[int, int]]:
        """Induced subgraph on ``nodes``.

        Returns the subgraph (relabelled to ``0 .. len(nodes)-1`` in the
        order given) and the mapping from original id to new id.
        """
        node_list = [int(v) for v in nodes]
        mapping = {v: i for i, v in enumerate(node_list)}
        if len(mapping) != len(node_list):
            raise ValueError("duplicate node in subgraph selection")
        # Membership mask over the (u < v) edge array: one vectorised
        # pass instead of a per-node Python pair loop.
        new_id = np.full(self._n, -1, dtype=np.int64)
        new_id[node_list] = np.arange(len(node_list), dtype=np.int64)
        edge_arr = self.edge_array()
        mu, mv = new_id[edge_arr[:, 0]], new_id[edge_arr[:, 1]]
        keep = (mu >= 0) & (mv >= 0)
        mu, mv = mu[keep], mv[keep]
        sub = Graph.from_sorted_pairs(
            len(node_list), np.minimum(mu, mv), np.maximum(mu, mv))
        return sub, mapping

    # -- dunder ---------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    def __contains__(self, v: int) -> bool:
        return 0 <= v < self._n

    def __repr__(self) -> str:
        return f"Graph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (self._n == other._n
                and np.array_equal(self._indptr, other._indptr)
                and np.array_equal(self._indices, other._indices))

    def __hash__(self) -> int:  # immutable, so hashable
        return hash((self._n, self._m, self._indices.tobytes()))


def _build_csr(n: int, lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) CSR arrays from distinct pairs with lo < hi."""
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, dst
