"""Random regular graphs via the configuration (pairing) model.

Section IV of the paper conjectures the techniques extend to random
regular graphs; this generator backs that extension experiment.

Plain rejection (retry the whole pairing until it is simple) only works
for tiny degrees — the simplicity probability is ``~exp(-(d^2-1)/4)``,
astronomically small already at ``d = 8``.  We therefore use the
standard *pairing + switching repair*: draw one uniform perfect
matching on the ``n * d`` stubs, then remove the (few) self-loops and
parallel edges with random double-edge switches, each of which
preserves the degree sequence.  The expected number of defects is
``O(d^2)``, so repair is fast for every ``d`` we use; the outcome
distribution is not exactly uniform but is contiguous with it
(McKay–Wormald), which is all the extension experiment needs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import Graph

__all__ = ["random_regular_graph"]

_MAX_SWITCH_ROUNDS = 500


def random_regular_graph(n: int, d: int, *, seed: int | np.random.Generator) -> Graph:
    """Sample a (near-uniform) simple ``d``-regular graph on ``n`` nodes.

    Raises
    ------
    ValueError
        If ``n * d`` is odd or ``d >= n`` (no simple ``d``-regular graph
        exists), or if switching repair fails to converge (practically
        unreachable for ``d < n / 2``).
    """
    if d < 0 or n < 0:
        raise ValueError("n and d must be non-negative")
    if d >= n and not (n == 0 and d == 0):
        raise ValueError(f"no simple {d}-regular graph on {n} nodes")
    if (n * d) % 2 != 0:
        raise ValueError(f"n*d must be even, got n={n}, d={d}")
    rng = np.random.default_rng(seed)
    if d == 0 or n == 0:
        return Graph(n)

    stubs = np.repeat(np.arange(n, dtype=np.int64), d)
    perm = rng.permutation(stubs)
    pairs = [(int(a), int(b)) for a, b in zip(perm[0::2], perm[1::2])]
    pairs = _switch_to_simple(pairs, n, rng)
    lo = np.minimum([a for a, _ in pairs], [b for _, b in pairs])
    hi = np.maximum([a for a, _ in pairs], [b for _, b in pairs])
    order = np.argsort(lo * np.int64(n) + hi)
    return Graph.from_sorted_pairs(
        n, np.asarray(lo)[order], np.asarray(hi)[order])


def _switch_to_simple(
    pairs: list[tuple[int, int]], n: int, rng: np.random.Generator,
) -> list[tuple[int, int]]:
    """Remove loops/multi-edges by degree-preserving double-edge switches.

    A defect pair ``(a, b)`` (self-loop or duplicate) plus a random
    partner pair ``(c, e)`` are replaced by ``(a, c)`` and ``(b, e)``
    when the replacement creates no new defect.  Each accepted switch
    strictly reduces the defect count, so termination is guaranteed
    outside pathological densities.
    """
    def key(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    edge_multiset: dict[tuple[int, int], int] = {}
    for a, b in pairs:
        edge_multiset[key(a, b)] = edge_multiset.get(key(a, b), 0) + 1

    def is_defect(a: int, b: int) -> bool:
        return a == b or edge_multiset[key(a, b)] > 1

    for _round in range(_MAX_SWITCH_ROUNDS):
        defects = [i for i, (a, b) in enumerate(pairs) if is_defect(a, b)]
        if not defects:
            return pairs
        for i in defects:
            a, b = pairs[i]
            if not is_defect(a, b):  # fixed by an earlier switch this round
                continue
            for _try in range(60):
                j = int(rng.integers(len(pairs)))
                if j == i:
                    continue
                c, e = pairs[j]
                # Proposed replacement: (a, c) and (b, e).
                if a == c or b == e:
                    continue
                if edge_multiset.get(key(a, c), 0) or edge_multiset.get(key(b, e), 0):
                    continue
                for old in (key(a, b), key(c, e)):
                    edge_multiset[old] -= 1
                    if not edge_multiset[old]:
                        del edge_multiset[old]
                pairs[i] = (a, c)
                pairs[j] = (b, e)
                for new in (key(a, c), key(b, e)):
                    edge_multiset[new] = edge_multiset.get(new, 0) + 1
                break
    raise ValueError(
        f"switching repair did not converge on a simple graph "
        f"(n={n}, d={len(pairs) * 2 // max(1, n)})")
