"""Shared sampling helpers for the random-graph generators.

The generators in this package all reduce to "sample ``k`` distinct
unordered node pairs uniformly".  Pairs ``(i, j)`` with ``0 <= i < j < n``
are indexed row-major in the upper triangle:

    index(i, j) = i*n - i*(i+1)/2 + (j - i - 1)

which lets us sample pair *indices* as plain integers and decode them in
vectorised numpy, keeping generation O(m) regardless of density.
"""

from __future__ import annotations

import numpy as np

__all__ = ["pair_count", "sample_distinct", "decode_pair_indices", "encode_pairs"]


def pair_count(n: int) -> int:
    """Number of unordered node pairs in an ``n``-node graph."""
    return n * (n - 1) // 2


def sample_distinct(rng: np.random.Generator, upper: int, k: int) -> np.ndarray:
    """Sample ``k`` distinct integers uniformly from ``[0, upper)``.

    Uses rejection (sample with replacement, deduplicate, top up) which is
    O(k) in expectation for the sparse regimes we care about, and falls
    back to a full permutation when ``k`` is a large fraction of ``upper``.
    """
    if k < 0:
        raise ValueError("sample size must be non-negative")
    if k > upper:
        raise ValueError(f"cannot sample {k} distinct values from a range of {upper}")
    if k == 0:
        return np.empty(0, dtype=np.int64)
    if k * 3 >= upper:
        # Dense regime: a permutation is cheaper than repeated rejection.
        return rng.permutation(upper)[:k].astype(np.int64)

    chosen = np.unique(rng.integers(0, upper, size=int(k * 1.1) + 16, dtype=np.int64))
    while chosen.size < k:
        extra = rng.integers(0, upper, size=k - chosen.size + 16, dtype=np.int64)
        chosen = np.unique(np.concatenate((chosen, extra)))
    if chosen.size > k:
        keep = rng.choice(chosen.size, size=k, replace=False)
        chosen = chosen[keep]
    return np.sort(chosen)


def decode_pair_indices(n: int, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Decode linear pair indices into ``(lo, hi)`` arrays with ``lo < hi``.

    The inverse of :func:`encode_pairs`.  Rows of the upper triangle start
    at offsets ``row_start(i) = i*n - i*(i+1)/2``; a searchsorted over the
    row starts recovers ``lo`` exactly (no floating-point corrections).
    """
    rows = np.arange(n, dtype=np.int64)
    row_starts = rows * n - rows * (rows + 1) // 2  # row_starts[n-1] == pair_count(n)
    lo = np.searchsorted(row_starts, indices, side="right") - 1
    hi = indices - row_starts[lo] + lo + 1
    return lo.astype(np.int64), hi.astype(np.int64)


def encode_pairs(n: int, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Encode pairs ``lo < hi`` into linear upper-triangle indices."""
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    return lo * n - lo * (lo + 1) // 2 + (hi - lo - 1)
