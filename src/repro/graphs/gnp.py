"""The Erdős–Rényi ``G(n, p)`` random-graph model.

The paper's algorithms are analysed on ``G(n, p)`` with
``p = c * ln(n) / n**delta`` (Section I).  This module provides an exact
O(m)-time sampler plus the parameterisation helpers used throughout the
benchmarks:

* :func:`gnp_random_graph` — sample a graph.
* :func:`paper_probability` — the paper's ``p = c ln n / n**delta``.
* :func:`hamiltonicity_threshold` — the classical ``ln n / n`` threshold
  above which a Hamiltonian cycle exists whp [Palmer 1985, cited as 21].

Sampling strategy: the number of edges of ``G(n, p)`` is
``Binomial(C(n,2), p)``; conditioned on the count, the edge set is a
uniform subset.  We therefore draw the count and then a uniform set of
distinct pair indices, which is exact and avoids the O(n^2) coin-flip
loop.
"""

from __future__ import annotations

import math

import numpy as np

from repro.graphs._sampling import decode_pair_indices, pair_count, sample_distinct
from repro.graphs.adjacency import Graph

__all__ = ["gnp_random_graph", "paper_probability", "hamiltonicity_threshold"]


def gnp_random_graph(n: int, p: float, *, seed: int | np.random.Generator) -> Graph:
    """Sample a ``G(n, p)`` random graph.

    Parameters
    ----------
    n:
        Number of nodes.
    p:
        Edge probability, in ``[0, 1]``.
    seed:
        Integer seed or numpy Generator; required, so every experiment is
        reproducible by construction.

    Examples
    --------
    >>> g = gnp_random_graph(100, 0.1, seed=0)
    >>> g.n
    100
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")
    rng = np.random.default_rng(seed)
    total = pair_count(n)
    m = int(rng.binomial(total, p)) if total and p > 0 else 0
    indices = sample_distinct(rng, total, m)
    lo, hi = decode_pair_indices(n, indices)
    return Graph.from_sorted_pairs(n, lo, hi)


def paper_probability(n: int, delta: float, c: float) -> float:
    """The paper's edge probability ``p = c * ln(n) / n**delta``.

    ``delta = 1/2`` is the DHC1 regime (Section II-A); general
    ``delta in (0, 1]`` is the DHC2 regime (Section II-B).  The result is
    clamped to 1.0 since small ``n`` with large ``c`` can push the formula
    above a valid probability.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    if not 0.0 < delta <= 1.0:
        raise ValueError(f"delta must be in (0, 1], got {delta}")
    if c <= 0:
        raise ValueError(f"c must be positive, got {c}")
    return min(1.0, c * math.log(n) / n**delta)


def hamiltonicity_threshold(n: int) -> float:
    """The classical whp-Hamiltonicity threshold ``ln(n) / n``.

    ``G(n, p)`` contains a Hamiltonian cycle with high probability when
    ``p >= c ln n / n`` for constant ``c > 1`` (Section I, citing [21]);
    below ``(ln n + ln ln n)/n`` it almost surely does not.
    """
    if n < 2:
        raise ValueError("need at least two nodes")
    return math.log(n) / n
