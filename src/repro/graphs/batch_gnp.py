"""Batched ``G(n, p)`` generation: one build for a whole trial batch.

``fast-batch`` sweeps sample B same-``n`` graphs and immediately stack
them into one disjoint-union CSR (node ``v`` of trial ``b`` becomes
global id ``b*n + v``).  Generating those graphs one
:func:`~repro.graphs.gnp.gnp_random_graph` call at a time pays B
rounds of numpy dispatch, B per-graph ``lexsort`` CSR builds, and then
a full stacking copy plus a twin-table argsort — all of it setup the
batch kernel throws away.  :func:`batch_gnp` emits the stacked CSR and
twin table *directly* from the pooled pair set:

* per-trial ``Binomial(C(n,2), p)`` edge counts drawn from each
  trial's own Generator,
* distinct-pair sampling with the expensive non-stream work pooled —
  one keyed ``np.unique`` over every sparse trial's rejection draws
  instead of B separate uniques,
* one vectorised pair decode and one concatenated ``lexsort`` CSR
  build for the whole batch, with the twin (reverse-edge) table read
  off the sort permutation for free.

**Determinism contract:** every call that consumes a trial's random
stream (``binomial``, ``integers``, the top-up loop, ``choice``,
``permutation``) is made on that trial's own ``default_rng(seed)`` in
exactly the order :func:`gnp_random_graph` makes it, and per-trial
control flow depends only on that trial's own draws — so the sampled
edge sets are seed-for-seed identical to the per-trial generator.
Only order-insensitive set algebra (``np.unique``, the pair decode,
the CSR sort) is pooled.  Like ``DrawPool``, the pooled path
self-checks against :func:`gnp_random_graph` once per process
(:func:`pooled_sampling_exact`) and falls back to literal per-trial
:func:`~repro.graphs._sampling.sample_distinct` calls — still exact by
construction — if the check ever fails.  The rarely-taken top-up
branch is pinned by unit tests with scripted generators
(``tests/test_batch_gnp.py``).

:class:`GnpBatch` quacks enough like a list of
:class:`~repro.graphs.adjacency.Graph` for the batch runners:
``len(batch)``, ``batch[b]`` (a lazily materialised per-trial
``Graph``), contiguous ``batch[lo:hi]`` slices (zero-copy views over
the shared pair arrays, for edge-budget chunking), and iteration.
``batch.stacked()`` returns ``(indptr, indices, twins)`` bit-identical
to ``stack_graph_csrs`` + ``stacked_edge_twins`` over the
materialised graphs.
"""

from __future__ import annotations

import numpy as np

from repro.graphs._sampling import decode_pair_indices, pair_count, sample_distinct
from repro.graphs.adjacency import Graph
from repro.graphs.gnp import gnp_random_graph

__all__ = ["GnpBatch", "batch_gnp", "pooled_sampling_exact"]

#: Lazily established verdict of the pooled-sampling self-check
#: (None = not yet run).  Monkeypatch to False to force the
#: per-trial fallback in tests.
_EXACT: bool | None = None

_EMPTY = np.empty(0, dtype=np.int64)


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` for int64 arrays via sort + neighbour diff.

    Identical output, but avoids ``np.unique`` itself: on current
    numpy builds its integer path costs ~50x a plain ``np.sort`` at
    the million-element sizes the pooled sampler works at, which
    would erase the whole point of pooling.
    """
    if values.size == 0:
        return values
    ordered = np.sort(values)
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    np.not_equal(ordered[1:], ordered[:-1], out=keep[1:])
    return ordered[keep]


class GnpBatch:
    """B same-``n`` ``G(n, p)`` trials as one shared pair-array pool.

    Construction is internal (:func:`batch_gnp`); the public surface
    is the list-of-graphs protocol described in the module docstring
    plus :meth:`stacked` and the per-trial :attr:`edge_counts`.
    """

    __slots__ = ("n", "p", "_lo", "_hi", "_offsets", "_graphs", "_stacked")

    def __init__(self, n: int, p: float, lo: np.ndarray, hi: np.ndarray,
                 offsets: np.ndarray):
        self.n = int(n)
        self.p = float(p)
        self._lo = lo
        self._hi = hi
        self._offsets = offsets  # absolute int64 offsets into lo/hi, len B+1
        self._graphs: dict[int, Graph] = {}
        self._stacked: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    def __len__(self) -> int:
        return self._offsets.size - 1

    def __repr__(self) -> str:
        return f"GnpBatch(n={self.n}, p={self.p}, trials={len(self)})"

    @property
    def edge_counts(self) -> np.ndarray:
        """Per-trial undirected edge counts (length B)."""
        return np.diff(self._offsets)

    @property
    def directed_counts(self) -> np.ndarray:
        """Per-trial directed CSR entry counts (length B) — ``2 m_b``."""
        return 2 * self.edge_counts

    def __getitem__(self, key):
        if isinstance(key, slice):
            start, stop, step = key.indices(len(self))
            if step != 1:
                raise ValueError("GnpBatch slices must be contiguous (step 1)")
            stop = max(stop, start)
            return GnpBatch(self.n, self.p, self._lo, self._hi,
                            self._offsets[start:stop + 1])
        b = int(key)
        if b < 0:
            b += len(self)
        if not 0 <= b < len(self):
            raise IndexError("trial index out of range")
        graph = self._graphs.get(b)
        if graph is None:
            s, e = int(self._offsets[b]), int(self._offsets[b + 1])
            graph = Graph.from_sorted_pairs(self.n, self._lo[s:e], self._hi[s:e])
            self._graphs[b] = graph
        return graph

    def stacked(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The batch as one disjoint-union CSR: ``(indptr, indices, twins)``.

        One global ``lexsort`` over the doubled, block-offset edge list
        replaces B per-graph CSR builds plus the stacking copy: block
        offsets make the sort keys strictly ordered between trials, so
        the global sort *is* the concatenation of the per-graph sorts
        and the result is bit-identical to ``stack_graph_csrs`` over
        the materialised graphs.  ``twins`` (the reverse-edge slot
        table ``stacked_edge_twins`` would build with a second
        argsort) falls out of the same permutation: the pre-sort twin
        of doubled entry ``e`` is ``(e + m) % 2m``, so
        ``twins = inv[(order + m) % 2m]``.  Cached.
        """
        if self._stacked is None:
            batch = len(self)
            n = self.n
            rows = batch * n
            start, end = int(self._offsets[0]), int(self._offsets[-1])
            lo = self._lo[start:end]
            hi = self._hi[start:end]
            shift = np.repeat(np.arange(batch, dtype=np.int64) * n,
                              self.edge_counts)
            glo = lo + shift
            ghi = hi + shift
            m = glo.size
            if 2 * m >= 2**31 or rows >= 2**31:
                raise ValueError(
                    "stacked batch exceeds int32 CSR addressing; "
                    "lower the batch size or REPRO_BATCH_EDGE_BUDGET")
            src = np.concatenate((glo, ghi))
            dst = np.concatenate((ghi, glo))
            order = np.lexsort((dst, src))
            node_counts = np.bincount(src, minlength=rows)
            indptr = np.zeros(rows + 1, dtype=np.int64)
            np.cumsum(node_counts, out=indptr[1:])
            indices = dst[order].astype(np.int32)
            if m:
                inv = np.empty(2 * m, dtype=np.int64)
                inv[order] = np.arange(2 * m, dtype=np.int64)
                twins = inv[(order + m) % (2 * m)].astype(np.int32)
            else:
                twins = np.empty(0, dtype=np.int32)
            self._stacked = (indptr, indices, twins)
        return self._stacked


def pooled_sampling_exact() -> bool:
    """Whether the pooled sampler reproduces ``gnp_random_graph`` here.

    Runs the self-check on first call and caches the verdict for the
    process, exactly like ``DrawPool``'s stream-replication check.
    """
    global _EXACT
    if _EXACT is None:
        _EXACT = _self_check()
    return _EXACT


def batch_gnp(n: int, p: float, seeds) -> GnpBatch:
    """Sample B = ``len(seeds)`` graphs ``G(n, p)`` as one :class:`GnpBatch`.

    Seed-for-seed identical to ``[gnp_random_graph(n, p, seed=s) for s
    in seeds]`` (see the module docstring for the contract and the
    fallback).
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"edge probability must be in [0, 1], got {p}")
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")
    return _generate(n, p, list(seeds), pooled=pooled_sampling_exact())


def _generate(n: int, p: float, seeds: list, *, pooled: bool) -> GnpBatch:
    batch = len(seeds)
    rngs = [np.random.default_rng(seed) for seed in seeds]
    total = pair_count(n)
    counts = np.zeros(batch, dtype=np.int64)
    if total and p > 0:
        for b, rng in enumerate(rngs):
            counts[b] = int(rng.binomial(total, p))
    offsets = np.zeros(batch + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    if offsets[-1] == 0:
        return GnpBatch(n, p, _EMPTY, _EMPTY, offsets)
    indices = _sample_batch_indices(rngs, total, counts, pooled=pooled)
    lo, hi = decode_pair_indices(n, indices)
    return GnpBatch(n, p, lo, hi, offsets)


def _sample_batch_indices(rngs: list, upper: int, counts: np.ndarray,
                          *, pooled: bool) -> np.ndarray:
    """Concatenated per-trial distinct pair indices, in trial order.

    Mirrors :func:`sample_distinct` trial by trial; when ``pooled``,
    the sparse-regime first-round deduplication — the dominant cost —
    is one keyed ``np.unique`` across all sparse trials (key =
    ``slot * upper + value``, collision-free and overflow-guarded).
    """
    parts: list = [None] * len(rngs)
    sparse: list[int] = []
    draws: list[np.ndarray] = []
    pooled = pooled and len(rngs) * max(upper, 1) < 2**62
    for b, rng in enumerate(rngs):
        k = int(counts[b])
        if k == 0:
            parts[b] = _EMPTY
        elif k * 3 >= upper:
            parts[b] = rng.permutation(upper)[:k].astype(np.int64)
        elif not pooled:
            parts[b] = sample_distinct(rng, upper, k)
        else:
            draws.append(rng.integers(0, upper, size=int(k * 1.1) + 16,
                                      dtype=np.int64))
            sparse.append(b)
    if sparse:
        sizes = np.array([d.size for d in draws], dtype=np.int64)
        base = np.repeat(np.arange(len(draws), dtype=np.int64) * upper, sizes)
        pool = _sorted_unique(np.concatenate(draws) + base)
        bounds = np.searchsorted(
            pool, np.arange(len(draws) + 1, dtype=np.int64) * upper)
        for slot, b in enumerate(sparse):
            chosen = pool[bounds[slot]:bounds[slot + 1]] - slot * upper
            parts[b] = _finish_sparse(rngs[b], upper, int(counts[b]), chosen)
    return np.concatenate(parts)


def _finish_sparse(rng, upper: int, k: int, chosen: np.ndarray) -> np.ndarray:
    """The tail of :func:`sample_distinct` after the first-round dedup.

    ``chosen`` is the sorted unique of the trial's first rejection
    draw (here produced by the pooled keyed unique); the top-up loop
    and the over-sample downsampling consume the trial's stream in
    the serial call order.
    """
    while chosen.size < k:
        extra = rng.integers(0, upper, size=k - chosen.size + 16, dtype=np.int64)
        chosen = np.unique(np.concatenate((chosen, extra)))
    if chosen.size > k:
        keep = rng.choice(chosen.size, size=k, replace=False)
        chosen = chosen[keep]
    return np.sort(chosen)


def _self_check() -> bool:
    """Pooled generation vs :func:`gnp_random_graph` on a small grid.

    Covers the sparse pooled-unique regime (with its common
    downsample branch), the dense permutation regime, and the
    zero-edge degenerate cases.
    """
    grid = [
        (16, 0.25, 4),   # sparse: pooled unique + choice downsample
        (40, 0.12, 4),   # sparse, larger rows
        (10, 0.95, 3),   # dense: per-trial permutation
        (12, 0.0, 2),    # no edges drawn at all
        (1, 0.5, 2),     # no pairs exist
    ]
    try:
        for n, p, trials in grid:
            seeds = list(range(trials))
            got = _generate(n, p, seeds, pooled=True)
            for b, seed in enumerate(seeds):
                if got[b] != gnp_random_graph(n, p, seed=seed):
                    return False
    except Exception:  # pragma: no cover - only on exotic numpy builds
        return False
    return True
