"""The ``G(n, M)`` uniform random-graph model.

``G(n, M)`` is the uniform distribution over all graphs with ``n`` nodes
and exactly ``M`` edges.  The paper mentions it as the model of
Bollobás–Fenner–Frieze [4] and as a natural extension target
(Section IV).  Sampling is a single draw of ``M`` distinct pair indices.
"""

from __future__ import annotations

import numpy as np

from repro.graphs._sampling import decode_pair_indices, pair_count, sample_distinct
from repro.graphs.adjacency import Graph

__all__ = ["gnm_random_graph"]


def gnm_random_graph(n: int, m: int, *, seed: int | np.random.Generator) -> Graph:
    """Sample a uniform graph with ``n`` nodes and exactly ``m`` edges.

    Raises
    ------
    ValueError
        If ``m`` exceeds the number of available node pairs.
    """
    if n < 0:
        raise ValueError(f"node count must be non-negative, got {n}")
    total = pair_count(n)
    if not 0 <= m <= total:
        raise ValueError(f"edge count must be in [0, {total}], got {m}")
    rng = np.random.default_rng(seed)
    indices = sample_distinct(rng, total, m)
    lo, hi = decode_pair_indices(n, indices)
    return Graph.from_sorted_pairs(n, lo, hi)
