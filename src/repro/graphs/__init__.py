"""Random-graph substrate: data structure, generators, property analysis.

Public surface:

* :class:`~repro.graphs.adjacency.Graph` — immutable CSR graph.
* :func:`~repro.graphs.gnp.gnp_random_graph` and friends — generators
  for every model the paper touches (G(n,p), G(n,M), random regular,
  Chung–Lu).
* :mod:`~repro.graphs.properties` — connectivity/diameter/degree
  analysis backing experiment E11.
"""

from repro.graphs.adjacency import Graph, csr_gather
from repro.graphs.batch_gnp import GnpBatch, batch_gnp
from repro.graphs.chung_lu import chung_lu_graph, power_law_weights
from repro.graphs.gnm import gnm_random_graph
from repro.graphs.gnp import gnp_random_graph, hamiltonicity_threshold, paper_probability
from repro.graphs.properties import (
    bfs_distances,
    connected_components,
    degree_statistics,
    diameter,
    diameter_lower_bound,
    eccentricity,
    expected_diameter_sparse,
    giant_component,
    is_connected,
)
from repro.graphs.regular import random_regular_graph

__all__ = [
    "Graph",
    "csr_gather",
    "GnpBatch",
    "batch_gnp",
    "gnp_random_graph",
    "paper_probability",
    "hamiltonicity_threshold",
    "gnm_random_graph",
    "random_regular_graph",
    "chung_lu_graph",
    "power_law_weights",
    "bfs_distances",
    "connected_components",
    "is_connected",
    "giant_component",
    "eccentricity",
    "diameter",
    "diameter_lower_bound",
    "degree_statistics",
    "expected_diameter_sparse",
]
