"""Command-line front end: ``repro-hc``.

Subcommands
-----------
``run``
    One algorithm on one random graph, e.g.::

        repro-hc run --algorithm dhc2 --nodes 256 --delta 0.5 --c 6 --seed 1
        repro-hc run --algorithm dhc2 --nodes 256 --k-machines 8
        repro-hc run --algorithm levy --nodes 256 --delta 0.25 --json

``sweep``
    Scaling study: run an algorithm over a node-count grid, print the
    rounds table and the fitted power-law exponent::

        repro-hc sweep --algorithm dhc1 --sizes 64,128,256,512 --trials 3

``graph``
    Generate a graph and report its structure (degrees, connectivity,
    diameter, the paper's thresholds)::

        repro-hc graph --nodes 512 --delta 0.5 --c 4

``bounds``
    Print the paper's predicted bounds for given parameters (round
    budgets, failure probabilities).

Invoked with legacy flags only (no subcommand), ``run`` is assumed.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.analysis.bounds import (
    diameter_budget,
    dra_step_budget,
    fit_power_law,
    predicted_dhc1_rounds,
    predicted_dhc2_rounds,
    predicted_upcast_rounds,
)
from repro.analysis.concentration import merge_step_failure, partition_size_failure
from repro.baselines import run_levy, run_local_collect
from repro.core import find_hamiltonian_cycle
from repro.engines.fast import run_dra_fast
from repro.engines.fast_dhc2 import run_dhc2_fast
from repro.graphs import (
    degree_statistics,
    diameter,
    diameter_lower_bound,
    gnm_random_graph,
    gnp_random_graph,
    hamiltonicity_threshold,
    is_connected,
    paper_probability,
    random_regular_graph,
)
from repro.reporting import render_table

__all__ = ["main", "build_parser"]

_CONGEST_ALGORITHMS = ("dra", "dhc1", "dhc2", "upcast", "trivial")
_EXTRA_ALGORITHMS = ("levy", "local", "dra-fast", "dhc2-fast")


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", "-n", type=int, default=256)
    parser.add_argument("--delta", type=float, default=0.5,
                        help="edge probability exponent: p = c ln n / n**delta")
    parser.add_argument("--c", type=float, default=6.0,
                        help="density constant c in p = c ln n / n**delta")
    parser.add_argument("--model", default="gnp",
                        choices=["gnp", "gnm", "regular"],
                        help="random-graph model (gnm/regular match the "
                             "expected edge count of the gnp setting)")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hc",
        description="Distributed Hamiltonian cycles in random graphs "
                    "(ICDCS 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run one algorithm on one graph")
    _add_graph_arguments(run_p)
    run_p.add_argument("--algorithm", default="dhc2",
                       choices=list(_CONGEST_ALGORITHMS + _EXTRA_ALGORITHMS))
    run_p.add_argument("--k", type=int, default=None,
                       help="partition count override (DHC1/DHC2)")
    run_p.add_argument("--k-machines", type=int, default=None,
                       help="also report k-machine conversion cost "
                            "(fully-distributed algorithms only)")
    run_p.add_argument("--audit-memory", action="store_true",
                       help="record per-node peak state (fully-distributed check)")
    run_p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    sweep_p = sub.add_parser("sweep", help="scaling study over n")
    _add_graph_arguments(sweep_p)
    sweep_p.add_argument("--algorithm", default="dhc2-fast",
                         choices=list(_CONGEST_ALGORITHMS + _EXTRA_ALGORITHMS))
    sweep_p.add_argument("--sizes", default="64,128,256",
                         help="comma-separated node counts")
    sweep_p.add_argument("--trials", type=int, default=3)
    sweep_p.add_argument("--json", action="store_true")

    graph_p = sub.add_parser("graph", help="generate a graph and analyse it")
    _add_graph_arguments(graph_p)
    graph_p.add_argument("--exact-diameter", action="store_true",
                         help="exact diameter (O(n m); default is a bound)")
    graph_p.add_argument("--json", action="store_true")

    bounds_p = sub.add_parser("bounds", help="print the paper's predictions")
    _add_graph_arguments(bounds_p)
    bounds_p.add_argument("--json", action="store_true")

    return parser


def _make_graph(args):
    n = args.nodes
    p = paper_probability(n, args.delta, args.c)
    if args.model == "gnp":
        return gnp_random_graph(n, p, seed=args.seed), p
    expected_m = round(p * n * (n - 1) / 2)
    if args.model == "gnm":
        return gnm_random_graph(n, expected_m, seed=args.seed), p
    degree = max(3, round(p * (n - 1)))
    if (n * degree) % 2:
        degree += 1
    if degree > n // 2:
        raise ValueError(
            f"a {degree}-regular graph on {n} nodes is denser than the "
            f"pairing model's practical range (degree <= n/2); lower --c "
            f"or raise --delta / --nodes")
    return random_regular_graph(n, degree, seed=args.seed), p


def _dispatch(graph, algorithm: str, seed: int, **kwargs):
    if algorithm == "levy":
        return run_levy(graph, seed=seed)
    if algorithm == "local":
        return run_local_collect(graph, seed=seed)
    if algorithm == "dra-fast":
        return run_dra_fast(graph, seed=seed)
    if algorithm == "dhc2-fast":
        return run_dhc2_fast(graph, seed=seed, **{
            k: v for k, v in kwargs.items() if k in ("delta", "k")})
    return find_hamiltonian_cycle(graph, algorithm=algorithm, seed=seed, **kwargs)


def _cmd_run(args) -> int:
    graph, p = _make_graph(args)
    kwargs: dict = {}
    if args.algorithm in _CONGEST_ALGORITHMS:
        kwargs["audit_memory"] = args.audit_memory
    if args.algorithm in ("dhc1", "dhc2", "dhc2-fast") and args.k is not None:
        kwargs["k"] = args.k
    if args.algorithm in ("dhc2", "dhc2-fast"):
        kwargs["delta"] = args.delta

    kmachine_summary = None
    if args.k_machines is not None:
        from repro.kmachine import run_converted_hc

        if args.algorithm not in ("dra", "dhc1", "dhc2"):
            print("--k-machines applies to the fully-distributed CONGEST "
                  "algorithms (dra, dhc1, dhc2)", file=sys.stderr)
            return 2
        kwargs.pop("audit_memory", None)
        result, km = run_converted_hc(
            graph, algorithm=args.algorithm, k_machines=args.k_machines,
            seed=args.seed + 1, **{k: v for k, v in kwargs.items()
                                   if k in ("delta", "k")})
        kmachine_summary = km.summary()
    else:
        result = _dispatch(graph, args.algorithm, args.seed + 1, **kwargs)

    if args.json:
        payload = {
            "algorithm": result.algorithm,
            "n": args.nodes,
            "p": p,
            "m": graph.m,
            "success": result.success,
            "rounds": result.rounds,
            "messages": result.messages,
            "bits": result.bits,
            "steps": result.steps,
            "engine": result.engine,
            "detail": {k: v for k, v in result.detail.items() if k != "state_words"},
        }
        if kmachine_summary is not None:
            payload["kmachine"] = kmachine_summary
        print(json.dumps(payload, indent=2))
    else:
        print(f"graph: {args.model}(n={args.nodes}, p={p:.4f})  m={graph.m}")
        print(result)
        if result.success:
            head = " -> ".join(map(str, result.cycle[:8]))
            print(f"cycle: {head} -> ... (length {len(result.cycle)})")
        if kmachine_summary is not None:
            rows = [[k, v] for k, v in kmachine_summary.items()]
            print(render_table(["k-machine metric", "value"], rows))
    return 0 if result.success else 1


def _cmd_sweep(args) -> int:
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if len(sizes) < 2:
        print("sweep needs at least two sizes", file=sys.stderr)
        return 2
    rows = []
    ns, mean_rounds = [], []
    for n in sizes:
        p = paper_probability(n, args.delta, args.c)
        rounds, wins = [], 0
        for trial in range(args.trials):
            seed = args.seed + 1000 * trial + n
            graph = gnp_random_graph(n, p, seed=seed)
            sweep_kwargs = {}
            if args.algorithm in ("dhc2", "dhc2-fast"):
                sweep_kwargs["delta"] = args.delta
            result = _dispatch(graph, args.algorithm, seed, **sweep_kwargs)
            if result.success:
                wins += 1
                rounds.append(result.rounds)
        mean = sum(rounds) / len(rounds) if rounds else float("nan")
        rows.append([n, f"{p:.4f}", wins, args.trials, round(mean, 1)])
        if rounds:
            ns.append(float(n))
            mean_rounds.append(mean)

    exponent = None
    if len(ns) >= 2:
        _a, exponent = fit_power_law(ns, mean_rounds)
    if args.json:
        print(json.dumps({
            "algorithm": args.algorithm,
            "rows": rows,
            "fitted_exponent": exponent,
        }, indent=2))
    else:
        print(render_table(["n", "p", "successes", "trials", "mean rounds"], rows,
                           title=f"{args.algorithm} sweep (delta={args.delta}, "
                                 f"c={args.c})"))
        if exponent is not None:
            print(f"fitted rounds ~ n^{exponent:.3f}")
    return 0


def _cmd_graph(args) -> int:
    graph, p = _make_graph(args)
    stats = degree_statistics(graph)
    connected = is_connected(graph)
    diam: float | str
    if not connected:
        diam = "inf"
    elif args.exact_diameter:
        diam = diameter(graph)
    else:
        diam = diameter_lower_bound(graph, seed=args.seed)
    info = {
        "model": args.model,
        "n": graph.n,
        "m": graph.m,
        "p": p,
        "hamiltonicity_threshold": hamiltonicity_threshold(graph.n),
        "above_threshold": p >= hamiltonicity_threshold(graph.n),
        "connected": connected,
        "diameter" + ("" if args.exact_diameter else "_lower_bound"): diam,
        "degree": stats,
    }
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        rows = [[k, v] for k, v in info.items() if k != "degree"]
        rows.extend([f"degree_{k}", v] for k, v in stats.items())
        print(render_table(["property", "value"], rows))
    return 0


def _cmd_bounds(args) -> int:
    n, delta = args.nodes, args.delta
    k = max(1, round(n ** (1.0 - delta)))
    part = max(3, round(n / k))
    info = {
        "p": paper_probability(n, delta, args.c),
        "partitions (n^(1-delta))": k,
        "expected partition size": part,
        "dra_step_budget (Thm 2)": dra_step_budget(part),
        "diameter_budget per subgraph": diameter_budget(part),
        "predicted_dhc1_rounds (Thm 1)": round(predicted_dhc1_rounds(n), 1),
        "predicted_dhc2_rounds (Thm 10)": round(predicted_dhc2_rounds(n, delta), 1),
        "predicted_upcast_rounds (Thm 19)": round(
            predicted_upcast_rounds(n, paper_probability(n, delta, args.c)), 1),
        "partition_size_failure (Lem 4/7)": partition_size_failure(n, k),
        "merge_step_failure (Lem 8)": merge_step_failure(
            n, delta, paper_probability(n, delta, args.c)) if 0 < delta <= 1 else 1.0,
        "ln(n)": round(math.log(n), 3),
    }
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(render_table(["bound", "value"], [[k_, v] for k_, v in info.items()],
                           title=f"paper predictions at n={n}, delta={delta}, "
                                 f"c={args.c}"))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "graph": _cmd_graph,
    "bounds": _cmd_bounds,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy invocation: bare flags imply `run`.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    if args.command is None:
        build_parser().print_help()
        return 2
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
