"""Command-line front end: ``repro`` (historical alias ``repro-hc``).

Subcommands
-----------
``run``
    One algorithm on one random graph, dispatched through the engine
    registry, e.g.::

        repro run --algorithm dhc2 --nodes 256 --delta 0.5 --c 6 --seed 1
        repro run --algorithm dhc2 --engine congest --nodes 256
        repro run --algorithm dhc2 --nodes 256 --k-machines 8
        repro run --algorithm levy --nodes 256 --delta 0.25 --json

``sweep``
    Scaling study: run an algorithm over a node-count grid (optionally
    across worker processes, with a pluggable scheduler and store
    backend, and optionally as one shard of a multi-host sweep)::

        repro sweep --algorithm dhc1 --sizes 64,128,256,512 --trials 3
        repro sweep --algorithm dhc2 --sizes 256,512,1024 --jobs 4 \\
            --store sweep.jsonl
        repro sweep --sizes 256,8192 --jobs 8 --schedule work-stealing \\
            --store-backend sharded --store sweep_store/
        repro sweep --sizes 64,128 --shard 0/2 --store-backend sharded \\
            --store sweep_store/          # host 0 of 2; same seed tree

``merge``
    Fuse shard trial stores (from ``--shard``/``--store-backend
    sharded`` sweeps, or any JSONL stores) into one canonical JSONL
    with dedup, conflict, and completeness checks::

        repro merge sweep_store/ --out merged.jsonl --trials 3

``engines``
    List every registered ``(algorithm, engine)`` pair with its
    capabilities.

``graph``
    Generate a graph and report its structure (degrees, connectivity,
    diameter, the paper's thresholds)::

        repro graph --nodes 512 --delta 0.5 --c 4

``bounds``
    Print the paper's predicted bounds for given parameters (round
    budgets, failure probabilities).

Invoked with legacy flags only (no subcommand), ``run`` is assumed.

All algorithm execution goes through :func:`repro.run` /
:data:`repro.engines.registry.REGISTRY`; this module contains no
per-algorithm dispatch of its own.  ``--engine auto`` (the default)
picks the fastest engine that supports the request — e.g. plain runs
use the step-level fast engine where one is registered, while
``--audit-memory`` steers the run onto the message-level congest
simulator, the only engine that can audit per-node state.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

from repro.analysis.bounds import (
    diameter_budget,
    dra_step_budget,
    fit_power_law,
    predicted_dhc1_rounds,
    predicted_dhc2_rounds,
    predicted_upcast_rounds,
)
from repro.analysis.concentration import merge_step_failure, partition_size_failure
from repro.engines import _jit
from repro.engines.fast_batch import AUTO_BATCH_MIN_TRIALS, auto_batch_size
from repro.engines.registry import REGISTRY
from repro.graphs import (
    batch_gnp,
    degree_statistics,
    diameter,
    diameter_lower_bound,
    gnm_random_graph,
    gnp_random_graph,
    hamiltonicity_threshold,
    is_connected,
    paper_probability,
    random_regular_graph,
)
from repro.harness import (
    SCHEDULERS,
    STORE_BACKENDS,
    JsonlStore,
    MetricsCollector,
    ParallelTrialRunner,
    ShardedStore,
    ShardSpec,
    TrialRunner,
    make_store,
    merge_stores,
)
from repro.reporting import render_table

__all__ = ["main", "build_parser"]

#: Pre-registry algorithm names, kept as aliases: each pins the engine
#: the old name implied, so scripts and muscle memory keep working.
_LEGACY_ALIASES = {
    "dra-fast": ("dra", "fast"),
    "dhc2-fast": ("dhc2", "fast"),
}


def _algorithm_choices() -> list[str]:
    return REGISTRY.algorithms() + sorted(_LEGACY_ALIASES)


def _engine_choices() -> list[str]:
    return ["auto", *REGISTRY.engine_names()]


def _parse_network_arg(text: str, *, engine: str) -> str:
    """Validate ``--network JSON|@file`` into the canonical JSON string.

    The value is parsed into a
    :class:`~repro.congest.model.NetworkModel` here — bad documents
    fail before any graph is sampled — and handed to runners as the
    canonical string form (byte-stable and hashable, so sweep points
    carrying it stay store-canonicalisable).  With ``--engine async``
    a document without an explicit ``mode`` defaults to async, since
    latency/churn fields would otherwise trip the sync-mode validator.
    """
    from repro.congest.model import NetworkModel

    if text.startswith("@"):
        from pathlib import Path

        try:
            text = Path(text[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read --network file: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"--network is not valid JSON: {exc}") from None
    if engine == "async" and isinstance(data, dict):
        data = {"mode": "async", **data}
    model = NetworkModel.from_json(data)  # ValueError -> exit 2 in main
    return model.canonical()


def _resolve_algorithm(name: str, engine: str) -> tuple[str, str]:
    """Map a CLI algorithm name (possibly a legacy alias) to registry keys."""
    if name in _LEGACY_ALIASES:
        algorithm, implied = _LEGACY_ALIASES[name]
        if engine not in ("auto", implied):
            raise ValueError(
                f"--algorithm {name} implies --engine {implied}; "
                f"use --algorithm {algorithm} --engine {engine} instead")
        return algorithm, implied
    return name, engine


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", "-n", type=int, default=256)
    parser.add_argument("--delta", type=float, default=0.5,
                        help="edge probability exponent: p = c ln n / n**delta")
    parser.add_argument("--c", type=float, default=6.0,
                        help="density constant c in p = c ln n / n**delta")
    parser.add_argument("--model", default="gnp",
                        choices=["gnp", "gnm", "regular"],
                        help="random-graph model (gnm/regular match the "
                             "expected edge count of the gnp setting)")
    parser.add_argument("--seed", type=int, default=0)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-hc",
        description="Distributed Hamiltonian cycles in random graphs "
                    "(ICDCS 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run one algorithm on one graph")
    _add_graph_arguments(run_p)
    run_p.add_argument("--algorithm", default="dhc2",
                       choices=_algorithm_choices())
    run_p.add_argument("--engine", default="auto", choices=_engine_choices(),
                       help="execution engine (auto = fastest that supports "
                            "the requested options)")
    run_p.add_argument("--k", type=int, default=None,
                       help="partition count override (DHC1/DHC2)")
    run_p.add_argument("--k-machines", type=int, default=None,
                       help="machine count: with --engine kmachine the "
                            "native machine-level engine runs directly; "
                            "otherwise the congest run is re-costed via "
                            "the Conversion Theorem (fully-distributed "
                            "algorithms only)")
    run_p.add_argument("--link-words", type=int, default=None,
                       help="k-machine per-link bandwidth W in words per "
                            "round (native engine and conversion)")
    run_p.add_argument("--audit-memory", action="store_true",
                       help="record per-node peak state (fully-distributed check)")
    run_p.add_argument("--network", default=None, metavar="JSON|@FILE",
                       help="network substrate as a NetworkModel JSON "
                            "document (or @file.json): mode sync|async, "
                            "bandwidth_words, fault_plan, latency, churn, "
                            "seed — e.g. '{\"fault_plan\":{\"drop_"
                            "probability\":0.05}}'; with --engine async an "
                            "omitted mode defaults to async")
    run_p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    sweep_p = sub.add_parser("sweep", help="scaling study over n")
    _add_graph_arguments(sweep_p)
    sweep_p.add_argument("--algorithm", default="dhc2",
                         choices=_algorithm_choices())
    sweep_p.add_argument("--engine", default="auto", choices=_engine_choices(),
                         help="execution engine (auto = fastest available)")
    sweep_p.add_argument("--sizes", default="64,128,256",
                         help="comma-separated node counts")
    sweep_p.add_argument("--trials", type=int, default=3)
    sweep_p.add_argument("--k-machines", type=int, default=None,
                         help="machine count for --engine kmachine sweeps")
    sweep_p.add_argument("--link-words", type=int, default=None,
                         help="per-link word budget for --engine kmachine "
                              "sweeps")
    sweep_p.add_argument("--jobs", type=int, default=1,
                         help="worker processes (1 = serial; seeds and "
                              "records are identical either way).  With a "
                              "threaded batch kernel active (REPRO_JIT=1 "
                              "REPRO_JIT_THREADS=N) auto-batching wins: "
                              "--jobs is demoted to 1 rather than "
                              "oversubscribing cores, and combining --jobs "
                              "with an explicit --batch-size > 1 is an "
                              "error")
    sweep_p.add_argument("--batch-size", type=int, default=None,
                         help="trials per engine pass for batched engines "
                              "(e.g. --engine fast-batch); 1 = per-trial "
                              "calls; engines without batch support warn "
                              "and fall back (records are identical for "
                              "any value).  Default: with --engine auto "
                              f"and >= {AUTO_BATCH_MIN_TRIALS} trials the "
                              "sweep auto-selects fast-batch where "
                              "registered, sizing batches per point from "
                              "REPRO_BATCH_EDGE_BUDGET; otherwise 1.  Set "
                              "REPRO_JIT_THREADS=N (with REPRO_JIT=1 and "
                              "numba) to run each batch pass on N cores")
    sweep_p.add_argument("--chunksize", type=int, default=None,
                         help="trials per worker IPC message (with --jobs; "
                              "default auto-sizes from the sweep, 1 = "
                              "one-task-per-message; results are identical "
                              "for any value)")
    sweep_p.add_argument("--schedule", default="ordered",
                         choices=sorted(SCHEDULERS),
                         help="trial scheduler (with --jobs): ordered = "
                              "store records byte-identical to a serial "
                              "run; work-stealing = completion order, no "
                              "head-of-line blocking on skewed grids "
                              "(canonical records identical either way)")
    sweep_p.add_argument("--store", default=None, metavar="PATH",
                         help="trial store for resume: completed trials "
                              "are skipped on rerun (a JSONL file, or a "
                              "directory with --store-backend sharded)")
    sweep_p.add_argument("--store-backend", default="jsonl",
                         choices=sorted(STORE_BACKENDS),
                         help="store backend for --store: jsonl = one "
                              "file; sharded = one lock-free shard file "
                              "per writer under a directory (use with "
                              "--shard); memory = discard (testing)")
    sweep_p.add_argument("--metrics", nargs="?", const="", default=None,
                         metavar="PATH",
                         help="collect sweep observability metrics "
                              "(sampled time-series, per-trial events, "
                              "aggregated KPIs — see docs/OBSERVABILITY"
                              ".md): prints a KPI report to stderr and "
                              "writes the versioned JSON payload to PATH "
                              "(default: a <store>.metrics.json sidecar "
                              "when --store is set, report-only "
                              "otherwise)")
    sweep_p.add_argument("--metrics-interval", type=float, default=1.0,
                         metavar="SECONDS",
                         help="wall-clock spacing of sampled metrics "
                              "snapshots (with --metrics; default 1.0)")
    sweep_p.add_argument("--network", default=None, metavar="JSON|@FILE",
                         help="network substrate for every trial (same "
                              "NetworkModel JSON form as `run --network`); "
                              "recorded in each grid point, so stores and "
                              "resume keys distinguish substrates")
    sweep_p.add_argument("--shard", default=None, metavar="I/N",
                         help="run only this host's deterministic slice "
                              "of the (point, trial) grid (0-based, e.g. "
                              "0/4); seeds are unchanged, so N shards "
                              "against the same master seed cover the "
                              "sweep exactly once — fuse with `repro "
                              "merge`")
    sweep_p.add_argument("--json", action="store_true")

    merge_p = sub.add_parser(
        "merge", help="fuse shard trial stores into one canonical JSONL")
    merge_p.add_argument("sources", nargs="+", metavar="STORE",
                         help="shard stores: sharded-store directories "
                              "and/or JSONL files")
    merge_p.add_argument("--out", required=True, metavar="PATH",
                         help="output JSONL store (rewritten in canonical "
                              "order)")
    merge_p.add_argument("--trials", type=int, default=None,
                         help="assert every grid point holds exactly this "
                              "many trials")
    merge_p.add_argument("--points", type=int, default=None,
                         help="assert exactly this many distinct grid "
                              "points appear (with --trials: full joint-"
                              "exhaustiveness check — catches a shard "
                              "store whose points are entirely missing)")
    merge_p.add_argument("--json", action="store_true")

    engines_p = sub.add_parser(
        "engines", help="list registered (algorithm, engine) pairs")
    engines_p.add_argument("--json", action="store_true")

    graph_p = sub.add_parser("graph", help="generate a graph and analyse it")
    _add_graph_arguments(graph_p)
    graph_p.add_argument("--exact-diameter", action="store_true",
                         help="exact diameter (O(n m); default is a bound)")
    graph_p.add_argument("--json", action="store_true")

    bounds_p = sub.add_parser("bounds", help="print the paper's predictions")
    _add_graph_arguments(bounds_p)
    bounds_p.add_argument("--json", action="store_true")

    return parser


def _sample_graph(model: str, n: int, delta: float, c: float, seed: int):
    """One random graph in the paper's parameterisation; returns (graph, p)."""
    p = paper_probability(n, delta, c)
    if model == "gnp":
        return gnp_random_graph(n, p, seed=seed), p
    expected_m = round(p * n * (n - 1) / 2)
    if model == "gnm":
        return gnm_random_graph(n, expected_m, seed=seed), p
    degree = max(3, round(p * (n - 1)))
    if (n * degree) % 2:
        degree += 1
    if degree > n // 2:
        raise ValueError(
            f"a {degree}-regular graph on {n} nodes is denser than the "
            f"pairing model's practical range (degree <= n/2); lower --c "
            f"or raise --delta / --nodes")
    return random_regular_graph(n, degree, seed=seed), p


def _make_graph(args):
    return _sample_graph(args.model, args.nodes, args.delta, args.c, args.seed)


def _cmd_run(args) -> int:
    algorithm, engine = _resolve_algorithm(args.algorithm, args.engine)
    graph, p = _make_graph(args)

    # Hard requirements (explicitly requested -> must be supported);
    # delta is soft: it parameterises the graph for every algorithm but
    # only some runners consume it, so it is filtered per spec.
    required: dict = {}
    if args.audit_memory:
        required["audit_memory"] = True
    if args.k is not None:
        required["k"] = args.k
    if args.network is not None:
        if args.k_machines is not None and engine != "kmachine":
            print("--network describes the congest/async substrate; the "
                  "k-machine conversion re-costs a synchronous fault-free "
                  "run and does not compose with it", file=sys.stderr)
            return 2
        required["network"] = _parse_network_arg(args.network, engine=engine)

    kmachine_summary = None
    if engine == "kmachine":
        # Native machine-level execution: k-machine knobs are ordinary
        # engine kwargs, validated like any other capability.
        if args.k_machines is not None:
            required["k_machines"] = args.k_machines
        if args.link_words is not None:
            required["link_words"] = args.link_words
        spec = REGISTRY.resolve(algorithm, engine, require=required)
        kwargs = dict(required)
        kwargs.update(spec.filter_kwargs({"delta": args.delta}))
        result = spec.call(graph, seed=args.seed + 1, **kwargs)
        kmachine_summary = result.detail.get("kmachine")
    elif args.k_machines is not None:
        from repro.kmachine import run_converted_hc

        congest_spec = REGISTRY.engines_for(algorithm).get("congest")
        if congest_spec is None or not congest_spec.kmachine_convertible:
            print("--k-machines applies to the fully-distributed CONGEST "
                  f"algorithms ({', '.join(REGISTRY.convertible_algorithms())})",
                  file=sys.stderr)
            return 2
        if engine not in ("auto", "congest"):
            if args.algorithm in _LEGACY_ALIASES:
                print(f"--k-machines simulates the congest engine; use "
                      f"--algorithm {algorithm} instead of the "
                      f"{args.algorithm} alias", file=sys.stderr)
            else:
                print("--k-machines simulates the congest engine; drop "
                      f"--engine {engine}", file=sys.stderr)
            return 2
        required.pop("audit_memory", None)
        # Same capability validation the non-converted path gets from
        # resolve(): a clean error, not a traceback from deep inside.
        REGISTRY.resolve(algorithm, "congest", require=required)
        kwargs = dict(required)
        kwargs.update(congest_spec.filter_kwargs({"delta": args.delta}))
        if args.link_words is not None:
            kwargs["link_words"] = args.link_words
        result, km = run_converted_hc(
            graph, algorithm=algorithm, k_machines=args.k_machines,
            seed=args.seed + 1, **kwargs)
        kmachine_summary = km.summary()
    else:
        spec = REGISTRY.resolve(algorithm, engine, require=required)
        kwargs = dict(required)
        kwargs.update(spec.filter_kwargs({"delta": args.delta}))
        result = spec.call(graph, seed=args.seed + 1, **kwargs)

    if args.json:
        payload = {
            "algorithm": result.algorithm,
            "n": args.nodes,
            "p": p,
            "m": graph.m,
            "success": result.success,
            "rounds": result.rounds,
            "messages": result.messages,
            "bits": result.bits,
            "steps": result.steps,
            "engine": result.engine,
            "detail": {k: v for k, v in result.detail.items() if k != "state_words"},
        }
        if kmachine_summary is not None:
            payload["kmachine"] = kmachine_summary
        print(json.dumps(payload, indent=2))
    else:
        print(f"graph: {args.model}(n={args.nodes}, p={p:.4f})  m={graph.m}")
        print(result)
        if result.success:
            head = " -> ".join(map(str, result.cycle[:8]))
            print(f"cycle: {head} -> ... (length {len(result.cycle)})")
        if kmachine_summary is not None:
            rows = [[k, v] for k, v in kmachine_summary.items()]
            print(render_table(["k-machine metric", "value"], rows))
    return 0 if result.success else 1


class _SweepTrial:
    """One sweep trial as a picklable callable (``--jobs`` workers).

    Holds only plain parameters; the registry lookup happens inside the
    call, in whichever process runs it.
    """

    def __init__(self, algorithm: str, engine: str, delta: float, c: float,
                 model: str, extra: dict | None = None):
        self.algorithm = algorithm
        self.engine = engine
        self.delta = delta
        self.c = c
        self.model = model
        # Soft options (e.g. k_machines / link_words): filtered per
        # spec, so a mixed-engine sweep never trips on them.
        self.extra = dict(extra or {})

    def __call__(self, point: dict, seed: int):
        graph, _p = _sample_graph(
            self.model, point["n"], self.delta, self.c, seed)
        spec = REGISTRY.resolve(self.algorithm, self.engine)
        kwargs = spec.filter_kwargs({"delta": self.delta, **self.extra})
        if "network" in point:
            # Canonical NetworkModel JSON riding in the grid point
            # (--network sweeps); the engine was pinned to one that
            # declares the kwarg, so spec.call validates it normally.
            kwargs["network"] = point["network"]
        return spec.call(graph, seed=seed, **kwargs)


class _AutoBatchSize:
    """Picklable per-point batch caps for the auto-selected batch path.

    Sizes each grid point's groups from its expected edge density
    (:func:`~repro.engines.fast_batch.auto_batch_size` under
    ``REPRO_BATCH_EDGE_BUDGET``), so one sweep mixes small-n points
    batched in the hundreds with large-n points batched to fit memory.
    """

    def __init__(self, delta: float, c: float):
        self.delta = delta
        self.c = c

    def __call__(self, point: dict) -> int:
        n = int(point["n"])
        return auto_batch_size(n, paper_probability(n, self.delta, self.c))


class _SweepTrialBatch:
    """A batch of sweep trials as one picklable engine pass.

    Mirrors :class:`_SweepTrial`, but samples one graph per seed and
    hands the whole group to ``spec.call_batch`` — one kernel pass over
    the group, with per-seed results identical to per-trial calls.
    """

    def __init__(self, algorithm: str, engine: str, delta: float, c: float,
                 model: str, extra: dict | None = None):
        self.algorithm = algorithm
        self.engine = engine
        self.delta = delta
        self.c = c
        self.model = model
        self.extra = dict(extra or {})

    def __call__(self, point: dict, seeds: list[int]):
        n = int(point["n"])
        if self.model == "gnp":
            # Zero-copy batch setup: the pooled generator emits the
            # stacked CSR + twin table the kernel consumes directly,
            # seed-for-seed identical to per-trial sampling.
            graphs = batch_gnp(n, paper_probability(n, self.delta, self.c),
                               seeds)
        else:
            graphs = [_sample_graph(self.model, n, self.delta, self.c,
                                    seed)[0] for seed in seeds]
        spec = REGISTRY.resolve(self.algorithm, self.engine)
        kwargs = spec.filter_kwargs({"delta": self.delta, **self.extra})
        return spec.call_batch(graphs, seeds=list(seeds), **kwargs)


def _cmd_sweep(args) -> int:
    algorithm, engine = _resolve_algorithm(args.algorithm, args.engine)
    sizes = [int(s) for s in args.sizes.split(",") if s.strip()]
    if len(sizes) < 2:
        print("sweep needs at least two sizes", file=sys.stderr)
        return 2
    # Fail an invalid (algorithm, engine) pair here, before any graph
    # is sampled or worker pool spawned; trials re-resolve per call
    # (deterministically — same algorithm, engine, and empty require).
    network = None
    if args.network is not None:
        network = _parse_network_arg(args.network, engine=engine)
        # Pin the engine now: trials re-resolve by name, and "auto"
        # must not land on an engine that cannot honour the model.
        spec = REGISTRY.resolve(algorithm, engine, require=("network",))
        engine = spec.engine
    else:
        spec = REGISTRY.resolve(algorithm, engine)
    resolved_engine = spec.engine

    if args.batch_size is not None and args.batch_size < 1:
        print("--batch-size must be >= 1", file=sys.stderr)
        return 2
    batch_size: int | _AutoBatchSize = args.batch_size or 1
    if args.batch_size is None:
        # Large same-point queues get the batch kernel without a flag:
        # results are seed-for-seed identical to per-trial fast, so
        # auto-selection only changes throughput.
        if (engine == "auto" and args.trials >= AUTO_BATCH_MIN_TRIALS
                and (algorithm, "fast-batch") in REGISTRY):
            engine = "fast-batch"
            spec = REGISTRY.get(algorithm, "fast-batch")
            resolved_engine = spec.engine
            batch_size = _AutoBatchSize(args.delta, args.c)
    elif batch_size > 1 and not spec.batched:
        print(f"engine {resolved_engine!r} has no batch runner; "
              f"ignoring --batch-size {batch_size} (try --engine "
              f"fast-batch)", file=sys.stderr)
        batch_size = 1

    # Parallelism composition rule (documented in ARCHITECTURE.md):
    # batch passes and process fan-out both want the cores.  When the
    # threaded fused kernel is active for this engine, one kernel pass
    # already uses every requested core, so auto-batching wins and
    # --jobs is demoted; asking for both *explicitly* (--jobs with
    # --batch-size > 1) is a conflict, not a preference, and errors
    # out.  Without kernel threads the two compose fine: batches are
    # split across the workers.
    jobs = args.jobs
    threaded = _jit.THREADED and spec.threads
    if jobs > 1 and threaded:
        if args.batch_size is not None and args.batch_size > 1 and spec.batched:
            print(f"--jobs {jobs} with --batch-size {args.batch_size} "
                  f"conflicts with the threaded batch kernel "
                  f"(REPRO_JIT_THREADS={_jit.THREADS}): each batch pass "
                  f"already runs on {_jit.THREADS} threads, so process "
                  f"fan-out would oversubscribe every core; drop --jobs "
                  f"or set REPRO_JIT_THREADS=0", file=sys.stderr)
            return 2
        if isinstance(batch_size, _AutoBatchSize):
            print(f"auto-batching with the threaded batch kernel "
                  f"(REPRO_JIT_THREADS={_jit.THREADS}) already uses "
                  f"{_jit.THREADS} threads per pass; demoting --jobs "
                  f"{jobs} to 1", file=sys.stderr)
            jobs = 1

    shard = ShardSpec.parse(args.shard) if args.shard else None

    store = None
    if args.store:
        store_kwargs = {}
        if args.store_backend == "sharded" and shard is not None:
            # A stable writer label so a rerun of the same shard
            # resumes into its own file instead of opening a new one.
            store_kwargs["shard"] = shard.label
        store = make_store(args.store_backend, args.store, **store_kwargs)
    elif args.store_backend != "jsonl":
        print(f"--store-backend {args.store_backend} needs --store PATH",
              file=sys.stderr)
        return 2

    extra = {key: value for key, value in
             (("k_machines", args.k_machines), ("link_words", args.link_words))
             if value is not None}
    trial_fn = _SweepTrial(algorithm, engine, args.delta, args.c, args.model,
                           extra)
    collector = None
    if args.metrics is not None:
        if args.metrics_interval <= 0:
            print("--metrics-interval must be > 0", file=sys.stderr)
            return 2
        collector = MetricsCollector(sample_interval_s=args.metrics_interval)
    runner_cls = ParallelTrialRunner if jobs > 1 else TrialRunner
    runner_kwargs = {"master_seed": args.seed, "store": store, "shard": shard,
                     "metrics": collector}
    if callable(batch_size) or batch_size > 1:
        runner_kwargs["batch_fn"] = _SweepTrialBatch(
            algorithm, engine, args.delta, args.c, args.model, extra)
        runner_kwargs["batch_size"] = batch_size
    if jobs > 1:
        runner_kwargs["jobs"] = jobs
        runner_kwargs["chunksize"] = args.chunksize
        runner_kwargs["schedule"] = args.schedule
    runner = runner_cls(trial_fn, **runner_kwargs)
    points: list[dict] = [{"n": n} for n in sizes]
    if network is not None:
        # The canonical string rides in the grid point: trial keys,
        # store records, and resume matching all distinguish substrates
        # without any side channel.
        for point in points:
            point["network"] = network
    trials = runner.run(points, trials=args.trials)

    if collector is not None:
        # KPI report on stderr (the table/JSON below own stdout), the
        # machine-readable payload to an explicit PATH or the store's
        # sidecar (--metrics with no PATH and no --store: report only).
        context = {"algorithm": algorithm, "engine": resolved_engine,
                   "sizes": sizes, "trials": args.trials,
                   "master_seed": args.seed, "jobs": jobs,
                   "schedule": args.schedule if jobs > 1 else "serial"}
        if shard is not None:
            context["shard"] = str(shard)
        payload = collector.payload(context)
        print(collector.report(context), file=sys.stderr)
        metrics_out = None
        if args.metrics:
            from pathlib import Path

            metrics_out = Path(args.metrics)
            metrics_out.parent.mkdir(parents=True, exist_ok=True)
            metrics_out.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8")
        elif store is not None:
            metrics_out = store.write_metrics(payload)
        if metrics_out is not None:
            print(f"metrics -> {metrics_out}", file=sys.stderr)

    rows = []
    ns, mean_rounds = [], []
    for n in sizes:
        bucket = [t for t in trials if t.point["n"] == n]
        if shard is not None and not bucket:
            continue  # this host owns no trial of that point
        wins = sum(t.success for t in bucket)
        rounds = [t.metrics["rounds"] for t in bucket
                  if t.success and "rounds" in t.metrics]
        p = paper_probability(n, args.delta, args.c)
        mean = sum(rounds) / len(rounds) if rounds else float("nan")
        owned = len(bucket) if shard is not None else args.trials
        rows.append([n, f"{p:.4f}", wins, owned, round(mean, 1)])
        if rounds and mean > 0:
            # Sequential engines report rounds=0 (nothing distributed
            # to account for); a power-law fit is meaningless there.
            ns.append(float(n))
            mean_rounds.append(mean)

    exponent = None
    if len(ns) >= 2:
        _a, exponent = fit_power_law(ns, mean_rounds)
    if args.json:
        payload = {
            "algorithm": algorithm,
            "engine": resolved_engine,
            "jobs": jobs,
            "rows": rows,
            "fitted_exponent": exponent,
        }
        if shard is not None:
            payload["shard"] = str(shard)
            payload["trials_run"] = len(trials)
        print(json.dumps(payload, indent=2))
    else:
        title = (f"{algorithm} sweep (engine={resolved_engine}, "
                 f"delta={args.delta}, c={args.c}")
        title += f", shard {shard})" if shard is not None else ")"
        print(render_table(["n", "p", "successes", "trials", "mean rounds"],
                           rows, title=title))
        if exponent is not None:
            print(f"fitted rounds ~ n^{exponent:.3f}")
        if shard is not None:
            print(f"shard {shard}: ran {len(trials)} of "
                  f"{len(sizes) * args.trials} trials; fuse the shard "
                  f"stores with `repro merge`")
    return 0


def _open_source_store(path_text: str):
    """A merge source: a sharded-store directory or one JSONL file."""
    from pathlib import Path

    path = Path(path_text)
    if path.is_dir():
        store = ShardedStore(path)
        if not store.shard_paths():
            # An empty directory must not masquerade as an empty store —
            # that would silently drop a shard's records from the merge.
            raise ValueError(
                f"merge source {path_text!r} contains no shard files "
                f"(shard-*.jsonl); did the sweep run with "
                f"--store-backend sharded --store {path_text}?")
        return store
    if not path.exists():
        # Same reasoning for a typo'd path.
        raise ValueError(f"merge source {path_text!r} does not exist")
    return JsonlStore(path)


def _cmd_merge(args) -> int:
    sources = [_open_source_store(p) for p in args.sources]
    dest = JsonlStore(args.out)
    trials = merge_stores(sources, dest, expect_trials=args.trials,
                          expect_points=args.points, require_records=True)
    points = {tuple(sorted(t.point.items())) for t in trials}
    if args.json:
        print(json.dumps({
            "out": args.out,
            "sources": list(args.sources),
            "records": len(trials),
            "points": len(points),
        }, indent=2))
    else:
        print(f"merged {len(sources)} store(s) -> {args.out}: "
              f"{len(trials)} canonical records over {len(points)} "
              f"grid point(s)")
    return 0


def _cmd_engines(args) -> int:
    specs = sorted(REGISTRY, key=lambda s: (s.algorithm, -s.priority))
    if args.json:
        print(json.dumps([{
            "algorithm": s.algorithm,
            "engine": s.engine,
            "supported_kwargs": sorted(s.supported_kwargs),
            "kmachine_convertible": s.kmachine_convertible,
            "audits_memory": s.audits_memory,
            "batched": s.batched,
            "async_capable": s.async_capable,
            "jit": s.jit,
            "threads": s.threads,
            "parity": sorted(s.parity),
            "summary": s.summary,
        } for s in specs], indent=2))
    else:
        rows = [[s.algorithm, s.engine,
                 "yes" if s.kmachine_convertible else "-",
                 "yes" if s.audits_memory else "-",
                 "yes" if s.batched else "-",
                 "yes" if s.async_capable else "-",
                 "yes" if s.jit else "-",
                 "yes" if s.threads else "-",
                 ",".join(sorted(s.supported_kwargs)) or "-",
                 s.summary]
                for s in specs]
        print(render_table(
            ["algorithm", "engine", "k-machine", "audit", "batched", "async",
             "jit", "threads", "kwargs", "summary"],
            rows, title="registered (algorithm, engine) pairs"))
    return 0


def _cmd_graph(args) -> int:
    graph, p = _make_graph(args)
    stats = degree_statistics(graph)
    connected = is_connected(graph)
    diam: float | str
    if not connected:
        diam = "inf"
    elif args.exact_diameter:
        diam = diameter(graph)
    else:
        diam = diameter_lower_bound(graph, seed=args.seed)
    info = {
        "model": args.model,
        "n": graph.n,
        "m": graph.m,
        "p": p,
        "hamiltonicity_threshold": hamiltonicity_threshold(graph.n),
        "above_threshold": p >= hamiltonicity_threshold(graph.n),
        "connected": connected,
        "diameter" + ("" if args.exact_diameter else "_lower_bound"): diam,
        "degree": stats,
    }
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        rows = [[k, v] for k, v in info.items() if k != "degree"]
        rows.extend([f"degree_{k}", v] for k, v in stats.items())
        print(render_table(["property", "value"], rows))
    return 0


def _cmd_bounds(args) -> int:
    n, delta = args.nodes, args.delta
    k = max(1, round(n ** (1.0 - delta)))
    part = max(3, round(n / k))
    info = {
        "p": paper_probability(n, delta, args.c),
        "partitions (n^(1-delta))": k,
        "expected partition size": part,
        "dra_step_budget (Thm 2)": dra_step_budget(part),
        "diameter_budget per subgraph": diameter_budget(part),
        "predicted_dhc1_rounds (Thm 1)": round(predicted_dhc1_rounds(n), 1),
        "predicted_dhc2_rounds (Thm 10)": round(predicted_dhc2_rounds(n, delta), 1),
        "predicted_upcast_rounds (Thm 19)": round(
            predicted_upcast_rounds(n, paper_probability(n, delta, args.c)), 1),
        "partition_size_failure (Lem 4/7)": partition_size_failure(n, k),
        "merge_step_failure (Lem 8)": merge_step_failure(
            n, delta, paper_probability(n, delta, args.c)) if 0 < delta <= 1 else 1.0,
        "ln(n)": round(math.log(n), 3),
    }
    if args.json:
        print(json.dumps(info, indent=2))
    else:
        print(render_table(["bound", "value"], [[k_, v] for k_, v in info.items()],
                           title=f"paper predictions at n={n}, delta={delta}, "
                                 f"c={args.c}"))
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "merge": _cmd_merge,
    "engines": _cmd_engines,
    "graph": _cmd_graph,
    "bounds": _cmd_bounds,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Legacy invocation: bare flags imply `run`.
    if argv and argv[0].startswith("-") and argv[0] not in ("-h", "--help"):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    if args.command is None:
        build_parser().print_help()
        return 2
    try:
        return _COMMANDS[args.command](args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
