"""Result presentation for the benchmark harness.

The paper is a theory paper: its "tables" are theorem statements and
its "figures" are scaling claims.  Every bench in ``benchmarks/``
prints a paper-style series through this subpackage —
:func:`~repro.reporting.table.render_table` for the rows,
:func:`~repro.reporting.chart.loglog_chart` for an ASCII look at the
scaling shape, and :class:`~repro.reporting.record.ExperimentRecord`
for the paper-vs-measured verdicts that EXPERIMENTS.md records.
"""

from repro.reporting.chart import loglog_chart, series_chart
from repro.reporting.record import ExperimentRecord, Verdict
from repro.reporting.table import render_table

__all__ = [
    "render_table",
    "loglog_chart",
    "series_chart",
    "ExperimentRecord",
    "Verdict",
]
