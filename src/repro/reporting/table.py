"""Plain-text table rendering for benchmark output.

No dependency beyond the standard library: benches run under pytest
and in CI logs, where aligned monospace columns are the only portable
presentation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_cell"]


def format_cell(value: object, *, precision: int = 3) -> str:
    """Format one cell: floats get ``precision`` significant handling,
    everything else is ``str()``.

    Floats that are integral print without a decimal tail so round
    counts stay readable.
    """
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)  # nan / inf
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render an aligned monospace table.

    Examples
    --------
    >>> print(render_table(["n", "rounds"], [[64, 112], [256, 230]]))
    n    rounds
    ---  ------
    64   112
    256  230
    """
    header_cells = [str(h) for h in headers]
    body = [[format_cell(c, precision=precision) for c in row] for row in rows]
    for row in body:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_cells)} columns")
    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line(header_cells))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(row) for row in body)
    return "\n".join(parts)
