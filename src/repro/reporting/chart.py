"""ASCII scatter charts for scaling benches.

A log–log scatter is how one eyeballs a power law; these render one in
plain text so every bench can show its scaling shape directly in the
pytest output, matplotlib-free.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["loglog_chart", "series_chart"]

_MARKS = "ox+*#@%&"


def loglog_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named y-series against shared x positions, log–log scaled.

    Each series gets a distinct mark; the legend maps marks back to
    names.  Non-positive values are skipped (cannot be log-scaled).
    """
    if not series:
        raise ValueError("need at least one series")
    points: list[tuple[float, float, int]] = []
    for idx, values in enumerate(series.values()):
        if len(values) != len(xs):
            raise ValueError("every series must have one value per x")
        for x, y in zip(xs, values):
            if x > 0 and y > 0:
                points.append((math.log10(x), math.log10(y), idx))
    if not points:
        raise ValueError("no positive points to plot")
    return _render(points, list(series), width, height, x_label, y_label,
                   (min(p[0] for p in points), max(p[0] for p in points)),
                   (min(p[1] for p in points), max(p[1] for p in points)),
                   log_axes=True)


def series_chart(
    xs: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Linear-scale variant of :func:`loglog_chart` (e.g. success rates)."""
    if not series:
        raise ValueError("need at least one series")
    points = []
    for idx, values in enumerate(series.values()):
        if len(values) != len(xs):
            raise ValueError("every series must have one value per x")
        points.extend((float(x), float(y), idx) for x, y in zip(xs, values))
    if not points:
        raise ValueError("no points to plot")
    return _render(points, list(series), width, height, x_label, y_label,
                   (min(p[0] for p in points), max(p[0] for p in points)),
                   (min(p[1] for p in points), max(p[1] for p in points)),
                   log_axes=False)


def _render(points, names, width, height, x_label, y_label,
            x_range, y_range, *, log_axes) -> str:
    x_lo, x_hi = x_range
    y_lo, y_hi = y_range
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    for x, y, idx in points:
        col = int((x - x_lo) / x_span * (width - 1))
        row = int((y - y_lo) / y_span * (height - 1))
        grid[height - 1 - row][col] = _MARKS[idx % len(_MARKS)]

    def axis_value(v: float) -> str:
        return f"1e{v:.1f}" if log_axes else f"{v:.3g}"

    lines = [f"{y_label} ({axis_value(y_lo)} .. {axis_value(y_hi)})"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {axis_value(x_lo)} .. {axis_value(x_hi)}")
    legend = "  ".join(
        f"{_MARKS[i % len(_MARKS)]}={name}" for i, name in enumerate(names))
    lines.append(f" legend: {legend}")
    return "\n".join(lines)
