"""Paper-vs-measured experiment records.

EXPERIMENTS.md is a table of verdicts: for each theorem/figure, what
the paper predicts, what this reproduction measured, and whether the
shape holds.  :class:`ExperimentRecord` is that row as an object — the
benches build one, print it, and its markdown form is what the
documentation quotes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.reporting.table import format_cell, render_table

__all__ = ["Verdict", "ExperimentRecord"]


class Verdict(enum.Enum):
    """Outcome categories used in EXPERIMENTS.md."""

    REPRODUCED = "reproduced"
    PARTIAL = "partially reproduced"
    DEVIATION = "deviation (documented)"
    NOT_APPLICABLE = "not applicable"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class ExperimentRecord:
    """One experiment's paper-vs-measured summary.

    Attributes
    ----------
    experiment_id:
        The DESIGN.md id ("E1" ... "E13", "A1" ...).
    claim:
        The paper's statement being tested (theorem/lemma/fact).
    predicted:
        The paper-side quantity (e.g. "slope 0.5 ± polylog drift").
    measured:
        The measured counterpart.
    verdict:
        A :class:`Verdict`.
    series:
        Optional named columns of the underlying data, e.g.
        ``{"n": [...], "rounds": [...]}`` — all the same length.
    notes:
        Free-form caveats (constants used, engine, trial counts).
    """

    experiment_id: str
    claim: str
    predicted: str
    measured: str
    verdict: Verdict
    series: dict[str, list] = field(default_factory=dict)
    notes: str = ""

    def __post_init__(self):
        lengths = {len(v) for v in self.series.values()}
        if len(lengths) > 1:
            raise ValueError(
                f"series columns have mismatched lengths: "
                f"{ {k: len(v) for k, v in self.series.items()} }")

    def data_rows(self) -> list[list]:
        """The series as table rows (column order = insertion order)."""
        if not self.series:
            return []
        columns = list(self.series.values())
        return [list(row) for row in zip(*columns)]

    def render(self) -> str:
        """Human-readable block for bench stdout."""
        lines = [
            f"[{self.experiment_id}] {self.claim}",
            f"  paper:    {self.predicted}",
            f"  measured: {self.measured}",
            f"  verdict:  {self.verdict}",
        ]
        if self.notes:
            lines.append(f"  notes:    {self.notes}")
        if self.series:
            table = render_table(list(self.series), self.data_rows())
            lines.append("")
            lines.extend("  " + ln for ln in table.splitlines())
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A markdown section in the EXPERIMENTS.md house style."""
        lines = [
            f"### {self.experiment_id} — {self.claim}",
            "",
            f"- **Paper:** {self.predicted}",
            f"- **Measured:** {self.measured}",
            f"- **Verdict:** {self.verdict}",
        ]
        if self.notes:
            lines.append(f"- **Notes:** {self.notes}")
        if self.series:
            headers = list(self.series)
            lines.append("")
            lines.append("| " + " | ".join(headers) + " |")
            lines.append("|" + "|".join("---" for _ in headers) + "|")
            for row in self.data_rows():
                lines.append(
                    "| " + " | ".join(format_cell(c) for c in row) + " |")
        return "\n".join(lines)
