"""repro — distributed Hamiltonian cycles in random graphs (ICDCS 2018).

A full reproduction of Chatterjee, Fathi, Pandurangan, Pham,
"Fast and Efficient Distributed Computation of Hamiltonian Cycles in
Random Graphs": the CONGEST simulator substrate, the DRA / DHC1 / DHC2
fully-distributed algorithms, the centralized Upcast algorithm, and the
sequential baselines, plus a benchmark harness that validates every
theorem of the paper empirically.

Quickstart
----------
>>> import repro
>>> n = 256
>>> g = repro.gnp_random_graph(n, repro.paper_probability(n, delta=0.5, c=4.0), seed=1)
>>> result = repro.run(g, "dhc2", engine="auto", delta=0.5, seed=1)
>>> result.success
True

:func:`repro.run` dispatches through the ``(algorithm, engine)``
registry (:data:`repro.engines.registry.REGISTRY`); the per-algorithm
front ends (``run_dhc2`` & co.) remain available for direct use.
"""

from repro.graphs import (
    Graph,
    gnm_random_graph,
    gnp_random_graph,
    hamiltonicity_threshold,
    paper_probability,
    random_regular_graph,
)
from repro.verify import is_hamiltonian_cycle, verify_cycle

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "gnp_random_graph",
    "gnm_random_graph",
    "random_regular_graph",
    "paper_probability",
    "hamiltonicity_threshold",
    "is_hamiltonian_cycle",
    "verify_cycle",
    "run_dra",
    "run_dhc1",
    "run_dhc2",
    "run_upcast",
    "run_trivial",
    "run_levy",
    "run_local_collect",
    "find_hamiltonian_cycle",
    "RunResult",
    "run",
    "REGISTRY",
    "EngineRegistry",
    "EngineSpec",
    "NetworkModel",
    "LatencySpec",
    "FaultPlan",
    "__version__",
]

_CORE_EXPORTS = {
    "run_dra",
    "run_dhc1",
    "run_dhc2",
    "run_upcast",
    "run_trivial",
    "find_hamiltonian_cycle",
    "RunResult",
}

_BASELINE_EXPORTS = {"run_levy", "run_local_collect"}

_ENGINE_EXPORTS = {"run", "REGISTRY", "EngineRegistry", "EngineSpec"}

_CONGEST_EXPORTS = {"NetworkModel", "LatencySpec", "FaultPlan"}


def __getattr__(name):  # lazy: repro.core pulls in every substrate
    if name in _CONGEST_EXPORTS:
        import repro.congest as _congest

        return getattr(_congest, name)
    if name in _CORE_EXPORTS:
        import repro.core as _core

        return getattr(_core, name)
    if name in _BASELINE_EXPORTS:
        import repro.baselines as _baselines

        return getattr(_baselines, name)
    if name in _ENGINE_EXPORTS:
        import repro.engines as _engines

        return getattr(_engines, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
