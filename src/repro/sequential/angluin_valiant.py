"""Sequential Angluin–Valiant rotation algorithm [1], [20].

The classical ``O(n log^2 n)`` randomized sequential algorithm for
Hamiltonian cycles in ``G(n, p)`` with ``p >= c ln n / n`` — the
algorithm our distributed DRA (Algorithm 1) distributes, and the local
solver the Upcast root runs (Section III step 4).

The implementation mirrors the textbook presentation (Mitzenmacher &
Upfal ch. 5): grow a path from a start node; the head repeatedly takes
a random unused incident edge; a hit on a fresh node extends the path,
a hit on an on-path node rotates it (Fig. 2 of the paper), and a hit on
the start node when the path spans everything closes the cycle.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

__all__ = ["angluin_valiant_cycle", "sequential_step_budget"]


def sequential_step_budget(n: int, factor: float = 7.0) -> int:
    """Theorem 2's ``7 n ln n`` step budget, reused sequentially."""
    if n < 2:
        return 16
    return int(factor * n * max(1.0, math.log(n))) + 64


def angluin_valiant_cycle(
    n: int,
    neighbors: Mapping[int, Sequence[int]] | None = None,
    *,
    graph=None,
    rng: np.random.Generator | int = 0,
    step_budget: int | None = None,
) -> list[int] | None:
    """Find a Hamiltonian cycle by rotation-extension, or ``None``.

    Accepts either an adjacency mapping ``node -> neighbour list`` (as
    the Upcast root holds after sampling) or a ``graph=`` Graph.  The
    walk starts at node 0 and runs until closure, edge exhaustion, or
    the step budget.
    """
    if graph is not None:
        neighbors = {v: graph.neighbor_list(v) for v in range(graph.n)}
    if neighbors is None:
        raise ValueError("provide either an adjacency mapping or graph=")
    if len(neighbors) != n:
        raise ValueError(f"adjacency covers {len(neighbors)} nodes, expected {n}")
    if n < 3:
        return None
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    budget = step_budget if step_budget is not None else sequential_step_budget(n)

    unused: dict[int, list[int]] = {v: list(neighbors[v]) for v in neighbors}
    path = [0]
    pos = {0: 0}

    for _step in range(budget):
        head = path[-1]
        bucket = unused[head]
        if not bucket:
            return None
        idx = int(gen.integers(len(bucket)))
        target = bucket[idx]
        bucket[idx] = bucket[-1]
        bucket.pop()
        try:
            unused[target].remove(head)
        except ValueError:
            pass  # already consumed from the other side

        if target not in pos:
            pos[target] = len(path)
            path.append(target)
        elif target == path[0] and len(path) == n:
            return path
        else:
            # Rotation: reverse the segment after the hit node (Fig. 2).
            j = pos[target]
            path[j + 1:] = reversed(path[j + 1:])
            for i in range(j + 1, len(path)):
                pos[path[i]] = i
    return None
