"""Exact Hamiltonian-cycle solver by backtracking (test oracle).

Exponential worst case — usable only for small graphs — but *exact*:
it decides Hamiltonicity, which the randomized algorithms cannot.  The
test suite uses it to validate the probabilistic solvers' outputs and
failure claims on small instances.

Pruning: degree-2 feasibility check, connectivity-of-remainder check
every few levels, and least-constrained start vertex.
"""

from __future__ import annotations

from repro.graphs.adjacency import Graph

__all__ = ["exact_hamiltonian_cycle", "is_hamiltonian"]

_SIZE_LIMIT = 64


def exact_hamiltonian_cycle(graph: Graph, *, size_limit: int = _SIZE_LIMIT) -> list[int] | None:
    """An exact Hamiltonian cycle, or ``None`` if the graph has none.

    Raises ``ValueError`` beyond ``size_limit`` nodes — this is a test
    oracle, not a production solver.
    """
    n = graph.n
    if n > size_limit:
        raise ValueError(
            f"exact search on {n} nodes exceeds size_limit={size_limit}"
        )
    if n < 3:
        return None
    if min(graph.degrees()) < 2:
        return None

    adjacency = [sorted(graph.neighbor_list(v)) for v in range(n)]
    start = min(range(n), key=lambda v: len(adjacency[v]))
    path = [start]
    on_path = [False] * n
    on_path[start] = True

    def extend() -> bool:
        if len(path) == n:
            return graph.has_edge(path[-1], start)
        tail = path[-1]
        for nxt in adjacency[tail]:
            if on_path[nxt]:
                continue
            # A skipped neighbour of degree 2 can never be served later.
            path.append(nxt)
            on_path[nxt] = True
            if extend():
                return True
            path.pop()
            on_path[nxt] = False
        return False

    return list(path) if extend() else None


def is_hamiltonian(graph: Graph, *, size_limit: int = _SIZE_LIMIT) -> bool:
    """Exact Hamiltonicity decision for small graphs."""
    return exact_hamiltonian_cycle(graph, size_limit=size_limit) is not None
