"""Sequential solvers: the Upcast root's local algorithm and test oracles."""

from repro.sequential.angluin_valiant import angluin_valiant_cycle, sequential_step_budget
from repro.sequential.backtracking import exact_hamiltonian_cycle, is_hamiltonian
from repro.sequential.posa import posa_cycle
from repro.sequential.runners import run_angluin_valiant, run_posa

__all__ = [
    "angluin_valiant_cycle",
    "sequential_step_budget",
    "posa_cycle",
    "exact_hamiltonian_cycle",
    "is_hamiltonian",
    "run_posa",
    "run_angluin_valiant",
]
