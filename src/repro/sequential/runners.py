"""RunResult front ends for the sequential solvers.

The sequential walks (:func:`~repro.sequential.angluin_valiant.angluin_valiant_cycle`
and its restarting wrapper :func:`~repro.sequential.posa.posa_cycle`)
return bare node lists; these front ends adapt them to the
library-standard :class:`~repro.engines.results.RunResult` so the
registry can dispatch to them like any distributed engine.  ``rounds``
is 0 — a sequential solver holds the whole graph, there is nothing
distributed to account for — which is exactly what makes them useful as
comparators and test oracles.
"""

from __future__ import annotations

from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.sequential.angluin_valiant import angluin_valiant_cycle
from repro.sequential.posa import posa_cycle
from repro.verify.hamiltonicity import CycleViolation, verify_cycle

__all__ = ["run_posa", "run_angluin_valiant"]


def _as_result(graph: Graph, algorithm: str, cycle: list[int] | None) -> RunResult:
    ok = cycle is not None
    if ok:
        try:
            verify_cycle(graph, cycle)
        except CycleViolation:
            ok, cycle = False, None
    return RunResult(algorithm=algorithm, success=ok, cycle=cycle if ok else None,
                     rounds=0, engine="sequential")


def run_posa(graph: Graph, *, seed: int = 0, restarts: int = 8,
             step_budget: int | None = None) -> RunResult:
    """Rotation–extension with restarts, as a registry-dispatchable runner."""
    neighbors = {v: graph.neighbor_list(v) for v in range(graph.n)}
    cycle = posa_cycle(graph.n, neighbors, rng=seed, restarts=restarts,
                       step_budget=step_budget)
    return _as_result(graph, "posa", cycle)


def run_angluin_valiant(graph: Graph, *, seed: int = 0,
                        step_budget: int | None = None) -> RunResult:
    """One Angluin–Valiant walk, as a registry-dispatchable runner."""
    cycle = angluin_valiant_cycle(graph.n, graph=graph, rng=seed,
                                  step_budget=step_budget)
    return _as_result(graph, "angluin-valiant", cycle)
