"""Pósa rotation–extension with restarts.

A robustness wrapper over the Angluin–Valiant walk: when a single walk
strands (edge exhaustion or budget), restart from scratch with fresh
randomness.  Near the Hamiltonicity threshold a single walk fails with
noticeable probability; a handful of restarts pushes the overall
failure rate down geometrically.  Used by the Upcast root (Section III
step 4), where a failed local solve would otherwise waste the whole
distributed upcast.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.sequential.angluin_valiant import angluin_valiant_cycle

__all__ = ["posa_cycle"]


def posa_cycle(
    n: int,
    neighbors: Mapping[int, Sequence[int]],
    *,
    rng: np.random.Generator | int = 0,
    restarts: int = 8,
    step_budget: int | None = None,
) -> list[int] | None:
    """Rotation–extension with up to ``restarts`` independent attempts."""
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    for _attempt in range(max(1, restarts)):
        cycle = angluin_valiant_cycle(
            n, neighbors, rng=gen, step_budget=step_budget
        )
        if cycle is not None:
            return cycle
    return None
