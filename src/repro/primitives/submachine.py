"""Composable sub-protocol machinery.

The paper's algorithms are built from recurring distributed building
blocks — leader election, BFS-tree construction, tree broadcast, and the
rotation walk itself.  Each block is a :class:`SubMachine`: a per-node
state machine with a message-kind namespace, hosted inside a full
:class:`~repro.congest.node.Protocol`.  The host routes each round's
incoming messages, *batched per machine*, to the machine owning their
kind prefix, and polls ``done``.

Batching matters under CONGEST: a machine that reacted to every message
individually could easily try to send twice over one edge in a round;
seeing the whole round's traffic at once lets it aggregate first
(e.g. flood-min forwards only the smallest id heard this round).

Sub-machines never touch the engine's wake-up API directly; the host
multiplexes the single per-node wake stream across its machines.
"""

from __future__ import annotations

from repro.congest.message import Message
from repro.congest.node import Context

__all__ = ["SubMachine", "SubMachineHost"]


class SubMachine:
    """Base class for a per-node sub-protocol.

    Subclasses set ``PREFIX`` (their message-kind namespace, unique per
    *instance* when several generations coexist, e.g. ``"bfs7"``) and
    implement :meth:`begin`, :meth:`on_messages`, and optionally
    :meth:`on_wake`.  Completion is signalled by setting
    ``self.done = True`` plus any result attributes the host reads.
    """

    PREFIX = ""

    def __init__(self) -> None:
        self.done = False
        self.failed = False
        self._host: "SubMachineHost | None" = None

    def kind(self, suffix: str) -> str:
        """Fully-qualified message kind within this machine's namespace."""
        return f"{self.PREFIX}.{suffix}"

    def schedule(self, ctx: Context, round_index: int) -> None:
        """Request a wake-up at ``round_index`` (via the host multiplexer)."""
        assert self._host is not None, "machine used before activation"
        self._host.machine_schedule(ctx, self, round_index)

    def begin(self, ctx: Context) -> None:
        """Called once when the host activates this machine."""

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        """Handle this round's batch of messages in this namespace."""

    def on_wake(self, ctx: Context) -> None:
        """Handle a wake-up previously requested via :meth:`schedule`."""


class SubMachineHost:
    """Mixin for protocols hosting sub-machines.

    Provides per-round batched message routing, early-message buffering
    (a neighbour may reach a later phase first and send messages for a
    machine this node has not activated yet), and wake-up multiplexing.
    """

    def __init__(self) -> None:
        self._machines: dict[str, SubMachine] = {}
        self._early: dict[str, list[Message]] = {}
        self._wake_targets: dict[int, set[str]] = {}
        self._retired: set[str] = set()

    def activate(self, ctx: Context, machine: SubMachine) -> None:
        """Start a sub-machine and replay any buffered early messages."""
        if not machine.PREFIX:
            raise ValueError("sub-machine must define a PREFIX")
        machine._host = self
        self._machines[machine.PREFIX] = machine
        machine.begin(ctx)
        backlog = self._early.pop(machine.PREFIX, [])
        if backlog and not machine.done:
            machine.on_messages(ctx, backlog)

    def deactivate(self, machine: SubMachine) -> None:
        """Remove a finished machine; later messages for it are dropped.

        Retiring keeps per-node state proportional to *live* activity —
        without it every completed election/BFS/walk would pin its peer
        lists forever and the memory audit would overstate the
        algorithms' footprint.
        """
        self._machines.pop(machine.PREFIX, None)
        self._early.pop(machine.PREFIX, None)
        self._retired.add(machine.PREFIX)

    def machine_schedule(self, ctx: Context, machine: SubMachine, round_index: int) -> None:
        """Request a wake-up for ``machine`` at ``round_index``."""
        pending = self._wake_targets.setdefault(round_index, set())
        if not pending:
            ctx.request_wake(round_index)
        pending.add(machine.PREFIX)

    def dispatch(self, ctx: Context, inbox: list[Message]) -> None:
        """Route this round's messages and due wake-ups to their machines.

        Messages are processed before wake-ups so that deadline-style
        wake-ups observe everything that arrived in their round.
        """
        batches: dict[str, list[Message]] = {}
        for message in inbox:
            prefix = message.kind.split(".", 1)[0]
            batches.setdefault(prefix, []).append(message)
        for prefix, batch in batches.items():
            machine = self._machines.get(prefix)
            if machine is None:
                if prefix not in self._retired:
                    self._early.setdefault(prefix, []).extend(batch)
            elif not machine.done:
                machine.on_messages(ctx, batch)
        due = self._wake_targets.pop(ctx.round_index, set())
        for prefix in sorted(due):
            machine = self._machines.get(prefix)
            if machine is not None and not machine.done:
                machine.on_wake(ctx)
