"""A reusable global barrier over a pre-built spanning tree.

DHC1's hypernode construction needs two whole-network synchronisation
points (every partition must finish announcing its ports before any
hypernode can enumerate its virtual neighbours, and every holder must
finish assembling its edge list before the virtual BFS may start).
This machine implements the textbook tree barrier: a readiness
convergecast up a global BFS tree followed by a "go" broadcast down it.

Each node calls :meth:`mark_ready` once its local condition holds; the
machine completes (``done``) when the root's "go" arrives, a constant
number of tree depths later.
"""

from __future__ import annotations

from typing import Callable

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = ["Barrier"]


class Barrier(SubMachine):
    """Tree barrier: readiness convergecast + go broadcast.

    Parameters: the global tree as seen from this node (``parent`` is -1
    at the root, ``children`` the tree children), and an injectable
    ``send`` for hosts that pace their traffic.
    """

    def __init__(self, prefix: str, *, parent: int, children: list[int],
                 send: Callable[..., None] | None = None):
        super().__init__()
        self.PREFIX = prefix
        self.parent = parent
        self.children = children
        self._send = send if send is not None else (
            lambda ctx, dest, kind, *f: ctx.send(dest, kind, *f))
        self._ready = False
        self._child_reports = 0
        self._reported = False

    def begin(self, ctx: Context) -> None:
        self._maybe_report(ctx)

    def mark_ready(self, ctx: Context) -> None:
        """Local condition satisfied; propagate when the subtree agrees."""
        self._ready = True
        self._maybe_report(ctx)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        for message in messages:
            if message.kind == self.kind("r"):
                self._child_reports += 1
            elif message.kind == self.kind("g"):
                self._go(ctx)
                return
        self._maybe_report(ctx)

    def _maybe_report(self, ctx: Context) -> None:
        if self._reported or not self._ready:
            return
        if self._child_reports < len(self.children):
            return
        self._reported = True
        if self.parent < 0:
            self._go(ctx)
        else:
            self._send(ctx, self.parent, self.kind("r"))

    def _go(self, ctx: Context) -> None:
        for child in self.children:
            self._send(ctx, child, self.kind("g"))
        self.done = True
