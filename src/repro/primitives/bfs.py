"""Distributed BFS spanning-tree construction with termination detection.

Builds a BFS tree rooted at a designated participant, over an arbitrary
participant subgraph (each node passes the subset of its neighbours that
take part — e.g. its colour class in DHC1/DHC2 Phase 1).  The protocol
is the textbook layered construction plus a done-convergecast, and ends
with a commit broadcast so *every* participant learns the tree depth and
participant count:

* ``e`` (explore): sent by every joined node to all non-parent peers.
  First explore(s) received -> join, parent = smallest sender.
* ``a`` (accept): tells the parent it gained a child.  A peer's own
  explore doubles as an implicit reject, so no reject messages exist.
* ``d`` (done): convergecast; carries subtree size and height.  A node
  reports done once all non-parent peers responded and all children
  reported done.
* ``c`` (commit): broadcast from the root down the finished tree with
  the tree depth and size; receiving it completes the machine.

Rounds: O(diameter) for construction + O(depth) for the convergecast
and commit.  The tree is the broadcast backbone for the rotation and
merge phases (DESIGN.md substitution 3): flooding over tree edges costs
at most ``2 * tree_depth`` rounds from an arbitrary initiator.

Failure: participants outside the root's component (possible when a
random partition is disconnected — one of the whp failure events the
paper's Lemma 5 bounds) never join; a deadline wake turns that into an
explicit ``failed`` flag that the host surfaces honestly.
"""

from __future__ import annotations

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = ["BfsTree"]


class BfsTree(SubMachine):
    """BFS-tree construction over a participant subgraph.

    Parameters
    ----------
    prefix:
        Message namespace.
    peers:
        Participating neighbours of this node.
    is_root:
        Whether this node is the designated root.
    deadline:
        Absolute round by which the commit must have arrived; reaching
        it first sets ``failed`` (disconnected participants).

    Results (valid once ``done`` and not ``failed``)
    ------------------------------------------------
    ``parent`` (-1 at root), ``children``, ``depth`` (own level),
    ``tree_depth`` (max level), ``size`` (participant count),
    ``tree_neighbors`` (children + parent — the broadcast backbone).
    """

    def __init__(self, prefix: str, peers: list[int], *, is_root: bool, deadline: int,
                 send=None, tie_break: str = "min"):
        super().__init__()
        self.PREFIX = prefix
        self.peers = peers
        self.is_root = is_root
        self.deadline = deadline
        # Injectable transport: hosts with concurrent sub-activities pass
        # their paced out-queue so BFS traffic never collides on edges.
        self._send = send if send is not None else (lambda ctx, dest, kind, *f: ctx.send(dest, kind, *f))
        if tie_break not in ("min", "random"):
            raise ValueError(f"tie_break must be 'min' or 'random', got {tie_break!r}")
        # "min" is deterministic (the fast engine mirrors it); "random"
        # picks uniformly among shallowest offers, which is what keeps
        # subtree sizes balanced (Lemma 18) — the Upcast pipeline's
        # bottleneck is the largest subtree, so it uses "random".
        self.tie_break = tie_break
        self.parent = -1
        self.children: list[int] = []
        self.depth = -1
        self.tree_depth = -1
        self.size = -1
        self.tree_neighbors: list[int] = []
        self.max_load = 1
        self._responded: set[int] = set()
        self._done_children: dict[int, tuple[int, int, int]] = {}
        self._sent_done = False
        self._joined_round = -1

    # -- lifecycle -------------------------------------------------------------

    def begin(self, ctx: Context) -> None:
        self.schedule(ctx, self.deadline)
        if self.is_root:
            self.depth = 0
            for peer in self.peers:
                self._send(ctx, peer, self.kind("e"), 0)
            self._maybe_report(ctx)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        explores = [m for m in messages if m.kind == self.kind("e")]
        accepts = [m for m in messages if m.kind == self.kind("a")]
        dones = [m for m in messages if m.kind == self.kind("d")]
        commits = [m for m in messages if m.kind == self.kind("c")]

        for message in explores:
            # Any explore shows the sender joined elsewhere: implicit reject.
            self._responded.add(message.sender)
        if self.depth < 0 and explores:
            self._join(ctx, explores)
        for message in accepts:
            self.children.append(message.sender)
            self._responded.add(message.sender)
        for message in dones:
            self._done_children[message.sender] = (
                message.payload[1], message.payload[2], message.payload[3])
        if commits:
            self._commit(ctx, commits[0])
            return
        if self.depth >= 0 and self._joined_round != ctx.round_index:
            self._maybe_report(ctx)

    def on_wake(self, ctx: Context) -> None:
        if self.done:
            return
        if ctx.round_index >= self.deadline:
            self.failed = True
            self.done = True
        elif self.depth >= 0:
            self._maybe_report(ctx)

    # -- internals ---------------------------------------------------------------

    def _join(self, ctx: Context, explores: list[Message]) -> None:
        # Prefer the shallowest offer; explores of different depths can
        # share a round when hosts activate asynchronously.
        min_depth = min(m.payload[1] for m in explores)
        offers = [m for m in explores if m.payload[1] == min_depth]
        if self.tie_break == "min":
            best = min(offers, key=lambda m: m.sender)
        else:
            best = offers[int(ctx.rng.integers(len(offers)))]
        parent = best.sender
        self.parent = parent
        self.depth = best.payload[1] + 1
        # The accept uses the parent edge this round; the done-report (if
        # we turn out to be a leaf) must wait for the next one.
        self._joined_round = ctx.round_index
        self.schedule(ctx, ctx.round_index + 1)
        self._send(ctx, parent, self.kind("a"))
        for peer in self.peers:
            if peer != parent:
                self._send(ctx, peer, self.kind("e"), self.depth)

    def _maybe_report(self, ctx: Context) -> None:
        if self._sent_done:
            return
        outstanding = [p for p in self.peers if p != self.parent and p not in self._responded]
        if outstanding or set(self._done_children) != set(self.children):
            return
        subtree_size = 1 + sum(s for s, _h, _l in self._done_children.values())
        height = 1 + max((h for _s, h, _l in self._done_children.values()), default=-1)
        load = max(
            len(self.children) + 1,
            max((l for _s, _h, l in self._done_children.values()), default=1),
        )
        self._sent_done = True
        if self.is_root:
            self.tree_depth = height
            self.size = subtree_size
            self.max_load = load
            self._finish(ctx)
        else:
            self._send(ctx, self.parent, self.kind("d"), subtree_size, height, load)

    def _commit(self, ctx: Context, message: Message) -> None:
        self.tree_depth = message.payload[1]
        self.size = message.payload[2]
        self.max_load = message.payload[3]
        self._finish(ctx)

    def _finish(self, ctx: Context) -> None:
        for child in self.children:
            self._send(ctx, child, self.kind("c"), self.tree_depth, self.size, self.max_load)
        self.children.sort()
        self.tree_neighbors = self.children + ([self.parent] if self.parent >= 0 else [])
        self.done = True
