"""Tree broadcast and convergecast — the workhorse pair behind every
"the root tells everyone" / "everyone tells the root" step.

The algorithms in :mod:`repro.core` inline these patterns where they
need bespoke piggybacking, but as standalone sub-machines they are
reusable (the upcast pipeline, the experiment harness's instrumented
runs) and individually testable:

* :class:`TreeBroadcast` — the root pushes a constant number of words
  down an already-built tree; every participant receives them within
  ``tree_depth`` rounds.
* :class:`Convergecast` — every participant contributes a value;
  internal nodes fold children's aggregates into their own and forward
  up; the root ends with the tree-wide aggregate in ``tree_depth``
  rounds.  Fold functions are associative/commutative reducers over
  integers (min, max, sum), which is exactly the CONGEST-friendly
  class: one word up per tree edge, total.

Both run over the ``parent`` / ``children`` structure produced by
:class:`~repro.primitives.bfs.BfsTree`.
"""

from __future__ import annotations

from typing import Callable

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = ["TreeBroadcast", "Convergecast", "FOLDS"]

#: Built-in fold functions (name -> reducer) for :class:`Convergecast`.
FOLDS: dict[str, Callable[[int, int], int]] = {
    "min": min,
    "max": max,
    "sum": lambda a, b: a + b,
}


class TreeBroadcast(SubMachine):
    """Root-to-all dissemination of a tuple of integer words.

    Parameters
    ----------
    prefix:
        Message namespace.
    parent / children:
        This node's position in the tree (parent ``-1`` at the root).
    payload:
        The words to disseminate; only meaningful at the root (other
        nodes pass ``None`` and receive the value).

    Results (valid once ``done``): ``value`` — the broadcast words, at
    every participant.
    """

    def __init__(self, prefix: str, *, parent: int, children: list[int],
                 payload: tuple[int, ...] | None = None, send=None):
        super().__init__()
        self.PREFIX = prefix
        self.parent = parent
        self.children = list(children)
        self.value: tuple[int, ...] | None = None
        self._payload = payload
        self._send = send if send is not None else (
            lambda ctx, dest, kind, *f: ctx.send(dest, kind, *f))
        if parent < 0 and payload is None:
            raise ValueError("the root must supply the broadcast payload")

    def begin(self, ctx: Context) -> None:
        if self.parent < 0:
            self.value = tuple(self._payload)
            self._push(ctx)
            self.done = True

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        if self.done:
            return
        message = messages[0]  # parents send exactly once
        self.value = tuple(message.payload[1:])
        self._push(ctx)
        self.done = True

    def _push(self, ctx: Context) -> None:
        for child in self.children:
            self._send(ctx, child, self.kind("v"), *self.value)


class Convergecast(SubMachine):
    """All-to-root aggregation with an associative integer fold.

    Parameters
    ----------
    prefix:
        Message namespace.
    parent / children:
        Tree position (parent ``-1`` at the root).
    value:
        This node's own contribution.
    fold:
        Name in :data:`FOLDS` (``"min"``, ``"max"``, ``"sum"``).

    Results (valid once ``done``): ``aggregate`` — at the *root*, the
    fold over all participants' values; at internal nodes, over their
    subtree (what they forwarded).
    """

    def __init__(self, prefix: str, *, parent: int, children: list[int],
                 value: int, fold: str = "sum", send=None):
        super().__init__()
        self.PREFIX = prefix
        self.parent = parent
        self.children = list(children)
        if fold not in FOLDS:
            raise ValueError(f"unknown fold {fold!r}; choose from {sorted(FOLDS)}")
        self._fold = FOLDS[fold]
        self.aggregate = value
        self._waiting = len(self.children)
        self._send = send if send is not None else (
            lambda ctx, dest, kind, *f: ctx.send(dest, kind, *f))

    def begin(self, ctx: Context) -> None:
        self._maybe_forward(ctx)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        if self.done:
            return
        for message in messages:
            self.aggregate = self._fold(self.aggregate, message.payload[1])
            self._waiting -= 1
        self._maybe_forward(ctx)

    def _maybe_forward(self, ctx: Context) -> None:
        if self._waiting > 0:
            return
        if self.parent >= 0:
            self._send(ctx, self.parent, self.kind("u"), self.aggregate)
        self.done = True
