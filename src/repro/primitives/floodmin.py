"""Leader election by min-id flooding with a round budget.

Every participant repeatedly forwards the smallest id it has heard of;
after ``budget`` rounds the unique node whose own id equals its current
minimum declares itself leader.  In a connected participant subgraph the
true minimum reaches every node within diameter rounds, so any budget
strictly larger than the diameter elects exactly one leader.

The paper leaves leader election to standard machinery ("Elect a leader
... takes O(D) rounds", Section III-A); for random (sub)graphs the round
budget comes from the whp diameter bounds in
:mod:`repro.analysis.bounds`.  An under-provisioned budget can only make
the downstream algorithm *fail visibly* (two leaders -> the final
Hamiltonian-cycle verification fails), never return a wrong cycle
silently — and failures are exactly what the success-probability
experiment (E6) measures.
"""

from __future__ import annotations

from repro.congest.message import Message
from repro.congest.node import Context
from repro.primitives.submachine import SubMachine

__all__ = ["FloodMin"]


class FloodMin(SubMachine):
    """Min-id flooding over a fixed participant neighbour set.

    Parameters
    ----------
    prefix:
        Message namespace (lets several instances coexist).
    peers:
        The adjacent participants of this election (e.g. the neighbours
        sharing this node's colour); flooding is restricted to them.
    budget:
        Rounds of flooding before the result is declared.  Must exceed
        the participant subgraph's diameter for a unique leader.

    Results (valid once ``done``)
    -----------------------------
    ``leader`` — smallest id heard; ``is_leader`` — whether we won.
    """

    def __init__(self, prefix: str, peers: list[int], budget: int):
        super().__init__()
        self.PREFIX = prefix
        self.peers = peers
        self.budget = max(1, budget)
        self.leader = -1
        self.is_leader = False
        self._best = -1
        self._deadline = -1

    def begin(self, ctx: Context) -> None:
        self._best = ctx.node_id
        self._deadline = ctx.round_index + self.budget
        for peer in self.peers:
            ctx.send(peer, self.kind("m"), self._best)
        self.schedule(ctx, self._deadline)

    def on_messages(self, ctx: Context, messages: list[Message]) -> None:
        best_heard = min(message.payload[1] for message in messages)
        if best_heard < self._best:
            self._best = best_heard
            if ctx.round_index < self._deadline:
                for peer in self.peers:
                    ctx.send(peer, self.kind("m"), self._best)

    def on_wake(self, ctx: Context) -> None:
        self.leader = self._best
        self.is_leader = self._best == ctx.node_id
        self.done = True
