"""Distributed building blocks shared by every algorithm in the paper."""

from repro.primitives.barrier import Barrier
from repro.primitives.bfs import BfsTree
from repro.primitives.broadcast import Convergecast, TreeBroadcast
from repro.primitives.floodmin import FloodMin
from repro.primitives.submachine import SubMachine, SubMachineHost

__all__ = [
    "SubMachine",
    "SubMachineHost",
    "FloodMin",
    "BfsTree",
    "Barrier",
    "TreeBroadcast",
    "Convergecast",
]
