"""The coupon-collector process behind Theorem 2.

The proof of Theorem 2 relates the rotation walk to a relaxed process:
"every node has equal probability 1/n to be chosen in every step of
growing the path", i.e. collecting n coupons at 1/n each, followed by a
geometric wait for the closing edge.  This module implements that
relaxed process both in closed form and as a simulation, so experiment
E1 can compare the *measured* DRA step counts against the exact model
the proof charges (the walk must do no worse; Theorem 2's 7·n·ln n is
an upper bound on the relaxed process itself).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "expected_coupon_steps",
    "coupon_failure_bound",
    "closure_failure_bound",
    "simulate_relaxed_walk",
    "theorem2_budget",
]


def expected_coupon_steps(n: int) -> float:
    """Expected steps to collect ``n`` coupons at 1/n each: ``n * H_n``."""
    if n <= 0:
        return 0.0
    harmonic = sum(1.0 / i for i in range(1, n + 1))
    return n * harmonic


def coupon_failure_bound(n: int, steps: float) -> float:
    """Union bound on missing any coupon after ``steps`` draws.

    The proof's E1 computation: ``n * (1 - 1/n)^steps <= n * e^(-steps/n)``.
    With ``steps = 4 n ln n`` this is ``n^-3`` — the paper's figure.
    """
    if n <= 1:
        return 0.0
    return min(1.0, n * math.exp(-steps / n))


def closure_failure_bound(n: int, steps: float) -> float:
    """Probability the closing edge is missed for ``steps`` further draws.

    The proof's second phase: each step closes with probability 1/n, so
    ``(1 - 1/n)^steps <= e^(-steps/n)`` (``n^-3`` at ``3 n ln n``).
    """
    if n <= 1:
        return 0.0
    return min(1.0, math.exp(-steps / n))


def theorem2_budget(n: int, *, alpha: float = 3.0) -> float:
    """Steps after which the relaxed process fails with prob ``O(n^-alpha)``.

    The paper proves failure ``O(1/n^3)`` at ``7 n ln n`` steps and
    notes the technique extends to any ``alpha``; solving the two
    bounds above gives ``(alpha + 1) n ln n + alpha n ln n`` steps.
    """
    if n < 2:
        return 1.0
    return (2 * alpha + 1) * n * math.log(n)


def simulate_relaxed_walk(
    n: int, *, rng: np.random.Generator | int = 0, step_cap: int | None = None,
) -> tuple[bool, int]:
    """Run the relaxed process once; returns ``(closed, steps_used)``.

    Phase 1 draws uniform nodes until all are seen; phase 2 draws until
    the 1/n closing event fires.  ``step_cap`` defaults to Theorem 2's
    ``7 n ln n``.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    if n < 3:
        return False, 0
    cap = step_cap if step_cap is not None else int(7 * n * math.log(n)) + 1
    seen = np.zeros(n, dtype=bool)
    seen[0] = True
    collected = 1
    steps = 0
    while steps < cap:
        steps += 1
        draw = int(gen.integers(n))
        if not seen[draw]:
            seen[draw] = True
            collected += 1
            if collected == n:
                break
    if collected < n:
        return False, steps
    while steps < cap:
        steps += 1
        if int(gen.integers(n)) == 0:  # the closing edge event
            return True, steps
    return False, steps
