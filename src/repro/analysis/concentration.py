"""Concentration bounds used by the paper's proofs, as executable forms.

Every whp statement in Section II rests on multiplicative Chernoff
bounds plus union bounds.  Encoding them as functions serves two
purposes: the protocols can size whp budgets from first principles, and
the benchmark harness can print *predicted* failure probabilities next
to measured failure rates (experiments E6 and E12).

The bounds implemented are the standard forms the paper cites from
Mitzenmacher–Upfal [20]:

* upper tail: ``Pr[X >= (1+d) mu] <= exp(-d^2 mu / (2+d))``;
* lower tail: ``Pr[X <= (1-d) mu] <= exp(-d^2 mu / 2)``;
* two-sided:  ``Pr[|X - mu| >= d mu] <=  2 exp(-d^2 mu / 3)`` for d <= 1.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_upper",
    "chernoff_lower",
    "chernoff_two_sided",
    "partition_size_failure",
    "unused_list_failure",
    "merge_step_failure",
]


def _check(delta: float, mean: float) -> None:
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if mean < 0:
        raise ValueError(f"mean must be non-negative, got {mean}")


def chernoff_upper(delta: float, mean: float) -> float:
    """``Pr[X >= (1+delta) mu]`` bound for sums of independent 0/1 vars."""
    _check(delta, mean)
    if delta == 0:
        return 1.0
    return min(1.0, math.exp(-delta * delta * mean / (2.0 + delta)))


def chernoff_lower(delta: float, mean: float) -> float:
    """``Pr[X <= (1-delta) mu]`` bound; ``delta`` in [0, 1]."""
    _check(delta, mean)
    if not delta <= 1:
        raise ValueError(f"lower-tail delta must be <= 1, got {delta}")
    if delta == 0:
        return 1.0
    return min(1.0, math.exp(-delta * delta * mean / 2.0))


def chernoff_two_sided(delta: float, mean: float) -> float:
    """``Pr[|X - mu| >= delta mu]`` bound; ``delta`` in [0, 1]."""
    _check(delta, mean)
    if not delta <= 1:
        raise ValueError(f"two-sided delta must be <= 1, got {delta}")
    if delta == 0:
        return 1.0
    return min(1.0, 2.0 * math.exp(-delta * delta * mean / 3.0))


def partition_size_failure(n: int, colors: int) -> float:
    """Lemma 4/7: probability any colour class leaves ``[1/2, 3/2] n/K``.

    One class deviates with probability ``<= 2 exp(-(n/K)/12)``
    (two-sided Chernoff at delta = 1/2); union over ``K`` classes.
    """
    if colors < 1:
        raise ValueError("need at least one colour")
    expected = n / colors
    single = chernoff_two_sided(0.5, expected)
    return min(1.0, colors * single)


def unused_list_failure(n: int, q: float, threshold: float) -> float:
    """Theorem 2, event E2.2: a node's initial unused list is too short.

    ``Y ~ Bin(n-1, q)``; the proof takes ``Pr[Y <= threshold]`` with
    ``threshold = mu/2`` via the lower tail, then unions over n nodes.
    """
    if not 0 <= q <= 1:
        raise ValueError(f"q must be a probability, got {q}")
    mean = q * max(0, n - 1)
    if mean <= 0:
        return 1.0
    delta = max(0.0, 1.0 - threshold / mean)
    return min(1.0, n * chernoff_lower(min(1.0, delta), mean))


def merge_step_failure(n: int, delta_exp: float, p: float) -> float:
    """Lemma 8: probability the first merge level loses any pair.

    A cycle pair fails when no non-adjacent cycle edge of C has a
    bridge into C': ``(1 - p^2)^(n^delta / 2)`` per pair, unioned over
    ``n^(1-delta)/2`` pairs.  Tiny for any laptop-scale n — printing it
    next to measured merge failures is the point.
    """
    if not 0 < delta_exp <= 1:
        raise ValueError(f"delta must be in (0, 1], got {delta_exp}")
    if not 0 <= p <= 1:
        raise ValueError(f"p must be a probability, got {p}")
    part = n**delta_exp
    pairs = max(1.0, n ** (1.0 - delta_exp) / 2.0)
    single = (1.0 - p * p) ** (part / 2.0)
    return min(1.0, pairs * single)
