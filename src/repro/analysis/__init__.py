"""Theory-side helpers: the paper's bounds as code, plus curve fitting.

Three modules:

* :mod:`repro.analysis.bounds` — the round/step budgets and predicted
  scaling shapes of Theorems 1, 2, 10, 17, 19 and the diameter facts;
* :mod:`repro.analysis.concentration` — the Chernoff/union machinery
  behind every whp claim, as executable failure-probability bounds;
* :mod:`repro.analysis.coupon` — the relaxed coupon-collector process
  that Theorem 2's proof charges, in closed form and as a simulation.
"""

from repro.analysis.bounds import (
    diameter_bound_sparse,
    diameter_budget,
    dra_step_budget,
    fit_power_law,
    klee_larman_diameter,
    partition_size_bounds,
    predicted_dhc1_rounds,
    predicted_dhc2_rounds,
    predicted_dra_steps,
    predicted_upcast_rounds,
)
from repro.analysis.concentration import (
    chernoff_lower,
    chernoff_two_sided,
    chernoff_upper,
    merge_step_failure,
    partition_size_failure,
    unused_list_failure,
)
from repro.analysis.coupon import (
    coupon_failure_bound,
    closure_failure_bound,
    expected_coupon_steps,
    simulate_relaxed_walk,
    theorem2_budget,
)

__all__ = [
    "dra_step_budget",
    "diameter_bound_sparse",
    "diameter_budget",
    "predicted_dra_steps",
    "predicted_dhc1_rounds",
    "predicted_dhc2_rounds",
    "predicted_upcast_rounds",
    "klee_larman_diameter",
    "partition_size_bounds",
    "fit_power_law",
    "chernoff_upper",
    "chernoff_lower",
    "chernoff_two_sided",
    "partition_size_failure",
    "unused_list_failure",
    "merge_step_failure",
    "expected_coupon_steps",
    "coupon_failure_bound",
    "closure_failure_bound",
    "simulate_relaxed_walk",
    "theorem2_budget",
]
