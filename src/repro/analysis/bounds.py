"""Theoretical bounds from the paper, as executable formulas.

Two distinct uses:

1. *Round budgets inside the protocols.*  CONGEST nodes know ``n`` (and
   the model parameters), so they can compute whp bounds locally and use
   them as deadlines — e.g. how long to flood during leader election.
   Budgets are deliberately generous (failure turns into an *observable*
   protocol failure, which experiment E6 measures).

2. *Predicted curves for the benchmarks.*  Each experiment in
   EXPERIMENTS.md compares a measured series against the corresponding
   ``predicted_*`` function up to a fitted constant.

References into the paper: Theorem 1 and 2 (DRA/DHC1), Theorem 10
(DHC2), Theorems 17/19 (Upcast), the diameter facts of [5] (Chung–Lu),
[2] (Bollobás, "Fact 2") and [17] (Klee–Larman, "Fact 3").
"""

from __future__ import annotations

import math

__all__ = [
    "dra_step_budget",
    "diameter_bound_sparse",
    "diameter_budget",
    "predicted_dra_steps",
    "predicted_dhc1_rounds",
    "predicted_dhc2_rounds",
    "predicted_upcast_rounds",
    "klee_larman_diameter",
    "partition_size_bounds",
    "fit_power_law",
]


def dra_step_budget(n_sub: int, *, factor: float = 7.0, slack: int = 64) -> int:
    """Theorem 2's step budget ``7 n ln n`` for a DRA run on ``n_sub`` nodes.

    ``factor`` follows the theorem; the additive ``slack`` keeps tiny
    subgraphs (where ``ln n`` is below 1) from starving.
    """
    if n_sub < 1:
        return slack
    return int(factor * n_sub * max(1.0, math.log(n_sub))) + slack


def diameter_bound_sparse(n_sub: int, *, factor: float = 6.0, slack: int = 8) -> int:
    """A whp diameter upper bound for G(n', p') at/above the HC threshold.

    Chung–Lu [5] give ``Theta(ln n / ln ln n)`` for ``p = Theta(ln n/n)``;
    denser graphs only shrink the diameter, so this is a safe budget for
    every subgraph our protocols broadcast over.  The constants are
    generous on purpose (see module docstring).
    """
    if n_sub < 3:
        return 1 + slack
    scale = math.log(n_sub) / max(1.0, math.log(math.log(n_sub)))
    return int(factor * scale) + slack


def diameter_budget(n_sub: int) -> int:
    """Round budget for one flood/broadcast over a subgraph of size ``n_sub``."""
    return diameter_bound_sparse(n_sub)


def dra_round_budget(n_sub: int, step_budget: int | None = None) -> int:
    """A safe ``max_rounds`` for one DRA run on ``n_sub`` participants.

    Worst case every step is a rotation costing one tree flood
    (``2 * tree_depth + 2`` rounds); setup (election + BFS) adds a few
    diameters.  Real executions are far below this — it is a watchdog,
    not a prediction (see :func:`predicted_dra_steps` for the shape).
    """
    if step_budget is None:
        step_budget = dra_step_budget(n_sub)
    diam = diameter_budget(n_sub)
    return 6 * diam + step_budget * (2 * diam + 4) + 128


def predicted_dra_steps(n_sub: int) -> float:
    """Theorem 2 shape: steps = O(n ln n)."""
    return n_sub * max(1.0, math.log(n_sub))


def predicted_dhc1_rounds(n: int) -> float:
    """Theorem 1 shape: ``sqrt(n) * (ln n)^2 / ln ln n`` rounds."""
    if n < 3:
        return 1.0
    return math.sqrt(n) * math.log(n) ** 2 / max(1.0, math.log(math.log(n)))


def predicted_dhc2_rounds(n: int, delta: float) -> float:
    """Theorem 10 shape: ``n**delta * (ln n)^2 / ln ln n`` rounds."""
    if n < 3:
        return 1.0
    return n**delta * math.log(n) ** 2 / max(1.0, math.log(math.log(n)))


def predicted_upcast_rounds(n: int, p: float) -> float:
    """Theorem 19 shape: ``log n / p`` rounds."""
    if n < 3 or p <= 0:
        return 1.0
    return math.log(n) / p


def klee_larman_diameter(eps: float) -> int:
    """Fact 3 [17]: diameter ``ceil(1/eps)`` whp for ``p = c log n / n**(1-eps)``."""
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    return math.ceil(1.0 / eps)


def partition_size_bounds(n: int, colors: int) -> tuple[float, float]:
    """Lemma 4/7 concentration window ``[1/2, 3/2] * n/colors``."""
    if colors < 1:
        raise ValueError("need at least one colour")
    expected = n / colors
    return 0.5 * expected, 1.5 * expected


def fit_power_law(xs: list[float], ys: list[float]) -> tuple[float, float]:
    """Least-squares fit ``y = a * x**b`` in log space; returns ``(a, b)``.

    Used by the scaling experiments (E2/E3/E5) to extract the measured
    exponent and compare against the theorem's prediction.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs to fit")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fit requires positive data")
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(lx)
    mx = sum(lx) / n
    my = sum(ly) / n
    sxx = sum((v - mx) ** 2 for v in lx)
    sxy = sum((u - mx) * (v - my) for u, v in zip(lx, ly))
    b = sxy / sxx
    a = math.exp(my - b * mx)
    return a, b
