"""The k-machine (Big Data) model of Klauck, Nanongkai, Pandurangan,
Robinson (SODA 2015) — reference [16] of the paper.

Section IV of the paper claims its fully-distributed algorithms "can be
used to obtain efficient algorithms in other distributed message-passing
models such as the k-machine model".  This subpackage makes that claim
executable:

* :class:`~repro.kmachine.partition.VertexPartition` — the model's
  random-vertex-partition input distribution (each of the ``n`` graph
  nodes is assigned to one of ``k`` machines uniformly at random);
* :func:`~repro.kmachine.simulation.run_converted` — the Conversion
  Theorem of [16] as an execution engine: it runs any CONGEST protocol
  from this library unchanged and re-costs every round under k-machine
  accounting (machines are fully connected; each machine pair exchanges
  at most ``W = O(polylog n)`` bits per round; messages between two
  graph nodes hosted by the same machine are free);
* :func:`~repro.kmachine.simulation.conversion_round_bound` — the
  theorem's predicted bound, for the E13 benchmark.

The protocols are bit-for-bit the ones the CONGEST simulator runs
(same RNG streams, same cycle output); only the cost model changes.
This mirrors exactly how [16] defines conversion: the algorithm is a
CONGEST algorithm, the machines simulate the graph nodes assigned to
them, and the price of a round is the congestion it puts on the
machine-to-machine links.
"""

from repro.kmachine.ledger import (
    LinkLedger,
    TreeFloodProfile,
    bfs_messages,
    floodmin_traffic,
)
from repro.kmachine.metrics import KMachineMetrics
from repro.kmachine.partition import VertexPartition
from repro.kmachine.simulation import (
    KMachineResult,
    conversion_round_bound,
    run_converted,
    run_converted_hc,
)

__all__ = [
    "VertexPartition",
    "KMachineMetrics",
    "KMachineResult",
    "LinkLedger",
    "TreeFloodProfile",
    "bfs_messages",
    "floodmin_traffic",
    "run_converted",
    "run_converted_hc",
    "conversion_round_bound",
]
