"""Random vertex partition — the k-machine model's input distribution.

In the k-machine model of [16], the ``n``-node input graph is handed to
the ``k`` machines via the *random-vertex-partition* (RVP): each vertex
(together with its incident edges) is assigned to a machine chosen
uniformly and independently at random.  Every balance property the
Conversion Theorem relies on (Lemma 4.1 of [16]) follows from this
distribution, so the partition is a first-class object here rather than
an implementation detail of the simulation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["VertexPartition"]


class VertexPartition:
    """An assignment of graph nodes ``0 .. n-1`` to machines ``0 .. k-1``.

    Parameters
    ----------
    machine_of:
        Array of length ``n``; ``machine_of[v]`` is the machine hosting
        graph node ``v``.
    k:
        Number of machines (must exceed every entry of ``machine_of``).

    Examples
    --------
    >>> part = VertexPartition.random(8, k=2, seed=0)
    >>> part.n, part.k
    (8, 2)
    >>> sorted(part.hosted(0)) == sorted(
    ...     v for v in range(8) if part.machine_of[v] == 0)
    True
    """

    __slots__ = ("machine_of", "k", "_hosted")

    def __init__(self, machine_of: np.ndarray, k: int):
        machine_of = np.asarray(machine_of, dtype=np.int64)
        if machine_of.ndim != 1:
            raise ValueError("machine_of must be a 1-d array")
        if k < 1:
            raise ValueError(f"need at least one machine, got k={k}")
        if machine_of.size and (machine_of.min() < 0 or machine_of.max() >= k):
            raise ValueError("machine assignment out of range")
        self.machine_of = machine_of
        self.k = int(k)
        self._hosted: list[list[int]] | None = None

    @classmethod
    def random(cls, n: int, k: int, *, seed: int = 0) -> "VertexPartition":
        """The RVP of [16]: each node picks a machine uniformly at random."""
        rng = np.random.default_rng(np.random.SeedSequence(seed))
        return cls(rng.integers(0, k, size=n), k)

    @classmethod
    def round_robin(cls, n: int, k: int) -> "VertexPartition":
        """Deterministic balanced partition (tests and worst-case probes)."""
        return cls(np.arange(n, dtype=np.int64) % k, k)

    # -- queries ---------------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of graph nodes partitioned."""
        return int(self.machine_of.size)

    def machine(self, v: int) -> int:
        """The machine hosting graph node ``v``."""
        return int(self.machine_of[v])

    def hosted(self, machine: int) -> list[int]:
        """The graph nodes hosted by ``machine`` (ascending ids)."""
        if self._hosted is None:
            buckets: list[list[int]] = [[] for _ in range(self.k)]
            for v, m in enumerate(self.machine_of.tolist()):
                buckets[m].append(v)
            self._hosted = buckets
        return list(self._hosted[machine])

    def loads(self) -> np.ndarray:
        """Nodes per machine (length ``k``)."""
        return np.bincount(self.machine_of, minlength=self.k)

    def load_imbalance(self) -> float:
        """Max/expected nodes-per-machine ratio (1.0 = perfectly even).

        Lemma 4.1 of [16] promises ``O~(n/k)`` nodes per machine whp;
        this is the measured counterpart.
        """
        if self.n == 0:
            return 1.0
        expected = self.n / self.k
        return float(self.loads().max()) / expected

    def crosses(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` spans two machines."""
        return bool(self.machine_of[u] != self.machine_of[v])

    def link(self, u: int, v: int) -> tuple[int, int] | None:
        """The machine link an edge ``{u, v}`` maps to, or ``None`` if local."""
        a, b = int(self.machine_of[u]), int(self.machine_of[v])
        if a == b:
            return None
        return (a, b) if a < b else (b, a)

    def __repr__(self) -> str:
        return f"VertexPartition(n={self.n}, k={self.k})"
