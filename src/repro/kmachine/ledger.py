"""Machine-level cost accounting for the native k-machine engine.

The converted path (:mod:`repro.kmachine.simulation`) learns each
round's traffic by *watching* the message-level CONGEST simulator.
The native engine (:mod:`repro.engines.kmachine_engine`) has no
``Network`` to watch: it replays the algorithm on the CSR array kernel
and must reconstruct the machine-level cost from the deterministic
communication schedule instead.  This module is that reconstruction —
the same charging rule as the conversion (per CONGEST-equivalent tick,
``max(1, ceil(busiest link load / W))`` k-machine rounds), applied to
traffic described as *arrays of messages* rather than observed
one Python object at a time:

* :class:`LinkLedger` — the accumulator.  Its primitives charge one
  tick of batched messages (:meth:`LinkLedger.burst`), a multi-tick
  message series (:meth:`LinkLedger.series`), traffic-free ticks
  (:meth:`LinkLedger.quiet`), and phase estimates for traffic whose
  endpoints the replay does not materialise
  (:meth:`LinkLedger.uniform_burst`).
* :class:`TreeFloodProfile` — the per-depth link loads of a broadcast
  over a spanning tree, precomputed once and charged per flood; this
  is what makes per-rotation renumbering floods O(depth) to account
  instead of O(n).
* :func:`floodmin_traffic` — an exact vectorised re-execution of
  :class:`~repro.primitives.floodmin.FloodMin`'s send pattern
  (improvement-driven re-broadcasts), which is the single heaviest
  burst in every run.
* :func:`bfs_messages` — the explore/accept/done/commit message
  schedule of :class:`~repro.primitives.bfs.BfsTree`, derived from the
  same event recursion the fast engines use for round parity.

Fidelity contract: word totals and link matrices cover the traffic the
models above describe; phases the drivers charge through
:meth:`~LinkLedger.uniform_burst` (e.g. Turau's token walks, DHC1's
virtual fabric) contribute RVP-expectation estimates, exactly as the
fast engines' structural round estimates do for event-driven phases.
The parity gate therefore holds the native engine to the converted
oracle's *cycle* exactly and to its round count within the Conversion
Theorem's bound — not word-for-word equality.
"""

from __future__ import annotations

import math

import numpy as np

from repro.kmachine.metrics import KMachineMetrics
from repro.kmachine.partition import VertexPartition

__all__ = [
    "LinkLedger",
    "TreeFloodProfile",
    "floodmin_traffic",
    "bfs_messages",
]


class TreeFloodProfile:
    """Per-depth link loads of a root-down broadcast over a tree.

    A flood over a spanning tree delivers one message per tree edge;
    the edge to a depth-``d`` node carries it at flood tick ``d``.
    The profile bins those edges per depth onto the machine links once,
    so charging a flood is ``O(depth * links)`` instead of ``O(n)``.

    Renumbering floods start at an arbitrary initiator, not the root;
    the native engine charges them against this root-based profile (the
    message *total* is identical — every tree edge carries exactly one
    message — only the per-tick split differs).  That approximation is
    part of the documented estimate contract.
    """

    __slots__ = ("depth_loads", "edges", "src", "dst", "tree_depth")

    def __init__(self, ledger: "LinkLedger", parent: np.ndarray,
                 depth: np.ndarray, members: np.ndarray):
        kids = members[parent[members] >= 0]
        self.src = parent[kids]
        self.dst = kids
        self.edges = int(kids.size)
        self.tree_depth = int(depth[members].max()) if members.size else 0
        k = ledger.k
        # loads[d - 1] = per-link message counts of the depth-d edges.
        loads = np.zeros((max(1, self.tree_depth), k * k), dtype=np.int64)
        if kids.size:
            lid = ledger.link_ids(self.src, self.dst)
            cross = lid >= 0
            d = depth[kids[cross]] - 1
            np.add.at(loads, (d, lid[cross]), 1)
        self.depth_loads = loads

    def rounds(self, ledger: "LinkLedger", words: int) -> int:
        """K-machine rounds one flood needs (one tick per tree level)."""
        if self.tree_depth == 0:
            return 0
        busiest = self.depth_loads.max(axis=1) * words
        return int(np.maximum(1, -(-busiest // ledger.link_words)).sum())


class LinkLedger:
    """Accumulates :class:`KMachineMetrics` from batched traffic.

    One instance accounts one native run.  ``congest_rounds`` counts
    the CONGEST-equivalent ticks the model walked through (quiet ticks
    included), ``kmachine_rounds`` the charged machine rounds — the
    identical semantics the converted simulator's accountant gives
    those fields.
    """

    def __init__(self, partition: VertexPartition, link_words: int):
        if link_words < 1:
            raise ValueError(f"link bandwidth must be positive, got {link_words}")
        self.partition = partition
        self.k = partition.k
        self.link_words = link_words
        self.machine_of = partition.machine_of
        self.metrics = KMachineMetrics.empty(self.k)
        self._link_flat = self.metrics.link_words.reshape(-1)

    # -- concurrency ------------------------------------------------------------

    def fork(self) -> "LinkLedger":
        """A fresh ledger over the same partition, for concurrent phases.

        Phase 1's colour classes advance in the same wall-clock rounds;
        charging each class into its own fork and folding with
        :meth:`absorb_concurrent` makes the round charge the *maximum*
        across classes (wall-clock semantics) while word totals sum.
        """
        return LinkLedger(self.partition, self.link_words)

    def absorb_concurrent(self, children: list["LinkLedger"]) -> None:
        """Fold concurrent forks: words sum, rounds take the maximum."""
        if not children:
            return
        m = self.metrics
        for child in children:
            c = child.metrics
            m.cross_words += c.cross_words
            m.local_words += c.local_words
            m.link_words += c.link_words
            m.recv_words_per_machine += c.recv_words_per_machine
            if c.max_round_link_words > m.max_round_link_words:
                m.max_round_link_words = c.max_round_link_words
        self.charge(max(c.metrics.kmachine_rounds for c in children),
                    max(c.metrics.congest_rounds for c in children))

    # -- geometry ---------------------------------------------------------------

    def link_ids(self, src: np.ndarray, dst: np.ndarray) -> np.ndarray:
        """Flat link id ``a * k + b`` (a < b) per message; -1 when local."""
        a = self.machine_of[src]
        b = self.machine_of[dst]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        return np.where(a == b, -1, lo * self.k + hi)

    # -- charging primitives -----------------------------------------------------

    def charge(self, kmachine_rounds: int, congest_rounds: int) -> None:
        """Advance both counters directly (drivers' escape hatch)."""
        self.metrics.kmachine_rounds += int(kmachine_rounds)
        self.metrics.congest_rounds += int(congest_rounds)

    def quiet(self, ticks: int) -> None:
        """Ticks with no cross-machine traffic: 1 machine round each."""
        ticks = max(0, int(ticks))
        self.charge(ticks, ticks)

    def tally(self, src: np.ndarray, dst: np.ndarray, words: int,
              *, times: int = 1) -> np.ndarray:
        """Book word totals for a message batch; return its link loads.

        Does **not** advance any round counter — callers turn the
        returned per-link word loads (or a precomputed profile) into a
        charge.  ``times`` books the same batch repeatedly (e.g. one
        renumbering flood's tree edges, once per rotation).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        lid = self.link_ids(src, dst)
        cross = lid >= 0
        n_cross = int(cross.sum())
        m = self.metrics
        m.local_words += (src.size - n_cross) * words * times
        m.cross_words += n_cross * words * times
        loads = np.bincount(lid[cross], minlength=self.k * self.k) * words
        self._link_flat += loads * times
        np.add.at(m.recv_words_per_machine, self.machine_of[dst[cross]],
                  words * times)
        return loads

    def _charge_loads(self, loads: np.ndarray) -> None:
        busiest = int(loads.max()) if loads.size else 0
        if busiest > self.metrics.max_round_link_words:
            self.metrics.max_round_link_words = busiest
        self.charge(max(1, -(-busiest // self.link_words)), 1)

    def burst(self, src: np.ndarray, dst: np.ndarray, words: int) -> None:
        """One tick delivering the whole batch (the conversion's rule)."""
        self._charge_loads(self.tally(src, dst, words))

    def series(self, ticks: np.ndarray, src: np.ndarray, dst: np.ndarray,
               words: np.ndarray | int, *, span: int | None = None) -> None:
        """A multi-tick schedule: messages stamped with relative ticks.

        Charges every tick in ``[0, span)`` (``span`` defaults to the
        last stamped tick + 1), quiet ticks included, so the modelled
        CONGEST duration matches the schedule's wall clock.
        """
        ticks = np.asarray(ticks, dtype=np.int64)
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        words = np.broadcast_to(np.asarray(words, dtype=np.int64), src.shape)
        duration = int(span if span is not None
                       else (ticks.max() + 1 if ticks.size else 0))
        if duration <= 0:
            return
        lid = self.link_ids(src, dst)
        cross = lid >= 0
        m = self.metrics
        m.local_words += int(words[~cross].sum())
        m.cross_words += int(words[cross].sum())
        np.add.at(m.recv_words_per_machine, self.machine_of[dst[cross]],
                  words[cross])
        loads = np.zeros((duration, self.k * self.k), dtype=np.int64)
        np.add.at(loads, (ticks[cross], lid[cross]), words[cross])
        self._link_flat += loads.sum(axis=0)
        busiest = loads.max(axis=1) if loads.size else np.zeros(duration, np.int64)
        peak = int(busiest.max()) if duration else 0
        if peak > self.metrics.max_round_link_words:
            self.metrics.max_round_link_words = peak
        self.charge(int(np.maximum(1, -(-busiest // self.link_words)).sum()),
                    duration)

    def singles(self, src: np.ndarray, dst: np.ndarray, words: int) -> None:
        """One message per tick, one tick each (sequential walk steps).

        The busiest link of such a tick carries exactly one message, so
        the charge is ``ceil(words / W)`` for crossing messages and 1
        for co-hosted ones — computed in bulk.
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        lid = self.link_ids(src, dst)
        cross = lid >= 0
        n_cross = int(cross.sum())
        m = self.metrics
        m.local_words += (src.size - n_cross) * words
        m.cross_words += n_cross * words
        self._link_flat += np.bincount(lid[cross],
                                       minlength=self.k * self.k) * words
        np.add.at(m.recv_words_per_machine, self.machine_of[dst[cross]], words)
        if n_cross and words > m.max_round_link_words:
            m.max_round_link_words = words
        per_cross = max(1, -(-words // self.link_words))
        self.charge(n_cross * per_cross + (src.size - n_cross), src.size)

    def uniform_burst(self, messages: int, words: int, *, ticks: int = 1) -> None:
        """Estimate a burst whose endpoints the replay never materialises.

        Assumes RVP-uniform spread: a message crosses with probability
        ``1 - 1/k`` and cross traffic splits evenly over the
        ``k(k-1)/2`` links.  Totals are booked (cross/local words);
        the link matrix is left to exactly-modelled traffic.
        """
        messages = max(0, int(messages))
        if self.k < 2 or messages == 0:
            self.metrics.local_words += messages * words
            self.quiet(max(1, ticks))
            return
        cross = messages * (self.k - 1) / self.k
        self.metrics.cross_words += int(round(cross)) * words
        self.metrics.local_words += (messages - int(round(cross))) * words
        links = self.k * (self.k - 1) // 2
        per_tick_link = cross * words / links / max(1, ticks)
        per_tick = max(1, math.ceil(per_tick_link / self.link_words))
        self.charge(per_tick * max(1, ticks), max(1, ticks))

    def flood(self, profile: TreeFloodProfile, words: int,
              *, times: int = 1) -> None:
        """Charge ``times`` root-profile tree floods (see the profile)."""
        if times <= 0 or profile.edges == 0:
            return
        self.tally(profile.src, profile.dst, words, times=times)
        rounds = profile.rounds(self, words)
        self.charge(rounds * times, profile.tree_depth * times)
        peak = int(profile.depth_loads.max()) * words
        if peak > self.metrics.max_round_link_words:
            self.metrics.max_round_link_words = peak


def floodmin_traffic(ledger: LinkLedger, indptr: np.ndarray,
                     indices: np.ndarray, members: np.ndarray,
                     budget: int, *, words: int = 2) -> None:
    """Re-execute FloodMin's send schedule and charge it tick by tick.

    Exact replay of :class:`~repro.primitives.floodmin.FloodMin` over a
    (possibly colour-filtered) member-closed CSR: every participant
    broadcasts its id at tick 0; a node whose best improves re-broadcasts
    the next tick, until the fixed ``budget`` deadline.  Disjoint
    participant classes flood independently, so one call accounts all of
    Phase 1's concurrent per-class elections at once.
    """
    from repro.engines.arraywalk import gather_neighbors

    n = len(indptr) - 1
    best = np.arange(n, dtype=np.int64)
    senders = members[(indptr[members + 1] - indptr[members]) > 0]
    for tick in range(budget):
        if senders.size == 0:
            ledger.quiet(budget - tick)
            return
        counts = indptr[senders + 1] - indptr[senders]
        src = np.repeat(senders, counts)
        dst = gather_neighbors(indptr, indices, senders)
        ledger.burst(src, dst, words)
        incoming = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
        np.minimum.at(incoming, dst, best[src])
        improved = incoming < best
        np.minimum(best, incoming, out=best)
        # The deadline round receives but never re-broadcasts.
        senders = np.flatnonzero(improved) if tick + 1 < budget else \
            np.empty(0, dtype=np.int64)


def bfs_messages(tree, indptr: np.ndarray, indices: np.ndarray,
                 start: int, done: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The BFS build's message schedule as ``(ticks, src, dst, words)``.

    Mirrors :class:`~repro.primitives.bfs.BfsTree` against an
    :class:`~repro.engines.arraywalk.ArrayTree`: explores to every
    non-parent peer at the join tick, accepts to the parent, the done
    convergecast at each node's completion tick (``done``, absolute,
    from :meth:`~repro.engines.arraywalk.ArrayTree.completion_times`),
    and the commit broadcast down the finished tree.  Returned ticks
    are relative to ``start`` (the BFS begin round).
    """
    from repro.engines.arraywalk import gather_neighbors

    members, depth, parent = tree.members, tree.depth, tree.parent
    counts = indptr[members + 1] - indptr[members]
    src = np.repeat(members, counts)
    dst = gather_neighbors(indptr, indices, members)
    nonparent = dst != parent[src]
    explore_src, explore_dst = src[nonparent], dst[nonparent]
    kids = members[parent[members] >= 0]
    root_done = int(done[tree.root]) - start

    ticks = [depth[explore_src],                # explores at join(v)
             depth[kids],                       # accepts at join(v)
             done[kids] - start,                # done reports
             root_done + depth[kids] - 1]       # commit wave
    srcs = [explore_src, kids, kids, parent[kids]]
    dsts = [explore_dst, parent[kids], parent[kids], kids]
    words = [np.full(explore_src.size, 2, dtype=np.int64),
             np.full(kids.size, 1, dtype=np.int64),
             np.full(kids.size, 4, dtype=np.int64),
             np.full(kids.size, 4, dtype=np.int64)]
    return (np.concatenate(ticks), np.concatenate(srcs),
            np.concatenate(dsts), np.concatenate(words))


def gossip_traffic(ledger: LinkLedger, indptr: np.ndarray,
                   indices: np.ndarray, source: int, *,
                   words: int = 1) -> None:
    """One everyone-forwards-once flood wave from ``source`` (Turau's
    done/abort floods): the wave reaches depth-``d`` nodes at tick
    ``d``, each forwarding to all neighbours the tick it is reached."""
    from repro.engines.arraywalk import gather_neighbors

    n = len(indptr) - 1
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int64)
    while frontier.size:
        counts = indptr[frontier + 1] - indptr[frontier]
        src = np.repeat(frontier, counts)
        dst = gather_neighbors(indptr, indices, frontier)
        ledger.burst(src, dst, words)
        fresh = np.unique(dst[~seen[dst]])
        seen[fresh] = True
        frontier = fresh
