"""The Conversion Theorem of [16] as an execution engine.

Theorem 4.1 of Klauck–Nanongkai–Pandurangan–Robinson (paraphrased):
any CONGEST algorithm using ``T`` rounds and ``M`` messages on an
``n``-node graph can be simulated by ``k`` machines (graph distributed
by random vertex partition) in ``O~(M / k^2 + T * Delta' / k)`` rounds,
where ``Delta'`` bounds per-node per-round traffic.  The proof idea is
direct simulation: each machine runs the protocol code of the graph
nodes it hosts; a CONGEST message between co-hosted nodes is free, and
one between nodes on different machines must cross the hosting
machines' link, which carries only ``W`` words per round.

This module implements that simulation *exactly*: it drives the
message-level CONGEST engine round by round, observes every delivered
message via :attr:`Network.round_observer`, bins cross-machine traffic
per link, and charges ``ceil(busiest link load / W)`` k-machine rounds
per CONGEST round (minimum 1 — the machines advance the simulated round
counter in lockstep even when no traffic crosses).

Charging per CONGEST round (rather than amortising across rounds) is
the conservative reading of the theorem: messages of round ``r + 1``
can depend on messages of round ``r``, so rounds cannot overlap without
a pipelining argument.  The measured `kmachine_rounds` is therefore an
honest upper bound achievable by the plain simulation, and the E13
benchmark checks it still exhibits the theorem's ``~1/k`` scaling.

This conversion pays full per-node CONGEST simulation cost, which
confines it to toy sizes; the *native* machine-level engine
(:mod:`repro.engines.kmachine_engine`, ``engine="kmachine"``) runs the
same algorithms as batched array steps under the identical charging
rule and reaches the large-``n`` regime.  The converted simulator here
stays registered as that engine's parity **oracle** (see
``tests/test_engine_parity.py::TestKmachineOracleGate``), exactly as
the reference walkers gate the fast engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.congest.message import payload_words
from repro.congest.network import Network
from repro.engines.results import RunResult
from repro.graphs.adjacency import Graph
from repro.kmachine.metrics import KMachineMetrics
from repro.kmachine.partition import VertexPartition

__all__ = [
    "KMachineResult",
    "run_converted",
    "run_converted_hc",
    "conversion_round_bound",
    "DEFAULT_LINK_WORDS",
]

#: Default per-link bandwidth in words per k-machine round.  [16] allows
#: any ``O(polylog n)`` bits; we default to a small constant number of
#: words so the congestion structure is visible at simulable sizes.
DEFAULT_LINK_WORDS = 16


@dataclass
class KMachineResult:
    """Outcome of one converted execution.

    ``network`` is the finished CONGEST network (protocol state is read
    out of it exactly as for a native run); ``metrics`` carries the
    k-machine cost accounting; ``partition`` is the RVP used.
    """

    network: Network
    metrics: KMachineMetrics
    partition: VertexPartition


class _LinkAccountant:
    """Per-round cross-machine load binning (the conversion's inner loop)."""

    def __init__(self, partition: VertexPartition, link_words: int):
        if link_words < 1:
            raise ValueError(f"link bandwidth must be positive, got {link_words}")
        self.partition = partition
        self.link_words = link_words
        self.metrics = KMachineMetrics.empty(partition.k)

    def observe(self, network: Network, outbox: list[tuple[int, int, tuple]]) -> None:
        machine_of = self.partition.machine_of
        metrics = self.metrics
        round_loads: dict[tuple[int, int], int] = {}
        for src, dst, payload in outbox:
            words = 1 + payload_words(payload)  # kind tag charged as one word
            a = int(machine_of[src])
            b = int(machine_of[dst])
            if a == b:
                metrics.local_words += words
                continue
            link = (a, b) if a < b else (b, a)
            round_loads[link] = round_loads.get(link, 0) + words
            metrics.cross_words += words
            metrics.link_words[link[0], link[1]] += words
            metrics.recv_words_per_machine[b] += words
        metrics.congest_rounds += 1
        busiest = max(round_loads.values(), default=0)
        if busiest > metrics.max_round_link_words:
            metrics.max_round_link_words = busiest
        metrics.kmachine_rounds += max(1, math.ceil(busiest / self.link_words))


def run_converted(
    graph: Graph,
    protocol_factory: Callable[[int], "object"],
    *,
    k: int,
    max_rounds: int,
    seed: int = 0,
    partition_seed: int | None = None,
    link_words: int = DEFAULT_LINK_WORDS,
    bandwidth_words: int = 8,
    partition: VertexPartition | None = None,
    raise_on_limit: bool = False,
) -> KMachineResult:
    """Run a CONGEST protocol under k-machine accounting.

    The protocol executes *unchanged* (same seed derivation as a native
    :class:`~repro.congest.network.Network` run, hence identical node
    decisions and outputs); only the cost model differs.  See the module
    docstring for the charging rule.

    Parameters
    ----------
    graph:
        Input graph (the k machines jointly hold it via RVP).
    protocol_factory:
        Same factory a native CONGEST run would use.
    k:
        Number of machines.
    partition:
        Optional explicit partition (defaults to
        ``VertexPartition.random(n, k, seed=partition_seed or seed)``).
    link_words:
        Per-link words per k-machine round (the model's ``W``).
    """
    if partition is None:
        partition = VertexPartition.random(
            graph.n, k, seed=seed if partition_seed is None else partition_seed)
    if partition.n != graph.n or partition.k != k:
        raise ValueError(
            f"partition shape ({partition.n} nodes / {partition.k} machines) "
            f"does not match graph n={graph.n}, k={k}")

    network = Network(
        graph, protocol_factory, seed=seed, bandwidth_words=bandwidth_words)
    accountant = _LinkAccountant(partition, link_words)
    network.round_observer = accountant.observe
    network.run(max_rounds=max_rounds, raise_on_limit=raise_on_limit)
    return KMachineResult(network=network, metrics=accountant.metrics,
                          partition=partition)


def run_converted_hc(
    graph: Graph,
    *,
    algorithm: str = "dhc2",
    k_machines: int,
    seed: int = 0,
    link_words: int = DEFAULT_LINK_WORDS,
    **algorithm_kwargs,
) -> tuple[RunResult, KMachineMetrics]:
    """Convert one of the paper's HC algorithms to the k-machine model.

    Convenience wrapper: runs ``algorithm`` ("dra", "dhc1" or "dhc2")
    through its normal front end while a :class:`_LinkAccountant`
    observes the execution, and returns both the usual
    :class:`~repro.engines.results.RunResult` (success, cycle, CONGEST
    rounds) and the :class:`KMachineMetrics`.

    The returned ``RunResult`` is identical to a native run with the
    same seed — conversion never perturbs the protocol.

    Which algorithms are convertible is a *capability* declared in the
    engine registry (``kmachine_convertible`` on the congest spec), not
    a name list here: registering a new fully-distributed algorithm
    with that capability makes it convertible everywhere, including the
    CLI's ``--k-machines`` flag.
    """
    from repro.engines.registry import REGISTRY

    spec = REGISTRY.engines_for(algorithm).get("congest")
    if spec is None or not spec.kmachine_convertible:
        raise ValueError(
            f"algorithm {algorithm!r} is not k-machine convertible; "
            f"conversion targets the fully-distributed CONGEST algorithms: "
            f"{REGISTRY.convertible_algorithms()}")

    partition = VertexPartition.random(graph.n, k_machines, seed=seed)
    accountant = _LinkAccountant(partition, link_words)

    def hook(network: Network) -> None:
        network.round_observer = accountant.observe

    from repro.congest.model import NetworkModel

    result = spec.call(graph, seed=seed,
                       network=NetworkModel(network_hook=hook),
                       **algorithm_kwargs)
    return result, accountant.metrics


def conversion_round_bound(
    messages: int,
    congest_rounds: int,
    max_degree: int,
    *,
    k: int,
    link_words: int = DEFAULT_LINK_WORDS,
) -> float:
    """Theorem 4.1 of [16] shape: ``O~(M / k^2 + T * Delta / k)`` rounds.

    Expressed in link-word units so it is directly comparable to the
    measured ``kmachine_rounds``.  Constants are not part of the claim;
    E13 fits them.
    """
    if k < 1:
        raise ValueError(f"need at least one machine, got k={k}")
    message_term = messages / (k * k)
    delay_term = congest_rounds * max_degree / k
    return (message_term + delay_term) / link_words
