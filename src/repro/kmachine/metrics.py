"""Cost accounting for the k-machine conversion engine.

The k-machine model charges per *machine link* per round: each of the
``k(k-1)/2`` pairwise links carries at most ``W`` words (``O(polylog n)``
bits) per round.  Converting a CONGEST execution therefore means, for
every CONGEST round, packing that round's cross-machine messages onto
the links and charging enough k-machine rounds to drain the most loaded
link.  These are the counters that come out of that accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KMachineMetrics"]


@dataclass
class KMachineMetrics:
    """Counters accumulated by :func:`repro.kmachine.simulation.run_converted`.

    Attributes
    ----------
    k:
        Number of machines.
    congest_rounds:
        Rounds the underlying CONGEST execution took (the paper's cost).
    kmachine_rounds:
        Rounds after conversion — the headline k-machine cost.
    cross_words / local_words:
        Total message words that crossed a machine link vs. stayed
        machine-local (local delivery is free in the model).
    link_words:
        ``k x k`` upper-triangular matrix of total words per link.
    recv_words_per_machine:
        Total words received by each machine (length ``k``).
    max_round_link_words:
        The largest single-round single-link load seen — the quantity
        whose ceiling against the link bandwidth drives the conversion.
    """

    k: int
    congest_rounds: int = 0
    kmachine_rounds: int = 0
    cross_words: int = 0
    local_words: int = 0
    link_words: np.ndarray = field(default_factory=lambda: np.zeros((0, 0), dtype=np.int64))
    recv_words_per_machine: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64))
    max_round_link_words: int = 0

    @classmethod
    def empty(cls, k: int) -> "KMachineMetrics":
        return cls(
            k=k,
            link_words=np.zeros((k, k), dtype=np.int64),
            recv_words_per_machine=np.zeros(k, dtype=np.int64),
        )

    def busiest_link(self) -> tuple[int, int, int]:
        """``(machine_a, machine_b, words)`` of the most loaded link overall."""
        if self.link_words.size == 0 or self.link_words.max() == 0:
            return (0, 0, 0)
        a, b = np.unravel_index(int(self.link_words.argmax()), self.link_words.shape)
        return int(a), int(b), int(self.link_words[a, b])

    def link_imbalance(self) -> float:
        """Max/mean words over links that carried anything (1.0 = even).

        The Conversion Theorem's efficiency rests on RVP spreading each
        round's traffic evenly over the ``k(k-1)/2`` links; this measures
        how true that is for a finished run.
        """
        if self.k < 2:
            return 1.0
        upper = self.link_words[np.triu_indices(self.k, k=1)]
        mean = float(upper.mean())
        return float(upper.max()) / mean if mean > 0 else 1.0

    def speedup(self) -> float:
        """CONGEST rounds per k-machine round (> 1 means conversion won)."""
        if self.kmachine_rounds <= 0:
            return 0.0
        return self.congest_rounds / self.kmachine_rounds

    def summary(self) -> dict[str, float]:
        """Headline numbers for tables and benches."""
        return {
            "k": float(self.k),
            "congest_rounds": float(self.congest_rounds),
            "kmachine_rounds": float(self.kmachine_rounds),
            "cross_words": float(self.cross_words),
            "local_words": float(self.local_words),
            "max_round_link_words": float(self.max_round_link_words),
            "link_imbalance": self.link_imbalance(),
            "speedup": self.speedup(),
        }
