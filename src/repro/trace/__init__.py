"""Execution tracing for CONGEST runs.

Distributed algorithms fail in ways a final metrics object cannot
explain — a walk that stalls, a merge level that never fires, a flood
that half-finishes.  This subpackage records what actually moved on the
wire, without touching protocols:

* :class:`~repro.trace.recorder.TraceRecorder` attaches to a network's
  ``round_observer`` and keeps a bounded, filterable record of every
  delivered message (round, src, dst, kind);
* :mod:`repro.trace.render` turns a trace into readable text — a
  per-round activity timeline, per-kind traffic summaries, and a node
  lens showing one node's conversation.

Used by the debugging examples and by tests that assert *protocol
phase structure* (e.g. "all colour announcements happen in one round")
rather than just outcomes.
"""

from repro.trace.recorder import TraceEvent, TraceRecorder
from repro.trace.render import activity_timeline, kind_summary, node_lens

__all__ = [
    "TraceEvent",
    "TraceRecorder",
    "activity_timeline",
    "kind_summary",
    "node_lens",
]
