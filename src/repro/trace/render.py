"""Text renderings of a recorded trace."""

from __future__ import annotations

from repro.reporting.table import render_table
from repro.trace.recorder import TraceEvent, TraceRecorder

__all__ = ["activity_timeline", "kind_summary", "node_lens"]

_BARS = " .:-=+*#%@"


def activity_timeline(recorder: TraceRecorder, *, buckets: int = 60) -> str:
    """Per-round traffic volume as an ASCII sparkline histogram.

    Rounds are bucketed onto ``buckets`` columns; each column's glyph
    encodes the bucket's message count relative to the busiest bucket.
    The shape makes protocol phases visible at a glance — election
    burst, quiet BFS, walk plateau, merge spikes.
    """
    events = recorder.events()
    if not events:
        return "(empty trace)"
    first = events[0].round_index
    last = events[-1].round_index
    span = max(1, last - first + 1)
    buckets = max(1, min(buckets, span))
    counts = [0] * buckets
    for e in events:
        b = (e.round_index - first) * buckets // span
        counts[min(b, buckets - 1)] += 1
    peak = max(counts)
    line = "".join(
        _BARS[min(len(_BARS) - 1, (c * (len(_BARS) - 1) + peak - 1) // peak)]
        if c else " "
        for c in counts
    )
    return (f"rounds {first}..{last}, {len(events)} events, "
            f"peak {peak}/bucket\n[{line}]")


def kind_summary(recorder: TraceRecorder) -> str:
    """Traffic table per message kind (count, share, first/last round)."""
    events = recorder.events()
    if not events:
        return "(empty trace)"
    spans: dict[str, tuple[int, int, int]] = {}
    for e in events:
        count, first, last = spans.get(e.kind, (0, e.round_index, e.round_index))
        spans[e.kind] = (count + 1, min(first, e.round_index),
                         max(last, e.round_index))
    total = len(events)
    rows = [
        (kind, count, f"{100.0 * count / total:.1f}%", first, last)
        for kind, (count, first, last) in
        sorted(spans.items(), key=lambda kv: -kv[1][0])
    ]
    return render_table(
        ["kind", "count", "share", "first round", "last round"], rows)


def node_lens(recorder: TraceRecorder, node: int, *, limit: int = 40) -> str:
    """One node's conversation, oldest first, at most ``limit`` lines."""
    events = recorder.involving(node)
    if not events:
        return f"(node {node}: no recorded traffic)"
    shown = events[:limit]
    lines = [_format_for(node, e) for e in shown]
    if len(events) > limit:
        lines.append(f"... {len(events) - limit} more")
    return "\n".join(lines)


def _format_for(node: int, e: TraceEvent) -> str:
    if e.src == node:
        return f"r{e.round_index:>5}  -> {e.dst:<5} {e.kind}"
    return f"r{e.round_index:>5}  <- {e.src:<5} {e.kind}"
