"""Message-level trace recording.

The recorder observes delivered messages via
:attr:`repro.congest.network.Network.round_observer`.  Recording every
message of a big run would dwarf the run itself, so the recorder is
bounded (``capacity`` most recent events, ring-buffer style) and
filterable at capture time (by message kind prefix and/or node set) —
filters run before storage, so a focused trace of a huge run stays
small.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.congest.network import Network

__all__ = ["TraceEvent", "TraceRecorder"]


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message.

    ``round_index`` is the round the message arrives at (sends happen
    the round before); ``kind`` is the payload tag; ``words`` the
    payload field count (bandwidth accounting unit).
    """

    round_index: int
    src: int
    dst: int
    kind: str
    words: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (f"r{self.round_index:>5} {self.src:>5} -> {self.dst:<5} "
                f"{self.kind} ({self.words}w)")


class TraceRecorder:
    """Bounded, filterable recorder of network traffic.

    Parameters
    ----------
    capacity:
        Maximum events retained (oldest evicted first).
    kinds:
        Optional iterable of kind *prefixes*; only matching messages
        are recorded (e.g. ``["rw.", "ab"]`` records walk traffic and
        aborts).  Prefix matching is how sub-machine namespaces work,
        so one entry can capture a whole machine's conversation.
    nodes:
        Optional node set; a message is recorded if either endpoint is
        in the set.

    Attributes
    ----------
    total_seen:
        Messages observed (pre-filter) — lets users judge how selective
        their trace was.
    dropped:
        Events evicted by the capacity bound.
    """

    def __init__(self, *, capacity: int = 100_000,
                 kinds: Iterable[str] | None = None,
                 nodes: Iterable[int] | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._kind_prefixes = tuple(kinds) if kinds is not None else None
        self._nodes = frozenset(nodes) if nodes is not None else None
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.total_seen = 0
        self.dropped = 0

    # -- attachment ---------------------------------------------------------------

    def attach(self, network: Network) -> None:
        """Install as the network's round observer.

        Chains with a pre-existing observer (e.g. k-machine accounting)
        rather than replacing it.
        """
        previous = network.round_observer

        def observe(net: Network, outbox) -> None:
            if previous is not None:
                previous(net, outbox)
            self._observe(net, outbox)

        network.round_observer = observe

    def _observe(self, network: Network, outbox) -> None:
        delivery_round = network.round_index + 1
        for src, dst, payload in outbox:
            self.total_seen += 1
            kind = payload[0]
            if self._kind_prefixes is not None and not any(
                    kind.startswith(p) for p in self._kind_prefixes):
                continue
            if self._nodes is not None and (
                    src not in self._nodes and dst not in self._nodes):
                continue
            if len(self._events) == self.capacity:
                self.dropped += 1
            self._events.append(TraceEvent(
                round_index=delivery_round, src=src, dst=dst,
                kind=kind, words=len(payload)))

    # -- queries ---------------------------------------------------------------------

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def rounds(self) -> list[int]:
        """Distinct delivery rounds present, ascending."""
        return sorted({e.round_index for e in self._events})

    def by_kind(self) -> dict[str, int]:
        """Message count per kind, descending by count."""
        counts: dict[str, int] = {}
        for e in self._events:
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def involving(self, node: int) -> list[TraceEvent]:
        """Events where ``node`` is sender or receiver."""
        return [e for e in self._events if node in (e.src, e.dst)]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        """Events satisfying an arbitrary predicate."""
        return [e for e in self._events if predicate(e)]
