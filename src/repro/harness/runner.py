"""Trial execution with deterministic seed derivation.

A *trial* is one invocation of a user function on one grid point with
one seed.  The runner derives seeds with ``numpy``'s ``SeedSequence``
from (master seed, point index, trial index), so

* reruns reproduce bit-for-bit,
* adding trials never changes earlier trials' seeds, and
* no two trials share a stream even across grid points.

The trial function receives ``(point, seed)`` and returns either a
:class:`~repro.engines.results.RunResult` or any mapping with at least
a boolean ``success`` — both are normalised into :class:`Trial`.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.engines.results import RunResult

__all__ = ["Trial", "TrialRunner", "ParallelTrialRunner"]


@dataclass
class Trial:
    """One completed trial.

    ``metrics`` holds whatever numeric fields the trial function
    produced (rounds, messages, steps, ...); ``point`` the grid
    parameters; ``seed`` the derived seed actually used.
    """

    point: dict[str, Any]
    trial_index: int
    seed: int
    success: bool
    metrics: dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_json(self) -> dict[str, Any]:
        """A flat JSON-safe dict (used by :class:`TrialStore`)."""
        return {
            "point": self.point,
            "trial_index": self.trial_index,
            "seed": self.seed,
            "success": self.success,
            "metrics": self.metrics,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Trial":
        return cls(
            point=dict(data["point"]),
            trial_index=int(data["trial_index"]),
            seed=int(data["seed"]),
            success=bool(data["success"]),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def key(self) -> tuple:
        """Identity of this trial for resume de-duplication."""
        return (tuple(sorted(self.point.items())), self.trial_index)

    def canonical_json(self) -> dict[str, Any]:
        """:meth:`to_json` minus wall-clock fields.

        Two runs of the same sweep — serial or parallel, fresh or
        resumed — produce byte-identical canonical records; only
        ``elapsed_s`` varies with the machine's load.
        """
        data = self.to_json()
        data.pop("elapsed_s", None)
        return data


class TrialRunner:
    """Runs a trial function over grid points x trial indices.

    Parameters
    ----------
    fn:
        ``fn(point, seed) -> RunResult | Mapping``.
    master_seed:
        Root of the seed tree.
    store:
        Optional :class:`~repro.harness.store.TrialStore`; completed
        trials are appended as they finish, and trials already present
        in the store are skipped (resume).
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None):
        self.fn = fn
        self.master_seed = master_seed
        self.store = store

    def derive_seed(self, point_index: int, trial_index: int) -> int:
        """The deterministic seed for (grid point #, trial #)."""
        seq = np.random.SeedSequence(
            entropy=self.master_seed,
            spawn_key=(point_index, trial_index),
        )
        return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1))

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        """Execute every (point, trial) pair; returns all trials in order.

        With a store attached, previously recorded trials are loaded
        instead of re-run (their stored metrics are trusted — reruns
        are bit-identical by construction, so this is safe).
        """
        done: dict[tuple, Trial] = {}
        if self.store is not None:
            for trial in self.store.load():
                done[trial.key()] = trial

        out: list[Trial] = []
        for point_index, point in enumerate(points):
            for trial_index in range(trials):
                probe = Trial(point=dict(point), trial_index=trial_index,
                              seed=0, success=False)
                existing = done.get(probe.key())
                if existing is not None:
                    out.append(existing)
                    continue
                seed = self.derive_seed(point_index, trial_index)
                start = time.perf_counter()
                raw = self.fn(dict(point), seed)
                elapsed = time.perf_counter() - start
                trial = _normalize(raw, dict(point), trial_index, seed, elapsed)
                out.append(trial)
                if self.store is not None:
                    self.store.append(trial)
                if progress is not None:
                    progress(trial)
        return out


class ParallelTrialRunner(TrialRunner):
    """A :class:`TrialRunner` that fans trials out over worker processes.

    Seed derivation, trial ordering, store contents, and resume
    behaviour are all identical to the serial runner: seeds come from
    the same ``SeedSequence`` tree keyed by (grid point #, trial #), and
    results are consumed from the pool in submission order, so the
    JSONL store receives the same records in the same order as a serial
    run (byte-identical up to the wall-clock ``elapsed_s`` field — see
    :meth:`Trial.canonical_json`).  Only wall-clock time differs.

    The trial function must be picklable (a module-level function or
    class instance), as must its return value — true for
    :class:`~repro.engines.results.RunResult` and plain mappings.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the machine's CPU count.
        ``jobs=1`` degrades to the serial code path (no pool spawned).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` on
        Linux (cheap, inherits imports) and the platform default
        elsewhere — macOS lists ``fork`` but defaults to ``spawn``
        because forking a threaded/Accelerate-initialised process is
        unsafe there.
    chunksize:
        Trials handed to a worker per IPC message.  ``None`` (default)
        auto-sizes from the pending-trial count and worker count (see
        :meth:`auto_chunksize`) so sub-millisecond vectorised trials
        are not drowned in per-task IPC; pass an explicit value to
        pin it (``1`` reproduces the old one-task-per-message
        behaviour).  Chunking never changes results: ordered ``imap``
        keeps completions in submission order, so seeds, trial order,
        and store records stay byte-identical (up to ``elapsed_s``)
        whatever the chunk size.
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None, jobs: int | None = None,
                 mp_context: str | None = None, chunksize: int | None = None):
        super().__init__(fn, master_seed=master_seed, store=store)
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if mp_context is None and sys.platform.startswith("linux") \
                and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self.mp_context = mp_context
        if chunksize is not None and int(chunksize) < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = int(chunksize) if chunksize is not None else None

    @staticmethod
    def auto_chunksize(pending: int, workers: int) -> int:
        """Chunk size balancing IPC amortisation against load balance.

        Aim for ~4 chunks per worker (so a straggler chunk costs at
        most ~1/4 of a worker's share), capped at 64 trials per
        message to bound per-chunk latency for slow trial functions.
        """
        return max(1, min(64, -(-pending // (4 * workers))))

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        if self.jobs <= 1:
            return super().run(points, trials=trials, progress=progress)
        points = [dict(p) for p in points]
        done: dict[tuple, Trial] = {}
        if self.store is not None:
            for trial in self.store.load():
                done[trial.key()] = trial

        # (point_index, trial_index) -> existing Trial or None (pending).
        schedule: list[tuple[int, int, Trial | None]] = []
        pending: list[tuple[int, int]] = []
        for point_index, point in enumerate(points):
            for trial_index in range(trials):
                probe = Trial(point=dict(point), trial_index=trial_index,
                              seed=0, success=False)
                existing = done.get(probe.key())
                schedule.append((point_index, trial_index, existing))
                if existing is None:
                    pending.append((point_index, trial_index))

        if len(pending) <= 1:  # nothing worth a pool; serial path resumes
            return super().run(points, trials=trials, progress=progress)

        tasks = [(points[pi], ti, self.derive_seed(pi, ti))
                 for pi, ti in pending]
        computed: dict[tuple[int, int], Trial] = {}
        ctx = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(tasks))
        chunksize = (self.chunksize if self.chunksize is not None
                     else self.auto_chunksize(len(tasks), workers))
        with ctx.Pool(processes=workers, initializer=_pool_initializer,
                      initargs=(self.fn,)) as pool:
            # imap (ordered) keeps store appends in submission order —
            # the same order the serial runner writes — regardless of
            # how tasks are batched into chunks.
            for key, trial in zip(pending,
                                  pool.imap(_pool_trial, tasks,
                                            chunksize=chunksize)):
                computed[key] = trial
                if self.store is not None:
                    self.store.append(trial)
                if progress is not None:
                    progress(trial)

        return [existing if existing is not None
                else computed[(point_index, trial_index)]
                for point_index, trial_index, existing in schedule]


#: Per-worker trial function, installed once by the pool initializer so
#: each task message carries only (point, index, seed).
_worker_fn: Callable[[dict, int], Any] | None = None


def _pool_initializer(fn: Callable[[dict, int], Any]) -> None:
    global _worker_fn
    _worker_fn = fn


def _pool_trial(task: tuple[dict, int, int]) -> Trial:
    point, trial_index, seed = task
    start = time.perf_counter()
    raw = _worker_fn(dict(point), seed)
    elapsed = time.perf_counter() - start
    return _normalize(raw, dict(point), trial_index, seed, elapsed)


def _normalize(raw: Any, point: dict, trial_index: int, seed: int,
               elapsed: float) -> Trial:
    if isinstance(raw, RunResult):
        metrics = {
            "rounds": float(raw.rounds),
            "messages": float(raw.messages),
            "bits": float(raw.bits),
            "steps": float(raw.steps),
        }
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=raw.success, metrics=metrics, elapsed_s=elapsed)
    if isinstance(raw, Mapping):
        if "success" not in raw:
            raise ValueError("trial mapping must contain a 'success' key")
        metrics = {k: float(v) for k, v in raw.items()
                   if k != "success" and isinstance(v, (int, float))}
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=bool(raw["success"]), metrics=metrics,
                     elapsed_s=elapsed)
    raise TypeError(
        f"trial function must return RunResult or a mapping, got {type(raw)}")
