"""Trial execution with deterministic seed derivation.

A *trial* is one invocation of a user function on one grid point with
one seed.  The runner derives seeds with ``numpy``'s ``SeedSequence``
from (master seed, point index, trial index), so

* reruns reproduce bit-for-bit,
* adding trials never changes earlier trials' seeds, and
* no two trials share a stream even across grid points.

The trial function receives ``(point, seed)`` and returns either a
:class:`~repro.engines.results.RunResult` or any mapping with at least
a boolean ``success`` — both are normalised into :class:`Trial`.

Orchestration layers (all optional, all preserving the seed tree):

* **store backends** (:mod:`repro.harness.store`) persist completed
  trials and power resume;
* **schedulers** (:mod:`repro.harness.scheduler`) decide how the
  parallel runner's pending trials flow through the worker pool —
  ordered (byte-identical store) or work-stealing (skew-tolerant);
* **sharding** (:mod:`repro.harness.sharding`) restricts a runner to a
  deterministic slice of the (point, trial) grid so N hosts can split
  one sweep.

Batched execution hands ``batch_fn(point, seeds)`` whole same-point
groups instead of one ``(point, seed)`` at a time.  Note what crosses
the process boundary: the *point and seed list only* — the CLI's batch
function regenerates the graphs inside the worker (via the pooled
:func:`repro.graphs.batch_gnp` for the G(n, p) model), so parallel
runs never pickle materialised graphs, and a resumed sweep regroups
remaining seeds freely without changing any record.  When the threaded
fused kernel is active (``REPRO_JIT_THREADS``), the CLI prefers one
threaded batch pass over process fan-out and demotes ``--jobs`` — see
the parallelism-composition rule in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.engines.results import RunResult

__all__ = ["Trial", "TrialRunner", "ParallelTrialRunner"]


@dataclass
class Trial:
    """One completed trial.

    ``metrics`` holds whatever numeric fields the trial function
    produced (rounds, messages, steps, ...); ``point`` the grid
    parameters; ``seed`` the derived seed actually used.
    """

    point: dict[str, Any]
    trial_index: int
    seed: int
    success: bool
    metrics: dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_json(self) -> dict[str, Any]:
        """A flat JSON-safe dict (used by the store backends)."""
        return {
            "point": self.point,
            "trial_index": self.trial_index,
            "seed": self.seed,
            "success": self.success,
            "metrics": self.metrics,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Trial":
        return cls(
            point=dict(data["point"]),
            trial_index=int(data["trial_index"]),
            seed=int(data["seed"]),
            success=bool(data["success"]),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def key(self) -> tuple:
        """Identity of this trial for resume de-duplication.

        Also the sort key of the deterministic *canonical order*
        (:func:`repro.harness.store.canonical_order`) that
        work-stealing stores and shard merges are normalised into.
        """
        return (tuple(sorted(self.point.items())), self.trial_index)

    def canonical_json(self) -> dict[str, Any]:
        """:meth:`to_json` minus wall-clock fields.

        Two runs of the same sweep — serial or parallel, any
        scheduler, any store backend, any shard split, fresh or
        resumed — produce identical canonical records; only
        ``elapsed_s`` varies with the machine's load.
        """
        data = self.to_json()
        data.pop("elapsed_s", None)
        return data


def trial_key(point: Mapping[str, Any], trial_index: int) -> tuple:
    """:meth:`Trial.key` for a not-yet-run (point, trial index) pair."""
    return (tuple(sorted(point.items())), trial_index)


class TrialRunner:
    """Runs a trial function over grid points x trial indices.

    Parameters
    ----------
    fn:
        ``fn(point, seed) -> RunResult | Mapping``.
    master_seed:
        Root of the seed tree.
    store:
        Optional :class:`~repro.harness.store.TrialStore` backend;
        completed trials are appended as they finish, and trials
        already present in the store are skipped (resume).
    shard:
        Optional :class:`~repro.harness.sharding.ShardSpec` (or
        ``"I/N"`` string / ``(index, count)`` pair) restricting this
        runner to its deterministic slice of the (point, trial) grid.
        Seeds for the pairs it runs are identical to an unsharded run.
    batch_fn:
        Optional batched trial function ``batch_fn(point, seeds) ->
        [raw, ...]`` (one raw result per seed, same normalisation as
        ``fn``'s return).  When set together with ``batch_size > 1``,
        consecutive pending trials that share a grid point are handed
        over as one call — the fast-batch engines then run them in
        one kernel pass.  Seeds, trial order, and store records are
        identical to the unbatched run (``elapsed_s`` aside, which
        the canonical records exclude).
    batch_size:
        Largest group handed to ``batch_fn`` (default 1 = unbatched),
        or a callable ``batch_size(point) -> int`` sizing each grid
        point's groups individually — the auto-batching sweep path
        passes :func:`repro.engines.fast_batch.auto_batch_size` here
        so batch caps track each point's expected edge count.
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None, shard=None,
                 batch_fn: Callable[[dict, list[int]], Any] | None = None,
                 batch_size: int | Callable[[dict], int] = 1):
        from repro.harness.sharding import ShardSpec

        self.fn = fn
        self.master_seed = master_seed
        self.store = store
        self.shard = ShardSpec.coerce(shard)
        if callable(batch_size):
            self.batch_size: int | Callable[[dict], int] = batch_size
        else:
            if int(batch_size) < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            self.batch_size = int(batch_size)
        self.batch_fn = batch_fn

    def _batching(self) -> bool:
        """Whether the batched code path is active."""
        return self.batch_fn is not None and (
            callable(self.batch_size) or self.batch_size > 1)

    def _batch_cap(self, point: dict) -> int:
        """This point's group-size cap (callable caps floored at 1)."""
        if callable(self.batch_size):
            return max(1, int(self.batch_size(dict(point))))
        return self.batch_size

    def derive_seed(self, point_index: int, trial_index: int) -> int:
        """The deterministic seed for (grid point #, trial #)."""
        seq = np.random.SeedSequence(
            entropy=self.master_seed,
            spawn_key=(point_index, trial_index),
        )
        return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1))

    def _plan(self, points, trials: int) -> list[tuple[int, int, dict, Trial | None]]:
        """This runner's schedule: (point #, trial #, point, resumed trial).

        Grid enumeration order, filtered to this runner's shard slice;
        the fourth element is the already-stored trial for resumed
        pairs, ``None`` for pending ones.
        """
        done: dict[tuple, Trial] = {}
        if self.store is not None:
            for trial in self.store.load():
                done[trial.key()] = trial
        plan = []
        for point_index, point in enumerate(points):
            for trial_index in range(trials):
                if self.shard is not None and not self.shard.owns(
                        point_index, trial_index, trials):
                    continue
                plan.append((point_index, trial_index, point,
                             done.get(trial_key(point, trial_index))))
        return plan

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        """Execute every owned (point, trial) pair; returns them in order.

        With a store attached, previously recorded trials are loaded
        instead of re-run (their stored metrics are trusted — reruns
        are bit-identical by construction, so this is safe).
        ``progress`` fires exactly once per returned trial, resumed or
        freshly executed alike.
        """
        points = [dict(p) for p in points]
        if self._batching():
            return self._run_batched(points, trials, progress)
        out: list[Trial] = []
        for point_index, trial_index, point, existing in self._plan(points, trials):
            if existing is not None:
                out.append(existing)
                if progress is not None:
                    progress(existing)
                continue
            seed = self.derive_seed(point_index, trial_index)
            start = time.perf_counter()
            raw = self.fn(dict(point), seed)
            elapsed = time.perf_counter() - start
            trial = _normalize(raw, dict(point), trial_index, seed, elapsed)
            out.append(trial)
            if self.store is not None:
                self.store.append(trial)
            if progress is not None:
                progress(trial)
        return out

    def _run_batched(self, points, trials: int,
                     progress: Callable[[Trial], None] | None) -> list[Trial]:
        """The :meth:`run` loop with same-point groups sent to batch_fn.

        Groups are flushed at point boundaries, at ``batch_size``, and
        at resumed entries, so the emission (and store write) order is
        exactly the unbatched schedule order.
        """
        out: list[Trial] = []
        buf: list[tuple[int, int, dict]] = []

        def flush() -> None:
            if not buf:
                return
            point = buf[0][2]
            seeds = [self.derive_seed(pi, ti) for pi, ti, _ in buf]
            start = time.perf_counter()
            raws = self.batch_fn(dict(point), list(seeds))
            per = (time.perf_counter() - start) / len(buf)
            if len(raws) != len(buf):
                raise ValueError(
                    f"batch_fn returned {len(raws)} results for "
                    f"{len(buf)} seeds")
            for (pi, ti, pt), seed, raw in zip(buf, seeds, raws):
                trial = _normalize(raw, dict(pt), ti, seed, per)
                out.append(trial)
                if self.store is not None:
                    self.store.append(trial)
                if progress is not None:
                    progress(trial)
            buf.clear()

        for point_index, trial_index, point, existing in self._plan(points, trials):
            if existing is not None:
                flush()
                out.append(existing)
                if progress is not None:
                    progress(existing)
                continue
            if buf and (len(buf) >= self._batch_cap(buf[0][2])
                        or buf[0][2] != point):
                flush()
            buf.append((point_index, trial_index, point))
        flush()
        return out


class ParallelTrialRunner(TrialRunner):
    """A :class:`TrialRunner` that fans trials out over worker processes.

    Seed derivation, trial ordering, store *contents*, and resume
    behaviour are all identical to the serial runner: seeds come from
    the same ``SeedSequence`` tree keyed by (grid point #, trial #),
    and the returned list is always in schedule (grid) order.  How
    results flow back — and hence the store's *write order* — is the
    pluggable scheduler's choice (:mod:`repro.harness.scheduler`):

    * ``schedule="ordered"`` (default) consumes completions in
      submission order, so a JSONL store receives the same records in
      the same order as a serial run — byte-identical up to the
      wall-clock ``elapsed_s`` field (see :meth:`Trial.canonical_json`);
    * ``schedule="work-stealing"`` consumes completions as they land,
      so skewed grids don't serialise behind head-of-line chunks; the
      store becomes a completion log whose records re-canonicalise to
      the same set at load/aggregate time.

    The trial function must be picklable (a module-level function or
    class instance), as must its return value — true for
    :class:`~repro.engines.results.RunResult` and plain mappings.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the machine's CPU count.
        ``jobs=1`` degrades to the serial code path (no pool spawned).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` on
        Linux (cheap, inherits imports) and the platform default
        elsewhere — macOS lists ``fork`` but defaults to ``spawn``
        because forking a threaded/Accelerate-initialised process is
        unsafe there.
    chunksize:
        Trials handed to a worker per IPC message.  ``None`` (default)
        auto-sizes from the pending-trial count, worker count, and the
        scheduler (work stealing prefers finer chunks — they are the
        stealing unit); pass an explicit value to pin it (``1``
        reproduces one-task-per-message).  Chunking never changes
        results.
    schedule:
        Scheduler name (``"ordered"`` / ``"work-stealing"``), class,
        or :class:`~repro.harness.scheduler.TrialScheduler` instance.
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None, shard=None,
                 jobs: int | None = None, mp_context: str | None = None,
                 chunksize: int | None = None, schedule="ordered",
                 batch_fn: Callable[[dict, list[int]], Any] | None = None,
                 batch_size: int | Callable[[dict], int] = 1):
        from repro.harness.scheduler import resolve_scheduler

        super().__init__(fn, master_seed=master_seed, store=store,
                         shard=shard, batch_fn=batch_fn,
                         batch_size=batch_size)
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if mp_context is None and sys.platform.startswith("linux") \
                and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self.mp_context = mp_context
        if chunksize is not None and int(chunksize) < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = int(chunksize) if chunksize is not None else None
        self.scheduler = resolve_scheduler(schedule)

    @staticmethod
    def auto_chunksize(pending: int, workers: int) -> int:
        """The ordered scheduler's default chunking (kept as API)."""
        from repro.harness.scheduler import OrderedScheduler

        return OrderedScheduler.auto_chunksize(pending, workers)

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        if self.jobs <= 1:
            return super().run(points, trials=trials, progress=progress)
        points = [dict(p) for p in points]
        plan = self._plan(points, trials)
        pending = [(slot, point_index, trial_index, point)
                   for slot, (point_index, trial_index, point, existing)
                   in enumerate(plan) if existing is None]
        if len(pending) <= 1:  # nothing worth a pool; serial path resumes
            return super().run(points, trials=trials, progress=progress)

        # Resumed trials are reported up front (schedule order); the
        # scheduler then emits freshly computed ones as it completes
        # them.  Either way progress fires once per returned trial.
        results: list[Trial | None] = [existing for _, _, _, existing in plan]
        if progress is not None:
            for existing in results:
                if existing is not None:
                    progress(existing)

        batching = self._batching()
        if batching:
            # Same grouping as the serial batched loop: consecutive
            # pending slots sharing a point, capped at the point's
            # batch size.
            tasks: list = []
            group: list[tuple[int, int, int, dict]] = []

            def close() -> None:
                if not group:
                    return
                seeds = [self.derive_seed(pi, ti) for _, pi, ti, _ in group]
                tasks.append((tuple(s for s, _, _, _ in group),
                              group[0][3],
                              tuple(ti for _, _, ti, _ in group),
                              tuple(seeds)))
                group.clear()

            for ent in pending:
                if group and (len(group) >= self._batch_cap(group[0][3])
                              or group[0][3] != ent[3]
                              or ent[0] != group[-1][0] + 1):
                    close()
                group.append(ent)
            close()
        else:
            tasks = [(slot, point, trial_index,
                      self.derive_seed(point_index, trial_index))
                     for slot, point_index, trial_index, point in pending]
        ctx = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(tasks))
        chunksize = (self.chunksize if self.chunksize is not None
                     else self.scheduler.auto_chunksize(len(tasks), workers))

        def emit(slot: int, trial: Trial) -> None:
            results[slot] = trial
            if self.store is not None:
                self.store.append(trial)
            if progress is not None:
                progress(trial)

        extra = {"batch_fn": self.batch_fn} if batching else {}
        self.scheduler.execute(ctx, self.fn, tasks, workers=workers,
                               chunksize=chunksize, emit=emit, **extra)
        return results  # type: ignore[return-value]  # every slot filled


def _normalize(raw: Any, point: dict, trial_index: int, seed: int,
               elapsed: float) -> Trial:
    if isinstance(raw, RunResult):
        metrics = {
            "rounds": float(raw.rounds),
            "messages": float(raw.messages),
            "bits": float(raw.bits),
            "steps": float(raw.steps),
        }
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=raw.success, metrics=metrics, elapsed_s=elapsed)
    if isinstance(raw, Mapping):
        if "success" not in raw:
            raise ValueError("trial mapping must contain a 'success' key")
        metrics = {k: float(v) for k, v in raw.items()
                   if k != "success" and isinstance(v, (int, float))}
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=bool(raw["success"]), metrics=metrics,
                     elapsed_s=elapsed)
    raise TypeError(
        f"trial function must return RunResult or a mapping, got {type(raw)}")
