"""Trial execution with deterministic seed derivation.

A *trial* is one invocation of a user function on one grid point with
one seed.  The runner derives seeds with ``numpy``'s ``SeedSequence``
from (master seed, point index, trial index), so

* reruns reproduce bit-for-bit,
* adding trials never changes earlier trials' seeds, and
* no two trials share a stream even across grid points.

The trial function receives ``(point, seed)`` and returns either a
:class:`~repro.engines.results.RunResult` or any mapping with at least
a boolean ``success`` — both are normalised into :class:`Trial`.

Orchestration layers (all optional, all preserving the seed tree):

* **store backends** (:mod:`repro.harness.store`) persist completed
  trials and power resume;
* **schedulers** (:mod:`repro.harness.scheduler`) decide how the
  parallel runner's pending trials flow through the worker pool —
  ordered (byte-identical store) or work-stealing (skew-tolerant);
* **sharding** (:mod:`repro.harness.sharding`) restricts a runner to a
  deterministic slice of the (point, trial) grid so N hosts can split
  one sweep.

Batched execution hands ``batch_fn(point, seeds)`` whole same-point
groups instead of one ``(point, seed)`` at a time.  Note what crosses
the process boundary: the *point and seed list only* — the CLI's batch
function regenerates the graphs inside the worker (via the pooled
:func:`repro.graphs.batch_gnp` for the G(n, p) model), so parallel
runs never pickle materialised graphs, and a resumed sweep regroups
remaining seeds freely without changing any record.  When the threaded
fused kernel is active (``REPRO_JIT_THREADS``), the CLI prefers one
threaded batch pass over process fan-out and demotes ``--jobs`` — see
the parallelism-composition rule in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.engines.results import RunResult

__all__ = ["Trial", "TrialRunner", "ParallelTrialRunner"]


@dataclass
class Trial:
    """One completed trial.

    ``metrics`` holds whatever numeric fields the trial function
    produced (rounds, messages, steps, ...); ``point`` the grid
    parameters; ``seed`` the derived seed actually used.
    """

    point: dict[str, Any]
    trial_index: int
    seed: int
    success: bool
    metrics: dict[str, float] = field(default_factory=dict)
    elapsed_s: float = 0.0

    def to_json(self) -> dict[str, Any]:
        """A flat JSON-safe dict (used by the store backends)."""
        return {
            "point": self.point,
            "trial_index": self.trial_index,
            "seed": self.seed,
            "success": self.success,
            "metrics": self.metrics,
            "elapsed_s": self.elapsed_s,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "Trial":
        return cls(
            point=dict(data["point"]),
            trial_index=int(data["trial_index"]),
            seed=int(data["seed"]),
            success=bool(data["success"]),
            metrics={k: float(v) for k, v in data.get("metrics", {}).items()},
            elapsed_s=float(data.get("elapsed_s", 0.0)),
        )

    def key(self) -> tuple:
        """Identity of this trial for resume de-duplication.

        Also the sort key of the deterministic *canonical order*
        (:func:`repro.harness.store.canonical_order`) that
        work-stealing stores and shard merges are normalised into.
        """
        return (tuple(sorted(self.point.items())), self.trial_index)

    def canonical_json(self) -> dict[str, Any]:
        """:meth:`to_json` minus wall-clock fields.

        Two runs of the same sweep — serial or parallel, any
        scheduler, any store backend, any shard split, fresh or
        resumed — produce identical canonical records; only
        ``elapsed_s`` varies with the machine's load.
        """
        data = self.to_json()
        data.pop("elapsed_s", None)
        return data


def trial_key(point: Mapping[str, Any], trial_index: int) -> tuple:
    """:meth:`Trial.key` for a not-yet-run (point, trial index) pair."""
    return (tuple(sorted(point.items())), trial_index)


class TrialRunner:
    """Runs a trial function over grid points x trial indices.

    Parameters
    ----------
    fn:
        ``fn(point, seed) -> RunResult | Mapping``.
    master_seed:
        Root of the seed tree.
    store:
        Optional :class:`~repro.harness.store.TrialStore` backend;
        completed trials are appended as they finish, and trials
        already present in the store are skipped (resume).
    shard:
        Optional :class:`~repro.harness.sharding.ShardSpec` (or
        ``"I/N"`` string / ``(index, count)`` pair) restricting this
        runner to its deterministic slice of the (point, trial) grid.
        Seeds for the pairs it runs are identical to an unsharded run.
    batch_fn:
        Optional batched trial function ``batch_fn(point, seeds) ->
        [raw, ...]`` (one raw result per seed, same normalisation as
        ``fn``'s return).  When set together with ``batch_size > 1``,
        consecutive pending trials that share a grid point are handed
        over as one call — the fast-batch engines then run them in
        one kernel pass.  Seeds, trial order, and store records are
        identical to the unbatched run (``elapsed_s`` aside, which
        the canonical records exclude).
    batch_size:
        Largest group handed to ``batch_fn`` (default 1 = unbatched),
        or a callable ``batch_size(point) -> int`` sizing each grid
        point's groups individually — the auto-batching sweep path
        passes :func:`repro.engines.fast_batch.auto_batch_size` here
        so batch caps track each point's expected edge count.
    metrics:
        Optional :class:`~repro.harness.metrics.MetricsCollector`.
        Composes with ``progress``: the collector's event hook fires
        on exactly the same once-per-returned-trial contract (fresh
        and resumed alike, every code path — serial, batched,
        parallel), tagged with resume status and the batch group size
        the trial ran in.  The runner also drives ``begin``/``finish``
        so sampled time-series and aggregated KPIs cover the whole
        run; reading the results (:meth:`~repro.harness.metrics.
        MetricsCollector.payload` / ``report``) is the caller's job.
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None, shard=None,
                 batch_fn: Callable[[dict, list[int]], Any] | None = None,
                 batch_size: int | Callable[[dict], int] = 1,
                 metrics=None):
        from repro.harness.sharding import ShardSpec

        self.fn = fn
        self.master_seed = master_seed
        self.store = store
        self.metrics = metrics
        self.shard = ShardSpec.coerce(shard)
        if callable(batch_size):
            self.batch_size: int | Callable[[dict], int] = batch_size
        else:
            if int(batch_size) < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            self.batch_size = int(batch_size)
        self.batch_fn = batch_fn

    def _batching(self) -> bool:
        """Whether the batched code path is active."""
        return self.batch_fn is not None and (
            callable(self.batch_size) or self.batch_size > 1)

    def _batch_cap(self, point: dict) -> int:
        """This point's group-size cap (callable caps floored at 1)."""
        if callable(self.batch_size):
            return max(1, int(self.batch_size(dict(point))))
        return self.batch_size

    def derive_seed(self, point_index: int, trial_index: int) -> int:
        """The deterministic seed for (grid point #, trial #)."""
        seq = np.random.SeedSequence(
            entropy=self.master_seed,
            spawn_key=(point_index, trial_index),
        )
        return int(seq.generate_state(1, dtype=np.uint64)[0] % (2**31 - 1))

    def _plan(self, points, trials: int) -> list[tuple[int, int, dict, Trial | None]]:
        """This runner's schedule: (point #, trial #, point, resumed trial).

        Grid enumeration order, filtered to this runner's shard slice;
        the fourth element is the already-stored trial for resumed
        pairs, ``None`` for pending ones.
        """
        done: dict[tuple, Trial] = {}
        if self.store is not None:
            for trial in self.store.load():
                done[trial.key()] = trial
        plan = []
        for point_index, point in enumerate(points):
            for trial_index in range(trials):
                if self.shard is not None and not self.shard.owns(
                        point_index, trial_index, trials):
                    continue
                plan.append((point_index, trial_index, point,
                             done.get(trial_key(point, trial_index))))
        return plan

    def _report(self, trial: Trial,
                progress: Callable[[Trial], None] | None, *,
                resumed: bool = False, batch_size: int = 1) -> None:
        """The single reporting path every runner code path funnels into.

        Fires the metrics event hook and then ``progress``, exactly
        once per returned trial — fresh, resumed, batched, or
        parallel.  Keeping this in one place is what guarantees the
        two observers always agree on the event stream (resumed
        trials in batched paths included).
        """
        if self.metrics is not None:
            self.metrics.record_trial(trial, resumed=resumed,
                                      batch_size=batch_size)
        if progress is not None:
            progress(trial)

    def _metrics_begin(self, plan, *, workers: int = 1) -> None:
        """Open the collector on this run's plan (no-op without one)."""
        if self.metrics is not None:
            pending = sum(1 for *_, existing in plan if existing is None)
            self.metrics.begin(total=len(plan), pending=pending,
                               workers=workers)

    def _metrics_finish(self) -> None:
        if self.metrics is not None:
            self.metrics.finish()

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        """Execute every owned (point, trial) pair; returns them in order.

        With a store attached, previously recorded trials are loaded
        instead of re-run (their stored metrics are trusted — reruns
        are bit-identical by construction, so this is safe).
        ``progress`` fires exactly once per returned trial, resumed or
        freshly executed alike; the ``metrics`` event hook fires on
        the same contract.
        """
        points = [dict(p) for p in points]
        if self._batching():
            return self._run_batched(points, trials, progress)
        plan = self._plan(points, trials)
        self._metrics_begin(plan)
        out: list[Trial] = []
        for point_index, trial_index, point, existing in plan:
            if existing is not None:
                out.append(existing)
                self._report(existing, progress, resumed=True)
                continue
            seed = self.derive_seed(point_index, trial_index)
            start = time.perf_counter()
            raw = self.fn(dict(point), seed)
            elapsed = time.perf_counter() - start
            trial = _normalize(raw, dict(point), trial_index, seed, elapsed)
            out.append(trial)
            if self.store is not None:
                self.store.append(trial)
            self._report(trial, progress)
        self._metrics_finish()
        return out

    def _run_batched(self, points, trials: int,
                     progress: Callable[[Trial], None] | None) -> list[Trial]:
        """The :meth:`run` loop with same-point groups sent to batch_fn.

        Groups are flushed at point boundaries, at ``batch_size``, and
        at resumed entries, so the emission (and store write) order is
        exactly the unbatched schedule order.
        """
        out: list[Trial] = []
        buf: list[tuple[int, int, dict]] = []

        def flush() -> None:
            if not buf:
                return
            point = buf[0][2]
            seeds = [self.derive_seed(pi, ti) for pi, ti, _ in buf]
            start = time.perf_counter()
            raws = self.batch_fn(dict(point), list(seeds))
            per = (time.perf_counter() - start) / len(buf)
            if len(raws) != len(buf):
                raise ValueError(
                    f"batch_fn returned {len(raws)} results for "
                    f"{len(buf)} seeds")
            for (pi, ti, pt), seed, raw in zip(buf, seeds, raws):
                trial = _normalize(raw, dict(pt), ti, seed, per)
                out.append(trial)
                if self.store is not None:
                    self.store.append(trial)
                self._report(trial, progress, batch_size=len(raws))
            buf.clear()

        plan = self._plan(points, trials)
        self._metrics_begin(plan)
        for point_index, trial_index, point, existing in plan:
            if existing is not None:
                flush()
                out.append(existing)
                self._report(existing, progress, resumed=True)
                continue
            if buf and (len(buf) >= self._batch_cap(buf[0][2])
                        or buf[0][2] != point):
                flush()
            buf.append((point_index, trial_index, point))
        flush()
        self._metrics_finish()
        return out


class ParallelTrialRunner(TrialRunner):
    """A :class:`TrialRunner` that fans trials out over worker processes.

    Seed derivation, trial ordering, store *contents*, and resume
    behaviour are all identical to the serial runner: seeds come from
    the same ``SeedSequence`` tree keyed by (grid point #, trial #),
    and the returned list is always in schedule (grid) order.  How
    results flow back — and hence the store's *write order* — is the
    pluggable scheduler's choice (:mod:`repro.harness.scheduler`):

    * ``schedule="ordered"`` (default) consumes completions in
      submission order, so a JSONL store receives the same records in
      the same order as a serial run — byte-identical up to the
      wall-clock ``elapsed_s`` field (see :meth:`Trial.canonical_json`);
    * ``schedule="work-stealing"`` consumes completions as they land,
      so skewed grids don't serialise behind head-of-line chunks; the
      store becomes a completion log whose records re-canonicalise to
      the same set at load/aggregate time.

    The trial function must be picklable (a module-level function or
    class instance), as must its return value — true for
    :class:`~repro.engines.results.RunResult` and plain mappings.

    Parameters
    ----------
    jobs:
        Worker process count; defaults to the machine's CPU count.
        ``jobs=1`` degrades to the serial code path (no pool spawned).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``"fork"`` on
        Linux (cheap, inherits imports) and the platform default
        elsewhere — macOS lists ``fork`` but defaults to ``spawn``
        because forking a threaded/Accelerate-initialised process is
        unsafe there.
    chunksize:
        Trials handed to a worker per IPC message.  ``None`` (default)
        auto-sizes from the pending-trial count, worker count, and the
        scheduler (work stealing prefers finer chunks — they are the
        stealing unit); pass an explicit value to pin it (``1``
        reproduces one-task-per-message).  Chunking never changes
        results.
    schedule:
        Scheduler name (``"ordered"`` / ``"work-stealing"``), class,
        or :class:`~repro.harness.scheduler.TrialScheduler` instance.
    """

    def __init__(self, fn: Callable[[dict, int], Any], *,
                 master_seed: int = 0, store=None, shard=None,
                 jobs: int | None = None, mp_context: str | None = None,
                 chunksize: int | None = None, schedule="ordered",
                 batch_fn: Callable[[dict, list[int]], Any] | None = None,
                 batch_size: int | Callable[[dict], int] = 1,
                 metrics=None):
        from repro.harness.scheduler import resolve_scheduler

        super().__init__(fn, master_seed=master_seed, store=store,
                         shard=shard, batch_fn=batch_fn,
                         batch_size=batch_size, metrics=metrics)
        self.jobs = int(jobs) if jobs else (os.cpu_count() or 1)
        if mp_context is None and sys.platform.startswith("linux") \
                and "fork" in multiprocessing.get_all_start_methods():
            mp_context = "fork"
        self.mp_context = mp_context
        if chunksize is not None and int(chunksize) < 1:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
        self.chunksize = int(chunksize) if chunksize is not None else None
        self.scheduler = resolve_scheduler(schedule)

    @staticmethod
    def auto_chunksize(pending: int, workers: int) -> int:
        """The ordered scheduler's default chunking (kept as API)."""
        from repro.harness.scheduler import OrderedScheduler

        return OrderedScheduler.auto_chunksize(pending, workers)

    def run(self, points, *, trials: int = 1,
            progress: Callable[[Trial], None] | None = None) -> list[Trial]:
        if self.jobs <= 1:
            return super().run(points, trials=trials, progress=progress)
        points = [dict(p) for p in points]
        plan = self._plan(points, trials)
        pending = [(slot, point_index, trial_index, point)
                   for slot, (point_index, trial_index, point, existing)
                   in enumerate(plan) if existing is None]
        if len(pending) <= 1:  # nothing worth a pool; serial path resumes
            return super().run(points, trials=trials, progress=progress)

        workers = min(self.jobs, len(pending))
        self._metrics_begin(plan, workers=workers)
        # Resumed trials are reported up front (schedule order); the
        # scheduler then emits freshly computed ones as it completes
        # them.  Either way progress — and the metrics event hook —
        # fires once per returned trial (see :meth:`_report`).
        results: list[Trial | None] = [existing for _, _, _, existing in plan]
        for existing in results:
            if existing is not None:
                self._report(existing, progress, resumed=True)

        batching = self._batching()
        #: slot -> size of the batch group that computes it (metrics).
        batch_of: dict[int, int] = {}
        if batching:
            # Same grouping as the serial batched loop: consecutive
            # pending slots sharing a point, capped at the point's
            # batch size.
            tasks: list = []
            group: list[tuple[int, int, int, dict]] = []

            def close() -> None:
                if not group:
                    return
                seeds = [self.derive_seed(pi, ti) for _, pi, ti, _ in group]
                tasks.append((tuple(s for s, _, _, _ in group),
                              group[0][3],
                              tuple(ti for _, _, ti, _ in group),
                              tuple(seeds)))
                for slot, _, _, _ in group:
                    batch_of[slot] = len(group)
                group.clear()

            for ent in pending:
                if group and (len(group) >= self._batch_cap(group[0][3])
                              or group[0][3] != ent[3]
                              or ent[0] != group[-1][0] + 1):
                    close()
                group.append(ent)
            close()
        else:
            tasks = [(slot, point, trial_index,
                      self.derive_seed(point_index, trial_index))
                     for slot, point_index, trial_index, point in pending]
        ctx = multiprocessing.get_context(self.mp_context)
        workers = min(self.jobs, len(tasks))
        chunksize = (self.chunksize if self.chunksize is not None
                     else self.scheduler.auto_chunksize(len(tasks), workers))

        def emit(slot: int, trial: Trial) -> None:
            results[slot] = trial
            if self.store is not None:
                self.store.append(trial)
            self._report(trial, progress, batch_size=batch_of.get(slot, 1))

        extra = {"batch_fn": self.batch_fn} if batching else {}
        if self.metrics is not None:
            extra["metrics"] = self.metrics
        self.scheduler.execute(ctx, self.fn, tasks, workers=workers,
                               chunksize=chunksize, emit=emit, **extra)
        self._metrics_finish()
        return results  # type: ignore[return-value]  # every slot filled


def _normalize(raw: Any, point: dict, trial_index: int, seed: int,
               elapsed: float) -> Trial:
    if isinstance(raw, RunResult):
        metrics = {
            "rounds": float(raw.rounds),
            "messages": float(raw.messages),
            "bits": float(raw.bits),
            "steps": float(raw.steps),
        }
        # Async-engine runs carry event-level counters (virtual time,
        # delivered/dropped/reordered, stretch) in detail["async"];
        # fold the numeric ones in under an "async_" prefix so stores
        # and the metrics sidecar see them like any other metric.
        for key, value in (raw.detail.get("async") or {}).items():
            if isinstance(value, (int, float)):
                metrics[f"async_{key}"] = float(value)
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=raw.success, metrics=metrics, elapsed_s=elapsed)
    if isinstance(raw, Mapping):
        if "success" not in raw:
            raise ValueError("trial mapping must contain a 'success' key")
        metrics = {k: float(v) for k, v in raw.items()
                   if k != "success" and isinstance(v, (int, float))}
        return Trial(point=point, trial_index=trial_index, seed=seed,
                     success=bool(raw["success"]), metrics=metrics,
                     elapsed_s=elapsed)
    raise TypeError(
        f"trial function must return RunResult or a mapping, got {type(raw)}")
