"""Aggregation over trial records."""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Sequence

from repro.harness.runner import Trial

__all__ = ["success_rate", "summarize", "quantile", "group_by"]


def success_rate(trials: Iterable[Trial]) -> float:
    """Fraction of successful trials (0.0 for an empty input)."""
    trials = list(trials)
    if not trials:
        return 0.0
    return sum(t.success for t in trials) / len(trials)


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation quantile, ``q`` in [0, 1]."""
    if not values:
        raise ValueError("quantile of empty data")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    ordered = sorted(values)
    pos = q * (len(ordered) - 1)
    lo = math.floor(pos)
    hi = math.ceil(pos)
    if lo == hi:
        return float(ordered[lo])
    frac = pos - lo
    result = ordered[lo] * (1 - frac) + ordered[hi] * frac
    # Interpolation rounding can stray one ulp outside [lo, hi]; a
    # quantile lies within the data by definition, so clamp.
    return float(min(max(result, ordered[lo]), ordered[hi]))


def summarize(trials: Iterable[Trial], metric: str,
              *, successes_only: bool = True) -> dict[str, float]:
    """Mean / std / min / median / max of one metric across trials.

    By default only successful trials contribute (failed runs' round
    counts measure the watchdog, not the algorithm); ``count`` and
    ``success_rate`` always describe the full input.
    """
    trials = list(trials)
    pool = [t for t in trials if t.success] if successes_only else trials
    values = [t.metrics[metric] for t in pool if metric in t.metrics]
    out = {
        "count": float(len(trials)),
        "success_rate": success_rate(trials),
        "n_values": float(len(values)),
    }
    if values:
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        out.update({
            "mean": mean,
            "std": math.sqrt(var),
            "min": min(values),
            "median": quantile(values, 0.5),
            "max": max(values),
        })
    return out


def group_by(trials: Iterable[Trial],
             key: str | Callable[[Trial], Any]) -> dict[Any, list[Trial]]:
    """Group trials by a point parameter name or a key function.

    Groups are returned in first-seen order (insertion-ordered dict),
    which matches the sweep's grid order.
    """
    if isinstance(key, str):
        name = key

        def key_fn(trial: Trial) -> Any:
            return trial.point.get(name)
    else:
        key_fn = key
    out: dict[Any, list[Trial]] = {}
    for trial in trials:
        out.setdefault(key_fn(trial), []).append(trial)
    return out
