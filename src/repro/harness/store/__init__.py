"""Trial persistence backends.

The store layer separates *what* a sweep records (append-only
:class:`~repro.harness.runner.Trial` streams with resume) from *where*
the records live:

* :class:`JsonlStore` — one JSONL file, the historical format,
  unchanged on disk;
* :class:`ShardedStore` — one append-only shard file per writer/host
  under a directory, lock-free writes, deterministic merge on load;
* :class:`MemoryStore` — in-process, for tests.

``TrialStore`` is the abstract contract; calling it directly
(``TrialStore(path)``) still builds a :class:`JsonlStore` for
backwards compatibility.  :func:`canonical_order` is the deterministic
cross-backend record order (see :mod:`repro.harness.store.base`), and
:func:`make_store` / :data:`STORE_BACKENDS` map CLI backend names to
implementations.
"""

from repro.harness.store.base import (
    STORE_BACKENDS,
    TrialStore,
    canonical_order,
    make_store,
)
from repro.harness.store.jsonl import JsonlStore
from repro.harness.store.memory import MemoryStore
from repro.harness.store.sharded import ShardedStore

__all__ = [
    "TrialStore",
    "JsonlStore",
    "ShardedStore",
    "MemoryStore",
    "STORE_BACKENDS",
    "canonical_order",
    "make_store",
]
