"""The single-file JSONL backend (the historical ``TrialStore`` format).

Long sweeps (hours at large n) must survive interruption: every
completed trial is appended as one JSON line, and a rerun of the same
sweep skips trials whose (point, trial index) already appear.  JSONL
keeps the file append-only — a crash can at worst truncate the final
line, which :meth:`JsonlStore.load` tolerates by skipping it.

The on-disk format is unchanged from the pre-backend ``TrialStore``:
one ``json.dumps(trial.to_json(), sort_keys=True)`` per line.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.harness.runner import Trial
from repro.harness.store.base import TrialStore, register_backend

__all__ = ["JsonlStore"]


@register_backend("jsonl")
class JsonlStore(TrialStore):
    """Append-only JSONL store of :class:`~repro.harness.runner.Trial`.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "trials.jsonl")
    >>> store = JsonlStore(path)
    >>> store.append(Trial(point={"n": 8}, trial_index=0, seed=1,
    ...                    success=True, metrics={"rounds": 12.0}))
    >>> [t.metrics["rounds"] for t in store.load()]
    [12.0]
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, trial: Trial) -> None:
        """Append one trial (creates the file and parents on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(trial.to_json(), sort_keys=True))
            fh.write("\n")

    def metrics_path(self) -> Path:
        """Sidecar next to the store file: ``sweep.jsonl`` ->
        ``sweep.metrics.json`` (observability data about the sweep;
        never read by ``load``/resume)."""
        return self.path.with_name(self.path.stem + ".metrics.json")

    def load(self) -> list[Trial]:
        """All stored trials; a torn final line (crash) is skipped."""
        if not self.path.exists():
            return []
        with self.path.open("r", encoding="utf-8") as fh:
            lines = [ln.strip() for ln in fh]
        return parse_jsonl_lines([ln for ln in lines if ln])

    def clear(self) -> None:
        """Delete the store file (for tests and fresh sweeps)."""
        if self.path.exists():
            os.unlink(self.path)

    def __len__(self) -> int:
        """Record count without decoding any JSON.

        Counts complete (newline-terminated, non-blank) lines — O(file
        bytes) instead of the O(file) *JSON decode* a full ``load()``
        costs.  A torn tail line from a crash has no terminator and is
        excluded, matching what ``load()`` would return.
        """
        return count_complete_lines(self.path)


def count_complete_lines(path) -> int:
    """Complete (newline-terminated, non-blank) lines of a JSONL file.

    The cheap-``__len__`` primitive shared by the file-backed stores;
    0 for a nonexistent file.
    """
    if not path.exists():
        return 0
    count = 0
    with path.open("rb") as fh:
        for line in fh:
            if line.endswith(b"\n") and line.strip():
                count += 1
    return count


def parse_jsonl_lines(lines: list[str]) -> list[Trial]:
    """Decode stripped JSONL lines, tolerating only a torn final line."""
    out: list[Trial] = []
    for index, line in enumerate(lines):
        try:
            out.append(Trial.from_json(json.loads(line)))
        except (json.JSONDecodeError, KeyError, ValueError):
            if index == len(lines) - 1:
                break  # torn tail from a crash mid-append
            raise  # mid-file corruption is worth surfacing
    return out
