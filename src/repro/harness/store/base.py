"""The trial-store backend contract and canonical record ordering.

A *store backend* persists completed :class:`~repro.harness.runner.Trial`
records and replays them for resume.  The contract is append-only:
``append`` must be durable per record (a crash loses at most the record
being written), ``load`` must tolerate a torn final record per storage
unit, and ``clear`` resets the store for a fresh sweep.

Canonical order
---------------
Schedulers (:mod:`repro.harness.scheduler`) may complete trials out of
submission order, and sharded sweeps write to several files at once, so
*file* order is an execution detail — the store file doubles as a
write-ahead completion log.  The deterministic, execution-independent
order of a sweep's records is :func:`canonical_order`: sorted by
``Trial.key()`` — ``(sorted point items, trial_index)``.  For a grid
whose points enumerate in ascending axis order (the common case, e.g.
``--sizes 64,128,256``) this coincides with grid order, so a serial
ordered run's JSONL file is already canonical.

Backends register in :data:`STORE_BACKENDS` so the CLI's
``--store-backend`` choices and :func:`make_store` stay in sync with
the implementations without the CLI importing each one.

Metrics sidecar
---------------
A file-backed store can carry one *metrics sidecar* — the versioned
JSON payload of a :class:`~repro.harness.metrics.MetricsCollector` —
next to its trial records (``<store>.metrics.json``).  The sidecar is
observability data *about* a sweep, not part of the trial record
stream: ``load``/``merge``/resume never read it, and rewriting it
never perturbs canonical records.  Backends opt in by overriding
:meth:`TrialStore.metrics_path`; see ``docs/OBSERVABILITY.md`` for
the schema.
"""

from __future__ import annotations

import abc
import json
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.harness.runner import Trial

__all__ = ["TrialStore", "STORE_BACKENDS", "canonical_order", "make_store"]


def canonical_order(trials: Iterable["Trial"]) -> list["Trial"]:
    """Trials sorted into the deterministic cross-backend order.

    Sorting key is :meth:`Trial.key` — ``(sorted point items,
    trial_index)`` — so any scheduler/store/shard combination of the
    same sweep canonicalises to the same sequence.
    """
    return sorted(trials, key=lambda t: t.key())


class TrialStore(abc.ABC):
    """Abstract append-only store of :class:`~repro.harness.runner.Trial`.

    Concrete backends: :class:`~repro.harness.store.JsonlStore` (one
    JSONL file, the historical format), :class:`~repro.harness.store.
    ShardedStore` (one append-only shard file per writer under a
    directory), and :class:`~repro.harness.store.MemoryStore` (tests).

    Backwards compatibility: ``TrialStore(path)`` — the pre-backend
    spelling — constructs a :class:`JsonlStore`, so existing scripts
    keep working unchanged.
    """

    def __new__(cls, *args, **kwargs):
        if cls is TrialStore:
            from repro.harness.store.jsonl import JsonlStore

            return object.__new__(JsonlStore)
        return object.__new__(cls)

    @abc.abstractmethod
    def append(self, trial: "Trial") -> None:
        """Durably record one completed trial."""

    @abc.abstractmethod
    def load(self) -> list["Trial"]:
        """All stored trials; a torn final record (crash) is skipped."""

    @abc.abstractmethod
    def clear(self) -> None:
        """Delete the stored records (for tests and fresh sweeps)."""

    def load_canonical(self) -> list["Trial"]:
        """:meth:`load` re-ordered into :func:`canonical_order`."""
        return canonical_order(self.load())

    def metrics_path(self) -> "Path | None":
        """Where this store's metrics sidecar lives (``None`` = none).

        File-backed stores derive it from their own path
        (``sweep.jsonl`` -> ``sweep.metrics.json``); backends without
        durable storage return ``None`` and the sidecar methods become
        no-ops.
        """
        return None

    def write_metrics(self, payload: dict) -> "Path | None":
        """Write the metrics sidecar (overwriting), return its path.

        ``payload`` is a :meth:`~repro.harness.metrics.
        MetricsCollector.payload` dict (any JSON-safe mapping is
        accepted; the versioned schema is validated on *read*, where
        version skew can actually occur).  Returns ``None`` for
        backends without a sidecar location.
        """
        path = self.metrics_path()
        if path is None:
            return None
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    def load_metrics(self) -> dict | None:
        """The validated metrics sidecar payload, or ``None`` if absent."""
        from repro.harness.metrics import validate_metrics_payload

        path = self.metrics_path()
        if path is None or not path.exists():
            return None
        return validate_metrics_payload(
            json.loads(path.read_text(encoding="utf-8")))

    def __len__(self) -> int:
        return len(self.load())


#: ``--store-backend`` name -> factory taking the CLI ``--store`` path.
STORE_BACKENDS: dict[str, Callable[..., TrialStore]] = {}


def register_backend(name: str):
    """Class decorator adding a backend to :data:`STORE_BACKENDS`."""

    def decorate(cls):
        STORE_BACKENDS[name] = cls
        return cls

    return decorate


def make_store(backend: str, path, **kwargs) -> TrialStore:
    """Instantiate a registered backend by name (the CLI's entry)."""
    try:
        factory = STORE_BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown store backend {backend!r}; choose from "
            f"{sorted(STORE_BACKENDS)}") from None
    return factory(path, **kwargs)
