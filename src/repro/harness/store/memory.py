"""In-process store backend for tests and throwaway sweeps."""

from __future__ import annotations

from repro.harness.runner import Trial
from repro.harness.store.base import TrialStore, register_backend

__all__ = ["MemoryStore"]


@register_backend("memory")
class MemoryStore(TrialStore):
    """A list in memory with the :class:`TrialStore` contract.

    Supports resume within one process (rerunning the same sweep on
    the same instance skips recorded trials); nothing survives the
    interpreter.  The ``path`` argument is accepted and ignored so the
    backend factory signature matches the file-backed stores.
    """

    def __init__(self, path=None):
        self._trials: list[Trial] = []

    def append(self, trial: Trial) -> None:
        self._trials.append(trial)

    def load(self) -> list[Trial]:
        return list(self._trials)

    def clear(self) -> None:
        self._trials.clear()

    def __len__(self) -> int:
        return len(self._trials)
