"""Directory-of-shards backend: lock-free multi-writer persistence.

A :class:`ShardedStore` is a directory holding one append-only JSONL
shard file per writer — one per host in a ``--shard I/N`` sweep, or
one per runner otherwise.  Writers never touch each other's files, so
no locking is needed anywhere: every ``append`` goes to this store's
own shard, while ``load`` merges *all* shards in the directory.

The merge on ``load()`` is deterministic regardless of filesystem
enumeration order or interleaved completion order across hosts:
shards are read in sorted filename order, duplicate trial identities
are dropped (reruns are bit-identical by construction, so any copy is
authoritative), and the result is re-canonicalised with
:func:`~repro.harness.store.base.canonical_order`.  Each shard
tolerates its own torn tail line, so a crash on one host never
corrupts another host's records.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.harness.runner import Trial
from repro.harness.store.base import TrialStore, canonical_order, register_backend
from repro.harness.store.jsonl import count_complete_lines, parse_jsonl_lines

__all__ = ["ShardedStore"]


@register_backend("sharded")
class ShardedStore(TrialStore):
    """One shard file per writer under ``directory``; merged on load.

    Parameters
    ----------
    directory:
        The store root.  Created on first append.
    shard:
        This writer's shard label; appends go to
        ``directory/shard-<label>.jsonl``.  Defaults to the process id,
        which is unique per concurrently-writing runner on one host;
        sharded sweeps pass their ``I of N`` label so reruns resume
        into the same file.
    """

    def __init__(self, directory: str | Path, shard: str | None = None):
        self.directory = Path(directory)
        self.shard = str(shard) if shard is not None else str(os.getpid())
        self.path = self.directory / f"shard-{self.shard}.jsonl"

    def append(self, trial: Trial) -> None:
        """Append to this writer's own shard (no cross-writer locking)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(trial.to_json(), sort_keys=True))
            fh.write("\n")

    def metrics_path(self) -> Path:
        """Per-writer sidecar: ``shard-<label>.metrics.json``.

        Each writer observes only its own slice of the sweep, so —
        exactly like the trial records — sidecars are lock-free
        per-writer files.  (``shard_paths`` matches ``shard-*.jsonl``
        only, so sidecars never pollute the record merge.)
        """
        return self.directory / f"shard-{self.shard}.metrics.json"

    def shard_paths(self) -> list[Path]:
        """Every shard file present, in sorted (deterministic) order."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("shard-*.jsonl"))

    def load(self) -> list[Trial]:
        """Deterministic merge of every shard: dedup + canonical order."""
        merged: dict[tuple, Trial] = {}
        for path in self.shard_paths():
            with path.open("r", encoding="utf-8") as fh:
                lines = [ln.strip() for ln in fh]
            for trial in parse_jsonl_lines([ln for ln in lines if ln]):
                merged.setdefault(trial.key(), trial)
        return canonical_order(merged.values())

    def clear(self) -> None:
        """Delete every shard file (and the directory if then empty)."""
        for path in self.shard_paths():
            os.unlink(path)
        if self.directory.is_dir() and not any(self.directory.iterdir()):
            self.directory.rmdir()

    def __len__(self) -> int:
        """Complete-line count over all shards, no JSON decoded.

        Cross-shard duplicates (possible when overlapping slices were
        run) are counted per copy; ``load()`` is the deduplicating
        view.
        """
        return sum(count_complete_lines(path) for path in self.shard_paths())
