"""Deterministic multi-host partitioning of a sweep's (point, trial) grid.

A *shard* is one host's slice of a sweep.  The partition is a pure
function of grid coordinates — shard ``I/N`` owns exactly the pairs
whose flattened index ``point_index * trials + trial_index`` is
congruent to ``I`` mod ``N`` — so:

* the N slices are disjoint and jointly exhaustive by construction
  (property-tested in ``tests/test_sharding.py``);
* seeds are untouched: each trial's seed still derives from
  ``(master_seed, point_index, trial_index)`` exactly as in an
  unsharded run, so shard outputs are bit-identical to the
  corresponding slice of a single-host run;
* round-robin interleaving balances skewed grids — adjacent trials of
  one expensive point land on different hosts instead of one host
  drawing the whole n=8192 column.

Each host runs ``repro sweep --shard I/N --store-backend sharded
--store DIR`` against the same master seed; :func:`merge_stores` (CLI:
``repro merge``) then fuses the shard stores into one canonical JSONL
with duplicate/conflict/completeness checks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.harness.runner import Trial
from repro.harness.store.base import TrialStore, canonical_order

__all__ = ["ShardSpec", "merge_stores"]

_SHARD_RE = re.compile(r"^\s*(\d+)\s*/\s*(\d+)\s*$")


@dataclass(frozen=True)
class ShardSpec:
    """Shard ``index`` of ``count`` cooperating hosts."""

    index: int
    count: int

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(
                f"shard index must be in [0, {self.count}), got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI form ``"I/N"`` (0-based index)."""
        match = _SHARD_RE.match(text)
        if not match:
            raise ValueError(
                f"shard must look like I/N (e.g. 0/4), got {text!r}")
        return cls(int(match.group(1)), int(match.group(2)))

    @classmethod
    def coerce(cls, value) -> "ShardSpec | None":
        """``None``, a spec, an ``"I/N"`` string, or an ``(i, n)`` pair."""
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        index, count = value
        return cls(int(index), int(count))

    def owns(self, point_index: int, trial_index: int, trials: int) -> bool:
        """Whether this shard runs the given grid coordinate."""
        return (point_index * trials + trial_index) % self.count == self.index

    @property
    def label(self) -> str:
        """Stable writer label for shard store filenames."""
        return f"{self.index}of{self.count}"

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


def merge_stores(sources: list[TrialStore], dest: TrialStore | None = None,
                 *, expect_trials: int | None = None,
                 expect_points: int | None = None,
                 require_records: bool = False) -> list[Trial]:
    """Fuse shard stores into one canonical record sequence.

    Reads every source, de-duplicates by trial identity, and verifies:

    * duplicate identities must agree on their canonical record
      (seeds are deterministic, so disagreement means the shards ran
      different sweeps — a hard error, not a silent pick);
    * per grid point, trial indices must be contiguous from 0 (a gap
      means a shard is missing from ``sources``);
    * with ``expect_trials``, every point must hold exactly that many
      trials, and with ``expect_points``, exactly that many distinct
      points must appear.  Pass both for a full joint-exhaustiveness
      check: the per-point checks alone cannot notice a grid point
      *entirely* absent (e.g. ``trials=1`` round-robins whole points
      onto single shards, so a missing shard store drops its points
      without leaving a gap);
    * with ``require_records``, an entirely empty merge is an error —
      ``dest`` is left untouched, so a failed or misdirected sweep
      never produces a plausible-looking empty store.

    Returns the merged trials in canonical order; when ``dest`` is
    given it is cleared and rewritten with them, making its JSONL
    byte-identical to a serial ordered run of the same sweep (up to
    the wall-clock ``elapsed_s`` field) for canonically-ordered grids.
    """
    merged: dict[tuple, Trial] = {}
    for store in sources:
        for trial in store.load():
            key = trial.key()
            kept = merged.get(key)
            if kept is None:
                merged[key] = trial
            elif kept.canonical_json() != trial.canonical_json():
                raise ValueError(
                    f"shard disagreement for trial {key}: records differ "
                    f"beyond elapsed_s — the shards did not run the same "
                    f"seeded sweep")
    trials = canonical_order(merged.values())
    if require_records and not trials:
        raise ValueError(
            "no trial records found in the source stores; refusing an "
            "empty merge")

    by_point: dict[tuple, list[int]] = {}
    for trial in trials:
        point_key = tuple(sorted(trial.point.items()))
        by_point.setdefault(point_key, []).append(trial.trial_index)
    if expect_points is not None and len(by_point) != expect_points:
        raise ValueError(
            f"incomplete merge: expected {expect_points} grid points, "
            f"found {len(by_point)} — is a shard store missing?")
    for point_key, indices in by_point.items():
        if sorted(indices) != list(range(len(indices))):
            raise ValueError(
                f"incomplete merge at point {dict(point_key)}: trial "
                f"indices {sorted(indices)} are not contiguous from 0 — "
                f"is a shard store missing?")
        if expect_trials is not None and len(indices) != expect_trials:
            raise ValueError(
                f"incomplete merge at point {dict(point_key)}: expected "
                f"{expect_trials} trials, found {len(indices)}")

    if dest is not None:
        dest.clear()
        for trial in trials:
            dest.append(trial)
    return trials
