"""Sweep observability: sampled / event / aggregated harness metrics.

A million-trial sweep answers distributional questions — the paper's
claims are percentiles over many random trials, not single numbers —
yet a raw trial store is just a wall of JSONL.  This module turns the
runner's per-trial stream into the three-way metrics taxonomy used by
discrete-event simulators (AsyncFlow's FastSim):

**Sampled metrics** — a time-series view of the sweep's health,
captured on a fixed wall-clock interval: completion rate over the
window (``trials_per_sec``), pending-trial queue depth (``pending``),
configured worker occupancy (``workers``), and the group size of the
engine pass that produced the most recent trial
(``batch_occupancy``).  Sampling is *opportunistic*: the collector
owns no thread; a snapshot is taken at the next trial event once the
interval has elapsed, so an idle sweep emits no samples and the
collector adds no concurrency of its own.

**Event metrics** — recorded once per trial through the runner's
``metrics=`` hook, which fires exactly when the ``progress`` callback
does (once per returned trial, resumed or fresh alike): trial latency
(``elapsed_s``), the ``steps`` metric, success, the batch group size
the trial ran in, and whether the trial was a resume hit.

**Aggregated metrics** — computed once at :meth:`MetricsCollector.
payload` from the event stream: mean/p50/p90/p99/max latency,
per-point success rates and steps percentiles, and total throughput.
These are the KPIs the end-of-sweep report prints and
``benchmarks/check_bench.py`` compares across runs.

Determinism split: everything under the payload's ``kpis`` key derives
only from the seed tree (counts, success rates, steps percentiles), so
serial and parallel runs of the same sweep produce *identical* KPI
sections; everything wall-clock lives under ``timing`` and ``sampled``
and varies with the host.  ``tests/test_metrics.py`` pins the split.

The sidecar artifact (``<store>.metrics.json``, written by
:meth:`repro.harness.store.TrialStore.write_metrics`) carries a
versioned schema — :data:`METRICS_SCHEMA_VERSION`, validated by
:func:`validate_metrics_payload` — so downstream tooling can evolve
with it.  See ``docs/OBSERVABILITY.md`` for every metric's rationale
and a walkthrough of adding a new one.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Mapping

from repro.harness.aggregate import quantile

__all__ = [
    "METRICS_SCHEMA_VERSION",
    "METRICS_SCHEMA_NAME",
    "MetricsCollector",
    "validate_metrics_payload",
]

#: Version of the sidecar JSON schema.  Bump on any breaking change to
#: the payload layout and record the migration in docs/OBSERVABILITY.md.
METRICS_SCHEMA_VERSION = 1

#: The payload's self-identifying tag (the ``schema`` key).
METRICS_SCHEMA_NAME = "repro.harness.metrics"

#: Latency/steps percentiles the aggregated section reports.
_PERCENTILES = ((0.5, "p50"), (0.9, "p90"), (0.99, "p99"))


def point_label(point: Mapping[str, Any]) -> str:
    """Deterministic string key for a grid point (``"n=64"``)."""
    return ",".join(f"{k}={v}" for k, v in sorted(point.items()))


class MetricsCollector:
    """Collects sampled, event, and aggregated metrics for one sweep.

    Hand an instance to :class:`~repro.harness.runner.TrialRunner` /
    :class:`~repro.harness.runner.ParallelTrialRunner` as ``metrics=``;
    the runner drives :meth:`begin`, :meth:`record_trial`, and
    :meth:`finish` itself (one :meth:`record_trial` per returned trial,
    exactly mirroring the ``progress`` contract).  After the run, call
    :meth:`payload` for the machine-readable JSON dict and
    :meth:`report` for the human-readable KPI summary.

    Parameters
    ----------
    sample_interval_s:
        Minimum wall-clock spacing between sampled snapshots (default
        1 s).  Samples are taken opportunistically at trial events —
        no background thread — so an interval shorter than the
        per-trial latency degrades to one sample per trial.
    clock:
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(self, *, sample_interval_s: float = 1.0,
                 clock: Callable[[], float] = time.perf_counter):
        if sample_interval_s <= 0:
            raise ValueError(
                f"sample_interval_s must be > 0, got {sample_interval_s}")
        self.sample_interval_s = float(sample_interval_s)
        self._clock = clock
        self._started = False
        self._finished = False
        self._t0 = 0.0
        self._t_end: float | None = None
        # Run shape (begin / annotate_pool).
        self._total = 0
        self._pending = 0
        self._workers = 1
        self._run_info: dict[str, Any] = {}
        # Sampled series.
        self.samples: list[dict[str, Any]] = []
        self._last_sample_t = 0.0
        self._events_at_last_sample = 0
        self._last_batch = 0
        # Event accumulators.
        self._events = 0
        self._fresh = 0
        self._resumed = 0
        self._successes = 0
        self._latencies: list[float] = []  # fresh trials only
        self._batch_sizes: list[int] = []  # fresh trials only
        self._per_point: dict[str, dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Runner-facing hooks
    # ------------------------------------------------------------------

    def begin(self, *, total: int, pending: int, workers: int = 1) -> None:
        """Mark run start: ``total`` scheduled trials, ``pending`` fresh.

        Called by the runner once its plan is known (resumed trials =
        ``total - pending``).  Starting twice is an error — one
        collector observes one run, so serial/parallel comparisons
        never mix streams.
        """
        if self._started:
            raise RuntimeError("MetricsCollector.begin() called twice; "
                               "use one collector per run")
        self._started = True
        self._total = int(total)
        self._pending = int(pending)
        self._workers = int(workers)
        self._t0 = self._last_sample_t = self._clock()

    def annotate_pool(self, *, scheduler: str, workers: int,
                      chunksize: int) -> None:
        """Record the parallel pool shape (called by the scheduler)."""
        self._workers = int(workers)
        self._run_info.update({"scheduler": scheduler,
                               "workers": int(workers),
                               "chunksize": int(chunksize)})

    def record_trial(self, trial, *, resumed: bool = False,
                     batch_size: int = 1) -> None:
        """One event metric: a trial surfaced (fresh or resume hit).

        Fires on the same contract as the runner's ``progress``
        callback — exactly once per returned trial.  Latency and batch
        occupancy only accumulate for fresh trials (a resume hit costs
        no engine pass; its stored ``elapsed_s`` describes a previous
        run's wall clock).
        """
        if not self._started:  # standalone use (no runner): self-start
            self.begin(total=0, pending=0)
        self._events += 1
        if resumed:
            self._resumed += 1
        else:
            self._fresh += 1
            self._pending = max(0, self._pending - 1)
            self._latencies.append(float(trial.elapsed_s))
            self._batch_sizes.append(int(batch_size))
            self._last_batch = int(batch_size)
        if trial.success:
            self._successes += 1
        label = point_label(trial.point)
        slot = self._per_point.setdefault(
            label, {"trials": 0, "successes": 0, "steps": []})
        slot["trials"] += 1
        slot["successes"] += int(trial.success)
        steps = trial.metrics.get("steps")
        if steps is not None:
            slot["steps"].append(float(steps))
        # Async-engine trials (the runner folds detail["async"] into
        # metrics under an "async_" prefix): distribution of the
        # virtual-time round stretch, plus event-count totals.
        stretch = trial.metrics.get("async_stretch")
        if stretch is not None:
            slot.setdefault("async_stretch", []).append(float(stretch))
        for key in ("async_delivered", "async_dropped", "async_reordered",
                    "async_limited"):
            value = trial.metrics.get(key)
            if value is not None:
                slot[key] = slot.get(key, 0.0) + float(value)
        self._maybe_sample()

    def finish(self) -> None:
        """Mark run end (idempotent); takes a closing sample."""
        if self._finished:
            return
        self._finished = True
        self._t_end = self._clock()
        if self._started and self._events > self._events_at_last_sample:
            self._sample(self._t_end)

    # ------------------------------------------------------------------
    # Sampled series
    # ------------------------------------------------------------------

    def _maybe_sample(self) -> None:
        now = self._clock()
        if now - self._last_sample_t >= self.sample_interval_s:
            self._sample(now)

    def _sample(self, now: float) -> None:
        window = max(now - self._last_sample_t, 1e-12)
        done = self._events - self._events_at_last_sample
        self.samples.append({
            "t_s": round(now - self._t0, 6),
            "trials_per_sec": round(done / window, 6),
            "pending": self._pending,
            "workers": self._workers,
            "batch_occupancy": self._last_batch,
        })
        self._last_sample_t = now
        self._events_at_last_sample = self._events

    # ------------------------------------------------------------------
    # Aggregated output
    # ------------------------------------------------------------------

    def payload(self, context: Mapping[str, Any] | None = None
                ) -> dict[str, Any]:
        """The versioned machine-readable metrics payload.

        ``context`` is caller-supplied run identification (algorithm,
        engine, grid, ...) stored verbatim under ``context``.  Safe to
        call repeatedly; implies :meth:`finish`.
        """
        self.finish()
        wall = max((self._t_end or self._clock()) - self._t0, 1e-12)
        timing: dict[str, Any] = {
            "wall_s": round(wall, 6),
            "trials_per_sec": round(self._events / wall, 6),
            "fresh_per_sec": round(self._fresh / wall, 6),
            "latency_mean_s": None,
            "latency_p50_s": None,
            "latency_p90_s": None,
            "latency_p99_s": None,
            "latency_max_s": None,
        }
        if self._latencies:
            timing["latency_mean_s"] = round(
                sum(self._latencies) / len(self._latencies), 9)
            for q, name in _PERCENTILES:
                timing[f"latency_{name}_s"] = round(
                    quantile(self._latencies, q), 9)
            timing["latency_max_s"] = round(max(self._latencies), 9)
        per_point: dict[str, dict[str, Any]] = {}
        for label, slot in self._per_point.items():
            entry: dict[str, Any] = {
                "trials": slot["trials"],
                "successes": slot["successes"],
                "success_rate": round(slot["successes"] / slot["trials"], 9),
            }
            for q, name in _PERCENTILES:
                entry[f"steps_{name}"] = (
                    round(quantile(slot["steps"], q), 6)
                    if slot["steps"] else None)
            # Async-engine extras, present only when the point actually
            # ran on the event-queue engine (sync sweeps are unchanged).
            if slot.get("async_stretch"):
                for q, name in _PERCENTILES:
                    entry[f"async_stretch_{name}"] = round(
                        quantile(slot["async_stretch"], q), 6)
            for key in ("async_delivered", "async_dropped",
                        "async_reordered"):
                if key in slot:
                    entry[key] = slot[key]
            if "async_limited" in slot:
                entry["async_termination_rate"] = round(
                    1.0 - slot["async_limited"] / slot["trials"], 9)
            per_point[label] = entry
        events: dict[str, Any] = {
            "trials": self._events,
            "fresh": self._fresh,
            "resumed": self._resumed,
            "failures": self._events - self._successes,
            "batch_occupancy_mean": (
                round(sum(self._batch_sizes) / len(self._batch_sizes), 6)
                if self._batch_sizes else None),
            "batch_occupancy_max": (max(self._batch_sizes)
                                    if self._batch_sizes else None),
        }
        kpis: dict[str, Any] = {
            "trials": self._events,
            "fresh": self._fresh,
            "resumed": self._resumed,
            "success_rate": (round(self._successes / self._events, 9)
                             if self._events else 0.0),
            "per_point": per_point,
        }
        return {
            "schema": METRICS_SCHEMA_NAME,
            "schema_version": METRICS_SCHEMA_VERSION,
            "context": dict(context or {}),
            "run": {"workers": self._workers, **self._run_info},
            "sampled": {
                "interval_s": self.sample_interval_s,
                "samples": list(self.samples),
            },
            "events": events,
            "kpis": kpis,
            "timing": timing,
        }

    def report(self, context: Mapping[str, Any] | None = None) -> str:
        """The human-readable end-of-sweep KPI summary (multi-line)."""
        p = self.payload(context)
        ev, tm, kp = p["events"], p["timing"], p["kpis"]

        def ms(value):
            return "-" if value is None else f"{value * 1e3:.2f}"

        lines = [
            f"== sweep metrics (schema v{p['schema_version']}) ==",
            f"trials      {ev['trials']} "
            f"(fresh {ev['fresh']}, resumed {ev['resumed']}, "
            f"failures {ev['failures']})",
            f"wall clock  {tm['wall_s']:.3f} s",
            f"throughput  {tm['trials_per_sec']:.2f} trials/sec "
            f"({tm['fresh_per_sec']:.2f} fresh)",
            f"latency ms  mean {ms(tm['latency_mean_s'])}  "
            f"p50 {ms(tm['latency_p50_s'])}  p90 {ms(tm['latency_p90_s'])}  "
            f"p99 {ms(tm['latency_p99_s'])}  max {ms(tm['latency_max_s'])}",
            f"success     {kp['success_rate']:.1%} overall",
        ]
        for label, entry in kp["per_point"].items():
            steps = ("" if entry["steps_p50"] is None else
                     f"  steps p50/p90/p99 {entry['steps_p50']:g}/"
                     f"{entry['steps_p90']:g}/{entry['steps_p99']:g}")
            lines.append(f"  {label:<12} {entry['success_rate']:.1%} "
                         f"of {entry['trials']}{steps}")
        if ev["batch_occupancy_max"] is not None and ev["batch_occupancy_max"] > 1:
            lines.append(f"batching    mean occupancy "
                         f"{ev['batch_occupancy_mean']:g}, "
                         f"max {ev['batch_occupancy_max']}")
        run = p["run"]
        if "scheduler" in run:
            lines.append(f"pool        {run['workers']} workers, "
                         f"{run['scheduler']} scheduler, "
                         f"chunksize {run['chunksize']}")
        lines.append(f"samples     {len(p['sampled']['samples'])} "
                     f"(interval {p['sampled']['interval_s']:g} s)")
        return "\n".join(lines)


def validate_metrics_payload(payload: Mapping[str, Any]) -> dict[str, Any]:
    """Check a metrics payload's schema tag/version and sections.

    Returns the payload as a plain dict on success; raises
    :class:`ValueError` with a precise message otherwise.  This is the
    read-side half of the versioned-schema contract: bump
    :data:`METRICS_SCHEMA_VERSION` on layout changes and extend this
    validator with the migration rules.
    """
    if not isinstance(payload, Mapping):
        raise ValueError(f"metrics payload must be a mapping, "
                         f"got {type(payload).__name__}")
    if payload.get("schema") != METRICS_SCHEMA_NAME:
        raise ValueError(f"not a metrics payload: schema tag "
                         f"{payload.get('schema')!r} != "
                         f"{METRICS_SCHEMA_NAME!r}")
    version = payload.get("schema_version")
    if version != METRICS_SCHEMA_VERSION:
        raise ValueError(f"unsupported metrics schema version {version!r} "
                         f"(this build reads v{METRICS_SCHEMA_VERSION})")
    missing = [key for key in ("sampled", "events", "kpis", "timing")
               if key not in payload]
    if missing:
        raise ValueError(f"metrics payload missing sections: {missing}")
    return dict(payload)
