"""Named parameter grids for experiment sweeps."""

from __future__ import annotations

import itertools
from typing import Any, Iterator, Sequence

__all__ = ["ParameterGrid"]


class ParameterGrid:
    """The cartesian product of named parameter axes.

    Examples
    --------
    >>> grid = ParameterGrid(n=[64, 128], delta=[0.5, 0.8])
    >>> len(grid)
    4
    >>> grid.points()[0]
    {'n': 64, 'delta': 0.5}

    Axes iterate in declaration order, rightmost fastest (like nested
    loops), so sweep output is ordered the way the paper's tables are.
    """

    def __init__(self, **axes: Sequence[Any]):
        if not axes:
            raise ValueError("a grid needs at least one axis")
        for name, values in axes.items():
            if not isinstance(values, (list, tuple)) or len(values) == 0:
                raise ValueError(
                    f"axis {name!r} must be a non-empty list/tuple, "
                    f"got {values!r}")
        self._axes: dict[str, list[Any]] = {k: list(v) for k, v in axes.items()}

    @property
    def axes(self) -> dict[str, list[Any]]:
        """The axes as name -> values (copies; the grid is immutable)."""
        return {k: list(v) for k, v in self._axes.items()}

    def __len__(self) -> int:
        out = 1
        for values in self._axes.values():
            out *= len(values)
        return out

    def __iter__(self) -> Iterator[dict[str, Any]]:
        names = list(self._axes)
        for combo in itertools.product(*self._axes.values()):
            yield dict(zip(names, combo))

    def points(self) -> list[dict[str, Any]]:
        """All grid points as a list of dicts."""
        return list(self)

    def subset(self, predicate) -> list[dict[str, Any]]:
        """Points for which ``predicate(point)`` is true.

        Sweeps often exclude infeasible corners (e.g. partitions below
        the small-subgraph viability floor); doing it here keeps the
        exclusion visible in one place.
        """
        return [point for point in self if predicate(point)]

    def with_overrides(self, **fixed: Any) -> list[dict[str, Any]]:
        """All points with some parameters pinned to fixed values."""
        return [{**point, **fixed} for point in self]

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}x{len(v)}" for k, v in self._axes.items())
        return f"ParameterGrid({inner}; {len(self)} points)"
