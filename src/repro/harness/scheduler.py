"""Pluggable trial scheduling for the parallel runner.

A *scheduler* decides how pending trials flow through a worker pool
and in what order their results surface.  The runner
(:class:`~repro.harness.runner.ParallelTrialRunner`) owns seed
derivation, resume, store writes, and result assembly; the scheduler
owns only the pool loop, so schedulers can never change *what* is
computed — only when each result arrives.

Two schedulers ship:

``ordered`` (:class:`OrderedScheduler`)
    Results surface in submission order (``imap``) — the store
    receives the same records in the same order as a serial run, so a
    :class:`~repro.harness.store.JsonlStore` file is byte-identical to
    the serial one (up to ``elapsed_s``).  Head-of-line blocking: a
    slow chunk at the front delays everything behind it.

``work-stealing`` (:class:`WorkStealingScheduler`)
    Results surface in completion order (``imap_unordered``) — idle
    workers pull the next chunk as soon as they finish, so skewed
    grids (n=256 points next to n=8192 points) no longer serialise
    behind head-of-line chunks.  The store then acts as a
    *write-ahead completion log*: records land in completion order
    and are re-canonicalised into deterministic order at load or
    aggregate time (:func:`repro.harness.store.canonical_order`).
    The runner's returned list is always in schedule order either
    way, and the *set* of canonical records is identical to an
    ordered run's.

Both batch trials into chunks per worker IPC message.  Work stealing
targets more, smaller chunks (~16 per worker vs ~4) because chunks
are also the stealing granularity: one mega-chunk of slow trials on
one worker is exactly the skew the scheduler exists to avoid.

Schedulers register in :data:`SCHEDULERS`; the CLI's ``--schedule``
choices and :func:`resolve_scheduler` stay in sync automatically.
"""

from __future__ import annotations

import abc
import time
from typing import Any, Callable

from repro.harness.runner import Trial, _normalize

__all__ = [
    "TrialScheduler",
    "OrderedScheduler",
    "WorkStealingScheduler",
    "SCHEDULERS",
    "resolve_scheduler",
]

#: One pending trial handed to a worker: (slot, point, trial_index, seed).
#: ``slot`` is the position in the runner's schedule, so out-of-order
#: completions can be re-keyed without ambiguity.  A batched runner
#: instead hands groups ``(slots, point, trial_indices, seeds)`` (the
#: first element a tuple marks the batch shape); workers run those
#: through the installed ``batch_fn`` in one engine pass.  Group sizes
#: are fixed by the runner in the parent process — including when the
#: cap is a per-point callable — so schedulers and workers only ever
#: see pre-cut groups and never evaluate the cap themselves.
Task = tuple[int, dict, int, int]
BatchTask = tuple[tuple, dict, tuple, tuple]


class TrialScheduler(abc.ABC):
    """How pending trials are dispatched over a worker pool.

    Subclasses implement :meth:`execute`: run every task exactly once
    and call ``emit(slot, trial)`` as each result becomes available.
    ``emit`` is invoked in the parent process (it appends to the store
    and fires the progress callback), so a scheduler's emission order
    *is* its store-write order.
    """

    #: Registry/CLI name; subclasses override.
    name = "abstract"

    @abc.abstractmethod
    def execute(self, ctx, fn: Callable[[dict, int], Any], tasks: list[Task],
                *, workers: int, chunksize: int,
                emit: Callable[[int, Trial], None],
                batch_fn: Callable[[dict, list[int]], Any] | None = None,
                metrics=None) -> None:
        """Run ``tasks`` on a ``ctx.Pool(workers)``, emitting results.

        ``metrics`` is the runner's optional
        :class:`~repro.harness.metrics.MetricsCollector`: schedulers
        annotate it with the realised pool shape (scheduler name,
        worker count, chunk size) before the loop starts.  Per-trial
        event metrics flow through ``emit`` — since the scheduler's
        emission order *is* the observation order, the collector's
        sampled queue-depth series reflects submission-order drain
        under ``ordered`` and true completion-order drain under
        ``work-stealing``.
        """

    @staticmethod
    def auto_chunksize(pending: int, workers: int) -> int:
        """Chunk size balancing IPC amortisation against load balance.

        Aim for ~4 chunks per worker (so a straggler chunk costs at
        most ~1/4 of a worker's share), capped at 64 trials per
        message to bound per-chunk latency for slow trial functions.
        """
        return max(1, min(64, -(-pending // (4 * workers))))


class OrderedScheduler(TrialScheduler):
    """Submission-order completion — today's byte-identical store path."""

    name = "ordered"

    def execute(self, ctx, fn, tasks, *, workers, chunksize, emit,
                batch_fn=None, metrics=None) -> None:
        if metrics is not None:
            metrics.annotate_pool(scheduler=self.name, workers=workers,
                                  chunksize=chunksize)
        with ctx.Pool(processes=workers, initializer=_pool_initializer,
                      initargs=(fn, batch_fn)) as pool:
            # imap (ordered) keeps emissions in submission order — the
            # same order the serial runner writes — regardless of how
            # tasks are batched into chunks.
            for finished in pool.imap(_pool_trial, tasks,
                                      chunksize=chunksize):
                for slot, trial in finished:
                    emit(slot, trial)


class WorkStealingScheduler(TrialScheduler):
    """Completion-order results: idle workers steal the next chunk.

    ``imap_unordered`` hands each finished chunk back immediately, so
    no worker idles behind a straggler at the head of the line.  The
    cost is a nondeterministic store-write order; determinism is
    restored at read time via canonical ordering (the runner's return
    value is already in schedule order).
    """

    name = "work-stealing"

    def execute(self, ctx, fn, tasks, *, workers, chunksize, emit,
                batch_fn=None, metrics=None) -> None:
        if metrics is not None:
            metrics.annotate_pool(scheduler=self.name, workers=workers,
                                  chunksize=chunksize)
        with ctx.Pool(processes=workers, initializer=_pool_initializer,
                      initargs=(fn, batch_fn)) as pool:
            for finished in pool.imap_unordered(_pool_trial, tasks,
                                                chunksize=chunksize):
                for slot, trial in finished:
                    emit(slot, trial)

    @staticmethod
    def auto_chunksize(pending: int, workers: int) -> int:
        """Finer chunks (~16 per worker): chunks are the stealing unit."""
        return max(1, min(64, -(-pending // (16 * workers))))


#: ``--schedule`` name -> scheduler class.
SCHEDULERS: dict[str, type[TrialScheduler]] = {
    OrderedScheduler.name: OrderedScheduler,
    WorkStealingScheduler.name: WorkStealingScheduler,
}


def resolve_scheduler(schedule) -> TrialScheduler:
    """A scheduler instance from a name, class, or instance."""
    if isinstance(schedule, TrialScheduler):
        return schedule
    if isinstance(schedule, type) and issubclass(schedule, TrialScheduler):
        return schedule()
    try:
        return SCHEDULERS[schedule]()
    except KeyError:
        raise ValueError(
            f"unknown schedule {schedule!r}; choose from "
            f"{sorted(SCHEDULERS)}") from None


#: Per-worker trial functions, installed once by the pool initializer so
#: each task message carries only (slot, point, index, seed).
_worker_fn: Callable[[dict, int], Any] | None = None
_worker_batch_fn: Callable[[dict, list[int]], Any] | None = None


def _pool_initializer(fn: Callable[[dict, int], Any],
                      batch_fn: Callable[[dict, list[int]], Any] | None = None
                      ) -> None:
    global _worker_fn, _worker_batch_fn
    _worker_fn = fn
    _worker_batch_fn = batch_fn


def _pool_trial(task: Task | BatchTask) -> list[tuple[int, Trial]]:
    slot, point, trial_index, seed = task
    if isinstance(slot, tuple):  # one batch group, one engine pass
        start = time.perf_counter()
        raws = _worker_batch_fn(dict(point), list(seed))
        per = (time.perf_counter() - start) / len(slot)
        if len(raws) != len(slot):
            raise ValueError(f"batch_fn returned {len(raws)} results "
                             f"for {len(slot)} seeds")
        return [(s, _normalize(raw, dict(point), ti, sd, per))
                for s, ti, sd, raw in zip(slot, trial_index, seed, raws)]
    start = time.perf_counter()
    raw = _worker_fn(dict(point), seed)
    elapsed = time.perf_counter() - start
    return [(slot, _normalize(raw, dict(point), trial_index, seed, elapsed))]
