"""Experiment harness: grids, trials, aggregation, persistence.

The benchmark files under ``benchmarks/`` each hand-roll the same three
things: a parameter grid, a loop of seeded Monte Carlo trials, and
aggregation into the series the paper-shape assertions check.  This
subpackage is that machinery as a library, used by the larger sweeps
and available to downstream users building their own experiments:

* :class:`~repro.harness.grid.ParameterGrid` — named cartesian products
  with per-point overrides;
* :class:`~repro.harness.runner.TrialRunner` — runs a trial function
  over grid x seeds with deterministic seed derivation, collecting
  :class:`~repro.harness.runner.Trial` records;
* :class:`~repro.harness.runner.ParallelTrialRunner` — the same
  contract fanned out over worker processes: identical seed tree,
  identical store records, every core busy;
* :mod:`repro.harness.aggregate` — success rates, means, quantiles,
  group-by over trial records;
* :class:`~repro.harness.store.TrialStore` — JSONL persistence with
  resume (skip already-recorded trials), so long sweeps survive
  interruption.
"""

from repro.harness.aggregate import group_by, quantile, success_rate, summarize
from repro.harness.grid import ParameterGrid
from repro.harness.runner import ParallelTrialRunner, Trial, TrialRunner
from repro.harness.store import TrialStore

__all__ = [
    "ParameterGrid",
    "Trial",
    "TrialRunner",
    "ParallelTrialRunner",
    "TrialStore",
    "success_rate",
    "summarize",
    "quantile",
    "group_by",
]
