"""Experiment harness: grids, trials, scheduling, sharding, persistence.

The benchmark files under ``benchmarks/`` each hand-roll the same three
things: a parameter grid, a loop of seeded Monte Carlo trials, and
aggregation into the series the paper-shape assertions check.  This
subpackage is that machinery as a library, used by the larger sweeps
and available to downstream users building their own experiments:

* :class:`~repro.harness.grid.ParameterGrid` — named cartesian products
  with per-point overrides;
* :class:`~repro.harness.runner.TrialRunner` — runs a trial function
  over grid x seeds with deterministic seed derivation, collecting
  :class:`~repro.harness.runner.Trial` records;
* :class:`~repro.harness.runner.ParallelTrialRunner` — the same
  contract fanned out over worker processes, with a pluggable
  scheduler (:mod:`repro.harness.scheduler`): ``ordered`` keeps store
  records byte-identical to a serial run, ``work-stealing`` keeps
  every core busy on skewed grids;
* :mod:`repro.harness.store` — pluggable persistence backends with
  resume: :class:`~repro.harness.store.JsonlStore` (one file),
  :class:`~repro.harness.store.ShardedStore` (one lock-free shard file
  per writer/host), :class:`~repro.harness.store.MemoryStore` (tests);
* :mod:`repro.harness.sharding` — deterministic multi-host partition
  of the (point, trial) grid (``--shard I/N``) plus
  :func:`~repro.harness.sharding.merge_stores` to fuse shard stores
  back into one canonical record stream;
* :mod:`repro.harness.aggregate` — success rates, means, quantiles,
  group-by over trial records;
* :mod:`repro.harness.metrics` — sweep observability: a
  :class:`~repro.harness.metrics.MetricsCollector` of sampled
  time-series (trials/sec, queue depth, occupancy), per-trial event
  metrics (latency, steps, resume hits), and post-run aggregated KPIs
  (latency percentiles, per-point success rates, throughput), fed by
  the runners' ``metrics=`` hook and persisted as a versioned
  ``*.metrics.json`` store sidecar (see ``docs/OBSERVABILITY.md``).

Every layer preserves the seed tree: seeds derive from (master seed,
point index, trial index) whatever the scheduler, backend, or shard
split, so the *canonical records* of a sweep are invariant across all
of them (see :meth:`~repro.harness.runner.Trial.canonical_json`).
"""

from repro.harness.aggregate import group_by, quantile, success_rate, summarize
from repro.harness.grid import ParameterGrid
from repro.harness.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsCollector,
    validate_metrics_payload,
)
from repro.harness.runner import ParallelTrialRunner, Trial, TrialRunner
from repro.harness.scheduler import (
    SCHEDULERS,
    OrderedScheduler,
    TrialScheduler,
    WorkStealingScheduler,
)
from repro.harness.sharding import ShardSpec, merge_stores
from repro.harness.store import (
    STORE_BACKENDS,
    JsonlStore,
    MemoryStore,
    ShardedStore,
    TrialStore,
    canonical_order,
    make_store,
)

__all__ = [
    "ParameterGrid",
    "Trial",
    "TrialRunner",
    "ParallelTrialRunner",
    "TrialScheduler",
    "OrderedScheduler",
    "WorkStealingScheduler",
    "SCHEDULERS",
    "ShardSpec",
    "merge_stores",
    "TrialStore",
    "JsonlStore",
    "ShardedStore",
    "MemoryStore",
    "STORE_BACKENDS",
    "canonical_order",
    "make_store",
    "success_rate",
    "summarize",
    "quantile",
    "group_by",
    "MetricsCollector",
    "METRICS_SCHEMA_VERSION",
    "validate_metrics_payload",
]
