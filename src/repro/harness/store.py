"""JSONL persistence for trials, with resume.

Long sweeps (hours at large n) must survive interruption: every
completed trial is appended as one JSON line, and a rerun of the same
sweep skips trials whose (point, trial index) already appear.  JSONL
keeps the file append-only — a crash can at worst truncate the final
line, which :meth:`TrialStore.load` tolerates by skipping it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.harness.runner import Trial

__all__ = ["TrialStore"]


class TrialStore:
    """Append-only JSONL store of :class:`~repro.harness.runner.Trial`.

    Examples
    --------
    >>> import tempfile, os
    >>> path = os.path.join(tempfile.mkdtemp(), "trials.jsonl")
    >>> store = TrialStore(path)
    >>> store.append(Trial(point={"n": 8}, trial_index=0, seed=1,
    ...                    success=True, metrics={"rounds": 12.0}))
    >>> [t.metrics["rounds"] for t in store.load()]
    [12.0]
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    def append(self, trial: Trial) -> None:
        """Append one trial (creates the file and parents on first use)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(trial.to_json(), sort_keys=True))
            fh.write("\n")

    def load(self) -> list[Trial]:
        """All stored trials; a torn final line (crash) is skipped."""
        if not self.path.exists():
            return []
        with self.path.open("r", encoding="utf-8") as fh:
            lines = [ln.strip() for ln in fh]
        lines = [ln for ln in lines if ln]
        out: list[Trial] = []
        for index, line in enumerate(lines):
            try:
                out.append(Trial.from_json(json.loads(line)))
            except (json.JSONDecodeError, KeyError, ValueError):
                if index == len(lines) - 1:
                    break  # torn tail from a crash mid-append
                raise  # mid-file corruption is worth surfacing
        return out

    def clear(self) -> None:
        """Delete the store file (for tests and fresh sweeps)."""
        if self.path.exists():
            os.unlink(self.path)

    def __len__(self) -> int:
        return len(self.load())
