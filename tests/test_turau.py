"""Turau-style path merging: protocol behaviour and schedule math.

Cross-engine parity lives in ``tests/test_engine_parity.py``; this
module covers the algorithm itself — success in its dense regime,
honest failure codes outside it, the deterministic phase schedule both
engines share, cycle assembly, and the capability integrations
(k-machine conversion, fault plans, memory audit) that ride on the
congest spec.
"""

import math

import pytest

import repro
from repro.core.turau import (
    FAIL_NO_CLOSURE_EDGE,
    FAIL_PHASE_BUDGET,
    FAIL_TOO_SMALL,
    cycle_from_links,
    phase_starts,
    phase_windows,
    role_bit,
    run_turau,
    turau_phase_budget,
    turau_round_budget,
)
from repro.graphs import gnp_random_graph
from repro.verify.hamiltonicity import verify_cycle


def dense_graph(n: int, seed: int):
    return gnp_random_graph(n, 1.0, seed=seed)


class TestSchedule:
    def test_windows_double_then_cap(self):
        windows = phase_windows(100, 10)
        assert windows[0] == 8
        for a, b in zip(windows, windows[1:]):
            assert b == min(2 * 100 + 4, 2 * a)
        assert max(windows) == 2 * 100 + 4

    def test_starts_are_increasing_and_cover_floods(self):
        n, budget = 64, 12
        starts = phase_starts(n, budget)
        assert len(starts) == budget + 1
        assert all(b > a for a, b in zip(starts, starts[1:]))
        # The final gap always covers a done/abort flood (diameter < n).
        assert starts[-1] - starts[-2] >= 4 + n + 2
        assert turau_round_budget(n, budget) > starts[-1]

    def test_phase_budget_grows_logarithmically(self):
        assert turau_phase_budget(16) < turau_phase_budget(1024)
        assert turau_phase_budget(1024) <= 4 * 10 + 8

    def test_role_bit_reaches_all_four_pairings(self):
        # For any two distinct pids, across one odd period of phases
        # both (request-end = pid) assignments must occur in both
        # combinations — the property that unsticks the two-path
        # endgame.
        n = 256
        period = n.bit_length() | 1
        for pid_a, pid_b in ((3, 5), (12, 44), (7, 7 + 128), (0, 255)):
            combos = {(role_bit(pid_a, ell, n), role_bit(pid_b, ell, n))
                      for ell in range(1, 2 * period + 1)}
            assert combos == {(0, 0), (0, 1), (1, 0), (1, 1)}, (pid_a, pid_b)


class TestCycleFromLinks:
    def test_assembles_canonical_cycle(self):
        links = [[1, 3], [0, 2], [1, 3], [2, 0]]
        assert cycle_from_links(links) == [0, 1, 2, 3]

    def test_rejects_broken_structures(self):
        assert cycle_from_links([[1, 2], [0, 2], [0, 1], []]) is None
        # Two disjoint 3-cycles over 6 nodes: not one Hamiltonian cycle.
        two = [[1, 2], [0, 2], [0, 1], [4, 5], [3, 5], [3, 4]]
        assert cycle_from_links(two) is None


class TestRunTurau:
    def test_succeeds_on_dense_graphs(self):
        wins = 0
        for seed in range(5):
            result = run_turau(dense_graph(64, seed), seed=seed)
            if result.success:
                wins += 1
                verify_cycle(dense_graph(64, seed), result.cycle)
                assert result.steps == 64  # n committed edges
                assert result.detail["fail"] is None
        assert wins == 5

    def test_deterministic_seed_for_seed(self):
        g = dense_graph(48, 3)
        a = run_turau(g, seed=3)
        b = run_turau(g, seed=3)
        assert a.cycle == b.cycle
        assert a.rounds == b.rounds
        assert a.messages == b.messages

    def test_too_small_graph(self):
        result = run_turau(repro.Graph(2, [(0, 1)]), seed=1)
        assert not result.success
        assert result.detail["fail"] == FAIL_TOO_SMALL

    def test_disconnected_graph_times_out_honestly(self):
        g = repro.Graph(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        result = run_turau(g, seed=1, phase_budget=4)
        assert not result.success
        assert result.detail["fail"] == FAIL_PHASE_BUDGET
        assert result.detail["phases"] == 4

    def test_sparse_graph_reports_failure_code(self):
        # Below the algorithm's working density the failure is one of
        # the two documented Monte Carlo codes, never a crash.
        n = 96
        g = gnp_random_graph(n, 2.0 * math.log(n) / n, seed=5)
        result = run_turau(g, seed=5)
        assert not result.success
        assert result.detail["fail"] in (FAIL_PHASE_BUDGET,
                                         FAIL_NO_CLOSURE_EDGE)

    def test_initial_paths_reported(self):
        result = run_turau(dense_graph(64, 2), seed=2)
        assert 1 <= result.detail["initial_paths"] <= 64

    def test_detail_phases_on_success_is_closure_phase(self):
        result = run_turau(dense_graph(64, 4), seed=4)
        assert result.success
        assert 1 <= result.detail["phases"] <= turau_phase_budget(64)


class TestCapabilities:
    def test_kmachine_conversion(self):
        from repro.kmachine import run_converted_hc

        g = dense_graph(48, 2)
        result, metrics = run_converted_hc(
            g, algorithm="turau", k_machines=4, seed=2)
        native = run_turau(g, seed=2)
        # Conversion never perturbs the protocol.
        assert result.cycle == native.cycle
        assert metrics.kmachine_rounds > 0

    def test_fault_plan_counters_reported(self):
        from repro.congest.faults import FaultPlan

        g = dense_graph(48, 2)
        result = repro.run(g, "turau", seed=2,
                           fault_plan=FaultPlan(drop_probability=0.0))
        assert result.engine == "congest"
        assert result.detail["faults"]["dropped"] == 0

    def test_lossy_run_fails_honestly(self):
        from repro.congest.faults import FaultPlan

        g = dense_graph(48, 2)
        result = repro.run(g, "turau", seed=2,
                           fault_plan=FaultPlan(drop_probability=0.4, seed=9))
        assert result.engine == "congest"
        if not result.success:
            assert result.detail["fail"] in (FAIL_PHASE_BUDGET,
                                             FAIL_NO_CLOSURE_EDGE)

    def test_audit_memory(self):
        g = dense_graph(32, 1)
        result = repro.run(g, "turau", seed=1, audit_memory=True)
        assert result.engine == "congest"
        assert result.detail["max_state_words"] > 0

    def test_auto_engine_is_fast(self):
        result = repro.run(dense_graph(32, 1), "turau", seed=1)
        assert result.engine == "fast"

    @pytest.mark.parametrize("engine", ["congest", "fast"])
    def test_phase_budget_kwarg(self, engine):
        g = dense_graph(32, 1)
        result = repro.run(g, "turau", engine=engine, seed=1, phase_budget=1)
        assert result.detail["phases"] <= 1
