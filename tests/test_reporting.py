"""Tests for the reporting subpackage (tables, charts, records)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reporting import (
    ExperimentRecord,
    Verdict,
    loglog_chart,
    render_table,
    series_chart,
)
from repro.reporting.table import format_cell


class TestFormatCell:
    def test_integral_float_drops_decimals(self):
        assert format_cell(42.0) == "42"

    def test_precision_applied(self):
        assert format_cell(3.14159, precision=3) == "3.14"

    def test_bool_stays_bool(self):
        assert format_cell(True) == "True"

    def test_strings_pass_through(self):
        assert format_cell("dhc2") == "dhc2"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["n", "rounds"], [[64, 112], [4096, 23057]])
        lines = out.splitlines()
        assert lines[0].startswith("n")
        assert lines[1].startswith("---")
        # Columns align: 'rounds' starts at the same index everywhere.
        col = lines[0].index("rounds")
        assert lines[2][col:].strip() == "112"
        assert lines[3][col:].strip() == "23057"

    def test_title(self):
        out = render_table(["a"], [[1]], title="E1")
        assert out.splitlines()[0] == "E1"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])

    @given(
        rows=st.lists(
            st.tuples(st.integers(0, 10**6), st.floats(0.1, 1e6)),
            min_size=1, max_size=8),
    )
    @settings(max_examples=20, deadline=None)
    def test_every_row_renders(self, rows):
        out = render_table(["x", "y"], rows)
        assert len(out.splitlines()) == 2 + len(rows)


class TestCharts:
    def test_loglog_renders_marks_and_legend(self):
        out = loglog_chart(
            [64, 128, 256], {"dhc1": [100, 160, 250], "upcast": [80, 120, 190]})
        assert "o=dhc1" in out
        assert "x=upcast" in out
        assert "o" in out.split("legend")[0]

    def test_loglog_rejects_empty(self):
        with pytest.raises(ValueError):
            loglog_chart([1], {})

    def test_loglog_rejects_mismatched_series(self):
        with pytest.raises(ValueError, match="one value per x"):
            loglog_chart([1, 2], {"a": [1]})

    def test_loglog_skips_nonpositive(self):
        out = loglog_chart([1, 10], {"a": [0, 100]})  # the 0 is dropped
        assert "a" in out

    def test_loglog_all_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            loglog_chart([1], {"a": [0]})

    def test_series_chart_linear(self):
        out = series_chart([0, 1, 2], {"rate": [0.0, 0.5, 1.0]})
        assert "legend" in out
        assert "rate" in out


class TestExperimentRecord:
    def _record(self, **overrides):
        base = dict(
            experiment_id="E2",
            claim="Theorem 1: DHC1 rounds scale as sqrt(n) polylog",
            predicted="slope 0.5",
            measured="slope 0.54",
            verdict=Verdict.REPRODUCED,
            series={"n": [64, 256], "rounds": [112, 430]},
            notes="c=6, 5 trials",
        )
        base.update(overrides)
        return ExperimentRecord(**base)

    def test_render_contains_all_fields(self):
        text = self._record().render()
        assert "[E2]" in text
        assert "slope 0.5" in text
        assert "slope 0.54" in text
        assert "reproduced" in text
        assert "c=6" in text
        assert "rounds" in text

    def test_markdown_has_table(self):
        md = self._record().to_markdown()
        assert md.startswith("### E2")
        assert "| n | rounds |" in md
        assert "| 64 | 112 |" in md

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            self._record(series={"n": [1, 2], "rounds": [3]})

    def test_no_series_is_fine(self):
        record = self._record(series={})
        assert record.data_rows() == []
        assert "verdict" in record.render()

    def test_verdict_strings(self):
        assert str(Verdict.REPRODUCED) == "reproduced"
        assert str(Verdict.DEVIATION) == "deviation (documented)"
