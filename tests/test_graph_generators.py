"""Tests for the random-graph generators (vs theory and networkx oracle)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    chung_lu_graph,
    gnm_random_graph,
    gnp_random_graph,
    hamiltonicity_threshold,
    paper_probability,
    power_law_weights,
    random_regular_graph,
)
from repro.graphs._sampling import decode_pair_indices, encode_pairs, pair_count, sample_distinct


class TestPairSampling:
    @given(n=st.integers(2, 60), data=st.data())
    @settings(max_examples=80, deadline=None)
    def test_encode_decode_roundtrip(self, n, data):
        total = pair_count(n)
        idx = data.draw(st.lists(st.integers(0, total - 1), min_size=1, max_size=30))
        arr = np.asarray(sorted(set(idx)), dtype=np.int64)
        lo, hi = decode_pair_indices(n, arr)
        assert np.all(lo < hi) and np.all(hi < n)
        assert np.array_equal(encode_pairs(n, lo, hi), arr)

    def test_sample_distinct_exact_count_and_range(self):
        rng = np.random.default_rng(0)
        out = sample_distinct(rng, 1000, 200)
        assert out.size == 200
        assert np.unique(out).size == 200
        assert out.min() >= 0 and out.max() < 1000

    def test_sample_distinct_full_range(self):
        rng = np.random.default_rng(1)
        out = sample_distinct(rng, 10, 10)
        assert sorted(out.tolist()) == list(range(10))

    def test_sample_distinct_rejects_oversample(self):
        with pytest.raises(ValueError):
            sample_distinct(np.random.default_rng(0), 5, 6)


class TestGnp:
    def test_determinism_by_seed(self):
        a = gnp_random_graph(200, 0.05, seed=42)
        b = gnp_random_graph(200, 0.05, seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = gnp_random_graph(200, 0.05, seed=1)
        b = gnp_random_graph(200, 0.05, seed=2)
        assert a != b

    def test_edge_count_concentrates(self):
        n, p = 400, 0.05
        expect = pair_count(n) * p
        counts = [gnp_random_graph(n, p, seed=s).m for s in range(5)]
        assert all(abs(c - expect) < 5 * math.sqrt(expect) for c in counts)

    def test_extreme_probabilities(self):
        assert gnp_random_graph(50, 0.0, seed=0).m == 0
        assert gnp_random_graph(50, 1.0, seed=0).m == pair_count(50)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            gnp_random_graph(10, 1.5, seed=0)

    def test_paper_probability_regimes(self):
        n = 10_000
        assert paper_probability(n, 1.0, 2.0) == pytest.approx(2 * math.log(n) / n)
        assert paper_probability(n, 0.5, 2.0) == pytest.approx(2 * math.log(n) / 100)
        assert paper_probability(16, 0.5, 100.0) == 1.0  # clamped

    def test_paper_probability_validation(self):
        with pytest.raises(ValueError):
            paper_probability(100, 0.0, 1.0)
        with pytest.raises(ValueError):
            paper_probability(100, 0.5, -1.0)

    def test_threshold_value(self):
        assert hamiltonicity_threshold(100) == pytest.approx(math.log(100) / 100)


class TestGnm:
    def test_exact_edge_count(self):
        for m in (0, 10, 100):
            assert gnm_random_graph(50, m, seed=3).m == m

    def test_rejects_too_many_edges(self):
        with pytest.raises(ValueError):
            gnm_random_graph(5, 11, seed=0)

    def test_uniform_over_pairs(self):
        # Every pair should appear with roughly equal frequency.
        hits = np.zeros((6, 6))
        for s in range(300):
            g = gnm_random_graph(6, 3, seed=s)
            for a, b in g.edges():
                hits[a, b] += 1
        upper = hits[np.triu_indices(6, k=1)]
        assert upper.min() > 0.4 * upper.mean()


class TestRegular:
    def test_degrees_exact(self):
        g = random_regular_graph(30, 4, seed=1)
        assert all(g.degree(v) == 4 for v in g.nodes())

    def test_simple(self):
        g = random_regular_graph(24, 3, seed=5)
        assert g.m == 24 * 3 // 2

    def test_odd_product_rejected(self):
        with pytest.raises(ValueError, match="even"):
            random_regular_graph(5, 3, seed=0)

    def test_degree_too_large_rejected(self):
        with pytest.raises(ValueError):
            random_regular_graph(4, 4, seed=0)

    def test_zero_degree(self):
        assert random_regular_graph(6, 0, seed=0).m == 0


class TestChungLu:
    def test_expected_degrees_tracked(self):
        n = 600
        w = np.full(n, 12.0)
        g = chung_lu_graph(w, seed=2)
        mean_deg = 2 * g.m / n
        assert abs(mean_deg - 12.0) < 2.0

    def test_zero_weights(self):
        assert chung_lu_graph(np.zeros(10), seed=0).m == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            chung_lu_graph([-1.0, 2.0], seed=0)

    def test_power_law_weights_mean(self):
        w = power_law_weights(500, 2.5, mean_degree=8.0)
        assert w.sum() / 500 == pytest.approx(8.0)
        assert w[0] > w[-1]  # heavy head

    def test_power_law_validation(self):
        with pytest.raises(ValueError):
            power_law_weights(10, 1.5, mean_degree=2.0)


def test_gnp_matches_networkx_statistics():
    """Cross-check degree statistics against the networkx oracle."""
    networkx = pytest.importorskip("networkx")
    n, p = 300, 0.1
    ours = np.mean([gnp_random_graph(n, p, seed=s).m for s in range(5)])
    theirs = np.mean([
        networkx.gnp_random_graph(n, p, seed=s).number_of_edges() for s in range(5)
    ])
    expect = pair_count(n) * p
    assert abs(ours - expect) < 0.05 * expect
    assert abs(theirs - expect) < 0.05 * expect
