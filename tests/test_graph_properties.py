"""Tests for structural property analysis (diameter, connectivity, BFS)."""

import math

import pytest

from repro.graphs import (
    Graph,
    bfs_distances,
    connected_components,
    degree_statistics,
    diameter,
    diameter_lower_bound,
    eccentricity,
    expected_diameter_sparse,
    giant_component,
    gnp_random_graph,
    is_connected,
)

from tests.conftest import complete, path_graph, ring


class TestBfs:
    def test_distances_on_path(self):
        g = path_graph(5)
        assert bfs_distances(g, 0).tolist() == [0, 1, 2, 3, 4]

    def test_unreachable_marked(self):
        g = Graph(4, [(0, 1)])
        dist = bfs_distances(g, 0)
        assert dist[1] == 1 and dist[2] == -1 and dist[3] == -1

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            bfs_distances(Graph(3), 5)


class TestConnectivity:
    def test_connected_ring(self):
        assert is_connected(ring(10))

    def test_disconnected(self):
        assert not is_connected(Graph(4, [(0, 1), (2, 3)]))

    def test_empty_graph_connected(self):
        assert is_connected(Graph(0))

    def test_components(self):
        comps = connected_components(Graph(5, [(0, 1), (2, 3)]))
        assert sorted(map(tuple, comps)) == [(0, 1), (2, 3), (4,)]

    def test_giant_component(self):
        g = Graph(6, [(0, 1), (1, 2), (3, 4)])
        sub, mapping = giant_component(g)
        assert sub.n == 3 and set(mapping) == {0, 1, 2}


class TestDiameter:
    def test_ring_diameter(self):
        assert diameter(ring(10)) == 5
        assert diameter(ring(11)) == 5

    def test_complete_diameter(self):
        assert diameter(complete(6)) == 1

    def test_path_diameter(self):
        assert diameter(path_graph(7)) == 6

    def test_disconnected_raises(self):
        with pytest.raises(ValueError):
            diameter(Graph(3, [(0, 1)]))

    def test_exact_limit_guard(self):
        with pytest.raises(ValueError, match="exact_limit"):
            diameter(ring(100), exact_limit=10)

    def test_lower_bound_sandwiches(self):
        g = gnp_random_graph(150, 0.08, seed=1)
        exact = diameter(g)
        lb = diameter_lower_bound(g, sweeps=6)
        assert lb <= exact
        assert lb >= exact - 1  # double sweep is near-sharp on these graphs

    def test_eccentricity(self):
        assert eccentricity(path_graph(5), 0) == 4
        assert eccentricity(path_graph(5), 2) == 2

    def test_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        g = gnp_random_graph(120, 0.1, seed=7)
        ng = networkx.Graph(list(g.edges()))
        ng.add_nodes_from(range(g.n))
        assert diameter(g) == networkx.diameter(ng)


class TestDegreeStats:
    def test_ring_stats(self):
        stats = degree_statistics(ring(12))
        assert stats == {"min": 2.0, "max": 2.0, "mean": 2.0, "std": 0.0}

    def test_empty(self):
        assert degree_statistics(Graph(0))["mean"] == 0.0

    def test_expected_diameter_scale(self):
        assert expected_diameter_sparse(10_000) == pytest.approx(
            math.log(10_000) / math.log(math.log(10_000))
        )
