"""Asynchronous engine tests (repro.congest.async_engine).

Three contracts, in order of importance:

1. **Synchronous parity** — with unit latency, no faults, and no
   churn, the event queue degenerates into rounds and every congest
   algorithm reproduces its synchronous run *seed for seed* (success,
   cycle, rounds, messages, bits, steps).  The registry gate enforces
   this of every ``async_capable`` entry, so a new async engine cannot
   register without passing the oracle.
2. **Quiescence, not exceptions** — loss, reordering, and churn drive
   synchronous protocols into alien states; the engine must wind down
   cleanly (crash-stopping erroring nodes) and never report an
   unverified success.
3. **Determinism** — same seeds, same model => the identical event
   trace, so failures under loss are replayable.
"""

import pytest

from repro.congest import AsyncNetwork, FaultPlan, LatencySpec, NetworkModel
from repro.congest.errors import RoundLimitExceeded
from repro.core import run_dhc1, run_dhc2, run_dra, run_turau
from repro.core.dra import DraProtocol
from repro.engines.registry import REGISTRY
from repro.verify import is_hamiltonian_cycle

from tests.conftest import dense_gnp

#: The four congest front ends and their minimal kwargs.
RUNNERS = [
    ("dra", run_dra, {}),
    ("dhc1", run_dhc1, {}),
    ("dhc2", run_dhc2, {"delta": 0.5}),
    ("turau", run_turau, {}),
]

ASYNC = NetworkModel(mode="async")


def _lossy(drop=0.01, seed=0):
    return NetworkModel(mode="async",
                        latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
                        fault_plan=FaultPlan(drop_probability=drop, seed=seed))


# ---------------------------------------------------------------------------
# Synchronous parity (the zero-latency / zero-drop pin)
# ---------------------------------------------------------------------------


class TestSyncParity:
    @pytest.mark.parametrize("name,runner,kwargs", RUNNERS,
                             ids=[r[0] for r in RUNNERS])
    def test_unit_latency_matches_sync_seed_for_seed(self, name, runner,
                                                     kwargs):
        graph = dense_gnp(32, seed=7)
        sync = runner(graph, seed=5, **kwargs)
        against = runner(graph, seed=5, network=ASYNC, **kwargs)
        assert against.engine == "async"
        assert against.success == sync.success
        assert against.cycle == sync.cycle
        assert against.rounds == sync.rounds
        assert against.messages == sync.messages
        assert against.bits == sync.bits
        assert against.steps == sync.steps

    def test_parity_summary_shape(self):
        graph = dense_gnp(32, seed=7)
        result = run_dra(graph, seed=5, network=ASYNC)
        stats = result.detail["async"]
        assert stats["limited"] == 0
        assert stats["dropped"] == 0
        assert stats["reordered"] == 0
        assert stats["protocol_errors"] == 0
        assert stats["delivered"] == result.messages
        # Unit latency: every message advances the causal chain by one
        # time unit, so virtual time tracks the Lamport depth exactly
        # for delivery-driven phases; wake-driven gaps only add time.
        assert stats["virtual_time"] >= stats["depth"]

    def test_registry_gate_every_async_capable_spec_passes_oracle(self):
        """Registering async_capable=True *is* a parity claim."""
        specs = [s for s in REGISTRY if s.async_capable]
        assert len(specs) >= 4  # dra, dhc1, dhc2, turau
        graph = dense_gnp(28, seed=3)
        for spec in specs:
            oracle = REGISTRY.get(spec.algorithm, "congest")
            sync = oracle.call(graph, seed=2)
            against = spec.call(graph, seed=2, network=ASYNC)
            for field in ("success", "cycle", "rounds", "messages", "bits",
                          "steps"):
                assert getattr(against, field) == getattr(sync, field), (
                    f"{spec.key}: async/sync diverge on {field}")

    def test_non_async_specs_do_not_claim_capability(self):
        for spec in REGISTRY:
            if spec.engine != "async":
                assert not spec.async_capable, spec.key


# ---------------------------------------------------------------------------
# Quiescence under loss, reordering, churn
# ---------------------------------------------------------------------------


class TestQuiescenceUnderFaults:
    @pytest.mark.parametrize("name,runner,kwargs", RUNNERS,
                             ids=[r[0] for r in RUNNERS])
    def test_loss_and_crash_end_in_quiescence_not_exception(self, name,
                                                            runner, kwargs):
        graph = dense_gnp(24, seed=1)
        model = NetworkModel(
            mode="async",
            latency=LatencySpec(kind="uniform", low=0.5, high=1.5),
            fault_plan=FaultPlan(drop_probability=0.02, seed=3,
                                 crash_rounds={2: 9}),
        )
        result = runner(graph, seed=1, network=model, **kwargs)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
        else:
            assert result.cycle is None
        stats = result.detail["async"]
        assert stats["limited"] == 0  # wound down, not watchdogged
        assert result.detail["faults"]["crashed_nodes"] >= 1.0

    def test_total_blackout_is_a_clean_failure(self):
        graph = dense_gnp(24, seed=2)
        result = run_dra(graph, seed=2, network=_lossy(drop=1.0))
        assert not result.success
        assert result.cycle is None
        assert result.detail["async"]["delivered"] == 0

    def test_latency_reorders_messages(self):
        graph = dense_gnp(32, seed=4)
        result = run_dra(graph, seed=4,
                         network=NetworkModel(
                             mode="async",
                             latency=LatencySpec(kind="uniform",
                                                 low=0.5, high=1.5)))
        stats = result.detail["async"]
        assert stats["reordered"] > 0
        assert stats["stretch"] is not None and stats["stretch"] > 0
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)

    def test_watchdog_budget_still_enforced(self):
        graph = dense_gnp(24, seed=5)
        # The runners soften the watchdog into a failed result...
        result = run_dra(graph, seed=5, network=ASYNC, max_rounds=3)
        assert not result.success
        assert result.detail["async"]["limited"] == 1
        # ...but the raw engine raises, like the synchronous Network.
        net = AsyncNetwork(graph, lambda v: DraProtocol(v, graph.n),
                           seed=5, model=ASYNC)
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=3)


# ---------------------------------------------------------------------------
# Churn: crash and late join at virtual times
# ---------------------------------------------------------------------------


class TestChurn:
    def test_mid_run_churn_crash_is_fatal_but_clean(self):
        graph = dense_gnp(24, seed=6)
        model = NetworkModel(mode="async", churn=[("crash", 3, 8.0)])
        result = run_dra(graph, seed=6, network=model)
        assert not result.success  # a cycle needs every node
        stats = result.detail["async"]
        assert stats["churn_crashed"] == 1
        assert stats["limited"] == 0

    def test_late_join_defers_start(self):
        graph = dense_gnp(24, seed=7)
        model = NetworkModel(mode="async", churn=[("join", 2, 4.0)])
        result = run_dra(graph, seed=7, network=model)
        assert result.detail["async"]["churn_joined"] == 1
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)

    def test_churn_node_out_of_range_rejected(self):
        graph = dense_gnp(8, seed=0)
        model = NetworkModel(mode="async", churn=[("crash", 99, 1.0)])
        with pytest.raises(ValueError, match="churn event names node"):
            run_dra(graph, seed=0, network=model)


# ---------------------------------------------------------------------------
# Engine-level mechanics
# ---------------------------------------------------------------------------


class TestAsyncNetworkMechanics:
    def _net(self, *, model=None, record_events=False, n=20, seed=3):
        graph = dense_gnp(n, seed=seed)
        return graph, AsyncNetwork(
            graph, lambda v: DraProtocol(v, graph.n), seed=seed,
            model=model if model is not None else ASYNC,
            record_events=record_events)

    def test_rejects_sync_mode_model(self):
        graph = dense_gnp(8, seed=0)
        with pytest.raises(ValueError, match="mode='async'"):
            AsyncNetwork(graph, lambda v: DraProtocol(v, graph.n),
                         model=NetworkModel())

    def test_rejects_sync_engine_observers(self):
        _graph, net = self._net()
        net.round_observer = lambda network, outbox: None
        with pytest.raises(ValueError, match="synchronous-engine"):
            net.run(max_rounds=100)

    def test_event_trace_is_deterministic(self):
        model = _lossy(drop=0.05, seed=9)
        _g1, first = self._net(model=model, record_events=True)
        _g2, second = self._net(model=model, record_events=True)
        first.run(max_rounds=5000, raise_on_limit=False)
        second.run(max_rounds=5000, raise_on_limit=False)
        assert first.events  # non-trivial trace
        assert first.events == second.events
        assert first.async_summary() == second.async_summary()

    def test_different_substrate_seed_changes_schedule(self):
        base = NetworkModel(mode="async",
                            latency=LatencySpec(kind="uniform",
                                                low=0.5, high=1.5))
        _g1, first = self._net(model=base, record_events=True)
        _g2, second = self._net(model=NetworkModel(
            mode="async", latency=base.latency, seed=1), record_events=True)
        first.run(max_rounds=5000, raise_on_limit=False)
        second.run(max_rounds=5000, raise_on_limit=False)
        assert first.events != second.events

    def test_erroring_protocol_is_crash_stopped_not_fatal(self):
        graph = dense_gnp(12, seed=1)

        class Bomb(DraProtocol):
            def on_round(self, ctx, inbox):
                if self.node_id == 0 and ctx.round_index >= 3:
                    raise RuntimeError("alien state")
                super().on_round(ctx, inbox)

        net = AsyncNetwork(graph, lambda v: Bomb(v, graph.n), seed=1,
                           model=ASYNC)
        net.run(max_rounds=5000, raise_on_limit=False)
        assert net.async_summary()["protocol_errors"] == 1
        assert net.context(0).halted

    def test_repro_run_dispatches_async_engine(self):
        import repro

        graph = dense_gnp(24, seed=8)
        result = repro.run(graph, "dra", engine="async", seed=8)
        assert result.engine == "async"
        assert "async" in result.detail
        # auto never picks async implicitly: congest outranks it, so a
        # plain network= run stays on the synchronous simulator.
        auto = repro.run(graph, "dra", seed=8,
                         network=NetworkModel().canonical())
        assert auto.engine == "congest"

    def test_json_network_document_accepted(self):
        import repro

        graph = dense_gnp(24, seed=9)
        result = repro.run(
            graph, "dra", engine="async", seed=9,
            network={"latency": {"kind": "fixed", "value": 2.0}})
        stats = result.detail["async"]
        assert stats["reordered"] == 0  # fixed latency cannot reorder
        assert result.engine == "async"
