"""End-to-end property tests: whole-algorithm invariants under random
inputs and random coins (hypothesis drives both).

These complement the unit-level property files: rather than testing one
mechanism, each property here runs a complete algorithm and asserts the
library-wide contracts — verified-or-failed results, budget respect,
engine determinism, conservation laws in the accounting.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bounds import dra_step_budget
from repro.baselines import run_levy, run_local_collect
import repro
from repro.graphs import gnm_random_graph, gnp_random_graph
from repro.kmachine import run_converted_hc
from repro.verify import is_hamiltonian_cycle


def _graph(n: int, c: float, seed: int):
    p = min(1.0, c * math.log(n) / n)
    return gnp_random_graph(n, p, seed=seed)


class TestAlgorithmContracts:
    @given(n=st.integers(24, 96), c=st.floats(2.0, 10.0), seed=st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_dra_success_iff_verified_cycle(self, n, c, seed):
        result = repro.run(_graph(n, c, seed), "dra", engine="fast", seed=seed)
        if result.success:
            assert result.cycle is not None
            assert is_hamiltonian_cycle(_graph(n, c, seed), result.cycle)
            assert result.steps >= n - 1  # at least one step per extension
        else:
            assert result.cycle is None

    @given(n=st.integers(24, 96), seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_dra_respects_step_budget(self, n, seed):
        result = repro.run(_graph(n, 8.0, seed), "dra", engine="fast", seed=seed)
        assert result.steps <= dra_step_budget(n)

    @given(n=st.integers(48, 128), seed=st.integers(0, 10**6),
           k=st.integers(2, 4))
    @settings(max_examples=12, deadline=None)
    def test_dhc2_success_iff_verified_cycle(self, n, seed, k):
        graph = _graph(n, 9.0, seed)
        result = repro.run(graph, "dhc2", engine="fast", k=k, seed=seed)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
            assert result.cycle[0] == 0  # normalised start
        else:
            assert result.cycle is None

    @given(n=st.integers(24, 80), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_levy_contract(self, n, seed):
        graph = gnp_random_graph(n, 0.5, seed=seed)
        result = run_levy(graph, seed=seed)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
        else:
            assert result.cycle is None
            assert result.rounds >= 0

    @given(n=st.integers(24, 80), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_local_collect_contract(self, n, seed):
        graph = _graph(n, 6.0, seed)
        result = run_local_collect(graph, seed=seed)
        if result.success:
            assert is_hamiltonian_cycle(graph, result.cycle)
            assert result.bits > 0
        # rounds = 3 ecc + 1 is odd-numbered and small.
        if result.detail.get("eccentricity") is not None:
            assert result.rounds == 3 * result.detail["eccentricity"] + 1


class TestDeterminism:
    @given(n=st.integers(24, 72), seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_fast_engine_is_a_pure_function_of_seed(self, n, seed):
        graph = _graph(n, 8.0, seed)
        a = repro.run(graph, "dra", engine="fast", seed=seed)
        b = repro.run(graph, "dra", engine="fast", seed=seed)
        assert a.success == b.success
        assert a.cycle == b.cycle
        assert a.rounds == b.rounds
        assert a.steps == b.steps

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=8, deadline=None)
    def test_gnm_edge_count_exact(self, seed):
        graph = gnm_random_graph(60, 333, seed=seed)
        assert graph.m == 333


class TestKMachineConservation:
    @given(seed=st.integers(0, 10**6), k=st.integers(2, 8))
    @settings(max_examples=8, deadline=None)
    def test_word_conservation(self, seed, k):
        """local + cross words together account for every message, and
        the link matrix sums to the cross total."""
        graph = _graph(48, 8.0, seed)
        result, metrics = run_converted_hc(
            graph, algorithm="dra", k_machines=k, seed=seed)
        assert metrics.cross_words == int(metrics.link_words.sum())
        assert metrics.cross_words == int(metrics.recv_words_per_machine.sum())
        total_words = metrics.cross_words + metrics.local_words
        # Every protocol message carries >= 1 word (its kind tag), so
        # the word total is at least the message count.
        assert total_words >= result.messages
        assert metrics.congest_rounds == result.rounds
