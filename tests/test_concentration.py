"""Tests for the concentration-bound helpers (repro.analysis.concentration).

Each bound is checked three ways: algebraic sanity (monotonicity,
range), agreement with the paper's plugged-in numbers, and — the
interesting part — *validity against simulation*: the measured tail
frequency of the actual random process must not exceed the bound.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.concentration import (
    chernoff_lower,
    chernoff_two_sided,
    chernoff_upper,
    merge_step_failure,
    partition_size_failure,
    unused_list_failure,
)


class TestChernoffForms:
    def test_zero_delta_is_vacuous(self):
        assert chernoff_upper(0.0, 100.0) == 1.0
        assert chernoff_lower(0.0, 100.0) == 1.0
        assert chernoff_two_sided(0.0, 100.0) == 1.0

    def test_paper_e2_1_number(self):
        # Theorem 2, event E2.1: Pr[X >= 3 mu] with mu = 7 ln n is
        # O(n^-4); the paper evaluates the bound (e^2/27)^(7 ln n).
        n = 1000
        mu = 7 * math.log(n)
        bound = chernoff_upper(2.0, mu)
        assert bound <= n**-4.0 * 10  # same order

    def test_lemma4_two_sided_form(self):
        # Lemma 4: Pr[|X - sqrt(n)| >= sqrt(n)/2] <= 2 exp(-sqrt(n)/12).
        n = 10_000
        expected = math.sqrt(n)
        assert chernoff_two_sided(0.5, expected) == pytest.approx(
            2.0 * math.exp(-expected / 12.0))

    def test_monotone_in_delta_and_mean(self):
        assert chernoff_upper(1.0, 50) < chernoff_upper(0.5, 50)
        assert chernoff_upper(0.5, 100) < chernoff_upper(0.5, 50)
        assert chernoff_lower(0.9, 50) < chernoff_lower(0.3, 50)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            chernoff_upper(-0.1, 10)
        with pytest.raises(ValueError):
            chernoff_lower(1.5, 10)
        with pytest.raises(ValueError):
            chernoff_two_sided(2.0, 10)
        with pytest.raises(ValueError):
            chernoff_upper(0.5, -1)

    @given(delta=st.floats(0.01, 1.0), mean=st.floats(1.0, 1e4))
    @settings(max_examples=50, deadline=None)
    def test_bounds_are_probabilities(self, delta, mean):
        for fn in (chernoff_upper, chernoff_lower, chernoff_two_sided):
            value = fn(delta, mean)
            assert 0.0 <= value <= 1.0

    def test_upper_tail_bound_holds_empirically(self):
        # Binomial(200, 0.3), mu = 60: measured Pr[X >= 1.5 mu] must be
        # below the bound (with simulation slack).
        rng = np.random.default_rng(0)
        mu, delta = 60.0, 0.5
        draws = rng.binomial(200, 0.3, size=20_000)
        measured = float(np.mean(draws >= (1 + delta) * mu))
        assert measured <= chernoff_upper(delta, mu) + 0.01

    def test_lower_tail_bound_holds_empirically(self):
        rng = np.random.default_rng(1)
        mu, delta = 60.0, 0.5
        draws = rng.binomial(200, 0.3, size=20_000)
        measured = float(np.mean(draws <= (1 - delta) * mu))
        assert measured <= chernoff_lower(delta, mu) + 0.01


class TestPaperFailureBounds:
    def test_partition_failure_shrinks_with_n(self):
        values = [partition_size_failure(n, int(math.isqrt(n)))
                  for n in (256, 1024, 4096, 16384)]
        assert values == sorted(values, reverse=True)

    def test_partition_failure_empirical(self):
        # Measured frequency of any class leaving [1/2, 3/2] * n/K must
        # not exceed the union bound.
        n, colors, trials = 1024, 8, 300
        rng = np.random.default_rng(2)
        expected = n / colors
        bad = 0
        for _ in range(trials):
            sizes = np.bincount(rng.integers(0, colors, size=n), minlength=colors)
            if np.any(sizes < expected / 2) or np.any(sizes > 1.5 * expected):
                bad += 1
        assert bad / trials <= partition_size_failure(n, colors) + 0.02

    def test_partition_failure_rejects_zero_colors(self):
        with pytest.raises(ValueError):
            partition_size_failure(100, 0)

    def test_unused_list_failure_paper_numbers(self):
        # E2.2: q >= 43 ln n / n gives E[Y] >= 42 ln n and
        # Pr[Y <= 21 ln n] = O(n^-4) per node, O(n^-3) after union.
        n = 2000
        q = 43 * math.log(n) / n
        bound = unused_list_failure(n, q, threshold=21 * math.log(n))
        assert bound <= n**-3.0 * 100

    def test_unused_list_rejects_bad_q(self):
        with pytest.raises(ValueError):
            unused_list_failure(100, 1.5, threshold=10)

    def test_merge_failure_is_negligible_at_paper_scale(self):
        # Lemma 8: the first merge level fails with "very high
        # probability" — at n = 4096, delta = 0.5, the union bound is
        # already ~3e-12, i.e. negligible next to Phase 1's O(1/n).
        bound = merge_step_failure(4096, 0.5, p=6 * math.log(4096) / 4096**0.5)
        assert bound < 1e-10
        assert bound < 1.0 / 4096

    def test_merge_failure_monotone_in_p(self):
        lo = merge_step_failure(1024, 0.5, p=0.02)
        hi = merge_step_failure(1024, 0.5, p=0.2)
        assert hi <= lo

    def test_merge_failure_validates_arguments(self):
        with pytest.raises(ValueError):
            merge_step_failure(100, 1.5, 0.1)
        with pytest.raises(ValueError):
            merge_step_failure(100, 0.5, 1.1)
