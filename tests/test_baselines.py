"""Tests for the comparison baselines (repro.baselines).

The Levy et al. reconstruction must (a) find verified Hamiltonian
cycles in its promised dense regime, (b) collapse below its density
floor where DHC2 still works — the paper's headline comparison — and
(c) account rounds sensibly.  The LOCAL collect-all baseline must be
round-cheap but traffic-heavy, which is the whole point of footnote 6.
"""


from repro.baselines import run_levy, run_local_collect
from repro.baselines.levy import levy_density_requirement
from repro.core import run_dhc2
import repro
from repro.graphs import gnp_random_graph, paper_probability
from repro.graphs.adjacency import Graph
from repro.graphs.properties import eccentricity
from repro.verify import is_hamiltonian_cycle


def _dense_graph(n, seed):
    """A graph comfortably inside [18]'s regime p >> sqrt(log n)/n^0.25."""
    p = min(0.9, 4.0 * levy_density_requirement(n))
    return gnp_random_graph(n, p, seed=seed)


class TestLevyBaseline:
    def test_succeeds_in_dense_regime(self):
        graph = _dense_graph(128, seed=1)
        result = run_levy(graph, seed=1)
        assert result.success
        assert is_hamiltonian_cycle(graph, result.cycle)

    def test_success_rate_reasonable_in_regime(self):
        wins = 0
        for seed in range(6):
            graph = _dense_graph(96, seed=seed)
            if run_levy(graph, seed=seed).success:
                wins += 1
        assert wins >= 4

    def test_rounds_are_positive_and_reported(self):
        graph = _dense_graph(96, seed=3)
        result = run_levy(graph, seed=3)
        assert result.engine == "fast"
        assert result.rounds > 0
        assert result.detail["paths"] >= 1
        assert result.detail["phase1_rounds"] > 0

    def test_fails_cleanly_below_density_floor(self):
        # p = c ln n / n at n=1024 (the Hamiltonicity threshold) is far
        # below sqrt(log n)/n^0.25: the sub-paths are internally too
        # sparse to close and patching needs adjacent cross-edge
        # *pairs* (~p^2 per cycle edge), so the baseline collapses;
        # DHC2 is designed for exactly this regime.  No seed may ever
        # produce a false success.
        n = 1024
        p = paper_probability(n, 1.0, 6.0)
        assert p < levy_density_requirement(n)
        failures = 0
        for seed in range(4):
            graph = gnp_random_graph(n, p, seed=seed)
            result = run_levy(graph, seed=seed)
            if not result.success:
                failures += 1
                assert result.cycle is None
                assert result.detail.get("reason") in (
                    "initial-cycle", "patch-failed", "too-small")
            else:
                assert is_hamiltonian_cycle(graph, result.cycle)
        assert failures >= 3

    def test_dhc2_beats_levy_below_the_floor(self):
        # The paper's comparison: [18] needs density, DHC2 does not.
        n = 1024
        p = paper_probability(n, 1.0, 6.0)
        levy_wins = dhc2_wins = 0
        for seed in range(3):
            graph = gnp_random_graph(n, p, seed=seed)
            if run_levy(graph, seed=seed).success:
                levy_wins += 1
            if repro.run(graph, "dhc2", engine="fast", delta=1.0, seed=seed).success:
                dhc2_wins += 1
        assert dhc2_wins > levy_wins

    def test_too_small_graph(self):
        result = run_levy(Graph(2, [(0, 1)]), seed=0)
        assert not result.success
        assert result.detail["reason"] == "too-small"

    def test_seed_determinism(self):
        graph = _dense_graph(96, seed=5)
        a = run_levy(graph, seed=9)
        b = run_levy(graph, seed=9)
        assert a.success == b.success
        assert a.cycle == b.cycle
        assert a.rounds == b.rounds

    def test_density_requirement_shape(self):
        # Decreasing in n, and between 0 and 1 for sane n.
        values = [levy_density_requirement(n) for n in (16, 256, 4096, 65536)]
        assert values == sorted(values, reverse=True)
        assert all(0 < v <= 1 for v in values)

    def test_explicit_seed_count(self):
        graph = _dense_graph(96, seed=2)
        result = run_levy(graph, seed=2, seeds_count=4)
        # 4 seeds -> at most 4 grown paths + leftovers as singletons.
        assert result.detail["paths"] >= 4


class TestLocalCollectBaseline:
    def test_succeeds_and_verifies(self):
        n = 128
        graph = gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=1)
        result = run_local_collect(graph, seed=1)
        assert result.success
        assert is_hamiltonian_cycle(graph, result.cycle)

    def test_rounds_are_three_eccentricities(self):
        n = 128
        graph = gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=2)
        result = run_local_collect(graph, seed=2)
        assert result.rounds == 3 * eccentricity(graph, 0) + 1

    def test_traffic_scales_with_edges_not_rounds(self):
        # LOCAL is round-cheap but moves Theta(m * D * log n) bits; the
        # bit total must dwarf what a CONGEST algorithm may send in the
        # same number of rounds (n messages of O(log n) bits per round).
        n = 128
        graph = gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=3)
        result = run_local_collect(graph, seed=3)
        assert result.bits > 0
        assert result.detail["leader_state_words"] == 2 * graph.m
        # Not necessarily above the *cap* (D can be tiny), but the bits
        # must exceed what the whole CONGEST DHC2 run sends per round.
        assert result.bits / result.rounds > 100

    def test_disconnected_graph_fails_cleanly(self):
        graph = Graph(6, [(0, 1), (1, 2), (3, 4), (4, 5)])
        result = run_local_collect(graph)
        assert not result.success
        assert result.detail["reason"] == "disconnected"

    def test_too_small(self):
        assert not run_local_collect(Graph(1)).success

    def test_rounds_beat_congest_dhc2(self):
        # Footnote 6's point: in LOCAL the problem is trivial in O(D).
        n = 96
        graph = gnp_random_graph(n, paper_probability(n, 0.5, 6.0), seed=4)
        local = run_local_collect(graph, seed=4)
        dhc2 = run_dhc2(graph, delta=0.5, seed=4)
        assert local.success
        assert local.rounds < dhc2.rounds
