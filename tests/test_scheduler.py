"""The scheduler layer: ordered vs work-stealing trial dispatch.

Schedulers may only change *when* results surface, never *what* is
computed: any scheduler, any chunking, any job count must yield the
same canonical records, the same returned order (schedule order), and
a store whose canonicalised contents match a serial run.
"""

import json

import pytest

import repro
from repro.graphs import gnp_random_graph, paper_probability
from repro.harness import (
    SCHEDULERS,
    JsonlStore,
    OrderedScheduler,
    ParallelTrialRunner,
    ParameterGrid,
    TrialRunner,
    WorkStealingScheduler,
    canonical_order,
)
from repro.harness.scheduler import resolve_scheduler


def skewed_trial(point, seed):
    """Cost scales steeply with n — the skew work stealing exists for."""
    p = paper_probability(point["n"], 1.0, 8.0)
    graph = gnp_random_graph(point["n"], p, seed=seed)
    return repro.run(graph, "dra", engine="fast", seed=seed)


def mapping_trial(point, seed):
    return {"success": seed % 3 != 0, "score": float(seed % 7)}


def canonical(trials):
    return [json.dumps(t.canonical_json(), sort_keys=True) for t in trials]


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_scheduler("ordered"), OrderedScheduler)
        assert isinstance(resolve_scheduler("work-stealing"),
                          WorkStealingScheduler)

    def test_instances_and_classes_pass_through(self):
        inst = WorkStealingScheduler()
        assert resolve_scheduler(inst) is inst
        assert isinstance(resolve_scheduler(OrderedScheduler),
                          OrderedScheduler)

    def test_unknown_name_is_loud(self):
        with pytest.raises(ValueError, match="unknown schedule"):
            resolve_scheduler("lifo")
        with pytest.raises(ValueError, match="unknown schedule"):
            ParallelTrialRunner(mapping_trial, schedule="lifo")

    def test_registry_names(self):
        assert set(SCHEDULERS) == {"ordered", "work-stealing"}


class TestChunking:
    def test_work_stealing_prefers_finer_chunks(self):
        # Chunks are the stealing unit: same pending work, more chunks.
        assert WorkStealingScheduler.auto_chunksize(256, 4) \
            < OrderedScheduler.auto_chunksize(256, 4)
        assert WorkStealingScheduler.auto_chunksize(1, 8) == 1

    def test_auto_chunksize_back_compat_api(self):
        assert ParallelTrialRunner.auto_chunksize(64, 4) == \
            OrderedScheduler.auto_chunksize(64, 4)


class TestWorkStealingParity:
    """The tentpole contract: stealing changes wall-clock, not records."""

    def test_skewed_grid_canonical_parity(self):
        grid = ParameterGrid(n=[24, 192], c=[8.0])  # skewed columns
        serial = TrialRunner(skewed_trial, master_seed=11).run(grid, trials=4)
        stolen = ParallelTrialRunner(
            skewed_trial, master_seed=11, jobs=4,
            schedule="work-stealing").run(grid, trials=4)
        # Returned order is schedule order for every scheduler, so the
        # lists — not just the sets — must agree canonically.
        assert canonical(stolen) == canonical(serial)

    @pytest.mark.parametrize("chunksize", [None, 1, 3])
    def test_store_is_a_completion_log_with_canonical_contents(
            self, tmp_path, chunksize):
        grid = ParameterGrid(n=[8, 16, 24])
        serial_store = JsonlStore(tmp_path / "serial.jsonl")
        TrialRunner(mapping_trial, master_seed=3, store=serial_store).run(
            grid, trials=5)
        stolen_store = JsonlStore(tmp_path / f"stolen-{chunksize}.jsonl")
        ParallelTrialRunner(
            mapping_trial, master_seed=3, store=stolen_store, jobs=3,
            chunksize=chunksize, schedule="work-stealing").run(grid, trials=5)
        # Write order may differ (completion log) ...
        assert len(stolen_store) == len(serial_store)
        # ... but re-canonicalised records are identical.
        assert canonical(stolen_store.load_canonical()) == \
            canonical(serial_store.load_canonical())

    def test_resume_completes_partial_store(self, tmp_path):
        grid = ParameterGrid(n=[8, 16])
        store = JsonlStore(tmp_path / "partial.jsonl")
        TrialRunner(mapping_trial, master_seed=9, store=store).run(
            grid, trials=2)
        full = ParallelTrialRunner(
            mapping_trial, master_seed=9, store=store, jobs=2,
            schedule="work-stealing").run(grid, trials=4)
        reference = TrialRunner(mapping_trial, master_seed=9).run(
            grid, trials=4)
        assert canonical(full) == canonical(reference)

    def test_ordered_still_byte_identical(self, tmp_path):
        """The refactor must not cost the ordered path its guarantee."""
        grid = ParameterGrid(n=[8, 16])
        serial_store = JsonlStore(tmp_path / "serial.jsonl")
        ordered_store = JsonlStore(tmp_path / "ordered.jsonl")
        TrialRunner(mapping_trial, master_seed=5, store=serial_store).run(
            grid, trials=6)
        ParallelTrialRunner(
            mapping_trial, master_seed=5, store=ordered_store, jobs=3,
            schedule="ordered").run(grid, trials=6)
        assert canonical(serial_store.load()) == canonical(ordered_store.load())


class TestProgressSemantics:
    """progress fires exactly once per returned trial, resumed included."""

    def test_serial_resume_reports_resumed_trials(self, tmp_path):
        store = JsonlStore(tmp_path / "t.jsonl")
        runner = TrialRunner(mapping_trial, master_seed=2, store=store)
        runner.run(ParameterGrid(n=[8]), trials=2)
        seen = []
        out = runner.run(ParameterGrid(n=[8]), trials=4, progress=seen.append)
        assert len(seen) == len(out) == 4
        assert [t.trial_index for t in seen] == [0, 1, 2, 3]

    @pytest.mark.parametrize("schedule", sorted(SCHEDULERS))
    def test_parallel_resume_reports_every_trial(self, tmp_path, schedule):
        store = JsonlStore(tmp_path / f"{schedule}.jsonl")
        grid = ParameterGrid(n=[8, 16])
        TrialRunner(mapping_trial, master_seed=2, store=store).run(
            grid, trials=2)
        seen = []
        out = ParallelTrialRunner(
            mapping_trial, master_seed=2, store=store, jobs=2,
            schedule=schedule).run(grid, trials=4, progress=seen.append)
        assert len(seen) == len(out) == 8
        assert sorted(t.key() for t in seen) == \
            sorted(t.key() for t in out)

    def test_canonical_order_helper_sorts_by_key(self):
        trials = TrialRunner(mapping_trial, master_seed=1).run(
            ParameterGrid(n=[16, 8]), trials=2)
        ordered = canonical_order(trials)
        assert [t.key() for t in ordered] == sorted(t.key() for t in trials)
