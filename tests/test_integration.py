"""Cross-algorithm integration tests: all four algorithms, one graph."""

import math

import repro

import pytest

from repro import find_hamiltonian_cycle
from repro.cli import main as cli_main
from repro.graphs import gnp_random_graph
from repro.verify import is_hamiltonian_cycle


@pytest.fixture(scope="module")
def shared_graph():
    """A graph dense enough for every algorithm's regime."""
    n = 120
    p = min(1.0, 2.2 * math.log(n) / math.sqrt(n))
    return gnp_random_graph(n, p, seed=17)


class TestAllAlgorithmsOneGraph:
    @pytest.mark.parametrize("algorithm,kwargs", [
        ("dra", {}),
        ("dhc1", {"k": 4}),
        ("dhc2", {"k": 4}),
        ("upcast", {}),
        ("trivial", {}),
    ])
    def test_every_algorithm_solves_it(self, shared_graph, algorithm, kwargs):
        res = find_hamiltonian_cycle(shared_graph, algorithm=algorithm,
                                     seed=23, **kwargs)
        assert res.success, f"{algorithm} failed: {res.detail}"
        assert is_hamiltonian_cycle(shared_graph, res.cycle)

    def test_unknown_algorithm_rejected(self, shared_graph):
        with pytest.raises(ValueError, match="unknown algorithm"):
            find_hamiltonian_cycle(shared_graph, algorithm="magic")

    def test_round_ordering_matches_paper(self, shared_graph):
        """The trivial O(m) baseline must cost the most rounds; the
        sampled Upcast must beat it (Section III's motivation)."""
        upcast = find_hamiltonian_cycle(shared_graph, algorithm="upcast", seed=23)
        trivial = find_hamiltonian_cycle(shared_graph, algorithm="trivial", seed=23)
        assert upcast.success and trivial.success
        assert upcast.rounds < trivial.rounds

    def test_message_size_all_logarithmic(self, shared_graph):
        """CONGEST: average bits per message stays O(log n)."""
        for algorithm in ("dra", "dhc2", "upcast"):
            res = find_hamiltonian_cycle(shared_graph, algorithm=algorithm,
                                         seed=23, **({"k": 4} if algorithm == "dhc2" else {}))
            assert res.success
            avg_bits = res.bits / max(1, res.messages)
            assert avg_bits <= 8 + 12 * math.ceil(math.log2(shared_graph.n + 1))


class TestCli:
    def test_cli_dhc2_json(self, capsys):
        code = cli_main(["--algorithm", "dhc2", "--nodes", "96", "--delta", "0.5",
                         "--c", "3", "--k", "3", "--seed", "2", "--json"])
        out = capsys.readouterr().out
        assert code == 0
        assert '"success": true' in out

    def test_cli_human_output(self, capsys):
        code = cli_main(["--algorithm", "dra", "--nodes", "64", "--delta", "1.0",
                         "--c", "8", "--seed", "1"])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycle:" in out

    def test_cli_failure_exit_code(self, capsys):
        # Far below threshold: everything fails.
        code = cli_main(["--algorithm", "dra", "--nodes", "64", "--delta", "1.0",
                         "--c", "0.3", "--seed", "1"])
        assert code == 1


class TestSuccessProbabilityShape:
    """E6's mechanism, asserted coarsely: denser -> more reliable."""

    def test_success_improves_with_c(self):

        def rate(c, trials=6):
            wins = 0
            for s in range(trials):
                n = 200
                g = gnp_random_graph(n, min(1.0, c * math.log(n) / n), seed=40 + s)
                wins += repro.run(g, "dra", engine="fast", seed=60 + s).success
            return wins

        assert rate(10) >= rate(2)
        assert rate(10) >= 5  # dense regime is near-certain
