"""Tests for the sequential solvers against the exact oracle."""

import math

import pytest

from repro.graphs import Graph, gnp_random_graph
from repro.sequential import (
    angluin_valiant_cycle,
    exact_hamiltonian_cycle,
    is_hamiltonian,
    posa_cycle,
    sequential_step_budget,
)
from repro.verify import is_hamiltonian_cycle

from tests.conftest import complete, path_graph, ring


class TestExactSolver:
    def test_ring_is_hamiltonian(self):
        cycle = exact_hamiltonian_cycle(ring(8))
        assert cycle is not None
        assert is_hamiltonian_cycle(ring(8), cycle)

    def test_path_is_not(self):
        assert exact_hamiltonian_cycle(path_graph(6)) is None

    def test_complete_is(self):
        assert is_hamiltonian(complete(6))

    def test_petersen_graph(self):
        # The Petersen graph is the classic non-Hamiltonian 3-regular graph.
        outer = [(i, (i + 1) % 5) for i in range(5)]
        spokes = [(i, i + 5) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
        petersen = Graph(10, outer + spokes + inner)
        assert not is_hamiltonian(petersen)

    def test_too_small(self):
        assert exact_hamiltonian_cycle(Graph(2, [(0, 1)])) is None

    def test_size_limit_guard(self):
        with pytest.raises(ValueError):
            exact_hamiltonian_cycle(ring(100), size_limit=50)

    def test_min_degree_pruning(self):
        g = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)])
        assert is_hamiltonian(g)
        g2 = Graph(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 2)])
        assert not is_hamiltonian(g2)


class TestAngluinValiant:
    def test_finds_cycle_on_dense_gnp(self):
        n = 150
        g = gnp_random_graph(n, 8 * math.log(n) / n, seed=1)
        cycle = angluin_valiant_cycle(n, graph=g, rng=2)
        assert cycle is not None
        assert is_hamiltonian_cycle(g, cycle)

    def test_complete_graph_always_succeeds(self):
        g = complete(30)
        cycle = angluin_valiant_cycle(30, graph=g, rng=0)
        assert is_hamiltonian_cycle(g, cycle)

    def test_adjacency_mapping_interface(self):
        g = complete(12)
        adjacency = {v: g.neighbor_list(v) for v in range(12)}
        cycle = angluin_valiant_cycle(12, adjacency, rng=1)
        assert is_hamiltonian_cycle(g, cycle)

    def test_fails_gracefully_on_path(self):
        g = path_graph(10)
        assert angluin_valiant_cycle(10, graph=g, rng=0) is None

    def test_too_small_returns_none(self):
        assert angluin_valiant_cycle(2, graph=complete(2), rng=0) is None

    def test_budget_formula(self):
        assert sequential_step_budget(100) == int(7 * 100 * math.log(100)) + 64

    def test_requires_input(self):
        with pytest.raises(ValueError):
            angluin_valiant_cycle(5)

    def test_agreement_with_oracle_on_small_graphs(self):
        """Where the oracle says non-Hamiltonian, AV must return None."""
        for seed in range(8):
            g = gnp_random_graph(10, 0.3, seed=seed)
            if not is_hamiltonian(g):
                assert posa_cycle(
                    10, {v: g.neighbor_list(v) for v in range(10)},
                    rng=seed, restarts=4) is None


class TestPosa:
    def test_restarts_succeed_near_threshold(self):
        # Near the Hamiltonicity threshold a *single* rotation walk
        # fails with noticeable probability; restarts must still land a
        # verified cycle.  (No exact-oracle call here: backtracking on a
        # 64-node near-threshold instance can take exponential time —
        # success of posa_cycle is self-certifying via verification.)
        n = 64
        g = gnp_random_graph(n, 3.0 * math.log(n) / n, seed=11)
        adjacency = {v: g.neighbor_list(v) for v in range(n)}
        cycle = posa_cycle(n, adjacency, rng=3, restarts=20)
        assert cycle is not None
        assert is_hamiltonian_cycle(g, cycle)

    def test_more_restarts_never_hurt(self):
        # Deterministic generator stream: if one attempt succeeds, the
        # multi-restart wrapper returns the same first success.
        n = 48
        g = gnp_random_graph(n, 4.0 * math.log(n) / n, seed=5)
        adjacency = {v: g.neighbor_list(v) for v in range(n)}
        one = posa_cycle(n, adjacency, rng=7, restarts=1)
        many = posa_cycle(n, adjacency, rng=7, restarts=16)
        if one is not None:
            assert many == one
        else:
            assert many is None or is_hamiltonian_cycle(g, many)
